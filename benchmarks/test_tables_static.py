"""Tables I-IV: the descriptive tables of the paper.

These render instantly; the benchmarks exist so that ``pytest benchmarks/``
regenerates *every* table and figure of the paper in one run.
"""

from benchmarks.conftest import run_once
from repro.bench.commands import render_table4
from repro.bench.registry_tables import render_table1, render_table2, render_table3


def test_table1_existing_benchmarks(benchmark):
    text = run_once(benchmark, render_table1)
    assert "Mediabench" in text


def test_table2_applications(benchmark):
    text = run_once(benchmark, render_table2)
    assert "x264" in text


def test_table3_input_sequences(benchmark):
    text = run_once(benchmark, render_table3)
    assert "riverbed" in text


def test_table4_commands(benchmark):
    text = run_once(benchmark, render_table4)
    assert "hdvb-mencoder" in text
