"""Shared fixtures for the pytest-benchmark suite.

Workloads are the benchmark-scaled "576p25" tier (96x80) with a short
I-P-B-B GOP so the whole suite completes in minutes; pass a larger scale
through ``hdvb-bench`` for paper-sized campaigns (the harness is the same
code these benchmarks drive).
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.bench.config import BenchConfig
from repro.codecs import get_encoder
from repro.sequences import generate_sequence

#: Benchmark campaign configuration shared by every file here.
BENCH = BenchConfig(
    scale=Fraction(1, 8),
    frames=5,
    runs=1,
    warmup=0,
    sequences=("rush_hour",),
    tier_names=("576p25",),
)

CODECS = ("mpeg2", "mpeg4", "h264")


@pytest.fixture(scope="session")
def bench_config() -> BenchConfig:
    return BENCH


@pytest.fixture(scope="session")
def tier():
    return BENCH.tiers()[0]


@pytest.fixture(scope="session")
def video(tier):
    return generate_sequence("rush_hour", tier.name, frames=BENCH.frames,
                             scale=BENCH.scale)


@pytest.fixture(scope="session")
def encoded_streams(video, tier):
    """Pre-encoded streams per codec (decode benchmarks start from these)."""
    streams = {}
    for codec in CODECS:
        encoder = get_encoder(codec, **BENCH.encoder_fields(codec, tier))
        streams[codec] = encoder.encode_sequence(video)
    return streams


def run_once(benchmark, fn):
    """Single-shot measurement: pure-Python encodes are seconds long, so
    pytest-benchmark's auto-calibration is skipped."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
