"""Extension benchmarks: GOP-parallel scaling and workload characterisation.

These cover the two analyses the paper leaves as future work (Section VII
parallel codecs; the companion-paper-style kernel breakdown).  Speed-up is
bounded by the machine's core count — the chunking *overhead* (extra I
frames, extra bits) is measured regardless.
"""

import pytest

from benchmarks.conftest import BENCH, run_once
from repro.bench.characterize import characterize_decode, characterize_encode
from repro.codecs import get_encoder
from repro.parallel import parallel_encode


@pytest.mark.parametrize("chunks", [1, 2, 4])
def test_parallel_chunking(benchmark, chunks, video, tier):
    fields = BENCH.encoder_fields("mpeg4", tier)
    stream = run_once(
        benchmark,
        lambda: parallel_encode("mpeg4", video, workers=chunks, chunks=chunks, **fields),
    )
    benchmark.extra_info["chunks"] = chunks
    benchmark.extra_info["bytes"] = stream.total_bytes


def test_parallel_overhead_grows_with_chunks(video, tier):
    fields = BENCH.encoder_fields("mpeg4", tier)
    sizes = [
        parallel_encode("mpeg4", video, workers=1, chunks=chunks, **fields).total_bytes
        for chunks in (1, 2)
    ]
    assert sizes[1] >= sizes[0]


@pytest.mark.parametrize("codec", ("mpeg2", "mpeg4", "h264"))
def test_characterize_encode(benchmark, codec, video, tier):
    fields = BENCH.encoder_fields(codec, tier)

    def measure():
        profile, _ = characterize_encode(codec, video, **fields)
        return profile

    profile = run_once(benchmark, measure)
    top = profile.top(3)
    benchmark.extra_info["top_kernels"] = {
        name: stats.samples for name, stats in top
    }
    assert profile.total_calls > 0


@pytest.mark.parametrize("codec", ("mpeg2", "mpeg4", "h264"))
def test_characterize_decode(benchmark, codec, video, tier, encoded_streams):
    def measure():
        profile, _ = characterize_decode(codec, encoded_streams[codec])
        return profile

    profile = run_once(benchmark, measure)
    benchmark.extra_info["top_kernels"] = {
        name: stats.samples for name, stats in profile.top(3)
    }
    assert profile.kernels["sad"].calls == 0  # no motion search in decode
