"""Table V: rate-distortion of the three codecs at constant QP.

Each benchmark times one codec's full encode+decode measurement and
records the Table V columns (PSNR, bitrate) in ``extra_info``; the
ordering assertions mirror the paper's findings (MPEG-2 needs the most
bits, H.264 the fewest, at comparable PSNR).

Full regeneration of the table: ``hdvb-bench table5``.
"""

import pytest

from benchmarks.conftest import BENCH, CODECS, run_once
from repro.bench.ratedistortion import run_rate_distortion
from repro.common.metrics import sequence_psnr
from repro.codecs import get_decoder, get_encoder


@pytest.mark.parametrize("codec", CODECS)
def test_table5_codec(benchmark, codec, video, tier):
    def measure():
        encoder = get_encoder(codec, **BENCH.encoder_fields(codec, tier))
        stream = encoder.encode_sequence(video)
        decoded = get_decoder(codec).decode(stream)
        return stream, sequence_psnr(video, decoded)

    stream, psnr = run_once(benchmark, measure)
    benchmark.extra_info["psnr_db"] = round(psnr.combined, 2)
    benchmark.extra_info["bitrate_kbps"] = round(stream.bitrate_kbps, 1)
    benchmark.extra_info["bytes"] = stream.total_bytes
    assert psnr.combined > 33.0


def test_table5_orderings(benchmark):
    rows = run_once(benchmark, lambda: run_rate_distortion(BENCH))
    by_codec = {row.codec: row for row in rows}
    benchmark.extra_info["bitrates"] = {
        codec: round(row.bitrate_kbps, 1) for codec, row in by_codec.items()
    }
    assert by_codec["mpeg2"].bitrate_kbps > by_codec["mpeg4"].bitrate_kbps
    assert by_codec["mpeg4"].bitrate_kbps > by_codec["h264"].bitrate_kbps
