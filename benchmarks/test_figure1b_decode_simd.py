"""Figure 1(b): decoding performance with SIMD optimisations.

The paper reports SIMD decode speed-ups of 2.13x/1.88x/1.55x for
MPEG-2/MPEG-4/H.264; compare against Figure 1(a)'s fps values.
Full regeneration: ``hdvb-bench figure1 --part b``.
"""

import pytest

from benchmarks.conftest import CODECS, run_once
from repro.codecs import get_decoder


@pytest.mark.parametrize("codec", CODECS)
def test_decode_simd(benchmark, codec, encoded_streams):
    stream = encoded_streams[codec]
    decoder = get_decoder(codec, backend="simd")
    run_once(benchmark, lambda: decoder.decode(stream))
    fps = stream.frame_count / benchmark.stats["mean"]
    benchmark.extra_info["fps"] = round(fps, 2)
    benchmark.extra_info["real_time_25fps"] = fps >= 25.0
