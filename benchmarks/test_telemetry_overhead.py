"""Overhead gate: disabled telemetry must be free.

The acceptance criterion for the telemetry subsystem: with telemetry
*disabled* (the default), a 16-frame 176x144 encode must run within 2%
of what it would cost without the instrumentation.

A naive wall-clock A/B cannot resolve a 2% gate: on shared CI-class
hosts the run-to-run spread of the *identical* encode measures 5-45%
(paired, order-alternating medians included).  So the gate is computed
the way the overhead is actually incurred: the per-call cost of the
disabled fast path (one ``state.enabled`` check returning the shared
no-op singleton), measured over 200k iterations where it IS stable,
multiplied by the number of instrumented sites the disabled path reaches
during the real encode, divided by that encode's wall time.  This is an
upper bound -- flag checks without a span allocation are cheaper than
the measured ``span()`` path.

A companion test pins the structural guarantees the bound relies on:
the disabled seams must do nothing but that flag check (shared no-op
span, raw kernel backend, empty trace and registry).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

import repro.telemetry as telemetry
from repro.codecs import get_encoder
from repro.common.yuv import YuvFrame, YuvSequence
from repro.kernels import get_kernels
from repro.telemetry.instrument import InstrumentedKernels
from repro.telemetry.trace import NOOP_SPAN, span, state

WIDTH, HEIGHT, FRAMES = 176, 144, 16
OVERHEAD_GATE = 0.02


def _make_video() -> YuvSequence:
    rng = np.random.default_rng(11)
    coarse = rng.integers(32, 224, (HEIGHT // 8 + 2, WIDTH // 8 + 2))
    luma = np.kron(coarse, np.ones((8, 8)))[:HEIGHT, :WIDTH].astype(np.uint8)
    frames = []
    for index in range(FRAMES):
        shifted = np.roll(luma, index, axis=1)
        frames.append(
            YuvFrame(shifted, shifted[::2, ::2] // 2 + 64,
                     255 - shifted[::2, ::2] // 2)
        )
    return YuvSequence(frames, fps=25)


def _encode_seconds(video: YuvSequence) -> float:
    encoder = get_encoder("mpeg2", width=WIDTH, height=HEIGHT,
                          qscale=6, search_range=8)
    start = time.perf_counter()
    encoder.encode_sequence(video)
    return time.perf_counter() - start


@pytest.fixture(scope="module")
def video() -> YuvSequence:
    telemetry.disable()
    result = _make_video()
    # Warm-up: first-touch module import and VLC table construction must
    # not pollute the measurement.
    _encode_seconds(result)
    return result


def test_disabled_seams_do_nothing(video):
    """The structural invariants the overhead bound relies on."""
    telemetry.disable()
    telemetry.reset()
    assert span("anything", codec="mpeg2") is NOOP_SPAN
    kernels = get_kernels("simd")
    assert kernels is get_kernels("simd")
    assert not isinstance(kernels, InstrumentedKernels)
    _encode_seconds(video)
    assert len(telemetry.current_trace()) == 0
    assert len(telemetry.registry()) == 0


def test_disabled_overhead_under_two_percent(video):
    """Disabled-path cost x sites reached < 2% of the encode wall time."""
    encode_seconds = min(_encode_seconds(video) for _ in range(3))

    # Count the sites the disabled path reaches by running the same
    # encode once with telemetry enabled: every recorded span is a
    # span() call site, and every motion search is a flag check in
    # run_search.  Per-kernel counters do NOT count -- disabled code
    # gets the raw backend from get_kernels, so kernel calls carry zero
    # instrumentation.
    telemetry.reset()
    telemetry.enable()
    try:
        _encode_seconds(video)
    finally:
        telemetry.disable()
    span_sites = len(telemetry.current_trace())
    search_sites = int(telemetry.registry().value("me.search.calls"))
    touch_points = span_sites + search_sites
    assert span_sites >= FRAMES       # sequence span + one per picture
    assert search_sites > 0

    # The disabled fast path, measured where it is measurable.
    probes = 200_000
    start = time.perf_counter()
    for _ in range(probes):
        with span("noop"):
            pass
    noop_seconds = (time.perf_counter() - start) / probes
    assert not state.enabled

    projected = touch_points * noop_seconds
    ratio = projected / encode_seconds
    assert ratio < OVERHEAD_GATE, (
        f"projected disabled overhead {ratio:.2%} "
        f"({touch_points} sites x {noop_seconds * 1e9:.0f}ns) exceeds "
        f"{OVERHEAD_GATE:.0%} of the {encode_seconds:.2f}s encode"
    )


# ----------------------------------------------------------------------
# the event log rides the same gate
# ----------------------------------------------------------------------


def _serve_once(events_on: bool):
    """One tiny seeded serve; (wall seconds, events emitted)."""
    from repro.origin.bench import run_serve
    from repro.telemetry import events

    events.reset()
    if events_on:
        events.enable()
    try:
        reports = run_serve(clients=6, seeds=(3,), frames=8,
                            chaos_rate=0.5)
    finally:
        emitted = len(events.current_log())
        events.disable()
        events.reset()
    return reports[0].wall_seconds, emitted


def test_disabled_event_log_under_two_percent(tmp_path):
    """Disabled emit() cost x sites reached < 2% of the serve wall time."""
    from repro.telemetry import flightrec
    from repro.telemetry.events import emit, state as event_state

    flightrec.recorder.configure(dump_dir=str(tmp_path / "flightrec"))
    serve_seconds, _ = _serve_once(events_on=False)
    _, emit_count = _serve_once(events_on=True)
    assert emit_count > 0          # the serve path is instrumented

    probes = 200_000
    start = time.perf_counter()
    for _ in range(probes):
        emit("session.state", state="probe")
    noop_seconds = (time.perf_counter() - start) / probes
    assert not event_state.enabled

    projected = emit_count * noop_seconds
    ratio = projected / serve_seconds
    assert ratio < OVERHEAD_GATE, (
        f"projected disabled event-log overhead {ratio:.2%} "
        f"({emit_count} sites x {noop_seconds * 1e9:.0f}ns) exceeds "
        f"{OVERHEAD_GATE:.0%} of the {serve_seconds:.2f}s serve"
    )


def test_enabled_event_log_under_five_percent(tmp_path):
    """Enabled emit+ring cost x sites reached < 5% of the serve wall."""
    from repro.telemetry import events, flightrec
    from repro.telemetry.events import correlation_scope, emit

    flightrec.recorder.configure(dump_dir=str(tmp_path / "flightrec"))
    serve_seconds, _ = _serve_once(events_on=False)
    _, emit_count = _serve_once(events_on=True)

    events.reset()
    events.enable()
    probes = 50_000
    try:
        with correlation_scope(session_id="bench"):
            start = time.perf_counter()
            for index in range(probes):
                emit("session.state", state=index, t=0.0)
            enabled_seconds = (time.perf_counter() - start) / probes
    finally:
        events.disable()
        events.reset()

    projected = emit_count * enabled_seconds
    ratio = projected / serve_seconds
    assert ratio < 0.05, (
        f"projected enabled event-log overhead {ratio:.2%} "
        f"({emit_count} sites x {enabled_seconds * 1e6:.1f}us) exceeds "
        f"5% of the {serve_seconds:.2f}s serve"
    )
