"""Ablation: quantiser sweep (rate-distortion curves per codec).

Sweeps the MPEG quantiser scale (H.264 QP via Equation 1) and records the
RD points, verifying the constant-quality premise of Table V holds across
the operating range, not just at qscale 5.
"""

import pytest

from benchmarks.conftest import BENCH, CODECS, run_once
from repro.codecs import get_decoder, get_encoder
from repro.common.metrics import sequence_psnr
from repro.transform.qp import h264_qp_from_mpeg

QSCALES = (2, 5, 12)


@pytest.mark.parametrize("codec", CODECS)
@pytest.mark.parametrize("qscale", QSCALES)
def test_qp_sweep(benchmark, codec, qscale, video, tier):
    fields = BENCH.encoder_fields(codec, tier)
    if codec == "h264":
        fields["qp"] = h264_qp_from_mpeg(qscale)
    else:
        fields["qscale"] = qscale

    def measure():
        stream = get_encoder(codec, **fields).encode_sequence(video)
        decoded = get_decoder(codec).decode(stream)
        return stream, sequence_psnr(video, decoded)

    stream, psnr = run_once(benchmark, measure)
    benchmark.extra_info["qscale"] = qscale
    benchmark.extra_info["psnr_db"] = round(psnr.combined, 2)
    benchmark.extra_info["kbps"] = round(stream.bitrate_kbps, 1)


def test_rd_curves_monotone(video, tier):
    """Within each codec: coarser quantiser -> fewer bits, lower PSNR."""
    for codec in CODECS:
        bitrates = []
        psnrs = []
        for qscale in QSCALES:
            fields = BENCH.encoder_fields(codec, tier)
            if codec == "h264":
                fields["qp"] = h264_qp_from_mpeg(qscale)
            else:
                fields["qscale"] = qscale
            stream = get_encoder(codec, **fields).encode_sequence(video)
            decoded = get_decoder(codec).decode(stream)
            bitrates.append(stream.total_bytes)
            psnrs.append(sequence_psnr(video, decoded).combined)
        assert bitrates == sorted(bitrates, reverse=True), codec
        assert psnrs == sorted(psnrs, reverse=True), codec
