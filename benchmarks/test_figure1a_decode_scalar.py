"""Figure 1(a): decoding performance, scalar build.

One benchmark per codec; ``extra_info["fps"]`` carries the bar value.
Full regeneration: ``hdvb-bench figure1 --part a``.
"""

import pytest

from benchmarks.conftest import BENCH, CODECS, run_once
from repro.codecs import get_decoder


@pytest.mark.parametrize("codec", CODECS)
def test_decode_scalar(benchmark, codec, encoded_streams):
    stream = encoded_streams[codec]
    decoder = get_decoder(codec, backend="scalar")
    run_once(benchmark, lambda: decoder.decode(stream))
    fps = stream.frame_count / benchmark.stats["mean"]
    benchmark.extra_info["fps"] = round(fps, 2)
    benchmark.extra_info["real_time_25fps"] = fps >= 25.0
