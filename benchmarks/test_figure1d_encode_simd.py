"""Figure 1(d): encoding performance with SIMD optimisations.

The paper reports SIMD encode speed-ups of 2.46x/2.42x/2.31x for
MPEG-2/MPEG-4/H.264; compare against Figure 1(c)'s fps values.
Full regeneration: ``hdvb-bench figure1 --part d``.
"""

import pytest

from benchmarks.conftest import BENCH, CODECS, run_once
from repro.codecs import get_encoder


@pytest.mark.parametrize("codec", CODECS)
def test_encode_simd(benchmark, codec, video, tier):
    fields = BENCH.encoder_fields(codec, tier, backend="simd")
    run_once(benchmark, lambda: get_encoder(codec, **fields).encode_sequence(video))
    fps = len(video) / benchmark.stats["mean"]
    benchmark.extra_info["fps"] = round(fps, 2)
    benchmark.extra_info["real_time_25fps"] = fps >= 25.0
