"""Resilience benchmark: the full seeded fault sweep (>= 200 streams).

40 seeded faults x 5 codecs = 200 corrupted streams.  Acceptance gates:

* **graceful failures: 100 %** -- every strict decode either succeeds
  (benign damage) or raises a :class:`ReproError` subclass carrying
  codec, picture index and bit position; raw escapes are zero.
* **concealment success: 100 %** -- every ``copy-last`` decode returns
  the full frame count without raising.
* the post-concealment PSNR delta vs the clean decode is reported.
"""

from __future__ import annotations

from repro.robustness.bench import (
    ALL_CODECS,
    render_robustness,
    run_robustness,
)

TRIALS = 40


def test_fault_sweep_is_fully_graceful(benchmark):
    reports = benchmark.pedantic(
        lambda: run_robustness(codecs=ALL_CODECS, trials=TRIALS, seed=0),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    print()
    print(render_robustness(reports))

    total = sum(report.trials for report in reports)
    assert total >= 200, f"sweep covered only {total} corrupted streams"
    for report in reports:
        assert report.raw_escapes == 0, (
            f"{report.codec}: {report.raw_escapes} strict decodes escaped "
            "without full decode context"
        )
        assert report.graceful_rate == 1.0, report
        assert report.conceal_rate == 1.0, (
            f"{report.codec}: only {report.conceal_successes}/{report.trials} "
            "concealed decodes returned the full frame count"
        )
        # Concealment degrades quality; it must never *invent* quality.
        assert report.mean_psnr_delta <= 0.0, report
