"""Kernel-level scalar-vs-SIMD microbenchmarks (ablation).

Figure 1's whole-application speed-ups are bounded by Amdahl's law; these
microbenchmarks expose the raw per-kernel gap that drives them — the
analogue of benchmarking individual SIMD routines in the paper's codecs.
"""

import numpy as np
import pytest

from repro.kernels import get_kernels
from repro.kernels.tables import MPEG_INTRA_MATRIX

BACKENDS = ("scalar", "simd")
RNG = np.random.default_rng(42)

BLOCK8_A = RNG.integers(0, 256, (8, 8)).astype(np.int64)
BLOCK8_B = RNG.integers(0, 256, (8, 8)).astype(np.int64)
BLOCK16_A = RNG.integers(0, 256, (16, 16)).astype(np.int64)
BLOCK16_B = RNG.integers(0, 256, (16, 16)).astype(np.int64)
RESIDUAL8 = RNG.integers(-128, 128, (8, 8)).astype(np.int64)
RESIDUAL4 = RNG.integers(-128, 128, (4, 4)).astype(np.int64)
PLANE = RNG.integers(0, 256, (64, 64)).astype(np.int64)

REPEAT = 50


def loop(fn):
    def run():
        for _ in range(REPEAT):
            fn()
    return run


@pytest.mark.parametrize("backend", BACKENDS)
def test_sad_16x16(benchmark, backend):
    kernels = get_kernels(backend)
    benchmark(loop(lambda: kernels.sad(BLOCK16_A, BLOCK16_B)))


@pytest.mark.parametrize("backend", BACKENDS)
def test_fdct8(benchmark, backend):
    kernels = get_kernels(backend)
    benchmark(loop(lambda: kernels.fdct8(RESIDUAL8)))


@pytest.mark.parametrize("backend", BACKENDS)
def test_idct8(benchmark, backend):
    kernels = get_kernels(backend)
    coeffs = get_kernels("simd").fdct8(RESIDUAL8)
    benchmark(loop(lambda: kernels.idct8(coeffs)))


@pytest.mark.parametrize("backend", BACKENDS)
def test_quant_mpeg(benchmark, backend):
    kernels = get_kernels(backend)
    coeffs = get_kernels("simd").fdct8(RESIDUAL8)
    benchmark(loop(lambda: kernels.quant_mpeg(coeffs, MPEG_INTRA_MATRIX, 5, True)))


@pytest.mark.parametrize("backend", BACKENDS)
def test_fwd_transform4(benchmark, backend):
    kernels = get_kernels(backend)
    benchmark(loop(lambda: kernels.fwd_transform4(RESIDUAL4)))


@pytest.mark.parametrize("backend", BACKENDS)
def test_mc_halfpel(benchmark, backend):
    kernels = get_kernels(backend)
    benchmark(loop(lambda: kernels.mc_halfpel(PLANE, 16, 16, 16, 16, 3, 1)))


@pytest.mark.parametrize("backend", BACKENDS)
def test_mc_qpel_h264_centre(benchmark, backend):
    kernels = get_kernels(backend)
    benchmark(loop(lambda: kernels.mc_qpel_h264(PLANE, 16, 16, 16, 16, 2, 2)))


@pytest.mark.parametrize("backend", BACKENDS)
def test_deblock_normal_edge(benchmark, backend):
    kernels = get_kernels(backend)
    lines = [RNG.integers(0, 256, 64).astype(np.int64) for _ in range(6)]
    c0 = np.full(64, 2, dtype=np.int64)
    benchmark(loop(lambda: kernels.deblock_normal(*lines, 25, 8, c0, False)))
