"""Figure 1(c): encoding performance, scalar build.

In the paper no scalar encoder reaches 25 fps at any resolution; the same
holds (by a wide margin) for the pure-Python scalar backend.
Full regeneration: ``hdvb-bench figure1 --part c``.
"""

import pytest

from benchmarks.conftest import BENCH, CODECS, run_once
from repro.codecs import get_encoder


@pytest.mark.parametrize("codec", CODECS)
def test_encode_scalar(benchmark, codec, video, tier):
    fields = BENCH.encoder_fields(codec, tier, backend="scalar")
    run_once(benchmark, lambda: get_encoder(codec, **fields).encode_sequence(video))
    fps = len(video) / benchmark.stats["mean"]
    benchmark.extra_info["fps"] = round(fps, 2)
    benchmark.extra_info["real_time_25fps"] = fps >= 25.0
