"""Streaming benchmark: the seeded lossy-transport sweep, gated.

Every codec's stream crosses a loss rate x burst length x FEC grid of
seeded Gilbert-Elliott channels.  Acceptance gates (the ISSUE 3 bar):

* **graceful decodes >= 99 %** at 5 % burst loss with XOR FEC enabled --
  no reception may escape with an unhandled exception;
* **every lost picture slot recovered** -- FEC rebuilds what parity can,
  concealment covers the rest, and each reception still plays out the
  full frame count;
* **bit-reproducible** -- the same seed produces the identical report
  list, PSNR deltas included.
"""

from __future__ import annotations

from repro.robustness.bench import ALL_CODECS
from repro.transport.bench import render_streaming, run_streaming

TRIALS = 3
GATE_LOSS = 0.05
GATE_BURST = 3.0
GATE_FEC = 4


def test_streaming_sweep_gates(benchmark):
    reports = benchmark.pedantic(
        lambda: run_streaming(codecs=ALL_CODECS, trials=TRIALS, seed=0),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    print()
    print(render_streaming(reports))

    assert len(reports) == len(ALL_CODECS) * 3 * 2 * 2
    for report in reports:
        # Nothing on the whole grid may escape ungracefully, and
        # concealment must always restore the full display length.
        assert report.graceful_rate == 1.0, (
            f"{report.codec} @ loss {report.loss_rate:.0%} burst "
            f"{report.burst_length:g} fec {report.fec_group}: only "
            f"{report.graceful}/{report.trials} receptions decoded gracefully"
        )
        assert report.complete_rate == 1.0, (
            f"{report.codec} @ loss {report.loss_rate:.0%}: lost picture "
            "slots were not recovered"
        )
        # Loss concealment degrades quality; it must never invent quality.
        assert report.mean_psnr_delta <= 0.0, report

    gate = [r for r in reports
            if (r.loss_rate, r.burst_length, r.fec_group)
            == (GATE_LOSS, GATE_BURST, GATE_FEC)]
    assert len(gate) == len(ALL_CODECS)
    for report in gate:
        assert report.graceful_rate >= 0.99, report
        assert report.complete_rate == 1.0, report


def test_streaming_sweep_is_bit_reproducible():
    first = run_streaming(codecs=("mpeg2",), trials=2, seed=123)
    second = run_streaming(codecs=("mpeg2",), trials=2, seed=123)
    assert first == second
