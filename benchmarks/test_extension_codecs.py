"""Extension-codec benchmarks: VC-1 adaptive transform and MJPEG baseline.

The ablations behind the Section VII extensions: the VC-1 adaptive
transform's bit savings, and the intra-only codec's position in the RD
landscape.
"""

import pytest

from benchmarks.conftest import BENCH, run_once
from repro.codecs import get_decoder, get_encoder
from repro.common.metrics import sequence_psnr


@pytest.mark.parametrize("adaptive", [True, False])
def test_vc1_adaptive_transform(benchmark, adaptive, video, tier):
    fields = BENCH.encoder_fields("vc1", tier)
    fields["adaptive_transform"] = adaptive
    stream = run_once(
        benchmark, lambda: get_encoder("vc1", **fields).encode_sequence(video)
    )
    benchmark.extra_info["adaptive_transform"] = adaptive
    benchmark.extra_info["bytes"] = stream.total_bytes


def test_vc1_adaptive_transform_saves_bits(video, tier):
    sizes = {}
    for adaptive in (True, False):
        fields = BENCH.encoder_fields("vc1", tier)
        fields["adaptive_transform"] = adaptive
        sizes[adaptive] = get_encoder("vc1", **fields).encode_sequence(video).total_bytes
    assert sizes[True] <= sizes[False]


@pytest.mark.parametrize("codec", ["vc1", "mjpeg"])
def test_extension_codec_rd(benchmark, codec, video, tier):
    fields = BENCH.encoder_fields(codec, tier)

    def measure():
        stream = get_encoder(codec, **fields).encode_sequence(video)
        decoded = get_decoder(codec).decode(stream)
        return stream, sequence_psnr(video, decoded)

    stream, psnr = run_once(benchmark, measure)
    benchmark.extra_info["psnr_db"] = round(psnr.combined, 2)
    benchmark.extra_info["kbps"] = round(stream.bitrate_kbps, 1)


def test_intra_only_costs_more_than_hybrid(video, tier):
    mjpeg = get_encoder("mjpeg", **BENCH.encoder_fields("mjpeg", tier)).encode_sequence(video)
    mpeg2 = get_encoder("mpeg2", **BENCH.encoder_fields("mpeg2", tier)).encode_sequence(video)
    assert mjpeg.total_bytes > mpeg2.total_bytes
