"""Origin serve benchmark: 200 seeded clients through one origin, gated.

The acceptance bar for the multi-client streaming origin:

* **≥ 200 concurrent seeded clients** served end-to-end (packetize →
  per-client Gilbert–Elliott channel → FEC → jitter → hardened decode)
  on the virtual-time loop;
* **zero unhandled task exceptions** — every failure crosses a task
  boundary as a taxonomy error or a clean chaos cancellation;
* **100 % graceful failures** — sheds, aborts, admission rejects and
  chaos cancellations all carry session context;
* **bit-reproducible** — the same seed yields the identical per-session
  fingerprint, shed/degrade counts included.
"""

from __future__ import annotations

from repro.origin.bench import render_serve, run_serve

CLIENTS = 200
SEED = 7
CHAOS_RATE = 0.3
SLOW_READER_RATE = 0.3


def test_serve_200_clients_gates(benchmark):
    reports = benchmark.pedantic(
        lambda: run_serve(clients=CLIENTS, seeds=(SEED,),
                          chaos_rate=CHAOS_RATE,
                          slow_reader_rate=SLOW_READER_RATE),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    print()
    print(render_serve(reports))

    report = reports[0]
    assert report.sessions == CLIENTS
    # the hard gate: nothing escapes raw, and every failure fails well
    assert report.unhandled_escapes == 0, report.unhandled
    assert report.graceful_rate == 1.0, report
    # the population is chaotic by construction: the degradation and
    # supervision machinery must actually have been exercised
    assert report.degrade_entries > 0
    assert report.cancelled > 0
    assert report.frames_delivered > 0
    # single-flight: one codec on one starting rung encodes a handful of
    # assets (start rung + degrade rungs), never once per client
    assert report.encodes <= 6
    assert report.cache_hits + report.cache_flight_waits >= CLIENTS - report.encodes - report.rejected


def test_serve_is_bit_reproducible():
    first = run_serve(clients=CLIENTS, seeds=(SEED,), chaos_rate=CHAOS_RATE,
                      slow_reader_rate=SLOW_READER_RATE)[0]
    second = run_serve(clients=CLIENTS, seeds=(SEED,), chaos_rate=CHAOS_RATE,
                       slow_reader_rate=SLOW_READER_RATE)[0]
    assert first.fingerprint == second.fingerprint
    assert first.deadline_misses == second.deadline_misses
    assert first.degrade_entries == second.degrade_entries
    assert (first.shed, first.cancelled, first.rejected) == (
        second.shed, second.cancelled, second.rejected)
