"""Ablation: motion estimation algorithm (EPZS vs hexagon vs full search).

The paper fixes EPZS for the MPEG codecs and hexagon for x264 (Section
IV); this ablation shows why — the fast searches trade negligible quality
for an order of magnitude fewer SAD evaluations than exhaustive search.
"""

import pytest

from benchmarks.conftest import BENCH, run_once
from repro.codecs import get_decoder, get_encoder
from repro.common.metrics import sequence_psnr


@pytest.mark.parametrize("algorithm", ["epzs", "hex", "full"])
def test_me_algorithm_mpeg4(benchmark, algorithm, video, tier):
    fields = BENCH.encoder_fields("mpeg4", tier)
    fields["me_algorithm"] = algorithm

    def measure():
        stream = get_encoder("mpeg4", **fields).encode_sequence(video)
        decoded = get_decoder("mpeg4").decode(stream)
        return stream, sequence_psnr(video, decoded)

    stream, psnr = run_once(benchmark, measure)
    benchmark.extra_info["psnr_db"] = round(psnr.combined, 2)
    benchmark.extra_info["bytes"] = stream.total_bytes
    benchmark.extra_info["fps"] = round(len(video) / benchmark.stats["mean"], 2)


@pytest.mark.parametrize("algorithm", ["hex", "epzs"])
def test_me_algorithm_h264(benchmark, algorithm, video, tier):
    fields = BENCH.encoder_fields("h264", tier)
    fields["me_algorithm"] = algorithm
    stream = run_once(
        benchmark, lambda: get_encoder("h264", **fields).encode_sequence(video)
    )
    benchmark.extra_info["bytes"] = stream.total_bytes
