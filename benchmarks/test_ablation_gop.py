"""Ablation: GOP structure (the paper's I-P-B-B vs I-P vs intra-only).

B frames are the reason decode order differs from display order and a
large part of the compression gain; this ablation quantifies both sides
(bits saved vs extra encode work) for each codec.
"""

import pytest

from benchmarks.conftest import BENCH, CODECS, run_once
from repro.codecs import get_encoder
from repro.common.gop import GopStructure

GOPS = {
    "ipbb": GopStructure(bframes=2),            # the paper's pattern
    "ip": GopStructure(bframes=0),              # no B frames
    "intra": GopStructure(bframes=0, intra_period=1),  # all-I
}


@pytest.mark.parametrize("codec", CODECS)
@pytest.mark.parametrize("gop_name", list(GOPS))
def test_gop_structure(benchmark, codec, gop_name, video, tier):
    fields = BENCH.encoder_fields(codec, tier)
    fields["gop"] = GOPS[gop_name]
    stream = run_once(
        benchmark, lambda: get_encoder(codec, **fields).encode_sequence(video)
    )
    benchmark.extra_info["bytes"] = stream.total_bytes
    benchmark.extra_info["kbps"] = round(stream.bitrate_kbps, 1)


def test_bframes_save_bits(video, tier):
    """The I-P-B-B pattern must not cost more bits than intra-only."""
    for codec in CODECS:
        fields = BENCH.encoder_fields(codec, tier)
        sizes = {}
        for name, gop in GOPS.items():
            fields["gop"] = gop
            sizes[name] = get_encoder(codec, **fields).encode_sequence(video).total_bytes
        assert sizes["ipbb"] < sizes["intra"], codec
