"""Legacy setup shim: enables editable installs where the PEP 660 path is
unavailable (offline environments without the ``wheel`` package)."""

from setuptools import setup

setup()
