"""Run the benchmark campaign through the orchestrator and dump results.

The campaign matrix lives in ``specs/campaign.json`` — codecs x
sequences x resolutions x worker counts at the paper's benchmark scale
(1/8 linear, 9 frames, constant QP per Equation 1).  This script is a
thin driver around ``repro.orchestrate``: the spec expands
deterministically, every cell lands in the benchmark history store
(``.hdvb-bench-history/``) as it completes, encoded bitstreams are
reused from the content-addressed artifact cache, and an interrupted
campaign resumes where it stopped (rerun the same command; completed
cells are skipped).

    python scripts/run_experiments.py [spec_path] [output_path]

Equivalent to ``hdvb-bench orchestrate specs/campaign.json --record``
plus a results file for EXPERIMENTS.md.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.bench.report import render_table
from repro.observe.record import RunInfo
from repro.observe.store import HistoryStore
from repro.orchestrate import (
    ArtifactCache,
    load_spec,
    render_orchestrate,
    run_cells,
    summarize,
    summary_records,
)

DEFAULT_SPEC = Path(__file__).resolve().parent.parent / "specs" / "campaign.json"

#: Per-cell metrics shown in the results table, in column order.
CELL_METRICS = ("psnr_db", "psnr_y_db", "bitrate_kbps")


def cell_table(store: HistoryStore, run_id: str) -> str:
    """Render every completed cell of this campaign as one table."""
    records = [record for record in store.query("orchestrate", run_id=run_id)
               if record.context.get("status") == "ok"]
    records.sort(key=lambda record: record.axis_key)
    rows = []
    for record in records:
        axes = record.axes
        rows.append([
            axes["codec"], axes["sequence"], axes["resolution"],
            axes["workers"],
            *(f"{record.metrics[name]:.2f}" for name in CELL_METRICS),
        ])
    return render_table(
        ["Codec", "Sequence", "Resolution", "Workers",
         "PSNR (dB)", "PSNR-Y (dB)", "Bitrate (kbps)"],
        rows, title=f"Campaign cells ({len(rows)} completed)")


def main() -> int:
    spec_path = sys.argv[1] if len(sys.argv) > 1 else str(DEFAULT_SPEC)
    output_path = sys.argv[2] if len(sys.argv) > 2 else "experiment_results.txt"
    spec = load_spec(spec_path)
    run_id = f"{spec.name}-{spec.fingerprint()}"
    store = HistoryStore()
    cache = ArtifactCache()
    info = RunInfo.capture(run_id=run_id)

    print(f"campaign {spec.name} [{spec.fingerprint()}]: "
          f"{spec.cell_count()} cells", flush=True)
    state = run_cells(spec, store, info, cache=cache,
                      progress=lambda message: print("  " + message, flush=True))
    summary = summarize(spec, state, cache)
    store.append_many(summary_records(summary, info))

    report = render_orchestrate(summary)
    print(report)
    with open(output_path, "w") as handle:
        handle.write(report + "\n\n" + cell_table(store, run_id) + "\n")
    print(f"wrote {output_path}")
    print(f"recorded run {run_id} in {store.path}")
    return 1 if summary.cells_failed else 0


if __name__ == "__main__":
    sys.exit(main())
