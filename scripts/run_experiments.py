"""Run the full benchmark campaign and dump results for EXPERIMENTS.md.

Regenerates Table V and all four Figure 1 panels at the default benchmark
scale (1/8 linear, 9 frames, constant QP per Equation 1), plus the SIMD
speed-up and real-time aggregates the paper quotes in Section VI.  Every
measurement is also appended to the benchmark history store
(``.hdvb-bench-history/``), so campaign runs feed the same
``hdvb-observe`` gate/trend/export pipeline as ``hdvb-bench --record``.

    python scripts/run_experiments.py [output_path]
"""

from __future__ import annotations

import sys
import time

from repro.bench.config import BenchConfig
from repro.bench.performance import (
    FIGURE1_PARTS,
    average_fps,
    render_performance,
    run_figure1_part,
    simd_speedups,
)
from repro.bench.ratedistortion import render_rate_distortion, run_rate_distortion
from repro.observe.record import (
    RunInfo,
    context_from_config,
    records_from_performance,
    records_from_rate_distortion,
    records_from_speedups,
)
from repro.observe.store import HistoryStore


def main() -> None:
    output_path = sys.argv[1] if len(sys.argv) > 1 else "experiment_results.txt"
    config = BenchConfig(frames=9, runs=1, warmup=0)
    store = HistoryStore()
    info = RunInfo.capture(context=context_from_config(config))
    sections = []
    started = time.time()

    print("running Table V ...", flush=True)
    rd_rows = run_rate_distortion(config, progress=lambda m: print("  " + m, flush=True))
    sections.append(render_rate_distortion(rd_rows))
    store.append_many(records_from_rate_distortion(rd_rows, info))

    figure_rows = {}
    for part in ("a", "b", "c", "d"):
        operation, backend = FIGURE1_PARTS[part]
        print(f"running Figure 1({part}) [{operation}/{backend}] ...", flush=True)
        rows = run_figure1_part(config, part,
                                progress=lambda m: print("  " + m, flush=True))
        figure_rows[part] = rows
        sections.append(render_performance(
            rows, f"Figure 1({part}): {operation} performance, {backend} backend"
        ))
        store.append_many(records_from_performance(rows, info))

    lines = ["SIMD speed-ups (average over sequences and resolutions):"]
    for operation, scalar_part, simd_part in (("decode", "a", "b"), ("encode", "c", "d")):
        speedups = simd_speedups(figure_rows[scalar_part], figure_rows[simd_part])
        store.append_many(records_from_speedups(operation, speedups, info))
        for codec, value in speedups.items():
            lines.append(f"  {operation} {codec}: {value:.2f}x")
    sections.append("\n".join(lines))

    lines = ["Average fps per (codec, resolution):"]
    for part in ("a", "b", "c", "d"):
        operation, backend = FIGURE1_PARTS[part]
        lines.append(f"  Figure 1({part}) {operation}/{backend}:")
        for (codec, resolution), fps in average_fps(figure_rows[part]).items():
            marker = "real-time" if fps >= 25.0 else "below-25fps"
            lines.append(f"    {codec:6s} {resolution:8s} {fps:8.2f} fps  {marker}")
    sections.append("\n".join(lines))

    elapsed = time.time() - started
    sections.append(f"campaign wall time: {elapsed:.0f}s "
                    f"(scale {config.scale}, {config.frames} frames, {config.runs} run)")
    with open(output_path, "w") as handle:
        handle.write("\n\n".join(sections) + "\n")
    print(f"wrote {output_path} in {elapsed:.0f}s")
    print(f"recorded run {info.run_id} in {store.path}")


if __name__ == "__main__":
    main()
