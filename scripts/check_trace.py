#!/usr/bin/env python
"""Validate a ``repro.telemetry`` trace export file.

Accepts both export formats and auto-detects which one it is looking at:

* Chrome trace-event JSON (``hdvb-bench performance --trace out.json``,
  the default ``--trace-format chrome``): an object with a
  ``traceEvents`` list of ``"ph": "X"`` complete events, loadable in
  ``chrome://tracing`` / Perfetto;
* the library's own span schema (``--trace-format json``):
  ``{"schema": "repro.telemetry.trace/1", "spans": [...]}``.

Exit status 0 when the file validates, 1 with a diagnostic otherwise.
Used by the CI telemetry smoke job; importable for tests
(:func:`validate_trace_file`).

Diagnostics are reported through the shared finding/reporter helpers of
:mod:`repro.analysis` (rule id ``TRACE100``), so ``--format json`` emits
the same ``repro.analysis.findings/1`` document the lint engine does and
downstream tooling parses one schema for both gates.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

try:
    from repro.analysis import Finding, render_human, render_json
except ImportError:  # running from a checkout without an installed package
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.analysis import Finding, render_human, render_json

TRACE_SCHEMA = "repro.telemetry.trace/1"

#: Required keys per Chrome event phase we emit.
CHROME_COMPLETE_KEYS = ("name", "ph", "ts", "dur", "pid", "tid")


class TraceValidationError(Exception):
    """The file does not match either telemetry export schema."""


def _fail(message: str) -> None:
    raise TraceValidationError(message)


def _check_number(value, label: str, minimum=None) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        _fail(f"{label} must be a number, got {type(value).__name__}")
    if minimum is not None and value < minimum:
        _fail(f"{label} must be >= {minimum}, got {value}")


def validate_chrome(document: dict) -> int:
    """Validate Chrome trace-event format; returns the span-event count."""
    events = document.get("traceEvents")
    if not isinstance(events, list):
        _fail("'traceEvents' must be a list")
    spans = 0
    for index, event in enumerate(events):
        label = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            _fail(f"{label} must be an object")
        phase = event.get("ph")
        if phase not in ("X", "M"):
            _fail(f"{label}: unexpected phase {phase!r} (emit only X and M)")
        if not isinstance(event.get("name"), str) or not event["name"]:
            _fail(f"{label}: 'name' must be a non-empty string")
        _check_number(event.get("pid"), f"{label}.pid", minimum=0)
        _check_number(event.get("tid"), f"{label}.tid", minimum=0)
        if phase == "M":
            continue
        for key in CHROME_COMPLETE_KEYS:
            if key not in event:
                _fail(f"{label}: complete event missing {key!r}")
        _check_number(event["ts"], f"{label}.ts", minimum=0)
        _check_number(event["dur"], f"{label}.dur", minimum=0)
        if "args" in event and not isinstance(event["args"], dict):
            _fail(f"{label}: 'args' must be an object")
        spans += 1
    if spans == 0:
        _fail("trace contains no span events")
    other = document.get("otherData", {})
    if not isinstance(other, dict) or other.get("schema") != TRACE_SCHEMA:
        _fail(f"otherData.schema must be {TRACE_SCHEMA!r}")
    return spans


def validate_native(document: dict) -> int:
    """Validate the library's own span schema; returns the span count."""
    if document.get("schema") != TRACE_SCHEMA:
        _fail(f"'schema' must be {TRACE_SCHEMA!r}, got {document.get('schema')!r}")
    spans = document.get("spans")
    if not isinstance(spans, list) or not spans:
        _fail("'spans' must be a non-empty list")
    ids = set()
    for index, record in enumerate(spans):
        label = f"spans[{index}]"
        if not isinstance(record, dict):
            _fail(f"{label} must be an object")
        for key in ("id", "name", "start", "end", "duration", "pid", "tid", "attrs"):
            if key not in record:
                _fail(f"{label}: missing {key!r}")
        if not isinstance(record["name"], str) or not record["name"]:
            _fail(f"{label}: 'name' must be a non-empty string")
        _check_number(record["id"], f"{label}.id", minimum=1)
        _check_number(record["start"], f"{label}.start")
        _check_number(record["end"], f"{label}.end")
        if record["end"] < record["start"]:
            _fail(f"{label}: end precedes start")
        if not isinstance(record["attrs"], dict):
            _fail(f"{label}: 'attrs' must be an object")
        ids.add(record["id"])
    for index, record in enumerate(spans):
        parent = record.get("parent")
        if parent is not None and parent not in ids:
            _fail(f"spans[{index}]: parent {parent} is not a recorded span id")
    return len(spans)


def validate_trace_file(path: str) -> str:
    """Validate ``path``; returns a human-readable summary line."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise TraceValidationError(f"cannot load {path}: {error}") from error
    if not isinstance(document, dict):
        _fail("top level must be a JSON object")
    if "traceEvents" in document:
        count = validate_chrome(document)
        return f"{path}: valid Chrome trace ({count} span events)"
    count = validate_native(document)
    return f"{path}: valid {TRACE_SCHEMA} trace ({count} spans)"


def finding_from_error(path: str, error: TraceValidationError) -> Finding:
    """Render a validation failure as a shared analysis finding."""
    return Finding(
        rule_id="TRACE100",
        path=path,
        module=Path(path).name,
        line=1,
        message=str(error),
        hint="regenerate the file with hdvb-bench performance --trace",
    )


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="check_trace",
        description="Validate a repro.telemetry trace export file.",
    )
    parser.add_argument("traces", nargs="+", metavar="TRACE.json")
    parser.add_argument("--format", choices=("human", "json"), default="human")
    options = parser.parse_args(argv)

    findings = []
    for path in options.traces:
        try:
            summary = validate_trace_file(path)
        except TraceValidationError as error:
            findings.append(finding_from_error(path, error))
        else:
            if options.format == "human":
                print(summary)
    render = render_json if options.format == "json" else render_human
    if findings or options.format == "json":
        print(render(findings, files_scanned=len(options.traces)))
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
