"""Counters, gauges and fixed-bucket histograms.

Complements :mod:`repro.telemetry.trace`: spans answer *where time went*,
metrics answer *how much work happened* — bits written, macroblocks
coded, motion-search points evaluated, concealment events.

All instruments live in a :class:`MetricsRegistry`.  The process-global
registry (:func:`registry`) is what the instrumented seams use; worker
processes (``parallel_encode`` chunks) build their own registry, ship a
:meth:`~MetricsRegistry.snapshot` back over the pool, and the parent
folds it in with :meth:`~MetricsRegistry.merge`::

    snap = remote_registry.snapshot()     # plain picklable dict
    registry().merge(snap)                # counters add, histograms add

Mutation is lock-protected, so instruments are safe to share between
threads; cross-process aggregation is explicit via snapshot/merge.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "registry",
    "reset_registry",
]

#: Schema identifier stamped into snapshots.
METRICS_SCHEMA = "repro.telemetry.metrics/1"

#: Default histogram bucket upper bounds (generic powers of four, useful
#: for byte/bit/point counts); callers pick their own for specific data.
DEFAULT_BUCKETS: Tuple[float, ...] = (1, 4, 16, 64, 256, 1024, 4096, 16384, 65536)

#: Bucket preset for latencies/deadline overshoot in seconds: sub-ms to
#: 30 s, roughly logarithmic, dense where frame deadlines live (tens of
#: milliseconds) so p99/p999 estimates stay tight.
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0,
)

#: Bucket preset for queue depths and other small occupancy counts.
DEPTH_BUCKETS: Tuple[float, ...] = (0, 1, 2, 4, 8, 16, 32, 64, 128, 256)

#: Bucket preset for orchestrator cell wall times in seconds: cache hits
#: land in the sub-100 ms buckets, real encodes spread over the seconds
#: to minutes range up to the default per-cell timeout.
CELL_BUCKETS: Tuple[float, ...] = (
    0.01, 0.05, 0.1, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 150.0, 600.0,
)


class Counter:
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease ({amount})")
        with self._lock:
            self.value += amount

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value}

    def merge(self, data: Dict[str, Any]) -> None:
        with self._lock:
            self.value += data["value"]


class Gauge:
    """A point-in-time value (last write wins, max remembered)."""

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Union[int, float] = 0
        self.max = 0
        self._lock = threading.Lock()

    def set(self, value: Union[int, float]) -> None:
        with self._lock:
            self.value = value
            if value > self.max:
                self.max = value

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value, "max": self.max}

    def merge(self, data: Dict[str, Any]) -> None:
        # Merging gauges from a worker: adopt the worker's last value and
        # keep the high-water mark across both processes.
        with self._lock:
            self.value = data["value"]
            self.max = max(self.max, data.get("max", data["value"]))


class Histogram:
    """Fixed-bucket histogram (upper-bound buckets plus overflow)."""

    kind = "histogram"

    def __init__(self, name: str,
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(f"histogram {name!r} needs sorted, non-empty buckets")
        self.name = name
        self.buckets: Tuple[float, ...] = tuple(buckets)
        self.counts: List[int] = [0] * (len(self.buckets) + 1)  # +overflow
        self.count = 0
        self.sum = 0.0
        self._lock = threading.Lock()

    def observe(self, value: Union[int, float]) -> None:
        index = len(self.buckets)
        for position, bound in enumerate(self.buckets):
            if value <= bound:
                index = position
                break
        with self._lock:
            self.counts[index] += 1
            self.count += 1
            self.sum += value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, quantile: float) -> float:
        """Estimate the ``quantile`` (0..1) from the bucket counts.

        Linear interpolation inside the bucket that contains the target
        rank; the first bucket interpolates up from 0 and the overflow
        bucket (values above every bound) reports the last finite bound —
        the tightest claim the fixed buckets can support.
        """
        if not 0.0 <= quantile <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {quantile}")
        with self._lock:
            counts = list(self.counts)
            total = self.count
        if not total:
            return 0.0
        target = quantile * total
        cumulative = 0
        for index, count in enumerate(counts):
            previous = cumulative
            cumulative += count
            if cumulative >= target and count:
                if index >= len(self.buckets):
                    return float(self.buckets[-1])
                low = float(self.buckets[index - 1]) if index else 0.0
                high = float(self.buckets[index])
                fraction = (target - previous) / count
                return low + (high - low) * min(1.0, max(0.0, fraction))
        return float(self.buckets[-1])

    @property
    def p50(self) -> float:
        return self.percentile(0.50)

    @property
    def p95(self) -> float:
        return self.percentile(0.95)

    @property
    def p99(self) -> float:
        return self.percentile(0.99)

    @property
    def p999(self) -> float:
        return self.percentile(0.999)

    def to_dict(self) -> Dict[str, Any]:
        # The percentile summary rides along in snapshots so persisted
        # records (repro.observe) can report tail latencies without
        # re-deriving them; merge() reads only buckets/counts/count/sum.
        return {
            "kind": self.kind,
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "p50": self.p50,
            "p99": self.p99,
            "p999": self.p999,
        }

    def merge(self, data: Dict[str, Any]) -> None:
        if list(data["buckets"]) != list(self.buckets):
            raise ValueError(
                f"histogram {self.name!r} bucket mismatch: "
                f"{data['buckets']} vs {list(self.buckets)}"
            )
        with self._lock:
            for index, count in enumerate(data["counts"]):
                self.counts[index] += count
            self.count += data["count"]
            self.sum += data["sum"]


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsSnapshot(dict):
    """A registry snapshot: a picklable dict with an explicit round-trip.

    Behaves exactly like the plain dict :meth:`MetricsRegistry.snapshot`
    has always returned (``{"schema": ..., "metrics": {...}}``) so
    existing merge/pickle call sites keep working, and adds the public
    :meth:`to_dict` / :meth:`from_dict` pair that persistence layers
    (:mod:`repro.observe`) use instead of reaching into instrument state.
    """

    def to_dict(self) -> Dict[str, Any]:
        """A deep plain-dict copy, safe to mutate or serialise."""
        return {
            "schema": self.get("schema", METRICS_SCHEMA),
            "metrics": {name: dict(data)
                        for name, data in self.get("metrics", {}).items()},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MetricsSnapshot":
        """Validate and adopt a previously serialised snapshot dict."""
        schema = data.get("schema")
        if schema != METRICS_SCHEMA:
            raise ValueError(
                f"not a metrics snapshot: schema {schema!r} "
                f"(expected {METRICS_SCHEMA!r})"
            )
        metrics = data.get("metrics")
        if not isinstance(metrics, dict):
            raise ValueError("metrics snapshot has no 'metrics' mapping")
        for name, entry in metrics.items():
            if not isinstance(entry, dict) or entry.get("kind") not in _KINDS:
                raise ValueError(
                    f"snapshot metric {name!r} has unknown kind "
                    f"{entry.get('kind') if isinstance(entry, dict) else entry!r}"
                )
        return cls({"schema": METRICS_SCHEMA,
                    "metrics": {name: dict(entry)
                                for name, entry in metrics.items()}})


class MetricsRegistry:
    """Named instruments with a picklable snapshot/merge API."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    # get-or-create accessors
    # ------------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get(name, Histogram, buckets)

    def _get(self, name: str, kind, *args):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = kind(name, *args)
                self._instruments[name] = instrument
            elif not isinstance(instrument, kind):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}, requested {kind.__name__}"
                )
            return instrument

    def get(self, name: str) -> Optional[Any]:
        with self._lock:
            return self._instruments.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._instruments)

    def __len__(self) -> int:
        with self._lock:
            return len(self._instruments)

    def clear(self) -> None:
        with self._lock:
            self._instruments.clear()

    # ------------------------------------------------------------------
    # snapshot / merge
    # ------------------------------------------------------------------

    def snapshot(self) -> "MetricsSnapshot":
        """A picklable :class:`MetricsSnapshot` of every instrument's state."""
        with self._lock:
            instruments = dict(self._instruments)
        return MetricsSnapshot({
            "schema": METRICS_SCHEMA,
            "metrics": {name: instrument.to_dict()
                        for name, instrument in instruments.items()},
        })

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MetricsRegistry":
        """Rebuild a registry from a snapshot dict (the round-trip twin
        of ``registry.snapshot().to_dict()``)."""
        built = cls()
        built.merge(MetricsSnapshot.from_dict(data))
        return built

    def merge(self, other: Union["MetricsRegistry", Dict[str, Any]]) -> None:
        """Fold ``other`` (a registry or a snapshot dict) into this one.

        Counters and histograms add; gauges adopt the incoming value and
        keep the joint high-water mark.  Unknown names are created.
        """
        if isinstance(other, MetricsRegistry):
            other = other.snapshot()
        metrics = other.get("metrics", {})
        for name, data in metrics.items():
            kind = _KINDS.get(data.get("kind"))
            if kind is None:
                raise ValueError(f"snapshot metric {name!r} has unknown kind "
                                 f"{data.get('kind')!r}")
            if kind is Histogram:
                instrument = self._get(name, Histogram, tuple(data["buckets"]))
            else:
                instrument = self._get(name, kind)
            instrument.merge(data)

    def value(self, name: str, default: Union[int, float] = 0) -> Union[int, float]:
        """Convenience: the scalar value of a counter/gauge (0 if absent)."""
        instrument = self.get(name)
        if instrument is None:
            return default
        return instrument.value


#: The process-global registry used by the instrumented seams.
_registry = MetricsRegistry()


def registry() -> MetricsRegistry:
    return _registry


def reset_registry() -> None:
    """Drop every instrument in the process-global registry."""
    _registry.clear()
