"""Stage profiling: turn raw spans into a "where did the time go" table.

This is the Figure-1-style attribution report: span records are grouped
by name into *stages*, each stage reporting call count, total (inclusive)
time, self (exclusive) time and its share of the traced wall time.  Self
time subtracts the time of a span's direct children, so nested stages
(``mpeg2.encode`` -> ``mpeg2.encode.picture`` -> ``me.search``) never
double-count in the self-time column.

    table = stage_table(current_trace())
    print(render_stage_table(table))

:func:`coverage` reports how much of a measured wall-clock interval the
root spans account for — the acceptance gate for the bench harness is
that the stage table explains >= 90% of encode wall time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.telemetry.trace import Trace

__all__ = [
    "StageRow",
    "coverage",
    "render_stage_table",
    "stage_table",
]


@dataclass(frozen=True)
class StageRow:
    """Aggregated timing for one span name."""

    name: str
    calls: int
    total_seconds: float    # inclusive (children included)
    self_seconds: float     # exclusive (direct children subtracted)
    share: float            # self_seconds / sum of root totals

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.calls if self.calls else 0.0


def stage_table(trace: Trace, prefix: str = "") -> List[StageRow]:
    """Aggregate ``trace`` into per-stage rows, heaviest self-time first.

    ``prefix`` restricts the table to span names starting with it (e.g.
    ``"mpeg2."`` for one codec's stages).
    """
    records = trace.spans()
    child_time: Dict[int, float] = {}
    for record in records:
        if record.parent_id is not None:
            child_time[record.parent_id] = (
                child_time.get(record.parent_id, 0.0) + record.duration
            )

    totals: Dict[str, List[float]] = {}
    root_total = 0.0
    for record in records:
        if record.parent_id is None:
            root_total += record.duration
        if prefix and not record.name.startswith(prefix):
            continue
        entry = totals.setdefault(record.name, [0, 0.0, 0.0])
        entry[0] += 1
        entry[1] += record.duration
        # Self time never goes below zero even if concurrent child
        # threads overlap the parent wall time.
        entry[2] += max(0.0, record.duration - child_time.get(record.span_id, 0.0))

    denominator = root_total if root_total > 0 else 1.0
    rows = [
        StageRow(
            name=name,
            calls=int(calls),
            total_seconds=total,
            self_seconds=self_seconds,
            share=self_seconds / denominator,
        )
        for name, (calls, total, self_seconds) in totals.items()
    ]
    rows.sort(key=lambda row: row.self_seconds, reverse=True)
    return rows


def coverage(trace: Trace, wall_seconds: float) -> float:
    """Fraction of ``wall_seconds`` accounted for by root spans.

    Root spans are those with no parent; their summed duration divided
    by the measured wall time tells you how much of the run the trace
    explains (1.0 = everything attributed).
    """
    if wall_seconds <= 0:
        return 0.0
    total = sum(record.duration for record in trace.spans()
                if record.parent_id is None)
    return total / wall_seconds


def render_stage_table(rows: List[StageRow], title: str = "Stage profile",
                       wall_seconds: Optional[float] = None) -> str:
    """Render the stage table as aligned text (Figure-1-style report)."""
    from repro.bench.report import render_table

    body = [
        (
            row.name,
            row.calls,
            f"{row.total_seconds * 1e3:.2f}",
            f"{row.self_seconds * 1e3:.2f}",
            f"{row.mean_seconds * 1e3:.3f}",
            f"{100.0 * row.share:.1f}%",
        )
        for row in rows
    ]
    text = render_table(
        ["stage", "calls", "total ms", "self ms", "mean ms", "share"],
        body,
        title=title,
    )
    if wall_seconds is not None:
        attributed = sum(row.self_seconds for row in rows)
        text += (f"\n(attributed {attributed * 1e3:.2f} ms of "
                 f"{wall_seconds * 1e3:.2f} ms wall, "
                 f"{100.0 * attributed / wall_seconds:.1f}%)"
                 if wall_seconds > 0 else "")
    return text
