"""Always-on flight recorder (``repro.telemetry.flightdump/1``).

A bounded in-memory ring buffer of the last N events plus the currently
open trace spans, keyed per correlation scope.  At steady state the cost
is O(ring): the rings ride the event stream (they receive every event
:func:`repro.telemetry.events.emit` records) so they are exactly as
enabled as the event log itself — no separate switch to forget.

When something dies — a ``SessionAborted``, a ``CrashInjected`` chaos
point, an unhandled supervisor escape, a failed observe gate — the
recorder dumps the relevant ring **atomically** (temp file + fsync +
``os.replace``, the HDVB190 invariant) into
``.hdvb-bench-history/flightrec/`` so the post-mortem is a file, not a
memory.  Dumps carry the trigger, the error's
:meth:`~repro.errors.ReproError.to_context_dict`, the ring events in
canonical (bit-reproducible) form, and the spans still open at the time
of death.
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque
from typing import Any, Deque, Dict, List, Optional

from repro.telemetry import trace as _trace
from repro.telemetry import events as _events

__all__ = [
    "DEFAULT_DUMP_DIR",
    "DEFAULT_RING_EVENTS",
    "FLIGHTDUMP_SCHEMA",
    "FlightRecorder",
    "arm",
    "disarm",
    "dump_flight",
    "recorder",
    "reset",
]

#: Schema identifier stamped on every dump file.
FLIGHTDUMP_SCHEMA = "repro.telemetry.flightdump/1"

#: Events retained per correlation scope (and in the global ring).
DEFAULT_RING_EVENTS = 256

#: Where dumps land unless the recorder is configured elsewhere; kept in
#: the same hidden directory as the observe history store.
DEFAULT_DUMP_DIR = os.path.join(".hdvb-bench-history", "flightrec")

#: Ring key for events emitted outside any correlation scope.
GLOBAL_RING = ""


def _scope_key(correlation: Dict[str, str]) -> str:
    """The ring key for a correlation dict: most specific id, else ''. """
    for key in ("session_id", "cell_id", "run_id"):
        value = correlation.get(key)
        if value is not None:
            return value
    for key in sorted(correlation):
        return correlation[key]
    return GLOBAL_RING


class FlightRecorder:
    """Per-correlation ring buffers plus open-span bookkeeping."""

    def __init__(self, ring_events: int = DEFAULT_RING_EVENTS,
                 dump_dir: Optional[str] = None) -> None:
        self.ring_events = ring_events
        self.dump_dir = dump_dir or DEFAULT_DUMP_DIR
        self._lock = threading.Lock()
        self._rings: Dict[str, Deque[_events.Event]] = {}
        self._open_spans: Dict[int, Dict[str, Any]] = {}
        self._dump_seq = 0
        #: paths written this process, in dump order (tests and the
        #: timeline CLI read this to find the latest post-mortem).
        self.dumps: List[str] = []

    def configure(self, *, dump_dir: Optional[str] = None,
                  ring_events: Optional[int] = None) -> None:
        if dump_dir is not None:
            self.dump_dir = dump_dir
        if ring_events is not None:
            self.ring_events = ring_events

    # ------------------------------------------------------------------
    # feeds (installed by arm())
    # ------------------------------------------------------------------

    def record(self, event: _events.Event) -> None:
        """Ring-buffer sink for every enabled-path event."""
        key = _scope_key(event.correlation)
        with self._lock:
            ring = self._rings.get(key)
            if ring is None:
                ring = deque(maxlen=self.ring_events)
                self._rings[key] = ring
            ring.append(event)
            if key != GLOBAL_RING:
                shared = self._rings.get(GLOBAL_RING)
                if shared is None:
                    shared = deque(maxlen=self.ring_events)
                    self._rings[GLOBAL_RING] = shared
                shared.append(event)

    def span_opened(self, span_id: int, name: str,
                    attrs: Dict[str, Any]) -> None:
        with self._lock:
            self._open_spans[span_id] = {
                "id": span_id,
                "name": name,
                "attrs": {key: _jsonable(value)
                          for key, value in sorted(attrs.items())},
                "correlation": _events.current_correlation(),
            }

    def span_closed(self, span_id: int) -> None:
        with self._lock:
            self._open_spans.pop(span_id, None)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    def ring(self, correlation_id: Optional[str] = None) -> List[_events.Event]:
        key = GLOBAL_RING if correlation_id is None else correlation_id
        with self._lock:
            ring = self._rings.get(key)
            return list(ring) if ring is not None else []

    def open_spans(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [dict(record) for _, record in
                    sorted(self._open_spans.items())]

    def clear(self) -> None:
        with self._lock:
            self._rings.clear()
            self._open_spans.clear()
            self._dump_seq = 0
            self.dumps = []

    # ------------------------------------------------------------------
    # dumps
    # ------------------------------------------------------------------

    def dump(self, trigger: str, *, correlation_id: Optional[str] = None,
             error: Optional[BaseException] = None,
             extra: Optional[Dict[str, Any]] = None,
             directory: Optional[str] = None) -> Optional[str]:
        """Atomically write the relevant ring to a post-mortem file.

        A no-op (returns ``None``) while the event log is disabled: with
        nothing feeding the rings there is nothing worth persisting, and
        the disabled path must stay free of filesystem traffic.
        """
        if not _events.state.enabled:
            return None
        if correlation_id is None:
            correlation_id = _events.correlation_id()
        events = self.ring(correlation_id)
        if correlation_id is not None and not events:
            events = self.ring(None)
        document = {
            "schema": FLIGHTDUMP_SCHEMA,
            "trigger": trigger,
            "correlation_id": correlation_id,
            "correlation": _events.current_correlation(),
            "error": _error_context(error),
            "extra": {key: _jsonable(value)
                      for key, value in sorted((extra or {}).items())},
            "events": [event.canonical_dict() for event in events],
            "open_spans": self.open_spans(),
        }
        with self._lock:
            self._dump_seq += 1
            seq = self._dump_seq
        target_dir = directory or self.dump_dir
        name = "{0}-{1}-{2:04d}.json".format(
            _safe(correlation_id or "global"), _safe(trigger), seq)
        path = os.path.join(target_dir, name)
        _atomic_write_json(path, document)
        with self._lock:
            self.dumps.append(path)
        return path


def _error_context(error: Optional[BaseException]) -> Optional[Dict[str, Any]]:
    if error is None:
        return None
    to_context = getattr(error, "to_context_dict", None)
    if callable(to_context):
        return {key: _jsonable(value)
                for key, value in to_context().items()}
    return {"error": type(error).__name__, "message": str(error)}


def _safe(text: str) -> str:
    return "".join(ch if ch.isalnum() or ch in "-_" else "-"
                   for ch in text) or "global"


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    return str(value)


def _atomic_write_json(path: str, document: Dict[str, Any]) -> None:
    """temp file + fsync + ``os.replace`` — a crash leaves old-or-new,
    never a torn dump (the HDVB190 invariant)."""
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    payload = json.dumps(document, sort_keys=True, indent=2,
                         default=str).encode("utf-8")
    temp_path = path + ".tmp"
    fd = os.open(temp_path, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        os.write(fd, payload)
        os.fsync(fd)
    finally:
        os.close(fd)
    os.replace(temp_path, path)


#: The process-global recorder.
recorder = FlightRecorder()


def dump_flight(trigger: str, **kwargs: Any) -> Optional[str]:
    """Module-level convenience over :meth:`FlightRecorder.dump`."""
    return recorder.dump(trigger, **kwargs)


def arm() -> None:
    """Install the ring sink and the open-span hook (events.enable)."""
    _events._ring_sink = recorder.record
    _trace.state.span_hook = recorder


def disarm() -> None:
    """Detach from the event and span streams (events.disable)."""
    _events._ring_sink = None
    _trace.state.span_hook = None


def reset() -> None:
    """Drop all rings, open spans and the dump ledger."""
    recorder.clear()
