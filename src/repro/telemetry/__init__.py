"""``repro.telemetry`` — tracing, metrics and profiling for the codec stack.

A zero-dependency observability subsystem, **off by default**:

* :mod:`repro.telemetry.trace` — nestable, thread/process-safe spans
  with JSON and Chrome ``chrome://tracing`` export;
* :mod:`repro.telemetry.metrics` — counters, gauges and fixed-bucket
  histograms in a process-global registry with snapshot/merge for
  multiprocess aggregation;
* :mod:`repro.telemetry.profile` — per-stage time tables (the
  Figure-1-style "where did the time go" report);
* :mod:`repro.telemetry.instrument` — the decorators/wrappers the codec
  seams use (encode/decode loops, kernel dispatch, motion search,
  parallel chunks).

Quickstart::

    import repro.telemetry as telemetry

    telemetry.enable()
    encoder = get_encoder("mpeg2", width=96, height=80)   # seams arm now
    encoder.encode_sequence(video)

    print(telemetry.render_stage_table(
        telemetry.stage_table(telemetry.current_trace())))
    bits = telemetry.registry().value("encode.mpeg2.bits")
    open("out.json", "w").write(telemetry.current_trace().to_chrome_json())

Front ends: ``hdvb-bench performance --trace out.json`` and
``hdvb-player FILE --stats``.  See ``docs/TELEMETRY.md``.
"""

from __future__ import annotations

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    registry,
    reset_registry,
)
from repro.telemetry.profile import (
    StageRow,
    coverage,
    render_stage_table,
    stage_table,
)
from repro.telemetry.trace import (
    NOOP_SPAN,
    Span,
    SpanRecord,
    Trace,
    current_trace,
    disable,
    enable,
    enabled,
    span,
    state,
)
from repro.telemetry.trace import reset as _reset_trace

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NOOP_SPAN",
    "Span",
    "SpanRecord",
    "StageRow",
    "Trace",
    "coverage",
    "current_trace",
    "disable",
    "enable",
    "enabled",
    "registry",
    "render_stage_table",
    "reset",
    "reset_registry",
    "span",
    "stage_table",
    "state",
]


def reset() -> None:
    """Clear buffered spans *and* the process-global metrics registry."""
    _reset_trace()
    reset_registry()
