"""Decorators and wrappers wiring telemetry into the hot seams.

The codec stack opts in at a handful of places it already owns:

* :func:`traced` — generic function decorator (span per call);
* :func:`traced_encode` / :func:`traced_picture` — applied automatically
  to every :class:`~repro.codecs.base.VideoEncoder` subclass via
  ``__init_subclass__``, giving each codec a sequence-level span, a
  per-picture span and the standard encode counters (pictures, bits,
  macroblocks) without the codecs changing a line;
* :class:`InstrumentedKernels` — per-kernel, per-backend call counters
  around a kernel backend (installed by
  :func:`repro.kernels.get_kernels` while telemetry is enabled);
* :func:`counting_cost` — wraps a motion-cost model so
  :func:`repro.me.search.run_search` can report search calls and points
  evaluated.

Every wrapper starts with ``if not state.enabled: return fn(...)`` — the
disabled path is one attribute check, so leaving the instrumentation in
place costs effectively nothing (gated by
``benchmarks/test_telemetry_overhead.py``).
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Optional

from repro.telemetry.metrics import registry
from repro.telemetry.trace import span, state

__all__ = [
    "InstrumentedKernels",
    "counting_cost",
    "traced",
    "traced_encode",
    "traced_picture",
]


def traced(name: Optional[str] = None, **static_attrs: Any) -> Callable:
    """Decorator: run the function inside a span when telemetry is on."""

    def decorate(fn: Callable) -> Callable:
        span_name = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not state.enabled:
                return fn(*args, **kwargs)
            with span(span_name, **static_attrs):
                return fn(*args, **kwargs)

        wrapper.__wrapped_by_telemetry__ = True
        return wrapper

    return decorate


# ---------------------------------------------------------------------------
# encoder seams (installed by VideoEncoder.__init_subclass__)
# ---------------------------------------------------------------------------

def traced_encode(fn: Callable) -> Callable:
    """Wrap a codec's ``encode_sequence`` with a span plus encode counters."""

    @functools.wraps(fn)
    def wrapper(self, video):
        if not state.enabled:
            return fn(self, video)
        config = self.config
        with span(
            f"{self.codec_name}.encode",
            codec=self.codec_name,
            backend=getattr(config, "backend", "?"),
            width=config.width,
            height=config.height,
            frames=len(video),
        ):
            stream = fn(self, video)
        reg = registry()
        reg.counter(f"encode.{self.codec_name}.pictures").inc(stream.frame_count)
        reg.counter(f"encode.{self.codec_name}.bits").inc(8 * stream.total_bytes)
        stats = self.stats
        reg.counter("encode.macroblocks.intra").inc(stats.intra_macroblocks)
        reg.counter("encode.macroblocks.inter").inc(stats.inter_macroblocks)
        reg.counter("encode.macroblocks.skipped").inc(stats.skipped_macroblocks)
        histogram = reg.histogram(
            "encode.picture_bytes",
            buckets=(64, 256, 1024, 4096, 16384, 65536, 262144, 1048576),
        )
        for picture in stream.pictures:
            histogram.observe(len(picture.payload))
        return stream

    wrapper.__wrapped_by_telemetry__ = True
    return wrapper


def traced_picture(fn: Callable) -> Callable:
    """Wrap a codec's per-picture encode method (``_encode_picture`` or
    ``_encode_frame``) with a per-picture span."""

    @functools.wraps(fn)
    def wrapper(self, entry, *args, **kwargs):
        if not state.enabled:
            return fn(self, entry, *args, **kwargs)
        frame_type = getattr(entry, "frame_type", None)
        display = getattr(entry, "display_index", None)
        attrs = {"codec": self.codec_name}
        if frame_type is not None:
            attrs["frame_type"] = frame_type.name
        if display is not None:
            attrs["display_index"] = display
        with span(f"{self.codec_name}.encode.picture", **attrs):
            return fn(self, entry, *args, **kwargs)

    wrapper.__wrapped_by_telemetry__ = True
    return wrapper


# ---------------------------------------------------------------------------
# kernel dispatch
# ---------------------------------------------------------------------------

class InstrumentedKernels:
    """Kernel backend proxy counting calls per kernel, per backend.

    Transparent: forwards every kernel bit-exactly, satisfies
    :func:`repro.kernels.api.implements_kernel_api`, and exposes the
    wrapped backend as ``inner``.
    """

    def __init__(self, inner: object, backend: str) -> None:
        from repro.kernels.api import KERNEL_NAMES

        self.inner = inner
        self.backend = backend
        self.name = f"instrumented({backend})"
        reg = registry()
        for kernel_name in KERNEL_NAMES:
            setattr(self, kernel_name,
                    self._wrap(kernel_name, reg, backend))

    def _wrap(self, kernel_name: str, reg, backend: str):
        inner_fn = getattr(self.inner, kernel_name)
        counter = reg.counter(f"kernels.{backend}.{kernel_name}.calls")

        @functools.wraps(inner_fn)
        def counted(*args, **kwargs):
            counter.inc()
            return inner_fn(*args, **kwargs)

        return counted

    def __getattr__(self, name: str):
        return getattr(self.inner, name)


# ---------------------------------------------------------------------------
# motion estimation
# ---------------------------------------------------------------------------

class _CountingCost:
    """Motion-cost proxy counting candidate evaluations."""

    __slots__ = ("_cost", "points")

    def __init__(self, cost: object) -> None:
        self._cost = cost
        self.points = 0

    def evaluate(self, mv):
        self.points += 1
        return self._cost.evaluate(mv)

    def __getattr__(self, name: str):
        return getattr(self._cost, name)


def counting_cost(cost: object) -> _CountingCost:
    """Wrap ``cost`` so each ``evaluate`` call is tallied in ``.points``."""
    return _CountingCost(cost)
