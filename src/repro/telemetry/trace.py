"""Nestable, thread- and process-safe tracing spans.

The paper's headline output is *attribution* — Figure 1 only exists
because time could be charged to codec stages.  This module provides the
raw material for that attribution: lightweight spans recording wall time,
nesting and user attributes into a per-session :class:`Trace` buffer.

Telemetry is **off by default**.  When disabled, :func:`span` returns a
shared no-op context manager without allocating anything, so the
instrumented seams cost one flag check::

    from repro.telemetry import enable, span

    enable()
    with span("mpeg2.encode", backend="simd") as sp:
        with span("mpeg2.encode.picture", frame_type="I"):
            ...
        sp.set(frames=9)

A span that exits through an exception still closes and records the
exception class under the ``error`` attribute (the exception propagates).

Each thread keeps its own span stack (parent links never cross threads);
each process keeps its own :class:`Trace` buffer.  Worker processes ship
their data back explicitly (see :meth:`Trace.snapshot` and
:meth:`repro.telemetry.metrics.MetricsRegistry.merge`).

Export formats:

* :meth:`Trace.to_dict` / :meth:`Trace.to_json` — the library's own
  schema (``{"schema": "repro.telemetry.trace/1", "spans": [...]}``);
* :meth:`Trace.to_chrome` — Chrome trace-event JSON, loadable in
  ``chrome://tracing`` / Perfetto (complete ``"ph": "X"`` events).
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, List, Optional

__all__ = [
    "NOOP_SPAN",
    "Span",
    "SpanRecord",
    "Trace",
    "TelemetryState",
    "current_trace",
    "disable",
    "enable",
    "enabled",
    "reset",
    "span",
    "state",
]

#: Schema identifier stamped into the library's own JSON export.
TRACE_SCHEMA = "repro.telemetry.trace/1"

#: Default cap on buffered span records; beyond it spans are counted but
#: dropped (the cap keeps long enabled runs from growing without bound).
DEFAULT_MAX_SPANS = 250_000


class SpanRecord:
    """One completed span, as stored in the trace buffer."""

    __slots__ = ("span_id", "parent_id", "name", "start", "end", "pid",
                 "tid", "attrs")

    def __init__(self, span_id: int, parent_id: Optional[int], name: str,
                 start: float, end: float, pid: int, tid: int,
                 attrs: Dict[str, Any]) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end = end
        self.pid = pid
        self.tid = tid
        self.attrs = attrs

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        return {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "pid": self.pid,
            "tid": self.tid,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SpanRecord({self.name!r}, {self.duration * 1e3:.3f} ms, "
                f"attrs={self.attrs})")


class Trace:
    """A per-session buffer of completed :class:`SpanRecord` objects."""

    def __init__(self, max_spans: int = DEFAULT_MAX_SPANS) -> None:
        self._lock = threading.Lock()
        self._records: List[SpanRecord] = []
        self._next_id = 1
        self.max_spans = max_spans
        self.dropped = 0
        #: wall-clock (``time.time``) and monotonic (``perf_counter``)
        #: origins, used to place spans on an absolute timeline.
        self.epoch = time.time()
        self.origin = time.perf_counter()

    def allocate_id(self) -> int:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            return span_id

    def record(self, record: SpanRecord) -> None:
        with self._lock:
            if len(self._records) >= self.max_spans:
                self.dropped += 1
                return
            self._records.append(record)

    def spans(self, name: Optional[str] = None) -> List[SpanRecord]:
        """Completed spans (optionally only those called ``name``)."""
        with self._lock:
            records = list(self._records)
        if name is None:
            return records
        return [record for record in records if record.name == name]

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self.dropped = 0

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """The library's own JSON-serialisable schema."""
        return {
            "schema": TRACE_SCHEMA,
            "epoch": self.epoch,
            "dropped": self.dropped,
            "spans": [record.to_dict() for record in self.spans()],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=str)

    def to_chrome(self, metadata: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """Chrome trace-event format (``chrome://tracing`` loadable).

        Spans become complete events (``"ph": "X"``); timestamps are
        microseconds relative to the trace origin.
        """
        events: List[Dict[str, Any]] = []
        names_seen = set()
        for record in self.spans():
            if record.pid not in names_seen:
                names_seen.add(record.pid)
                events.append({
                    "name": "process_name",
                    "ph": "M",
                    "pid": record.pid,
                    "tid": record.tid,
                    "args": {"name": f"repro pid {record.pid}"},
                })
            events.append({
                "name": record.name,
                "cat": record.name.split(".", 1)[0],
                "ph": "X",
                "ts": (record.start - self.origin) * 1e6,
                "dur": record.duration * 1e6,
                "pid": record.pid,
                "tid": record.tid,
                "args": {key: _jsonable(value)
                         for key, value in record.attrs.items()},
            })
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": dict(metadata or {}, schema=TRACE_SCHEMA,
                              epoch=self.epoch, dropped=self.dropped),
        }

    def to_chrome_json(self, indent: Optional[int] = None,
                       metadata: Optional[Dict[str, Any]] = None) -> str:
        return json.dumps(self.to_chrome(metadata), indent=indent, default=str)


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


class TelemetryState:
    """Process-global telemetry switch plus the active trace buffer."""

    def __init__(self) -> None:
        self.enabled = False
        self.trace = Trace()
        self._local = threading.local()
        #: Optional open-span observer (the flight recorder); ``None``
        #: unless the event log armed it, so plain tracing pays one
        #: attribute check per span, and disabled tracing pays nothing.
        self.span_hook: Optional[Any] = None

    def stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack


#: The process-global state.  Hot seams read ``state.enabled`` directly.
state = TelemetryState()


class _NoopSpan:
    """Shared do-nothing span returned while telemetry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class Span:
    """A live span; use via ``with span(...)``."""

    __slots__ = ("name", "attrs", "_state", "_span_id", "_parent_id", "_start")

    def __init__(self, name: str, attrs: Dict[str, Any],
                 telemetry_state: TelemetryState) -> None:
        self.name = name
        self.attrs = attrs
        self._state = telemetry_state

    def set(self, **attrs: Any) -> None:
        """Attach or update user attributes on the live span."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        trace = self._state.trace
        stack = self._state.stack()
        self._span_id = trace.allocate_id()
        self._parent_id = stack[-1] if stack else None
        stack.append(self._span_id)
        hook = self._state.span_hook
        if hook is not None:
            hook.span_opened(self._span_id, self.name, self.attrs)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = time.perf_counter()
        stack = self._state.stack()
        # Pop our own id even if an inner span leaked (defensive).
        while stack and stack.pop() != self._span_id:
            pass
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._state.trace.record(
            SpanRecord(
                span_id=self._span_id,
                parent_id=self._parent_id,
                name=self.name,
                start=self._start,
                end=end,
                pid=os.getpid(),
                tid=threading.get_ident(),
                attrs=self.attrs,
            )
        )
        hook = self._state.span_hook
        if hook is not None:
            hook.span_closed(self._span_id)
        return False


def span(name: str, **attrs: Any):
    """Open a span named ``name``; no-op when telemetry is disabled."""
    if not state.enabled:
        return NOOP_SPAN
    return Span(name, attrs, state)


def enable(max_spans: Optional[int] = None) -> None:
    """Turn telemetry on (spans, metrics and instrumented seams)."""
    if max_spans is not None:
        state.trace.max_spans = max_spans
    state.enabled = True


def disable() -> None:
    """Turn telemetry off; buffered data is kept until :func:`reset`."""
    state.enabled = False


def enabled() -> bool:
    return state.enabled


def current_trace() -> Trace:
    """The process-global trace buffer."""
    return state.trace


def reset() -> None:
    """Discard buffered spans and restart the trace timeline."""
    state.trace = Trace(max_spans=state.trace.max_spans)
