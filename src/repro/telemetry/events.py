"""Correlated structured event log (``repro.telemetry.event/1``).

Where :mod:`repro.telemetry.trace` answers *where did the time go*, this
module answers *what happened, in what order, to which session*.  Events
are discrete, schema-versioned records emitted at state transitions —
a session degrading a rung, a cell failing, a chunk falling back to the
serial path — and every event carries the **correlation ids** of the
scope it happened in::

    from repro.telemetry.events import correlation_scope, emit, enable

    enable()
    with correlation_scope(session_id="s0042"):
        emit("session.state", state="streaming")

Like tracing, the event log is **off by default**: :func:`emit` costs a
single flag check when disabled (no allocation, no contextvar read), so
instrumented seams stay inside the telemetry overhead gate.  When
enabled, events are buffered process-globally (thread-safe, bounded) and
mirrored into the :mod:`repro.telemetry.flightrec` ring buffers.

Determinism: the canonical export (:meth:`Event.canonical_dict`,
:meth:`EventLog.to_jsonl`) deliberately excludes wall-clock time, pid
and tid so a seeded run produces a **bit-identical** event log; virtual
time from the deterministic origin loop travels as an ordinary ``t``
field supplied by the emitter.

Event names come from the frozen :data:`EVENT_NAMES` registry (enforced
here at runtime and by lint rule HDVB210 statically); correlation scopes
nest and merge via a :mod:`contextvars` variable, so they propagate
through ``asyncio`` task creation and ``with`` blocks alike.
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "EVENT_NAMES",
    "EVENT_SCHEMA",
    "Event",
    "EventLog",
    "correlation_id",
    "correlation_scope",
    "current_correlation",
    "current_log",
    "disable",
    "emit",
    "enable",
    "enabled",
    "reset",
]

#: Schema identifier stamped on every exported event.
EVENT_SCHEMA = "repro.telemetry.event/1"

#: Default cap on buffered events; beyond it events are counted, dropped
#: from the log, but still fed to the flight-recorder rings.
DEFAULT_MAX_EVENTS = 200_000

#: The frozen event-name registry.  ``emit()`` rejects names outside it
#: and lint rule HDVB210 enforces the same set statically, so the
#: timeline vocabulary cannot drift per call site.
EVENT_NAMES: Tuple[str, ...] = (
    # origin session lifecycle
    "session.state",
    "session.epoch",
    "session.retry",
    "session.degrade",
    "session.abort",
    "session.chaos",
    "session.corrupt",
    "session.deadline_miss",
    # origin server / admission
    "origin.admit",
    "origin.reject",
    "origin.escape",
    # segment cache
    "cache.hit",
    "cache.wait",
    "cache.encode",
    # orchestrate cells
    "cell.start",
    "cell.done",
    "cell.fail",
    # parallel encode chunks
    "chunk.retry",
    "chunk.fallback",
    # chaos / gates / SLO plane
    "crash.injected",
    "gate.fail",
    "slo.breach",
    "flight.dump",
)

_EVENT_NAME_SET = frozenset(EVENT_NAMES)

#: Correlation-id keys ordered most-specific first; :func:`correlation_id`
#: picks the first one present in the active scope.
_ID_PRECEDENCE = ("session_id", "cell_id", "run_id")


class Event:
    """One emitted event, as stored in the process-global buffer."""

    __slots__ = ("seq", "name", "wall", "pid", "tid", "correlation",
                 "fields")

    def __init__(self, seq: int, name: str, wall: float, pid: int,
                 tid: int, correlation: Dict[str, str],
                 fields: Dict[str, Any]) -> None:
        self.seq = seq
        self.name = name
        self.wall = wall
        self.pid = pid
        self.tid = tid
        self.correlation = correlation
        self.fields = fields

    def to_dict(self) -> Dict[str, Any]:
        """Full record, including the non-reproducible wall/pid/tid."""
        data = self.canonical_dict()
        data["wall"] = self.wall
        data["pid"] = self.pid
        data["tid"] = self.tid
        return data

    def canonical_dict(self) -> Dict[str, Any]:
        """The deterministic export: no wall clock, pid or tid, fields in
        sorted key order — bit-identical across seeded runs."""
        return {
            "schema": EVENT_SCHEMA,
            "seq": self.seq,
            "name": self.name,
            "correlation": {key: self.correlation[key]
                            for key in sorted(self.correlation)},
            "fields": {key: _jsonable(self.fields[key])
                       for key in sorted(self.fields)},
        }

    def canonical_json(self) -> str:
        return json.dumps(self.canonical_dict(), sort_keys=True,
                          separators=(",", ":"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Event({self.seq}, {self.name!r}, "
                f"correlation={self.correlation}, fields={self.fields})")


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    return str(value)


class EventLog:
    """Bounded, thread-safe buffer of :class:`Event` records."""

    def __init__(self, max_events: int = DEFAULT_MAX_EVENTS) -> None:
        self._lock = threading.Lock()
        self._records: List[Event] = []
        self._next_seq = 1
        self.max_events = max_events
        self.dropped = 0

    def allocate_seq(self) -> int:
        with self._lock:
            seq = self._next_seq
            self._next_seq += 1
            return seq

    def record(self, event: Event) -> None:
        with self._lock:
            if len(self._records) >= self.max_events:
                self.dropped += 1
                return
            self._records.append(event)

    def events(self, name: Optional[str] = None) -> List[Event]:
        with self._lock:
            records = list(self._records)
        if name is None:
            return records
        return [event for event in records if event.name == name]

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self._next_seq = 1
            self.dropped = 0

    def to_jsonl(self, canonical: bool = True) -> str:
        """One canonical JSON document per line (the reproducible export)."""
        if canonical:
            lines = [event.canonical_json() for event in self.events()]
        else:
            lines = [json.dumps(event.to_dict(), sort_keys=True,
                                separators=(",", ":"), default=str)
                     for event in self.events()]
        return "".join(line + "\n" for line in lines)


class EventState:
    """Process-global switch plus the active event buffer."""

    def __init__(self) -> None:
        self.enabled = False
        self.log = EventLog()


#: The process-global state.  Hot seams read ``state.enabled`` directly.
state = EventState()

#: Sink wired by :mod:`repro.telemetry.flightrec` at import; receives
#: every enabled-path event so the ring buffers stay current.
_ring_sink: Optional[Callable[[Event], None]] = None

#: Active correlation ids, as an immutable sorted tuple of pairs so
#: nested scopes copy cheaply and compare deterministically.
_scope_var: ContextVar[Tuple[Tuple[str, str], ...]] = ContextVar(
    "hdvb_correlation", default=())


@contextmanager
def correlation_scope(**ids: Any) -> Iterator[Dict[str, str]]:
    """Bind correlation ids for the dynamic extent of the ``with`` block.

    Scopes nest and merge — an inner ``correlation_scope(cell_id=...)``
    inherits the outer ``run_id`` and overrides any clashing key.  The
    binding lives in a :class:`~contextvars.ContextVar`, so tasks created
    inside the scope inherit it (``asyncio`` copies the context at
    ``create_task`` time).
    """
    merged = dict(_scope_var.get())
    for key, value in ids.items():
        if value is None:
            continue
        merged[key] = str(value)
    token = _scope_var.set(tuple(sorted(merged.items())))
    try:
        yield merged
    finally:
        _scope_var.reset(token)


def current_correlation() -> Dict[str, str]:
    """The active correlation ids (empty outside any scope)."""
    return dict(_scope_var.get())


def correlation_id() -> Optional[str]:
    """The most specific active id (session > cell > run), else any."""
    scope = _scope_var.get()
    if not scope:
        return None
    ids = dict(scope)
    for key in _ID_PRECEDENCE:
        value = ids.get(key)
        if value is not None:
            return value
    return scope[0][1]


def emit(name: str, **fields: Any) -> Optional[Event]:
    """Record event ``name``; a single flag check when disabled."""
    if not state.enabled:
        return None
    return _emit(name, fields)


def _emit(name: str, fields: Dict[str, Any]) -> Event:
    if name not in _EVENT_NAME_SET:
        # Lazy import: telemetry stays dependency-free on the fast path
        # and repro.errors itself lazily reads the correlation scope.
        from repro.errors import ConfigError
        raise ConfigError(
            f"unregistered event name {name!r}; add it to "
            f"repro.telemetry.events.EVENT_NAMES (HDVB210)")
    import os
    import time
    log = state.log
    event = Event(
        seq=log.allocate_seq(),
        name=name,
        wall=time.time(),
        pid=os.getpid(),
        tid=threading.get_ident(),
        correlation=current_correlation(),
        fields=fields,
    )
    log.record(event)
    sink = _ring_sink
    if sink is not None:
        sink(event)
    return event


def enable(max_events: Optional[int] = None) -> None:
    """Turn the event log on (and arm the flight-recorder rings)."""
    if max_events is not None:
        state.log.max_events = max_events
    # Importing flightrec installs the ring sink and the span hook; the
    # import is deferred so the disabled path never pays for it.
    from repro.telemetry import flightrec
    flightrec.arm()
    state.enabled = True


def disable() -> None:
    """Turn the event log off; buffered events kept until :func:`reset`."""
    state.enabled = False
    from repro.telemetry import flightrec
    flightrec.disarm()


def enabled() -> bool:
    return state.enabled


def current_log() -> EventLog:
    """The process-global event buffer."""
    return state.log


def reset() -> None:
    """Discard buffered events, restart seq, and clear the flight rings."""
    state.log = EventLog(max_events=state.log.max_events)
    from repro.telemetry import flightrec
    flightrec.reset()
