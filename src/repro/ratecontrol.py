"""One-pass constant-bitrate rate control (extension).

The paper deliberately fixes one-pass constant-QP coding because it
benchmarks "the video Codecs, not the rate control algorithms" (Section
IV).  Downstream users of a codec library do need rate control, so this
module adds the simplest classical scheme on top of the constant-QP
encoders: a virtual-buffer controller that re-tunes the quantiser between
GOP-sized segments to track a target bitrate.

    stream, trace = cbr_encode("mpeg4", video, target_kbps=300,
                               width=video.width, height=video.height)

The output stream is a normal closed-GOP stream (each segment starts with
an I frame, like the GOP-parallel encoder's output) and decodes with the
ordinary decoders.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.codecs import get_encoder
from repro.codecs.base import EncodedPicture, EncodedVideo
from repro.common.yuv import YuvSequence
from repro.errors import ConfigError
from repro.parallel import split_chunks
from repro.transform.qp import (
    MPEG_QSCALE_MAX,
    MPEG_QSCALE_MIN,
    h264_qp_from_mpeg,
)


@dataclass(frozen=True)
class RateControlStep:
    """One controller decision: the segment it applied to and the result."""

    start_frame: int
    stop_frame: int
    qscale: int
    bits_spent: int
    bits_budget: int

    @property
    def fullness(self) -> float:
        """Virtual buffer error of this segment (spent / budget)."""
        if self.bits_budget <= 0:
            return 1.0
        return self.bits_spent / self.bits_budget


def _quantiser_fields(codec: str, qscale: int) -> dict:
    """Map the controller's MPEG-scale quantiser onto a codec config."""
    if codec == "h264":
        return {"qp": h264_qp_from_mpeg(qscale)}
    if codec == "mjpeg":
        # Coarser quantiser scale -> lower JPEG quality; a simple inverse
        # mapping spanning the useful range.
        quality = max(5, min(98, 100 - 3 * qscale))
        return {"quality": quality}
    return {"qscale": qscale}


def _next_qscale(qscale: int, fullness: float) -> int:
    """Proportional controller step on the virtual buffer error."""
    if fullness > 1.15:
        step = 2 if fullness > 1.6 else 1
        qscale += step
    elif fullness < 0.85:
        step = 2 if fullness < 0.6 else 1
        qscale -= step
    return max(MPEG_QSCALE_MIN, min(MPEG_QSCALE_MAX, qscale))


def cbr_encode(
    codec: str,
    video: YuvSequence,
    target_kbps: float,
    segment_frames: int = 6,
    initial_qscale: int = 5,
    **config_fields,
) -> Tuple[EncodedVideo, List[RateControlStep]]:
    """Encode ``video`` tracking ``target_kbps``; returns (stream, trace).

    ``segment_frames`` is the controller granularity (two I-P-B-B GOPs by
    default).  ``config_fields`` are the usual encoder fields minus the
    quantiser, which the controller owns.
    """
    if target_kbps <= 0:
        raise ConfigError(f"target_kbps must be positive, got {target_kbps}")
    if segment_frames < 1:
        raise ConfigError(f"segment_frames must be >= 1, got {segment_frames}")
    for owned in ("qscale", "qp", "quality"):
        if owned in config_fields:
            raise ConfigError(f"{owned!r} is owned by the rate controller")

    segments = split_chunks(
        len(video), max(1, len(video) // segment_frames), min_chunk=min(3, len(video))
    )
    bits_per_frame = target_kbps * 1000.0 / video.fps

    merged = None
    trace: List[RateControlStep] = []
    qscale = initial_qscale
    for start, stop in segments:
        fields = dict(config_fields)
        fields.update(_quantiser_fields(codec, qscale))
        encoder = get_encoder(codec, **fields)
        segment = encoder.encode_sequence(
            YuvSequence(video.frames[start:stop], fps=video.fps)
        )
        if merged is None:
            merged = EncodedVideo(
                codec=segment.codec,
                width=segment.width,
                height=segment.height,
                fps=video.fps,
            )
        for picture in segment.pictures:
            merged.pictures.append(
                EncodedPicture(picture.payload, picture.display_index + start,
                               picture.frame_type)
            )
        budget = int(bits_per_frame * (stop - start))
        step = RateControlStep(
            start_frame=start,
            stop_frame=stop,
            qscale=qscale,
            bits_spent=8 * segment.total_bytes,
            bits_budget=budget,
        )
        trace.append(step)
        qscale = _next_qscale(qscale, step.fullness)
    return merged, trace
