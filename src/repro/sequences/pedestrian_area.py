"""pedestrian_area: people passing close to a low static camera.

Table III: "Shot of a pedestrian area.  Low camera position, people pass by
very close to the camera.  High depth of field.  Static camera."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.sequences.base import SequenceGenerator
from repro.sequences.textures import ellipse_mask, fractal_noise, value_noise


@dataclass
class _Pedestrian:
    """One walker: large soft ellipse with its own texture and colour."""

    start_x: float
    center_y: float
    radius_x: float
    radius_y: float
    speed: float          # pixels per frame; sign = direction
    luma: float
    chroma_u: float
    chroma_v: float
    texture_cell: float


class PedestrianArea(SequenceGenerator):
    name = "pedestrian_area"
    description = (
        "Shot of a pedestrian area. Low camera position, people pass by very "
        "close to the camera. High depth of field. Static camera."
    )
    seed = 2007_02

    WALKER_COUNT = 6

    def _setup(self, width: int, height: int, rng: np.random.Generator) -> None:
        self._width = width
        self._height = height
        # Static background: pavement low half, facades upper half.
        pavement = 80.0 + 50.0 * fractal_noise(height, width, width / 16, rng, octaves=4)
        facade = 110.0 + 60.0 * value_noise(height, width, width / 10, rng)
        ys = np.linspace(0.0, 1.0, height)[:, None]
        blend = np.clip((ys - 0.45) * 8.0, 0.0, 1.0)
        self._bg_y = facade * (1.0 - blend) + pavement * blend
        self._bg_u = 126.0 + 6.0 * value_noise(height, width, width / 8, rng)
        self._bg_v = 128.0 + 6.0 * value_noise(height, width, width / 8, rng)

        # Big, close walkers: radii are large fractions of the frame.
        self._walkers: List[_Pedestrian] = []
        for _ in range(self.WALKER_COUNT):
            direction = 1.0 if rng.random() < 0.5 else -1.0
            self._walkers.append(
                _Pedestrian(
                    start_x=rng.uniform(0, width),
                    center_y=rng.uniform(0.55, 0.8) * height,
                    radius_x=rng.uniform(0.06, 0.12) * width,
                    radius_y=rng.uniform(0.25, 0.4) * height,
                    speed=direction * rng.uniform(0.004, 0.012) * width,
                    luma=rng.uniform(40.0, 200.0),
                    chroma_u=rng.uniform(110.0, 145.0),
                    chroma_v=rng.uniform(110.0, 145.0),
                    texture_cell=max(2.0, width / rng.uniform(30, 80)),
                )
            )
        self._walker_textures = [
            30.0 * (fractal_noise(height, width, walker.texture_cell, rng, octaves=3) - 0.5)
            for walker in self._walkers
        ]

    def _render_frame(self, index: int, rng: np.random.Generator):
        width, height = self._width, self._height
        y = self._bg_y.copy()
        u = self._bg_u.copy()
        v = self._bg_v.copy()
        span = width * 1.4
        for walker, texture in zip(self._walkers, self._walker_textures):
            x = (walker.start_x + walker.speed * index) % span - 0.2 * width
            mask = ellipse_mask(height, width, walker.center_y, x,
                                walker.radius_y, walker.radius_x)
            y = y * (1.0 - mask) + mask * (walker.luma + texture)
            u = u * (1.0 - mask) + mask * walker.chroma_u
            v = v * (1.0 - mask) + mask * walker.chroma_v
        return y, u, v
