"""blue_sky: treetops against a blue sky, rotating camera.

Table III: "Top of two trees against blue sky.  High contrast, small color
differences in the sky.  Many details.  Camera rotation."
"""

from __future__ import annotations

import numpy as np

from repro.sequences.base import SequenceGenerator
from repro.sequences.textures import fractal_noise, rotate_crop, value_noise


class BlueSky(SequenceGenerator):
    name = "blue_sky"
    description = (
        "Top of two trees against blue sky. High contrast, small color "
        "differences in the sky. Many details. Camera rotation."
    )
    seed = 2007_01

    #: degrees of camera rotation per frame (25 fps -> ~7.5 deg/s).
    ROTATION_RATE = 0.3

    def _setup(self, width: int, height: int, rng: np.random.Generator) -> None:
        self._width = width
        self._height = height
        # World larger than the frame so rotation never runs off the edge.
        margin = int(0.3 * max(width, height)) + 8
        wh, ww = height + 2 * margin, width + 2 * margin

        ys = np.linspace(0.0, 1.0, wh)[:, None]
        sky_y = 180.0 - 40.0 * ys + 6.0 * value_noise(wh, ww, ww / 6, rng)
        sky_u = 150.0 + 4.0 * value_noise(wh, ww, ww / 8, rng)
        sky_v = 110.0 - 3.0 * value_noise(wh, ww, ww / 8, rng)

        # Two tree crowns: dense high-frequency foliage, high contrast.
        foliage = fractal_noise(wh, ww, ww / 24, rng, octaves=5)
        cx1, cx2 = 0.3 * ww, 0.75 * ww
        cy = 0.85 * wh
        gy, gx = np.mgrid[0:wh, 0:ww].astype(np.float64)
        crown1 = ((gx - cx1) / (0.28 * ww)) ** 2 + ((gy - cy) / (0.5 * wh)) ** 2
        crown2 = ((gx - cx2) / (0.22 * ww)) ** 2 + ((gy - cy) / (0.42 * wh)) ** 2
        edge = 0.12 * (foliage - 0.5)
        tree_mask = ((crown1 + edge) < 1.0) | ((crown2 + edge) < 1.0)

        tree_y = 30.0 + 120.0 * foliage
        tree_u = 118.0 - 8.0 * foliage
        tree_v = 122.0 + 8.0 * foliage

        self._world_y = np.where(tree_mask, tree_y, sky_y)
        self._world_u = np.where(tree_mask, tree_u, sky_u)
        self._world_v = np.where(tree_mask, tree_v, sky_v)

    def _render_frame(self, index: int, rng: np.random.Generator):
        angle = self.ROTATION_RATE * index
        y = rotate_crop(self._world_y, angle, self._height, self._width)
        u = rotate_crop(self._world_u, angle, self._height, self._width)
        v = rotate_crop(self._world_v, angle, self._height, self._width)
        return y, u, v
