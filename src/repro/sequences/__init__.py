"""The HD-VideoBench input sequences (Table III) as procedural generators.

The paper's clips are TU-München camera footage (Sony HDW-F900, 1920x1080,
25 fps, progressive, 4:2:0); they are not redistributable, so each clip is
rebuilt synthetically with the published motion/detail character — see the
substitution table in DESIGN.md.

Usage::

    from repro.sequences import generate_sequence
    video = generate_sequence("riverbed", "720p25", frames=9, scale=(1, 8))
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Tuple, Union

from repro.common.resolution import FRAME_RATE, Resolution, scaled_tier, tier_by_name
from repro.common.yuv import YuvSequence
from repro.errors import SequenceError
from repro.sequences.base import SequenceGenerator
from repro.sequences.blue_sky import BlueSky
from repro.sequences.pedestrian_area import PedestrianArea
from repro.sequences.riverbed import Riverbed
from repro.sequences.rush_hour import RushHour

_GENERATORS: Dict[str, SequenceGenerator] = {
    generator.name: generator
    for generator in (BlueSky(), PedestrianArea(), Riverbed(), RushHour())
}

#: Sequence names in Table III order.
SEQUENCE_NAMES: Tuple[str, ...] = (
    "blue_sky",
    "pedestrian_area",
    "riverbed",
    "rush_hour",
)

ScaleLike = Union[Fraction, Tuple[int, int]]


def get_generator(name: str) -> SequenceGenerator:
    """Look up a sequence generator by Table III name."""
    try:
        return _GENERATORS[name]
    except KeyError:
        known = ", ".join(SEQUENCE_NAMES)
        raise SequenceError(f"unknown sequence {name!r} (known: {known})") from None


def generate_sequence(
    name: str,
    resolution: Union[str, Resolution] = "576p25",
    frames: int = 9,
    fps: int = FRAME_RATE,
    scale: ScaleLike = Fraction(1, 1),
) -> YuvSequence:
    """Generate a named sequence.

    ``resolution`` is a paper tier name ("576p25", "720p25", "1088p25") or
    a :class:`Resolution`; ``scale`` optionally downscales a named tier for
    benchmark-sized runs (e.g. ``scale=(1, 8)``).
    """
    if isinstance(scale, tuple):
        scale = Fraction(*scale)
    if isinstance(resolution, str):
        resolution = tier_by_name(resolution, scale)
    elif scale != 1:
        resolution = scaled_tier(resolution, scale)
    return get_generator(name).generate(resolution, frames, fps=fps)


__all__ = [
    "SEQUENCE_NAMES",
    "SequenceGenerator",
    "generate_sequence",
    "get_generator",
]
