"""Base class and shared helpers for the four HD-VideoBench sequences."""

from __future__ import annotations

import abc
from typing import List

import numpy as np

from repro.common.resolution import FRAME_RATE, Resolution
from repro.common.yuv import YuvFrame, YuvSequence
from repro.errors import SequenceError
from repro.sequences.textures import downsample2


class SequenceGenerator(abc.ABC):
    """One synthetic HD-VideoBench clip.

    Subclasses implement :meth:`_render_frame` returning full-resolution
    float Y/U/V fields; this base class handles 4:2:0 subsampling,
    quantisation to 8 bits and sequence assembly.  Motion is parameterised
    relative to frame width so that scaled benchmark tiers move
    proportionally, like downscaling real footage would.
    """

    #: registry name, e.g. ``"blue_sky"``.
    name = ""
    #: Table III description.
    description = ""
    #: deterministic seed; fixed per sequence.
    seed = 0

    def generate(self, resolution: Resolution, frames: int,
                 fps: int = FRAME_RATE) -> YuvSequence:
        """Render ``frames`` frames at ``resolution``."""
        if frames <= 0:
            raise SequenceError(f"frame count must be positive, got {frames}")
        rng = np.random.default_rng(self.seed)
        self._setup(resolution.width, resolution.height, rng)
        rendered: List[YuvFrame] = []
        for index in range(frames):
            y, u, v = self._render_frame(index, rng)
            rendered.append(
                YuvFrame.from_float(y, downsample2(u), downsample2(v))
            )
        return YuvSequence(rendered, fps=fps, name=f"{self.name}_{resolution.name}")

    @abc.abstractmethod
    def _setup(self, width: int, height: int, rng: np.random.Generator) -> None:
        """Build the static world for this resolution."""

    @abc.abstractmethod
    def _render_frame(self, index: int, rng: np.random.Generator):
        """Return full-resolution float (y, u, v) fields for frame ``index``."""
