"""rush_hour: Munich rush-hour traffic, many cars moving slowly.

Table III: "Rush-hour in Munich city.  Many cars moving slowly, high depth
of focus.  Fixed camera."  Coherent slow translation is the easiest content
for motion compensation, which is why this clip needs the lowest bitrate in
Table V — the generator reproduces exactly that structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.sequences.base import SequenceGenerator
from repro.sequences.textures import fractal_noise, value_noise


@dataclass
class _Car:
    start_x: float
    lane_y: float
    length: float
    height: float
    speed: float
    luma: float
    chroma_u: float
    chroma_v: float


class RushHour(SequenceGenerator):
    name = "rush_hour"
    description = (
        "Rush-hour in Munich city. Many cars moving slowly, high depth of "
        "focus. Fixed camera."
    )
    seed = 2007_04

    CAR_COUNT = 14
    LANES = 4

    def _setup(self, width: int, height: int, rng: np.random.Generator) -> None:
        self._width = width
        self._height = height
        # Street scene: smooth asphalt with lane markings, buildings above.
        asphalt = 90.0 + 15.0 * value_noise(height, width, width / 10, rng)
        buildings = 120.0 + 45.0 * fractal_noise(height, width, width / 12, rng, octaves=3)
        ys = np.linspace(0.0, 1.0, height)[:, None]
        road_blend = np.clip((ys - 0.35) * 6.0, 0.0, 1.0)
        base = buildings * (1.0 - road_blend) + asphalt * road_blend
        # Lane markings: thin bright horizontal dashes.
        marks = np.zeros((height, width))
        for lane in range(1, self.LANES):
            row = int((0.4 + 0.55 * lane / self.LANES) * height)
            marks[row : row + max(1, height // 180), :: max(8, width // 24)] = 60.0
        self._bg_y = base + marks
        self._bg_u = 127.0 + 3.0 * value_noise(height, width, width / 8, rng)
        self._bg_v = 128.0 + 3.0 * value_noise(height, width, width / 8, rng)

        self._cars: List[_Car] = []
        for i in range(self.CAR_COUNT):
            lane = i % self.LANES
            direction = 1.0 if lane % 2 == 0 else -1.0
            self._cars.append(
                _Car(
                    start_x=rng.uniform(0, width),
                    lane_y=(0.42 + 0.52 * (lane + 0.5) / self.LANES) * height,
                    length=rng.uniform(0.05, 0.09) * width,
                    height=rng.uniform(0.035, 0.06) * height,
                    speed=direction * rng.uniform(0.0015, 0.005) * width,
                    luma=rng.uniform(40.0, 220.0),
                    chroma_u=rng.uniform(105.0, 150.0),
                    chroma_v=rng.uniform(105.0, 150.0),
                )
            )

    def _render_frame(self, index: int, rng: np.random.Generator):
        width, height = self._width, self._height
        y = self._bg_y.copy()
        u = self._bg_u.copy()
        v = self._bg_v.copy()
        span = width * 1.2
        for car in self._cars:
            x = (car.start_x + car.speed * index) % span - 0.1 * width
            x0 = int(round(x))
            x1 = int(round(x + car.length))
            y0 = int(round(car.lane_y - car.height / 2))
            y1 = int(round(car.lane_y + car.height / 2))
            x0c, x1c = max(0, x0), min(width, x1)
            y0c, y1c = max(0, y0), min(height, y1)
            if x0c >= x1c or y0c >= y1c:
                continue
            y[y0c:y1c, x0c:x1c] = car.luma
            u[y0c:y1c, x0c:x1c] = car.chroma_u
            v[y0c:y1c, x0c:x1c] = car.chroma_v
            # Windshield detail so cars are not flat blocks.
            wx0 = x0c + (x1c - x0c) // 4
            wx1 = x0c + (x1c - x0c) // 2
            wy1 = y0c + max(1, (y1c - y0c) // 3)
            y[y0c:wy1, wx0:wx1] = car.luma * 0.5
        return y, u, v
