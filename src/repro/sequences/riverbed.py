"""riverbed: a riverbed seen through moving water — very hard to code.

Table III: "Riverbed seen through the water.  Very hard to code."  The
difficulty comes from spatio-temporally decorrelated refraction: motion
compensation finds no coherent displacement, so residuals stay large.  The
generator reproduces that with time-varying warps of a detailed bed texture
plus per-frame shimmer noise.
"""

from __future__ import annotations

import numpy as np

from repro.sequences.base import SequenceGenerator
from repro.sequences.textures import fractal_noise, value_noise, warp


class Riverbed(SequenceGenerator):
    name = "riverbed"
    description = "Riverbed seen through the water. Very hard to code."
    seed = 2007_03

    def _setup(self, width: int, height: int, rng: np.random.Generator) -> None:
        self._width = width
        self._height = height
        # Detailed static bed: pebbles at several scales.
        self._bed_y = 60.0 + 130.0 * fractal_noise(height, width, width / 28, rng, octaves=5)
        self._bed_u = 124.0 + 10.0 * value_noise(height, width, width / 14, rng)
        self._bed_v = 124.0 + 10.0 * value_noise(height, width, width / 14, rng)
        # Smooth random phase fields driving the refraction warp.
        self._phase_a = 2.0 * np.pi * value_noise(height, width, width / 6, rng)
        self._phase_b = 2.0 * np.pi * value_noise(height, width, width / 6, rng)
        self._amplitude = 0.012 * width

    def _render_frame(self, index: int, rng: np.random.Generator):
        t = 2.0 * np.pi * index / 9.0  # fast water oscillation
        shift_y = self._amplitude * np.sin(self._phase_a + t)
        shift_x = self._amplitude * np.cos(self._phase_b + 1.7 * t)
        y = warp(self._bed_y, shift_y, shift_x)
        u = warp(self._bed_u, shift_y, shift_x)
        v = warp(self._bed_v, shift_y, shift_x)
        # Per-frame shimmer: temporally independent highlights.
        shimmer = rng.random(y.shape)
        y = y + 40.0 * (shimmer - 0.5) * (shimmer > 0.45)
        return y, u, v
