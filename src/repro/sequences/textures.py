"""Procedural texture utilities for the synthetic input sequences.

The HD-VideoBench clips are proprietary camera footage; the generators in
this package rebuild their *coding-relevant* characteristics (motion
coherence, spatial detail, temporal noise) from value-noise primitives.
Everything is seeded and deterministic.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage


def smoothstep(t: np.ndarray) -> np.ndarray:
    """Cubic smoothstep 3t^2 - 2t^3, the classic noise fade curve."""
    return t * t * (3.0 - 2.0 * t)


def value_noise(height: int, width: int, cell: float,
                rng: np.random.Generator) -> np.ndarray:
    """Bilinear value noise in [0, 1] with feature size ``cell`` pixels."""
    if cell < 1:
        cell = 1.0
    grid_h = int(height / cell) + 3
    grid_w = int(width / cell) + 3
    grid = rng.random((grid_h, grid_w))
    ys = np.arange(height) / cell
    xs = np.arange(width) / cell
    y0 = ys.astype(int)
    x0 = xs.astype(int)
    fy = smoothstep((ys - y0))[:, None]
    fx = smoothstep((xs - x0))[None, :]
    top = grid[np.ix_(y0, x0)] * (1 - fx) + grid[np.ix_(y0, x0 + 1)] * fx
    bottom = grid[np.ix_(y0 + 1, x0)] * (1 - fx) + grid[np.ix_(y0 + 1, x0 + 1)] * fx
    return top * (1 - fy) + bottom * fy


def fractal_noise(height: int, width: int, cell: float,
                  rng: np.random.Generator, octaves: int = 4,
                  persistence: float = 0.5) -> np.ndarray:
    """Multi-octave value noise, normalised to [0, 1]."""
    total = np.zeros((height, width))
    amplitude = 1.0
    weight = 0.0
    current_cell = cell
    for _ in range(octaves):
        total += amplitude * value_noise(height, width, current_cell, rng)
        weight += amplitude
        amplitude *= persistence
        current_cell = max(1.0, current_cell / 2.0)
    return total / weight


def rotate_crop(world: np.ndarray, angle_degrees: float,
                out_height: int, out_width: int) -> np.ndarray:
    """Rotate ``world`` about its centre and crop the central window.

    Used by the blue_sky generator to reproduce the clip's camera rotation.
    """
    world_h, world_w = world.shape
    angle = np.deg2rad(angle_degrees)
    cos_a, sin_a = np.cos(angle), np.sin(angle)
    ys, xs = np.mgrid[0:out_height, 0:out_width].astype(np.float64)
    ys -= out_height / 2.0
    xs -= out_width / 2.0
    src_y = cos_a * ys - sin_a * xs + world_h / 2.0
    src_x = sin_a * ys + cos_a * xs + world_w / 2.0
    return ndimage.map_coordinates(world, [src_y, src_x], order=1, mode="nearest")


def translate_crop(world: np.ndarray, offset_y: float, offset_x: float,
                   out_height: int, out_width: int) -> np.ndarray:
    """Sample an ``out`` window of ``world`` at a sub-pixel offset."""
    ys, xs = np.mgrid[0:out_height, 0:out_width].astype(np.float64)
    return ndimage.map_coordinates(
        world, [ys + offset_y, xs + offset_x], order=1, mode="wrap"
    )


def warp(plane: np.ndarray, shift_y: np.ndarray, shift_x: np.ndarray) -> np.ndarray:
    """Warp ``plane`` by per-pixel displacement fields (bilinear, wrapped)."""
    height, width = plane.shape
    ys, xs = np.mgrid[0:height, 0:width].astype(np.float64)
    return ndimage.map_coordinates(
        plane, [ys + shift_y, xs + shift_x], order=1, mode="wrap"
    )


def ellipse_mask(height: int, width: int, center_y: float, center_x: float,
                 radius_y: float, radius_x: float) -> np.ndarray:
    """Soft-edged elliptical mask in [0, 1]."""
    ys, xs = np.mgrid[0:height, 0:width].astype(np.float64)
    distance = ((ys - center_y) / radius_y) ** 2 + ((xs - center_x) / radius_x) ** 2
    return np.clip(1.25 - distance, 0.0, 1.0).clip(0.0, 1.0)


def downsample2(plane: np.ndarray) -> np.ndarray:
    """2x2 mean downsample (full-resolution chroma field -> 4:2:0 plane)."""
    height, width = plane.shape
    return plane.reshape(height // 2, 2, width // 2, 2).mean(axis=(1, 3))
