"""Integer-pel motion search algorithms.

The paper fixes the estimators per codec (Section IV): EPZS (Enhanced
Predictive Zonal Search, Tourapis 2002) for MPEG-2 and MPEG-4, hexagon
search (Zhu/Lin/Chau 2002, x264's ``--me hex``) for H.264.  Exhaustive full
search is provided as the ablation baseline.

All searches share the :class:`~repro.me.cost.MotionCost` model and return
an integer-pel :class:`~repro.me.types.SearchResult`; sub-pel refinement is
layered on top by :mod:`repro.me.subpel`.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.errors import ConfigError
from repro.me.cost import MotionCost
from repro.me.types import MotionVector, SearchResult, ZERO_MV
from repro.telemetry.instrument import counting_cost
from repro.telemetry.metrics import registry as _telemetry_registry
from repro.telemetry.trace import state as _telemetry_state

#: Small diamond used for final refinement by EPZS and hexagon search.
SMALL_DIAMOND = (
    MotionVector(0, -1),
    MotionVector(-1, 0),
    MotionVector(1, 0),
    MotionVector(0, 1),
)

#: Large hexagon pattern of the hexagon search (radius-2, 6 points).
HEXAGON = (
    MotionVector(-2, 0),
    MotionVector(2, 0),
    MotionVector(-1, -2),
    MotionVector(1, -2),
    MotionVector(-1, 2),
    MotionVector(1, 2),
)


def _best(cost: MotionCost, candidates: Iterable[MotionVector],
          seed: SearchResult) -> SearchResult:
    best = seed
    for mv in candidates:
        value = cost.evaluate(mv)
        if value < best.cost:
            best = SearchResult(mv, value)
    return best


def _refine_diamond(cost: MotionCost, start: SearchResult,
                    max_iterations: int = 64) -> SearchResult:
    """Iterative small-diamond descent until the centre is the minimum."""
    best = start
    for _ in range(max_iterations):
        improved = _best(cost, (best.mv + step for step in SMALL_DIAMOND), best)
        if improved.mv == best.mv:
            break
        best = improved
    return best


def full_search(cost: MotionCost) -> SearchResult:
    """Exhaustive search of the full +-search_range window."""
    rng = cost.search_range
    best = SearchResult(ZERO_MV, cost.evaluate(ZERO_MV))
    for dy in range(-rng, rng + 1):
        for dx in range(-rng, rng + 1):
            mv = MotionVector(dx, dy)
            value = cost.evaluate(mv)
            if value < best.cost:
                best = SearchResult(mv, value)
    return best


def epzs_search(cost: MotionCost,
                extra_predictors: Sequence[MotionVector] = ()) -> SearchResult:
    """Enhanced Predictive Zonal Search.

    Examines the zero vector, the median predictor and the supplied spatial
    and temporal predictors; terminates early when the best predictor cost
    is already below an adaptive threshold, otherwise descends with the
    small diamond pattern.
    """
    candidates: List[MotionVector] = [ZERO_MV, cost.predictor]
    for mv in extra_predictors:
        candidates.append(mv.clamped(cost.search_range))
    best = SearchResult(ZERO_MV, cost.evaluate(ZERO_MV))
    best = _best(cost, candidates, best)
    # Early-termination: proportional to block size, as in Tourapis' T1.
    threshold = cost.width * cost.height
    if best.cost < threshold:
        return best
    return _refine_diamond(cost, best)


def hexagon_search(cost: MotionCost, max_iterations: int = 16) -> SearchResult:
    """Hexagon-based search: large-hexagon descent then small diamond."""
    start = cost.predictor.clamped(cost.search_range)
    best = SearchResult(start, cost.evaluate(start))
    zero = SearchResult(ZERO_MV, cost.evaluate(ZERO_MV))
    if zero.cost < best.cost:
        best = zero
    for _ in range(max_iterations):
        improved = _best(cost, (best.mv + step for step in HEXAGON), best)
        if improved.mv == best.mv:
            break
        best = improved
    return _refine_diamond(cost, best, max_iterations=4)


_ALGORITHMS = {
    "full": lambda cost, extra: full_search(cost),
    "epzs": lambda cost, extra: epzs_search(cost, extra),
    "hex": lambda cost, extra: hexagon_search(cost),
}

ALGORITHM_NAMES = tuple(sorted(_ALGORITHMS))


def run_search(algorithm: str, cost: MotionCost,
               extra_predictors: Sequence[MotionVector] = ()) -> SearchResult:
    """Dispatch a search by algorithm name ("full", "epzs" or "hex").

    While telemetry is enabled, every dispatch tallies the search count
    and the number of candidate points evaluated
    (``me.search.calls`` / ``me.search.points`` plus per-algorithm
    variants); disabled, the dispatch is a single flag check.
    """
    try:
        search = _ALGORITHMS[algorithm]
    except KeyError:
        known = ", ".join(ALGORITHM_NAMES)
        raise ConfigError(f"unknown ME algorithm {algorithm!r} (known: {known})") from None
    if not _telemetry_state.enabled:
        return search(cost, extra_predictors)
    counted = counting_cost(cost)
    result = search(counted, extra_predictors)
    reg = _telemetry_registry()
    reg.counter("me.search.calls").inc()
    reg.counter("me.search.points").inc(counted.points)
    reg.counter(f"me.{algorithm}.calls").inc()
    reg.counter(f"me.{algorithm}.points").inc(counted.points)
    return result
