"""Sub-pel motion vector refinement.

After the integer-pel search, the encoders refine to half-pel (MPEG-2) or
quarter-pel (MPEG-4 with ``qpel``, H.264) precision by evaluating the
interpolated predictions around the best integer vector — the same
two-stage refinement x264's ``--subme`` levels perform.

Motion vectors returned here are in *fractional units*: half-pel units for
MPEG-2 (interp = ``kernels.mc_halfpel``), quarter-pel for MPEG-4/H.264
(interp = ``kernels.mc_qpel_bilinear`` / ``kernels.mc_qpel_h264``).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.mc.pad import PaddedPlane
from repro.me.cost import mv_rate_bits
from repro.me.types import MotionVector, SearchResult

InterpFn = Callable[..., np.ndarray]

_NEIGHBOURS = (
    (-1, -1), (0, -1), (1, -1),
    (-1, 0), (1, 0),
    (-1, 1), (0, 1), (1, 1),
)


def refine_subpel(
    kernels,
    current: np.ndarray,
    reference: PaddedPlane,
    x: int,
    y: int,
    width: int,
    height: int,
    integer_result: SearchResult,
    predictor: MotionVector,
    lagrangian: int,
    unit: int,
    interp: InterpFn,
) -> SearchResult:
    """Refine ``integer_result`` to fractional precision.

    ``unit`` is the number of fractional positions per pel (2 = half-pel,
    4 = quarter-pel); ``predictor`` must already be in fractional units.
    Performs log2(unit) halving stages (half-pel, then quarter-pel).
    """
    px, py = reference.offset(x, y)

    def evaluate(mv: MotionVector) -> int:
        block = interp(reference.plane, px, py, width, height, mv.x, mv.y)
        sad = kernels.sad(current, block)
        return sad + lagrangian * mv_rate_bits(mv, predictor)

    best_mv = integer_result.mv.scaled(unit)
    best = SearchResult(best_mv, evaluate(best_mv))

    step = unit >> 1
    while step >= 1:
        improved = best
        for dx, dy in _NEIGHBOURS:
            mv = MotionVector(best.mv.x + dx * step, best.mv.y + dy * step)
            cost = evaluate(mv)
            if cost < improved.cost:
                improved = SearchResult(mv, cost)
        best = improved
        step >>= 1
    return best
