"""Motion vector types shared by the estimation and compensation layers."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MotionVector:
    """A motion vector.  Units depend on context (integer/half/quarter pel)."""

    x: int = 0
    y: int = 0

    def __add__(self, other: "MotionVector") -> "MotionVector":
        return MotionVector(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "MotionVector") -> "MotionVector":
        return MotionVector(self.x - other.x, self.y - other.y)

    def __neg__(self) -> "MotionVector":
        return MotionVector(-self.x, -self.y)

    def scaled(self, factor: int) -> "MotionVector":
        return MotionVector(self.x * factor, self.y * factor)

    def clamped(self, limit: int) -> "MotionVector":
        return MotionVector(
            max(-limit, min(limit, self.x)),
            max(-limit, min(limit, self.y)),
        )

    def __str__(self) -> str:
        return f"({self.x},{self.y})"


ZERO_MV = MotionVector(0, 0)


@dataclass(frozen=True)
class SearchResult:
    """Outcome of a motion search: best vector and its cost."""

    mv: MotionVector
    cost: int

    def better_than(self, other: "SearchResult") -> bool:
        return self.cost < other.cost


def median3(a: int, b: int, c: int) -> int:
    """Median of three integers (the MV predictor of all three codecs)."""
    return max(min(a, b), min(max(a, b), c))


def median_mv(a: MotionVector, b: MotionVector, c: MotionVector) -> MotionVector:
    """Component-wise median of three motion vectors."""
    return MotionVector(median3(a.x, b.x, c.x), median3(a.y, b.y, c.y))
