"""Motion estimation: cost model, search algorithms, sub-pel refinement."""

from repro.me.cost import MotionCost, lambda_from_qp, mv_rate_bits
from repro.me.search import (
    ALGORITHM_NAMES,
    epzs_search,
    full_search,
    hexagon_search,
    run_search,
)
from repro.me.subpel import refine_subpel
from repro.me.types import MotionVector, SearchResult, ZERO_MV, median_mv

__all__ = [
    "ALGORITHM_NAMES",
    "MotionCost",
    "MotionVector",
    "SearchResult",
    "ZERO_MV",
    "epzs_search",
    "full_search",
    "hexagon_search",
    "lambda_from_qp",
    "median_mv",
    "mv_rate_bits",
    "refine_subpel",
    "run_search",
]
