"""Motion search cost model: distortion plus motion-vector rate.

All searches minimise ``SAD + lambda * R(mv - predictor)`` where the rate
term counts the bits of the signed Exp-Golomb codes the codecs use for MV
differences.  This is the standard cost model of the encoders the paper
benchmarks (x264's ``--me`` searches, Xvid's EPZS).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.common.expgolomb import se_bit_length
from repro.mc.pad import PaddedPlane
from repro.me.types import MotionVector


def mv_rate_bits(mv: MotionVector, predictor: MotionVector) -> int:
    """Bits to code ``mv`` differentially against ``predictor``."""
    return se_bit_length(mv.x - predictor.x) + se_bit_length(mv.y - predictor.y)


def lambda_from_qp(qp: int) -> int:
    """Integer Lagrange multiplier, roughly 0.85 * 2^((qp-12)/3) as in JM/x264.

    ``qp`` is on the H.264 0..51 scale; MPEG-class callers convert their
    quantiser scale through Equation 1 first.
    """
    value = int(round(0.85 * 2.0 ** ((qp - 12) / 3.0)))
    return max(1, value)


@dataclass
class MotionCost:
    """Evaluates integer-pel motion candidates for one block.

    Caches per-vector costs so that overlapping search patterns (EPZS
    refinement, hexagon iterations) never evaluate a candidate twice —
    the same trick real estimators use.
    """

    kernels: object
    current: np.ndarray
    reference: PaddedPlane
    x: int
    y: int
    width: int
    height: int
    predictor: MotionVector
    lagrangian: int
    search_range: int
    _cache: Dict[MotionVector, int] = field(default_factory=dict)

    def in_range(self, mv: MotionVector) -> bool:
        return abs(mv.x) <= self.search_range and abs(mv.y) <= self.search_range

    def evaluate(self, mv: MotionVector) -> int:
        """Cost of the integer-pel candidate ``mv`` (cached)."""
        cached = self._cache.get(mv)
        if cached is not None:
            return cached
        if not self.in_range(mv):
            cost = _OUT_OF_RANGE
        else:
            px, py = self.reference.offset(self.x + mv.x, self.y + mv.y)
            candidate = self.kernels.get_block(
                self.reference.plane, px, py, self.width, self.height
            )
            sad = self.kernels.sad(self.current, candidate)
            cost = sad + self.lagrangian * mv_rate_bits(mv, self.predictor)
        self._cache[mv] = cost
        return cost

    @property
    def evaluations(self) -> int:
        """Number of distinct candidates evaluated (for benchmark stats)."""
        return len(self._cache)


_OUT_OF_RANGE = 1 << 60
