"""Task ownership: every coroutine the origin spawns has a supervisor.

A bare ``asyncio.create_task`` is how streaming servers rot: the task
outlives its creator, its exception is logged (at best) at interpreter
shutdown, and cancellation during teardown leaks queues and sockets.
The origin therefore funnels *all* task creation through
:class:`Supervisor` — the only module where ``asyncio.create_task`` is
legal under the HDVB170 lint rule:

* every spawned task is tracked until it finishes;
* a task that dies with anything other than ``CancelledError`` or a
  normalised :class:`~repro.errors.ReproError` is recorded as an
  **unhandled escape** — the serve gate requires that list to be empty;
* :meth:`Supervisor.drain` and :meth:`Supervisor.cancel_all` give
  teardown a single place that provably reaps everything.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Coroutine, Dict, List, Optional, Set

from repro.errors import ReproError
from repro.telemetry import flightrec
from repro.telemetry.events import correlation_scope, emit, enabled


@dataclass
class TaskFailure:
    """One task that escaped with a raw (non-taxonomy) exception."""

    name: str
    error: BaseException

    def __str__(self) -> str:
        return f"{self.name}: {self.error!r}"


@dataclass
class Supervisor:
    """Owns every asyncio task of one origin instance."""

    name: str = "origin"
    _tasks: Set["asyncio.Task[Any]"] = field(default_factory=set)
    #: tasks that escaped with a raw exception (gate: must stay empty)
    unhandled: List[TaskFailure] = field(default_factory=list)
    #: tasks that ended in a ReproError the spawner did not consume
    failed: Dict[str, ReproError] = field(default_factory=dict)

    def spawn(self, coro: Coroutine[Any, Any, Any],
              name: str) -> "asyncio.Task[Any]":
        """Create and track a task; its outcome can never go unobserved."""
        task = asyncio.create_task(coro, name=f"{self.name}:{name}")
        self._tasks.add(task)
        task.add_done_callback(self._reap)
        return task

    def _reap(self, task: "asyncio.Task[Any]") -> None:
        self._tasks.discard(task)
        if task.cancelled():
            return
        error = task.exception()
        if error is None:
            return
        if isinstance(error, ReproError):
            self.failed[task.get_name()] = error
        else:
            self.unhandled.append(TaskFailure(task.get_name(), error))
            if enabled():
                # An escape is exactly what the flight recorder exists
                # for: dump the ring before anything else runs.
                with correlation_scope(task=task.get_name()):
                    emit("origin.escape", task=task.get_name(),
                         error=repr(error))
                    flightrec.recorder.dump(
                        "supervisor.escape", error=error,
                        extra={"task": task.get_name()})

    @property
    def active(self) -> int:
        return len(self._tasks)

    async def drain(self, timeout: Optional[float] = None) -> None:
        """Wait for every tracked task to finish (outcomes go to _reap)."""
        while self._tasks:
            pending = list(self._tasks)
            done, _ = await asyncio.wait(pending, timeout=timeout)
            if not done and timeout is not None:
                await self.cancel_all()
                return

    async def cancel_all(self) -> None:
        """Cancel and await every tracked task; cancellation is clean."""
        pending = list(self._tasks)
        for task in pending:
            task.cancel()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
