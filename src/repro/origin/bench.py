"""The serve benchmark: an origin under a seeded client population.

``hdvb-bench serve`` runs one :class:`~repro.origin.server.Origin` per
seed over a generated traffic mix and reports the numbers the
robustness gate cares about: sessions per (virtual) second, deadline
miss rate and p99/p999 overshoot, degrade/shed counts, graceful-failure
rate, and the count of unhandled task escapes — which must be zero.
Every run is a pure function of its seed (the virtual-time loop removes
the host scheduler from the picture), so the report carries a
``fingerprint`` that two same-seed runs must reproduce bit for bit.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.origin.server import Origin, OriginConfig, OriginReport, serve
from repro.origin.session import SessionConfig
from repro.origin.traffic import TrafficConfig, generate_profiles

ProgressCallback = Callable[[str], None]


@dataclass
class ServeReport:
    """One serve run's outcome, flattened for the observe store."""

    clients: int
    seed: int
    codecs: Tuple[str, ...]
    max_sessions: int
    sessions: int = 0
    rejected: int = 0
    completed: int = 0
    shed: int = 0
    cancelled: int = 0
    aborted: int = 0
    degrade_entries: int = 0
    frames_delivered: int = 0
    deadline_misses: int = 0
    deadline_miss_rate: float = 0.0
    p99_miss_seconds: float = 0.0
    graceful_rate: float = 1.0
    unhandled_escapes: int = 0
    encodes: int = 0
    cache_hits: int = 0
    cache_flight_waits: int = 0
    peak_sessions: int = 0
    virtual_seconds: float = 0.0
    wall_seconds: float = 0.0
    fingerprint: str = ""
    unhandled: List[str] = field(default_factory=list)
    telemetry: Dict[str, Any] = field(default_factory=dict)

    @property
    def sessions_per_second(self) -> float:
        """Completed sessions per virtual second of serving."""
        if self.virtual_seconds <= 0:
            return 0.0
        return self.sessions / self.virtual_seconds

    @property
    def complete_rate(self) -> float:
        return self.completed / self.sessions if self.sessions else 1.0

    @property
    def shed_rate(self) -> float:
        """Mid-stream sheds plus door rejects, over all clients."""
        total = self.sessions
        return (self.shed + self.rejected) / total if total else 0.0

    def to_record_fields(self) -> Dict[str, Any]:
        """The axes/metrics split :mod:`repro.observe.record` persists."""
        return {
            "axes": {
                "clients": self.clients,
                "seed": self.seed,
                "codecs": ",".join(self.codecs),
                "max_sessions": self.max_sessions,
            },
            "metrics": {
                "sessions": float(self.sessions),
                "sessions_per_second": self.sessions_per_second,
                "complete_rate": self.complete_rate,
                "graceful_rate": self.graceful_rate,
                "deadline_miss_rate": self.deadline_miss_rate,
                "p99_miss_seconds": self.p99_miss_seconds,
                "shed_rate": self.shed_rate,
                "degrade_entries": float(self.degrade_entries),
                "rejected": float(self.rejected),
                "cancelled": float(self.cancelled),
                "unhandled_escapes": float(self.unhandled_escapes),
                "frames_delivered": float(self.frames_delivered),
                "encodes": float(self.encodes),
                "peak_sessions": float(self.peak_sessions),
            },
            "telemetry": self.telemetry or None,
        }


def _from_origin(report: OriginReport, clients: int, seed: int,
                 codecs: Tuple[str, ...], max_sessions: int,
                 wall_seconds: float) -> ServeReport:
    return ServeReport(
        clients=clients, seed=seed, codecs=codecs, max_sessions=max_sessions,
        sessions=report.sessions, rejected=report.rejected,
        completed=report.completed, shed=report.shed,
        cancelled=report.cancelled, aborted=report.aborted,
        degrade_entries=report.degrade_entries,
        frames_delivered=report.frames_delivered,
        deadline_misses=report.deadline_misses,
        deadline_miss_rate=report.deadline_miss_rate,
        p99_miss_seconds=report.p99_miss_seconds,
        graceful_rate=report.graceful_rate,
        unhandled_escapes=len(report.unhandled),
        encodes=report.encodes, cache_hits=report.cache_hits,
        cache_flight_waits=report.cache_flight_waits,
        peak_sessions=report.peak_sessions,
        virtual_seconds=report.virtual_seconds,
        wall_seconds=wall_seconds,
        fingerprint=report.fingerprint,
        unhandled=list(report.unhandled),
        telemetry=dict(report.telemetry),
    )


def run_serve(
    clients: int = 16,
    seeds: Sequence[int] = (0,),
    codecs: Sequence[str] = ("h264",),
    frames: int = 16,
    max_sessions: Optional[int] = None,
    chaos_rate: float = 0.25,
    slow_reader_rate: float = 0.2,
    max_loss: float = 0.10,
    ramp_seconds: float = 2.0,
    encode_seconds: float = 0.25,
    session: Optional[SessionConfig] = None,
    progress: Optional[ProgressCallback] = None,
) -> List[ServeReport]:
    """One serve run per seed; reports in seed order."""
    table = max_sessions if max_sessions is not None else clients
    reports: List[ServeReport] = []
    for seed in seeds:
        if progress:
            progress(f"serve seed {seed}: {clients} clients, "
                     f"table {table}")
        traffic = TrafficConfig(
            clients=clients, seed=seed, codecs=tuple(codecs), frames=frames,
            ramp_seconds=ramp_seconds, max_loss=max_loss,
            chaos_rate=chaos_rate, slow_reader_rate=slow_reader_rate,
        )
        config = OriginConfig(
            max_sessions=table, frames=frames,
            encode_seconds=encode_seconds,
            session=session if session is not None else SessionConfig(),
        )
        profiles = generate_profiles(traffic)
        wall_start = time.perf_counter()
        origin_report = serve(profiles, config)
        wall = time.perf_counter() - wall_start
        reports.append(_from_origin(
            origin_report, clients, seed, tuple(codecs), table, wall))
    return reports


def render_serve(reports: Sequence[ServeReport]) -> str:
    """Human-readable serve summary, one block per seed."""
    lines = ["Origin serve (virtual-time, seeded):"]
    header = (f"  {'seed':>5} {'clients':>7} {'done':>5} {'shed':>5} "
              f"{'rej':>4} {'cancel':>6} {'degr':>5} {'miss%':>6} "
              f"{'p99ms':>7} {'graceful':>8} {'s/s':>7} {'wall':>6}")
    lines.append(header)
    for r in reports:
        lines.append(
            f"  {r.seed:>5} {r.sessions:>7} {r.completed:>5} {r.shed:>5} "
            f"{r.rejected:>4} {r.cancelled:>6} {r.degrade_entries:>5} "
            f"{100 * r.deadline_miss_rate:>5.1f}% "
            f"{1000 * r.p99_miss_seconds:>6.1f} "
            f"{100 * r.graceful_rate:>7.1f}% "
            f"{r.sessions_per_second:>7.2f} {r.wall_seconds:>5.1f}s")
    for r in reports:
        if r.unhandled:
            lines.append(f"  seed {r.seed}: UNHANDLED ESCAPES:")
            lines.extend(f"    {entry}" for entry in r.unhandled[:5])
    return "\n".join(lines)


__all__ = [
    "Origin", "OriginConfig", "ServeReport", "render_serve", "run_serve",
]
