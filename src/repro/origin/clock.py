"""A virtual-time asyncio event loop: concurrency without wall clocks.

The origin's acceptance gate demands *bit-reproducible* shed/degrade/
deadline-miss counts per seed.  Real asyncio cannot deliver that: two
timers racing within scheduler jitter resolve differently run to run,
and a loaded CI box turns deadline misses into noise.  The fix is the
standard discrete-event-simulation trick: the event loop's clock is a
virtual counter that **jumps** to the next scheduled timer whenever no
callback is ready, instead of sleeping.

Consequences:

* ``loop.time()``, ``asyncio.sleep`` and ``asyncio.wait_for`` all mean
  *simulated seconds*; a 40 ms frame interval costs zero wall time;
* execution order depends only on the program and the seeds — timer
  deadlines are exact rationals of the simulation, never of the host —
  so a serve sweep replays identically on any machine;
* thousands of concurrent sessions simulate as fast as the CPU can run
  the Python, which is what lets CI drive 200+ clients per job.

The loop never performs real I/O (the selector is polled with a zero
timeout), which is fine: every byte the origin moves travels through
in-process seams (:mod:`repro.transport`).
"""

from __future__ import annotations

import asyncio
import selectors
from typing import Any, Awaitable, TypeVar

T = TypeVar("T")


class VirtualTimeLoop(asyncio.SelectorEventLoop):
    """A selector loop whose clock jumps instead of waiting.

    ``time()`` returns the virtual clock.  Before each scheduler pass,
    if nothing is immediately runnable but timers are pending, the clock
    jumps to the earliest timer's deadline; the base class then computes
    a zero select timeout and fires the timer on the same pass.
    """

    def __init__(self) -> None:
        super().__init__(selectors.SelectSelector())
        self._virtual_now = 0.0

    def time(self) -> float:
        return self._virtual_now

    def advance_to(self, when: float) -> None:
        """Move the clock forward explicitly (never backwards)."""
        if when > self._virtual_now:
            self._virtual_now = when

    def _run_once(self) -> None:
        # Private-API seam into BaseEventLoop's scheduler, stable across
        # CPython 3.9-3.13: _ready is the runnable callback deque,
        # _scheduled the timer heap.  Jumping here (rather than patching
        # sleep) keeps every timer-based primitive — wait_for, timeouts,
        # queue joins — on virtual time for free.
        ready = getattr(self, "_ready", None)
        scheduled = getattr(self, "_scheduled", None)
        if ready is not None and scheduled is not None:
            if not ready and scheduled:
                self.advance_to(scheduled[0]._when)
        super()._run_once()  # type: ignore[misc]


def run(main: Awaitable[T]) -> T:
    """``asyncio.run`` on a fresh :class:`VirtualTimeLoop`.

    Like ``asyncio.run``, cancels whatever the coroutine left behind and
    closes the loop, so a crashing serve cannot leak tasks into the next
    one.
    """
    loop = VirtualTimeLoop()
    try:
        asyncio.set_event_loop(loop)
        return loop.run_until_complete(main)
    finally:
        try:
            _cancel_leftovers(loop)
        finally:
            asyncio.set_event_loop(None)
            loop.close()


def _cancel_leftovers(loop: VirtualTimeLoop) -> None:
    leftovers = [task for task in asyncio.all_tasks(loop) if not task.done()]
    for task in leftovers:
        task.cancel()
    if leftovers:
        loop.run_until_complete(
            asyncio.gather(*leftovers, return_exceptions=True))


def loop_time() -> float:
    """The running loop's (virtual) clock."""
    return asyncio.get_running_loop().time()


async def sleep(seconds: float, result: Any = None) -> Any:
    """``asyncio.sleep`` — virtual seconds under :func:`run`."""
    return await asyncio.sleep(seconds, result)
