"""The multi-client asyncio streaming origin (PR 6).

A robustness-first origin server: many concurrent
:class:`~repro.origin.session.StreamSessionRunner` sessions — each a
full packetize → seeded lossy channel → FEC → jitter → hardened-decode
pipeline from the existing transport layer — under admission control, a
per-session supervisor state machine, a shared single-flight segment
cache, and a chaos-driven degradation ladder.  Everything runs on a
virtual-time event loop (:mod:`repro.origin.clock`), so a serve run is a
bit-reproducible function of its seed.

Layout:

======================  ================================================
:mod:`~repro.origin.clock`      virtual-time event loop (determinism)
:mod:`~repro.origin.supervise`  task ownership; no unobserved failures
:mod:`~repro.origin.cache`      single-flight encoded-segment cache
:mod:`~repro.origin.session`    the per-session state machine + ladder
:mod:`~repro.origin.admission`  bounded session table (door shedding)
:mod:`~repro.origin.traffic`    seeded client populations + chaos plans
:mod:`~repro.origin.server`     the origin itself
:mod:`~repro.origin.bench`      ``hdvb-bench serve``
======================  ================================================
"""

from repro.origin.admission import AdmissionController
from repro.origin.cache import SegmentCache, SegmentKey
from repro.origin.clock import VirtualTimeLoop, run
from repro.origin.server import Origin, OriginConfig, OriginReport, serve
from repro.origin.session import (
    DEFAULT_RUNGS,
    ClientProfile,
    Rung,
    SessionConfig,
    SessionResult,
    SessionState,
    StreamSessionRunner,
)
from repro.origin.supervise import Supervisor, TaskFailure
from repro.origin.traffic import TrafficConfig, generate_profiles

__all__ = [
    "AdmissionController",
    "ClientProfile",
    "DEFAULT_RUNGS",
    "Origin",
    "OriginConfig",
    "OriginReport",
    "Rung",
    "SegmentCache",
    "SegmentKey",
    "SessionConfig",
    "SessionResult",
    "SessionState",
    "StreamSessionRunner",
    "Supervisor",
    "TaskFailure",
    "TrafficConfig",
    "VirtualTimeLoop",
    "generate_profiles",
    "run",
    "serve",
]
