"""Seeded traffic generation: thousands of heterogeneous clients.

Every client the origin serves is described up front by a
:class:`~repro.origin.session.ClientProfile`: its network personality
(Gilbert–Elliott loss rate and burst length, propagation delay, jitter),
its consumption speed (a reader slower than the frame interval builds
queue pressure and misses deadlines), its arrival time, and its chaos
schedule.  All of it derives from ``random.Random(seed, client index)``,
so a serve run is a pure function of ``(seed, TrafficConfig)`` — the
property every acceptance gate in this repo is built on.

The chaos layer reuses the robustness seams rather than inventing new
failure modes:

* **flap/heal** drive :meth:`~repro.transport.channel.LossyChannel.set_loss`
  mid-stream (the Gilbert–Elliott chain keeps its RNG, so flaps stay
  reproducible);
* **stall** freezes the reader for a while (a backgrounded tab);
* **nack** makes one picture's delivery fail with a malformed-ack
  :class:`~repro.errors.OriginError`, exercising retry/backoff;
* **corrupt** runs the session's stream through PR 1's seeded
  :class:`~repro.robustness.inject.FaultInjector` before packetizing;
* **cancel** kills the whole session task mid-stream (``cancel_after``
  virtual seconds), proving teardown leaks nothing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigError
from repro.origin.session import ClientProfile

#: Chaos event kinds a profile can schedule per frame index.
CHAOS_KINDS: Tuple[str, ...] = ("flap", "stall", "nack", "corrupt", "cancel")


@dataclass(frozen=True)
class TrafficConfig:
    """Shape of one generated client population."""

    clients: int = 8
    seed: int = 0
    codecs: Tuple[str, ...] = ("h264",)
    frames: int = 16              # frames per session (chaos frame range)
    fps: int = 25
    ramp_seconds: float = 2.0     # arrival offsets spread over this window
    max_loss: float = 0.10
    max_burst: float = 4.0
    chaos_rate: float = 0.25      # fraction of clients with chaos events
    slow_reader_rate: float = 0.2  # fraction reading slower than realtime

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise ConfigError(f"clients must be >= 1, got {self.clients}")
        if not self.codecs:
            raise ConfigError("codecs must not be empty")
        if not 0.0 <= self.chaos_rate <= 1.0:
            raise ConfigError(
                f"chaos_rate must be in [0, 1], got {self.chaos_rate}")


def _client_rng(config: TrafficConfig, index: int) -> random.Random:
    # Same spacing scheme as the streaming bench: seeds never collide
    # across (sweep seed, client index).
    return random.Random(config.seed * 1_000_003 + index * 101)


def _chaos_schedule(rng: random.Random, config: TrafficConfig,
                    ) -> Tuple[Dict[int, Tuple[Tuple[object, ...], ...]],
                               bool, float]:
    """One client's chaos plan: (per-frame events, corrupt?, cancel_after)."""
    events: Dict[int, List[Tuple[object, ...]]] = {}
    corrupt = False
    cancel_after = -1.0
    count = rng.randint(1, 3)
    frame_interval = 1.0 / config.fps
    for _ in range(count):
        kind = rng.choice(CHAOS_KINDS)
        frame = rng.randrange(max(1, config.frames))
        if kind == "flap":
            loss = rng.uniform(0.1, 0.4)
            burst = rng.uniform(1.0, config.max_burst)
            events.setdefault(frame, []).append(("flap", loss, burst))
            heal_at = min(config.frames - 1, frame + rng.randint(2, 5))
            events.setdefault(heal_at, []).append(("heal",))
        elif kind == "stall":
            events.setdefault(frame, []).append(
                ("stall", rng.uniform(1.0, 4.0) * frame_interval))
        elif kind == "nack":
            events.setdefault(frame, []).append(("nack",))
        elif kind == "corrupt":
            corrupt = True
        else:  # cancel
            cancel_after = rng.uniform(0.2, 0.8) * (
                config.frames * frame_interval)
    frozen = {index: tuple(items) for index, items in sorted(events.items())}
    return frozen, corrupt, cancel_after


def generate_profiles(config: TrafficConfig) -> List[ClientProfile]:
    """The deterministic client population for one serve run."""
    profiles: List[ClientProfile] = []
    frame_interval = 1.0 / config.fps
    for index in range(config.clients):
        rng = _client_rng(config, index)
        chaotic = rng.random() < config.chaos_rate
        chaos, corrupt, cancel_after = (
            _chaos_schedule(rng, config) if chaotic else ({}, False, -1.0))
        slow = rng.random() < config.slow_reader_rate
        if slow:
            render = rng.uniform(1.1, 1.8) * frame_interval
        else:
            render = rng.uniform(0.2, 0.9) * frame_interval
        profiles.append(ClientProfile(
            session_id=f"c{index:04d}",
            seed=config.seed * 1_000_003 + index * 101 + 1,
            codec=config.codecs[index % len(config.codecs)],
            rung_index=0,
            loss_rate=rng.random() * config.max_loss,
            burst_length=1.0 + rng.random() * (config.max_burst - 1.0),
            delay=rng.uniform(0.005, 0.03),
            jitter=rng.random() * 0.01,
            render_seconds=render,
            arrival_offset=rng.random() * config.ramp_seconds,
            chaos=chaos,
            corrupt=corrupt,
            cancel_after=cancel_after if cancel_after > 0 else None,
        ))
    return profiles
