"""Admission control: the bounded session table.

The first line of load shedding is the front door.  The origin admits at
most ``max_sessions`` concurrent clients; an arrival beyond that is
rejected immediately — a cheap, graceful refusal — instead of admitted
into a system that would then miss deadlines for everyone.  The table
also keeps the high-water mark, which the serve report exposes so a
sweep can show how close a configuration ran to its ceiling.
"""

from __future__ import annotations

from typing import Set

from repro.errors import ConfigError


class AdmissionController:
    """Bounded set of live session ids with shed accounting."""

    def __init__(self, max_sessions: int) -> None:
        if max_sessions < 1:
            raise ConfigError(
                f"max_sessions must be >= 1, got {max_sessions}")
        self.max_sessions = max_sessions
        self._active: Set[str] = set()
        self.admitted_total = 0
        self.rejected_total = 0
        self.peak = 0

    @property
    def active(self) -> int:
        return len(self._active)

    def try_admit(self, session_id: str) -> bool:
        """Admit ``session_id`` if the table has room; False = shed."""
        if session_id in self._active:
            raise ConfigError(f"session {session_id!r} admitted twice")
        if len(self._active) >= self.max_sessions:
            self.rejected_total += 1
            return False
        self._active.add(session_id)
        self.admitted_total += 1
        self.peak = max(self.peak, len(self._active))
        return True

    def release(self, session_id: str) -> None:
        """Free the slot (idempotent: releasing twice is harmless)."""
        self._active.discard(session_id)
