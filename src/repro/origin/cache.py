"""The shared encoded-segment cache with single-flight encoding.

Admission storms are the origin's thundering herd: hundreds of clients
admitted in the same virtual millisecond all want the same (sequence,
codec, QP, resolution) asset.  Encoding is the most expensive operation
in the whole system, so each asset must be encoded **exactly once**:

* a cache hit returns the shared :class:`~repro.codecs.base.EncodedVideo`
  (streams are immutable downstream — packetize never mutates payloads);
* a miss makes the first caller the *leader*: it installs a future,
  pays the encode latency (charged in virtual time, so the simulation
  sees a realistic window in which the herd can pile up), encodes, and
  resolves the future;
* every concurrent caller for the same key awaits the leader's future
  (a single-flight wait, counted separately from plain hits);
* a failed encode rejects the future for the waiters-of-the-moment but
  clears the in-flight slot, so the asset can be retried later instead
  of caching the failure forever.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.codecs import get_encoder
from repro.codecs.base import EncodedVideo
from repro.common.yuv import YuvSequence
from repro.errors import OriginError
from repro.robustness.bench import encoder_fields, make_bench_clip
from repro.telemetry.metrics import registry as telemetry_registry
from repro.telemetry.trace import span as telemetry_span, state as telemetry_state

#: Virtual seconds one encode costs by default (the window in which a
#: thundering herd can observe the in-flight future).
DEFAULT_ENCODE_SECONDS = 0.25


@dataclass(frozen=True)
class SegmentKey:
    """Identity of one encoded asset: what DASH calls a representation."""

    sequence: str
    codec: str
    qp: int
    width: int
    height: int

    def __str__(self) -> str:
        return (f"{self.sequence}/{self.codec}/qp{self.qp}/"
                f"{self.width}x{self.height}")


EncodeFn = Callable[[SegmentKey], EncodedVideo]


def default_encode(key: SegmentKey, frames: int = 5) -> EncodedVideo:
    """Encode the deterministic bench clip at the key's operating point."""
    clip: YuvSequence = make_bench_clip(width=key.width, height=key.height,
                                        frames=frames)
    fields = encoder_fields(key.codec, key.width, key.height)
    # The ladder varies quality per rung; override the per-codec default
    # through whichever knob this codec exposes.
    for knob in ("qscale", "qp", "quality"):
        if knob in fields:
            fields[knob] = key.qp
            break
    encoder = get_encoder(key.codec, **fields)
    return encoder.encode_sequence(clip)


class SegmentCache:
    """Async cache of encoded segments, keyed by :class:`SegmentKey`."""

    def __init__(self, encode: Optional[EncodeFn] = None,
                 encode_seconds: float = DEFAULT_ENCODE_SECONDS) -> None:
        self._encode: EncodeFn = encode if encode is not None else default_encode
        self.encode_seconds = encode_seconds
        self._entries: Dict[SegmentKey, EncodedVideo] = {}
        self._inflight: Dict[SegmentKey, "asyncio.Future[EncodedVideo]"] = {}
        self.hits = 0
        self.misses = 0            # leader encodes
        self.flight_waits = 0      # followers that awaited a leader

    def __len__(self) -> int:
        return len(self._entries)

    def lookup_state(self, key: SegmentKey) -> str:
        """How a ``get(key)`` issued *now* would resolve: ``"hit"``
        (cached), ``"wait"`` (follow an in-flight leader) or
        ``"encode"`` (become the leader).  Synchronous, so callers can
        classify before awaiting and attribute the outcome to their own
        correlation scope."""
        if key in self._entries:
            return "hit"
        if key in self._inflight:
            return "wait"
        return "encode"

    @property
    def encodes(self) -> int:
        """Distinct encode operations performed (the single-flight proof)."""
        return self.misses

    async def get(self, key: SegmentKey) -> EncodedVideo:
        """The encoded asset for ``key``, encoding at most once."""
        cached = self._entries.get(key)
        if cached is not None:
            self.hits += 1
            self._count("origin.cache.hits")
            return cached
        inflight = self._inflight.get(key)
        if inflight is not None:
            self.flight_waits += 1
            self._count("origin.cache.flight_waits")
            return await self._await_leader(key, inflight)
        return await self._encode_as_leader(key)

    async def _encode_as_leader(self, key: SegmentKey) -> EncodedVideo:
        future: "asyncio.Future[EncodedVideo]" = (
            asyncio.get_running_loop().create_future())
        self._inflight[key] = future
        self.misses += 1
        self._count("origin.cache.misses")
        try:
            with telemetry_span("origin.cache.encode", key=str(key)):
                if self.encode_seconds > 0:
                    await asyncio.sleep(self.encode_seconds)
                stream = self._encode(key)
        except asyncio.CancelledError:
            future.cancel()
            del self._inflight[key]
            raise
        except Exception as error:
            normalised = error if isinstance(error, OriginError) else OriginError(
                f"segment encode failed for {key}: {error}")
            future.set_exception(normalised)
            # Consume the exception even if no follower ever awaits it,
            # or the loop reports "exception was never retrieved".
            future.exception()
            del self._inflight[key]
            raise normalised from error
        self._entries[key] = stream
        future.set_result(stream)
        del self._inflight[key]
        return stream

    async def _await_leader(self, key: SegmentKey,
                            inflight: "asyncio.Future[EncodedVideo]",
                            ) -> EncodedVideo:
        # shield: a cancelled follower must not cancel the shared future.
        try:
            return await asyncio.shield(inflight)
        except asyncio.CancelledError:
            if inflight.cancelled():
                # The *leader* was cancelled mid-encode: for a follower
                # that is a transient, retryable origin failure, not its
                # own cancellation.
                raise OriginError(
                    f"segment encode for {key} cancelled mid-flight") from None
            raise

    def _count(self, name: str) -> None:
        if telemetry_state.enabled:
            telemetry_registry().counter(name).inc()
