"""The multi-client streaming origin.

``Origin.serve`` takes a client population (usually from
:mod:`repro.origin.traffic`) and runs every session concurrently on a
virtual-time event loop (:mod:`repro.origin.clock`):

* arrivals are spread across the traffic ramp; the
  :class:`~repro.origin.admission.AdmissionController` sheds clients
  beyond the bounded session table at the door;
* each admitted client gets a
  :class:`~repro.origin.session.StreamSessionRunner`; every task —
  session, reader, chaos canceller — is owned by one
  :class:`~repro.origin.supervise.Supervisor`, so nothing can fail
  unobserved;
* one :class:`~repro.origin.cache.SegmentCache` is shared by everyone:
  a 200-client herd performs exactly ``len(codecs) × rungs-touched``
  encodes;
* a local, always-on :class:`~repro.telemetry.metrics.MetricsRegistry`
  records deadline-lateness and queue-depth histograms plus degrade/shed
  counters; the snapshot rides on the serve report into the observe
  store and out through the OpenMetrics exporter.

The report's ``fingerprint`` folds every per-session outcome into one
string; two runs with the same seed must produce the same fingerprint —
that is the serve gate's bit-reproducibility check.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.origin import clock
from repro.origin.admission import AdmissionController
from repro.origin.cache import (
    DEFAULT_ENCODE_SECONDS,
    SegmentCache,
    SegmentKey,
    default_encode,
)
from repro.origin.session import (
    DEFAULT_RUNGS,
    ClientProfile,
    Rung,
    SessionConfig,
    SessionResult,
    SessionState,
    StreamSessionRunner,
)
from repro.origin.supervise import Supervisor
from repro.telemetry.events import correlation_scope, emit
from repro.telemetry.metrics import LATENCY_BUCKETS, MetricsRegistry


@dataclass(frozen=True)
class OriginConfig:
    """One origin instance's shape."""

    max_sessions: int = 64
    frames: int = 16              # bench clip length per asset
    sequence: str = "bench"
    encode_seconds: float = DEFAULT_ENCODE_SECONDS
    rungs: Tuple[Rung, ...] = DEFAULT_RUNGS
    session: SessionConfig = field(default_factory=SessionConfig)


@dataclass
class OriginReport:
    """Everything one serve run produced."""

    sessions: int
    rejected: int
    results: List[SessionResult]
    unhandled: List[str]              # raw escapes (gate: must be empty)
    encodes: int
    cache_hits: int
    cache_flight_waits: int
    peak_sessions: int
    virtual_seconds: float
    telemetry: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # aggregates

    @property
    def completed(self) -> int:
        return sum(1 for r in self.results
                   if r.final_state == SessionState.CLOSED.value
                   and not (r.aborted or r.cancelled))

    @property
    def shed(self) -> int:
        """Sessions shed mid-stream by the ladder (door rejects separate)."""
        return sum(1 for r in self.results if r.shed)

    @property
    def cancelled(self) -> int:
        return sum(1 for r in self.results if r.cancelled)

    @property
    def aborted(self) -> int:
        return sum(1 for r in self.results if r.aborted)

    @property
    def degrade_entries(self) -> int:
        return sum(r.degrade_entries for r in self.results)

    @property
    def frames_delivered(self) -> int:
        return sum(r.frames_delivered for r in self.results)

    @property
    def deadline_misses(self) -> int:
        return sum(r.deadline_misses for r in self.results)

    @property
    def deadline_miss_rate(self) -> float:
        delivered = self.frames_delivered
        return self.deadline_misses / delivered if delivered else 0.0

    @property
    def failures(self) -> int:
        """Sessions that did not stream to completion."""
        return sum(1 for r in self.results
                   if r.aborted or r.cancelled
                   or r.final_state == "rejected")

    @property
    def graceful_failures(self) -> int:
        """Failures that surfaced through the error taxonomy (or were a
        clean chaos cancellation) rather than escaping raw."""
        return sum(1 for r in self.results
                   if (r.aborted or r.cancelled
                       or r.final_state == "rejected")
                   and (r.cancelled or r.error is not None))

    @property
    def graceful_rate(self) -> float:
        """Fraction of failures that failed *well*; 1.0 when clean."""
        failures = self.failures
        if failures == 0:
            return 1.0 if not self.unhandled else 0.0
        graceful = self.graceful_failures if not self.unhandled else 0
        return graceful / failures

    @property
    def p99_miss_seconds(self) -> float:
        lateness = self.telemetry.get("metrics", {}).get(
            "origin.deadline.lateness")
        if not lateness:
            return 0.0
        return float(lateness.get("p99", 0.0))

    @property
    def fingerprint(self) -> str:
        """One string folding every outcome: equal seeds ⇒ equal strings."""
        parts = []
        for r in sorted(self.results, key=lambda item: item.session_id):
            parts.append(
                f"{r.session_id}:{r.final_state}:{r.frames_sent}"
                f":{r.frames_delivered}:{r.deadline_misses}"
                f":{len(r.degrade_steps)}:{int(r.shed)}:{int(r.cancelled)}"
                f":{r.retries}:{r.epochs}")
        return "|".join(parts)

    def __str__(self) -> str:
        return (
            f"origin: {self.sessions} sessions ({self.rejected} rejected at "
            f"admission, peak {self.peak_sessions}), {self.completed} "
            f"completed, {self.shed} shed, {self.cancelled} cancelled, "
            f"{self.degrade_entries} degrade entries; "
            f"{self.frames_delivered} frames delivered, "
            f"{self.deadline_misses} deadline misses "
            f"({self.deadline_miss_rate:.1%}), {self.encodes} encodes for "
            f"{self.cache_hits} hits; graceful rate {self.graceful_rate:.1%}"
        )


class Origin:
    """One origin instance: shared cache, supervisor, admission table."""

    def __init__(self, config: Optional[OriginConfig] = None) -> None:
        self.config = config if config is not None else OriginConfig()
        if self.config.frames < 2:
            raise ConfigError(
                f"frames must be >= 2, got {self.config.frames}")
        frames = self.config.frames

        def encode(key: SegmentKey):
            return default_encode(key, frames=frames)

        self.cache = SegmentCache(
            encode=encode, encode_seconds=self.config.encode_seconds)
        self.supervisor = Supervisor()
        self.admission = AdmissionController(self.config.max_sessions)
        self.metrics = MetricsRegistry()
        self.results: List[SessionResult] = []

    # ------------------------------------------------------------------

    async def serve_async(self, profiles: Sequence[ClientProfile],
                          ) -> OriginReport:
        """Serve every profile to completion on the running loop."""
        loop = asyncio.get_running_loop()
        started = loop.time()
        for profile in profiles:
            self.supervisor.spawn(
                self._client(profile), f"{profile.session_id}.lifecycle")
        await self.supervisor.drain()
        virtual = loop.time() - started
        self.metrics.gauge("origin.sessions.peak").set(self.admission.peak)
        self.metrics.counter("origin.sessions.rejected").inc(
            self.admission.rejected_total)
        return self._report(virtual)

    async def _client(self, profile: ClientProfile) -> None:
        if profile.arrival_offset > 0:
            await asyncio.sleep(profile.arrival_offset)
        if not self.admission.try_admit(profile.session_id):
            result = SessionResult(session_id=profile.session_id)
            result.final_state = "rejected"
            result.error = (
                f"admission rejected: table full "
                f"({self.admission.max_sessions} sessions)")
            self.results.append(result)
            with correlation_scope(session_id=profile.session_id):
                emit("origin.reject", active=self.admission.active,
                     limit=self.admission.max_sessions)
            return
        with correlation_scope(session_id=profile.session_id):
            emit("origin.admit", active=self.admission.active,
                 limit=self.admission.max_sessions)
        runner = StreamSessionRunner(
            profile, self.config.session, self.cache, self.supervisor,
            sequence=self.config.sequence, rungs=self.config.rungs,
            metrics=self.metrics,
        )
        task = self.supervisor.spawn(runner.run(), profile.session_id)
        if profile.cancel_after is not None:
            self.supervisor.spawn(
                _cancel_later(task, profile.cancel_after),
                f"{profile.session_id}.chaos-cancel")
        try:
            await asyncio.wait({task})
        finally:
            self.admission.release(profile.session_id)
        self.results.append(runner.result)

    def _report(self, virtual: float) -> OriginReport:
        # Make sure the lateness histogram exists even for miss-free runs,
        # so report percentiles and the exporter see a stable shape.
        self.metrics.histogram("origin.deadline.lateness", LATENCY_BUCKETS)
        return OriginReport(
            sessions=len(self.results),
            rejected=self.admission.rejected_total,
            results=list(self.results),
            unhandled=[str(failure) for failure in self.supervisor.unhandled],
            encodes=self.cache.encodes,
            cache_hits=self.cache.hits,
            cache_flight_waits=self.cache.flight_waits,
            peak_sessions=self.admission.peak,
            virtual_seconds=virtual,
            telemetry=self.metrics.snapshot().to_dict(),
        )


async def _cancel_later(task: "asyncio.Task[Any]", delay: float) -> None:
    await asyncio.sleep(delay)
    if not task.done():
        task.cancel()


def serve(profiles: Sequence[ClientProfile],
          config: Optional[OriginConfig] = None) -> OriginReport:
    """Run one origin over ``profiles`` on a fresh virtual-time loop."""
    origin = Origin(config)
    return clock.run(origin.serve_async(profiles))
