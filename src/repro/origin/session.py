"""One client's stream, supervised: ADMITTED → … → CLOSED.

A :class:`StreamSessionRunner` owns everything that happens to a single
client: fetching the encoded asset through the shared single-flight
cache, packetizing it, pacing picture groups across that client's
private seeded :class:`~repro.transport.channel.LossyChannel`, feeding a
bounded send queue read by a (possibly slow, possibly chaotic) reader
task, and finally draining and running the hardened decode over whatever
arrived.  The state machine::

    ADMITTED ──fetch ok──▶ STREAMING ◀──recovered── DEGRADED
                               │                        │
                               └──pressure──────────────┘
                               │                        │ ladder exhausted
                               ▼                        ▼
                           DRAINING ──decode──▶ CLOSED   (shed: SessionAborted)

Robustness mechanics, all deterministic under the virtual-time loop:

* every transient delivery failure (malformed ack, backpressure put
  timeout, cache encode failure) is retried with jittered exponential
  backoff against a per-session **failure budget**; exhausting the
  budget raises :class:`~repro.errors.SessionAborted`;
* sustained deadline-miss rate or a saturated send queue enters
  **DEGRADED** and walks the degradation ladder — shed FEC depth, drop
  a resolution rung, drop non-I pictures, finally shed the session;
* cancellation (the chaos layer kills session tasks mid-stream) always
  tears down cleanly: the reader is reaped, the queue is torn down, the
  state machine lands in CLOSED, and ``CancelledError`` is re-raised so
  the supervisor records a cancellation rather than a failure.

Rung switches cannot splice two differently-encoded bitstreams, so each
rung opens a new *epoch*: the new rung's full stream is fetched (cache
hit for every session after the first) and only the not-yet-played
coding positions are transmitted.  Each epoch decodes independently with
arrival times relative to the epoch start; picture slots never sent —
the already-played prefix, deliberately dropped B/P pictures, load-shed
tails — are concealed by exactly the machinery that absorbs packet loss.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from collections import deque

from repro.codecs.base import EncodedVideo
from repro.common.gop import FrameType
from repro.errors import OriginError, ReproError, SessionAborted
from repro.origin.cache import SegmentCache, SegmentKey
from repro.origin.supervise import Supervisor
from repro.robustness.inject import FaultInjector
from repro.telemetry import events as _events
from repro.telemetry import flightrec
from repro.telemetry.events import correlation_scope
from repro.telemetry.metrics import (
    DEPTH_BUCKETS,
    LATENCY_BUCKETS,
    MetricsRegistry,
)
from repro.transport.channel import Arrival, LossyChannel
from repro.transport.fec import fec_encode
from repro.transport.packetize import Packet, StreamSession, packetize
from repro.transport.receiver import TransportResult, receive


class SessionState(Enum):
    """Supervisor states; values appear in errors and reports."""

    ADMITTED = "admitted"
    STREAMING = "streaming"
    DEGRADED = "degraded"
    DRAINING = "draining"
    CLOSED = "closed"


@dataclass(frozen=True)
class Rung:
    """One resolution/quality operating point of the encoding ladder."""

    width: int
    height: int
    qp: int

    def key(self, sequence: str, codec: str) -> SegmentKey:
        return SegmentKey(sequence=sequence, codec=codec, qp=self.qp,
                          width=self.width, height=self.height)


#: The bitrate ladder, top rung first.  Degradation steps *down* the
#: tuple; every session starts on the rung its profile asks for.
DEFAULT_RUNGS: Tuple[Rung, ...] = (
    Rung(width=48, height=32, qp=6),
    Rung(width=32, height=32, qp=10),
    Rung(width=16, height=16, qp=14),
)

#: Degradation ladder actions, mildest first.
LADDER_STEPS: Tuple[str, ...] = ("fec", "rung", "frames", "shed")


@dataclass(frozen=True)
class SessionConfig:
    """Tuning knobs shared by every session of one origin."""

    mtu: int = 64
    fec_group: int = 4
    fec_depth: int = 2
    packet_interval: float = 0.0005   # pacing between packets of one picture
    queue_limit: int = 6              # bounded send-queue depth
    put_timeout: float = 0.25         # backpressure patience (virtual s)
    drain_timeout: float = 2.0        # DRAINING: patience for the reader
    failure_budget: int = 4           # transient failures before abort
    backoff_base: float = 0.02        # first retry delay (virtual s)
    backoff_cap: float = 0.5          # retry delay ceiling
    startup_depth: float = 0.12       # playout buffer: deadline slack (s)
    degrade_window: int = 5           # frames in the miss-rate window
    degrade_enter: float = 0.4        # window miss rate that enters DEGRADED
    degrade_exit_depth: int = 1       # max queue depth to leave DEGRADED
    degrade_patience: int = 3         # frames between ladder steps
    jitter_depth: float = 4.0         # receiver admission slack (epoch s)
    conceal: str = "copy-last"
    backend: str = "simd"
    decode: bool = True               # run the hardened decode per epoch


@dataclass(frozen=True)
class ClientProfile:
    """One client's network personality and chaos schedule."""

    session_id: str
    seed: int
    codec: str
    rung_index: int = 0
    loss_rate: float = 0.0
    burst_length: float = 1.0
    delay: float = 0.01
    jitter: float = 0.0
    render_seconds: float = 0.02      # reader consumption per frame
    arrival_offset: float = 0.0       # virtual s after serve start
    #: frame index → chaos events at that frame.  Events: ("flap", loss,
    #: burst), ("heal",), ("stall", seconds), ("nack",).
    chaos: Dict[int, Tuple[Tuple[object, ...], ...]] = field(
        default_factory=dict)
    corrupt: bool = False             # inject a seeded bitstream fault
    cancel_after: Optional[float] = None   # chaos: kill the task (virtual s)


@dataclass
class SessionResult:
    """Everything one session's lifetime produced (always populated,
    even when the session was cancelled or shed mid-flight)."""

    session_id: str
    final_state: str = SessionState.ADMITTED.value
    states: List[str] = field(default_factory=list)
    frames_sent: int = 0
    frames_delivered: int = 0
    deadline_misses: int = 0
    miss_seconds: List[float] = field(default_factory=list)
    retries: int = 0
    backoff_seconds: float = 0.0
    degrade_steps: List[str] = field(default_factory=list)
    degrade_entries: int = 0
    dropped_frames: int = 0           # ladder L3 deliberate drops
    epochs: int = 0
    concealed: int = 0
    decodes: int = 0
    shed: bool = False
    aborted: bool = False
    cancelled: bool = False
    error: Optional[str] = None
    chaos_faults: List[str] = field(default_factory=list)

    @property
    def graceful(self) -> bool:
        """True when the session ended without a raw (non-taxonomy) escape.

        Cancelled, shed and aborted sessions are all *graceful*: their
        failures carry ReproError context.  Only supervisor-recorded
        unhandled escapes (tracked origin-wide) are non-graceful.
        """
        return True

    @property
    def miss_rate(self) -> float:
        if not self.frames_delivered:
            return 0.0
        return self.deadline_misses / self.frames_delivered


class _Eos:
    """Queue sentinel: the stream is over, reader should exit."""


_EOS = _Eos()


@dataclass
class _Epoch:
    """One contiguously-decodable stretch of the session (a single rung
    and FEC configuration's manifest, plus what arrived during it)."""

    rung: Rung
    manifest: StreamSession
    pictures: List[List[Packet]]      # media packets per coding index
    t0: float                         # virtual time the epoch started
    arrivals: List[Arrival] = field(default_factory=list)


@dataclass
class _Stats:
    """Delivery accounting shared between the sender and the reader."""

    window: int
    recent: Deque[bool] = field(default_factory=deque)   # True = missed
    delivered: int = 0
    misses: int = 0

    def record(self, missed: bool) -> None:
        self.delivered += 1
        if missed:
            self.misses += 1
        self.recent.append(missed)
        while len(self.recent) > self.window:
            self.recent.popleft()

    @property
    def window_miss_rate(self) -> float:
        if len(self.recent) < self.window:
            return 0.0
        return sum(self.recent) / len(self.recent)


class StreamSessionRunner:
    """Drives one client's session through the state machine."""

    def __init__(
        self,
        profile: ClientProfile,
        config: SessionConfig,
        cache: SegmentCache,
        supervisor: Supervisor,
        *,
        sequence: str = "bench",
        rungs: Sequence[Rung] = DEFAULT_RUNGS,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.profile = profile
        self.config = config
        self.cache = cache
        self.supervisor = supervisor
        self.sequence = sequence
        self.rungs = tuple(rungs)
        self.metrics = metrics
        self.state = SessionState.ADMITTED
        self.result = SessionResult(session_id=profile.session_id)
        self.result.states.append(self.state.value)
        # Session-private randomness: backoff jitter must not perturb the
        # channel's RNG stream, or a retry would change the loss pattern.
        self._rng = random.Random(profile.seed ^ 0x5EED)
        self.channel = LossyChannel(
            loss_rate=profile.loss_rate, burst_length=profile.burst_length,
            delay=profile.delay, jitter=profile.jitter, seed=profile.seed,
        )
        self._rung_index = min(profile.rung_index, len(self.rungs) - 1)
        self._fec_group = config.fec_group
        self._fec_depth = config.fec_depth
        self._drop_non_i = False
        self._ladder_level = 0
        self._frames_since_step = 0
        self._failures = 0
        self._attempt = 0
        self._stats = _Stats(window=config.degrade_window)
        self._queue: Optional["asyncio.Queue[object]"] = None
        self._reader_task: Optional["asyncio.Task[object]"] = None
        self._epochs: List[_Epoch] = []
        self._parity_seq = 0
        self._play_start = 0.0
        # set by the ladder's "rung" action; the send loop (which may
        # await) performs the actual switch.
        self._pending_rung: Optional[int] = None

    # ------------------------------------------------------------------
    # state machine

    def _set_state(self, state: SessionState) -> None:
        if state is self.state:
            return
        if state is SessionState.DEGRADED:
            self.result.degrade_entries += 1
        self.state = state
        self.result.states.append(state.value)
        self.result.final_state = state.value
        self._emit("session.state", state=state.value)

    def _emit(self, name: str, **fields: object) -> None:
        """Emit an event stamped with virtual time (one flag check when
        the event log is disabled, before any loop access)."""
        if not _events.state.enabled:
            return
        try:
            t = asyncio.get_running_loop().time()
        except RuntimeError:
            t = None
        _events.emit(name, t=t, **fields)

    def _abort(self, reason: str) -> SessionAborted:
        return SessionAborted(
            reason, session_id=self.profile.session_id, state=self.state.value)

    # ------------------------------------------------------------------
    # entry point

    async def run(self) -> SessionResult:
        """Run the session to completion; never lets a raw exception out.

        The whole lifetime runs inside a ``correlation_scope`` bound to
        the session id, so every event, span, error and flight-record
        dump produced here (including by tasks spawned within, like the
        reader) is attributable to this one client.
        """
        with correlation_scope(session_id=self.profile.session_id):
            return await self._run_supervised()

    async def _run_supervised(self) -> SessionResult:
        try:
            await self._run_pipeline()
        except asyncio.CancelledError:
            self.result.cancelled = True
            await self._teardown()
            self._set_state(SessionState.CLOSED)
            raise
        except SessionAborted as error:
            self.result.aborted = True
            self.result.error = str(error)
            self._emit("session.abort", kind=type(error).__name__,
                       reason=error.message)
            flightrec.recorder.dump("session.aborted", error=error)
            await self._teardown()
            self._set_state(SessionState.CLOSED)
        except ReproError as error:
            if error.session_id is None:
                error.session_id = self.profile.session_id
            self.result.aborted = True
            self.result.error = str(error)
            self._emit("session.abort", kind=type(error).__name__,
                       reason=error.message)
            flightrec.recorder.dump("session.aborted", error=error)
            await self._teardown()
            self._set_state(SessionState.CLOSED)
        return self.result

    async def _run_pipeline(self) -> None:
        loop = asyncio.get_running_loop()
        stream = await self._fetch_rung(self._rung_index)
        if self.profile.corrupt:
            stream, fault = FaultInjector(seed=self.profile.seed).inject(stream)
            self.result.chaos_faults.append(str(fault))
            self._emit("session.corrupt", fault=str(fault))
        self._set_state(SessionState.STREAMING)
        self._play_start = loop.time()
        queue: "asyncio.Queue[object]" = asyncio.Queue(
            maxsize=self.config.queue_limit)
        self._queue = queue
        self._reader_task = self.supervisor.spawn(
            self._reader(queue), f"{self.profile.session_id}.reader")
        self._open_epoch(stream)
        await self._stream_frames()
        self._set_state(SessionState.DRAINING)
        await self._drain(queue)
        self._decode_epochs()
        self._set_state(SessionState.CLOSED)

    # ------------------------------------------------------------------
    # epochs

    def _open_epoch(self, stream: EncodedVideo) -> None:
        manifest, packets = packetize(stream, mtu=self.config.mtu)
        pictures: List[List[Packet]] = [[] for _ in manifest.pictures]
        for packet in packets:
            pictures[packet.picture_index].append(packet)
        self._epochs.append(_Epoch(
            rung=self.rungs[self._rung_index], manifest=manifest,
            pictures=pictures, t0=asyncio.get_running_loop().time(),
        ))
        # Parity sequence numbers live above the media range so per-picture
        # FEC blocks never collide across pictures.
        self._parity_seq = manifest.packet_count
        self.result.epochs = len(self._epochs)
        rung = self.rungs[self._rung_index]
        self._emit("session.epoch", index=len(self._epochs),
                   rung=f"{rung.width}x{rung.height}@qp{rung.qp}")

    async def _fetch_rung(self, rung_index: int) -> EncodedVideo:
        rung = self.rungs[rung_index]
        key = rung.key(self.sequence, self.profile.codec)

        async def fetch() -> EncodedVideo:
            kind = self.cache.lookup_state(key)
            stream = await self.cache.get(key)
            if kind == "hit":
                self._emit("cache.hit", key=str(key))
            elif kind == "wait":
                self._emit("cache.wait", key=str(key))
            else:
                self._emit("cache.encode", key=str(key))
            return stream

        return await self._with_retries(f"fetch {key}", fetch)

    # ------------------------------------------------------------------
    # sending

    async def _stream_frames(self) -> None:
        loop = asyncio.get_running_loop()
        epoch = self._epochs[-1]
        coding_index = 0
        while coding_index < epoch.manifest.picture_count:
            display, frame_type, _ = epoch.manifest.pictures[coding_index]
            due = self._play_start + self.result.frames_sent / epoch.manifest.fps
            now = loop.time()
            if due > now:
                await asyncio.sleep(due - now)
            events = self.profile.chaos.get(self.result.frames_sent, ())
            for event in events:
                self._apply_chaos(event)
            if self._drop_non_i and frame_type is not FrameType.I:
                self.result.dropped_frames += 1
            else:
                await self._deliver_picture(epoch, coding_index, display,
                                            events)
            self.result.frames_sent += 1
            coding_index += 1
            if self._evaluate_pressure() and self._pending_rung is not None:
                await self._switch_rung(self._pending_rung)
                self._pending_rung = None
                epoch = self._epochs[-1]
                # resume from the same coding position on the new rung
                # (every rung encodes the same clip schedule).
                coding_index = min(coding_index,
                                   epoch.manifest.picture_count)

    async def _switch_rung(self, rung_index: int) -> None:
        stream = await self._fetch_rung(rung_index)
        self._rung_index = rung_index
        self._open_epoch(stream)

    async def _deliver_picture(self, epoch: _Epoch, coding_index: int,
                               display: int, events: Tuple[Tuple[object, ...],
                                                           ...]) -> None:
        loop = asyncio.get_running_loop()
        queue = self._queue
        assert queue is not None
        nacked = any(event and event[0] == "nack" for event in events)

        async def attempt() -> None:
            nonlocal nacked
            if nacked:
                # Malformed ack from the client: the send is not
                # confirmed, so the origin retries the whole picture.
                nacked = False
                raise OriginError(
                    "malformed ack for picture "
                    f"{coding_index}",
                    session_id=self.profile.session_id,
                    picture_index=coding_index)
            packets = self._coded_packets(epoch.pictures[coding_index])
            offset = loop.time() - epoch.t0
            arrivals, _ = self.channel.transmit(
                packets, self.config.packet_interval, start_time=offset)
            epoch.arrivals.extend(arrivals)
            last = max((a.time for a in arrivals), default=offset)
            deadline = (self._play_start + self.config.startup_depth
                        + (display + 1) / epoch.manifest.fps)
            item = (display, deadline, epoch.t0 + last, events)
            await asyncio.wait_for(queue.put(item),
                                   timeout=self.config.put_timeout)

        await self._with_retries(f"deliver picture {coding_index}", attempt)
        if self.metrics is not None:
            self.metrics.histogram(
                "origin.queue.depth", DEPTH_BUCKETS).observe(queue.qsize())

    def _coded_packets(self, media: List[Packet]) -> List[Packet]:
        """Apply the *current* FEC configuration to one picture group."""
        coded = fec_encode(media, group_size=self._fec_group,
                           depth=self._fec_depth)
        out: List[Packet] = []
        for packet in coded:
            if packet.is_parity:
                out.append(replace(packet, seq=self._parity_seq))
                self._parity_seq += 1
            else:
                out.append(packet)
        return out

    def _apply_chaos(self, event: Tuple[object, ...]) -> None:
        if not event:
            return
        kind = event[0]
        if kind == "flap":
            self.channel.set_loss(float(event[1]), float(event[2]))
            self.result.chaos_faults.append(
                f"flap loss={event[1]} burst={event[2]}")
            self._emit("session.chaos", kind="flap", loss=float(event[1]),
                       burst=float(event[2]))
        elif kind == "heal":
            self.channel.set_loss(self.profile.loss_rate,
                                  self.profile.burst_length)
            self.result.chaos_faults.append("heal")
            self._emit("session.chaos", kind="heal")

    # ------------------------------------------------------------------
    # retry / failure budget

    async def _with_retries(self, label: str, attempt_fn) -> object:
        while True:
            try:
                return await attempt_fn()
            except asyncio.CancelledError:
                raise
            except (OriginError, asyncio.TimeoutError) as error:
                self._failures += 1
                if isinstance(error, SessionAborted):
                    raise
                if self._failures > self.config.failure_budget:
                    raise self._abort(
                        f"failure budget ({self.config.failure_budget}) "
                        f"exhausted during {label}: {error}") from error
                delay = self.next_backoff()
                self.result.retries += 1
                self.result.backoff_seconds += delay
                self._emit("session.retry", label=label,
                           failures=self._failures, delay=delay)
                await asyncio.sleep(delay)

    def next_backoff(self) -> float:
        """Jittered exponential backoff: base·2^attempt, clamped, ±50%."""
        raw = min(self.config.backoff_cap,
                  self.config.backoff_base * (2 ** self._attempt))
        self._attempt += 1
        return raw * (0.5 + self._rng.random() / 2.0)

    # ------------------------------------------------------------------
    # degradation ladder

    def _evaluate_pressure(self) -> bool:
        """Check queue depth and miss rate; walk the ladder. Returns True
        when a rung switch opened a new epoch."""
        queue = self._queue
        assert queue is not None
        depth = queue.qsize()
        rate = self._stats.window_miss_rate
        pressured = (rate >= self.config.degrade_enter
                     or depth >= self.config.queue_limit - 1)
        self._frames_since_step += 1
        if self.state is SessionState.STREAMING and pressured:
            self._set_state(SessionState.DEGRADED)
            return self._ladder_step()
        if self.state is SessionState.DEGRADED:
            if (rate < self.config.degrade_enter
                    and depth <= self.config.degrade_exit_depth):
                self._set_state(SessionState.STREAMING)
                return False
            if self._frames_since_step >= self.config.degrade_patience:
                return self._ladder_step()
        return False

    def _ladder_step(self) -> bool:
        """Apply the next degradation action; True when the rung changed."""
        self._frames_since_step = 0
        while self._ladder_level < len(LADDER_STEPS):
            action = LADDER_STEPS[self._ladder_level]
            self._ladder_level += 1
            if action == "fec":
                if self._fec_depth > 1:
                    self._fec_depth -= 1
                else:
                    self._fec_group = 0
                self.result.degrade_steps.append("fec")
                self._count("origin.degrade.fec")
                self._emit("session.degrade", action="fec")
                return False
            if action == "rung":
                if self._rung_index + 1 >= len(self.rungs):
                    continue     # already at the bottom rung: next action
                self.result.degrade_steps.append("rung")
                self._count("origin.degrade.rung")
                self._emit("session.degrade", action="rung")
                self._pending_rung = self._rung_index + 1
                return True      # caller awaits the actual switch
            if action == "frames":
                self._drop_non_i = True
                self.result.degrade_steps.append("frames")
                self._count("origin.degrade.frames")
                self._emit("session.degrade", action="frames")
                return False
            self.result.degrade_steps.append("shed")
            self.result.shed = True
            self._count("origin.degrade.shed")
            self._emit("session.degrade", action="shed")
            raise self._abort(
                "degradation ladder exhausted under sustained pressure: "
                "session shed")
        return False

    # ------------------------------------------------------------------
    # reader

    async def _reader(self, queue: "asyncio.Queue[object]") -> None:
        loop = asyncio.get_running_loop()
        while True:
            item = await queue.get()
            try:
                if item is _EOS:
                    return
                display, deadline, ready_at, events = item  # type: ignore[misc]
                now = loop.time()
                if ready_at > now:
                    await asyncio.sleep(ready_at - now)
                for event in events:                 # type: ignore[union-attr]
                    if event and event[0] == "stall":
                        self.result.chaos_faults.append(
                            f"stall {event[1]}s")
                        await asyncio.sleep(float(event[1]))
                await asyncio.sleep(self.profile.render_seconds)
                now = loop.time()
                missed = now > deadline
                self._stats.record(missed)
                self.result.frames_delivered += 1
                if missed:
                    self.result.deadline_misses += 1
                    self.result.miss_seconds.append(now - deadline)
                    self._count("origin.deadline.missed")
                    self._emit("session.deadline_miss", display=display,
                               lateness=now - deadline)
                if self.metrics is not None:
                    self.metrics.histogram(
                        "origin.deadline.lateness", LATENCY_BUCKETS,
                    ).observe(max(0.0, now - deadline))
            finally:
                queue.task_done()

    # ------------------------------------------------------------------
    # draining and decode

    async def _drain(self, queue: "asyncio.Queue[object]") -> None:
        reader = self._reader_task
        assert reader is not None
        try:
            await asyncio.wait_for(queue.put(_EOS),
                                   timeout=self.config.drain_timeout)
            await asyncio.wait_for(asyncio.shield(reader),
                                   timeout=self.config.drain_timeout)
        except asyncio.TimeoutError:
            # A terminally stalled reader: force it down; drained frames
            # already delivered keep their accounting.
            reader.cancel()
            await asyncio.gather(reader, return_exceptions=True)

    def _decode_epochs(self) -> None:
        if not self.config.decode:
            return
        for epoch in self._epochs:
            result: TransportResult = receive(
                epoch.manifest, epoch.arrivals,
                conceal=self.config.conceal,
                jitter_depth=self.config.jitter_depth,
                backend=self.config.backend,
                session_id=self.profile.session_id,
            )
            self.result.decodes += 1
            self.result.concealed += result.concealed_count

    # ------------------------------------------------------------------
    # teardown

    async def _teardown(self) -> None:
        reader = self._reader_task
        if reader is not None and not reader.done():
            reader.cancel()
            await asyncio.gather(reader, return_exceptions=True)
        self._reader_task = None
        self._queue = None

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc()
