"""The receive path: jitter buffer → FEC → reassembly → hardened decode.

This is where the transport layer meets PR 1's robustness engine.  The
receiver never invents a decoder of its own: whatever survives the
network is reassembled into a (possibly damaged) stream and handed to
:func:`repro.robustness.engine.decode_stream`, so packet loss exercises
exactly the concealment and I-picture resynchronisation machinery that
bitstream faults do.  A picture slot damaged by loss surfaces either
concealed (with a :class:`~repro.errors.ConcealmentEvent`) or, in strict
mode, as a :class:`~repro.errors.ReproError` whose ``packet_seq`` context
names the first lost packet behind it — one error taxonomy for bit rot
and network rot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Union

from repro.codecs import get_decoder
from repro.codecs.base import EncodedVideo
from repro.common.yuv import YuvSequence
from repro.errors import ConcealmentEvent, ReproError
from repro.robustness.conceal import Concealer
from repro.robustness.engine import DecodeResult, decode_stream
from repro.telemetry.metrics import registry as telemetry_registry
from repro.telemetry.trace import span as telemetry_span, state as telemetry_state
from repro.transport.channel import Arrival, ChannelReport, LossyChannel
from repro.transport.fec import FecReport, fec_decode, fec_encode
from repro.transport.jitter import DEFAULT_DEPTH, JitterBuffer, JitterReport
from repro.transport.packetize import (
    DEFAULT_MTU,
    PictureLoss,
    StreamSession,
    packetize,
    reassemble,
)

EventCallback = Callable[[ConcealmentEvent], None]


@dataclass
class TransportResult:
    """Everything one simulated reception produced."""

    session: StreamSession
    decode: DecodeResult
    losses: List[PictureLoss]
    fec: FecReport
    jitter: JitterReport
    channel: Optional[ChannelReport] = None

    @property
    def frames(self) -> YuvSequence:
        return self.decode.frames

    @property
    def concealed_count(self) -> int:
        return self.decode.concealed_count

    @property
    def damaged_pictures(self) -> int:
        """Picture slots still damaged after FEC recovery."""
        return len(self.losses)

    @property
    def complete(self) -> bool:
        """True when every display slot of the session came out."""
        return len(self.decode.frames) == self.session.picture_count

    def __str__(self) -> str:
        return (
            f"transport: {self.jitter.admitted} packets admitted "
            f"({self.jitter.late_dropped} late), {self.fec.recovered} "
            f"FEC-recovered, {self.damaged_pictures} damaged picture slot(s), "
            f"{self.concealed_count} concealed"
        )


def receive(
    session: StreamSession,
    arrivals: Iterable[Arrival],
    *,
    conceal: Union[None, str, Concealer] = "copy-last",
    jitter_depth: float = DEFAULT_DEPTH,
    backend: str = "simd",
    on_event: Optional[EventCallback] = None,
    session_id: Optional[str] = None,
) -> TransportResult:
    """Receive ``arrivals`` and decode what survives.

    With a concealment strategy (the default), the decode always returns
    the session's full display length.  ``conceal=None`` is strict mode:
    the first damaged picture raises a normalised
    :class:`~repro.errors.ReproError` carrying ``packet_seq`` context.
    ``session_id`` (set by the multi-client origin) is threaded into any
    :class:`~repro.errors.ReproError` escaping the decode, so a failure
    inside a concurrent serve names the client it belongs to.
    """
    with telemetry_span("transport.receive", codec=session.codec,
                        pictures=session.picture_count):
        buffer = JitterBuffer(fps=session.fps, depth=jitter_depth)
        admitted, jitter_report = buffer.admit(arrivals)
        media, fec_report = fec_decode(admitted)
        stream, losses = reassemble(session, media)
        packet_context = {
            loss.picture_index: loss.lost_seqs[0] for loss in losses
        }
        if telemetry_state.enabled:
            reg = telemetry_registry()
            reg.counter("transport.packets.received").inc(jitter_report.admitted)
            if losses:
                reg.counter("transport.packets.lost").inc(
                    sum(len(loss.lost_seqs) for loss in losses))
        decoder = get_decoder(session.codec, backend=backend)
        try:
            decode = decode_stream(decoder, stream, conceal=conceal,
                                   on_event=on_event,
                                   packet_context=packet_context)
        except ReproError as error:
            if session_id is not None and error.session_id is None:
                error.session_id = session_id
            raise
    return TransportResult(
        session=session, decode=decode, losses=losses,
        fec=fec_report, jitter=jitter_report,
    )


def simulate_transmission(
    stream: EncodedVideo,
    *,
    mtu: int = DEFAULT_MTU,
    fec_group: int = 4,
    fec_depth: int = 1,
    channel: Optional[LossyChannel] = None,
    jitter_depth: float = DEFAULT_DEPTH,
    conceal: Union[None, str, Concealer] = "copy-last",
    backend: str = "simd",
    on_event: Optional[EventCallback] = None,
    session_id: Optional[str] = None,
) -> TransportResult:
    """End-to-end: packetize → FEC → lossy channel → receive → decode.

    ``channel`` is an injectable seam: pass a configured, seeded
    :class:`~repro.transport.channel.LossyChannel` and this function uses
    *that instance* — its Gilbert–Elliott state advances across the call,
    so the origin and tests can share one persistent channel per client
    (and flap it mid-stream with :meth:`~LossyChannel.set_loss`).  When
    omitted, a perfect channel (no loss) is constructed.  ``fec_group=0``
    disables FEC.  Packets are paced uniformly across the stream's
    real-time duration, so the jitter buffer's deadlines mean what they
    would in a live player.
    """
    session, packets = packetize(stream, mtu=mtu)
    packets = fec_encode(packets, group_size=fec_group, depth=fec_depth)
    if channel is None:
        channel = LossyChannel()
    duration = session.picture_count / session.fps
    packet_interval = duration / max(1, len(packets))
    arrivals, channel_report = channel.transmit(packets, packet_interval)
    result = receive(session, arrivals, conceal=conceal,
                     jitter_depth=jitter_depth, backend=backend,
                     on_event=on_event, session_id=session_id)
    result.channel = channel_report
    return result
