"""Seeded, reproducible lossy-channel models.

The channel turns a paced packet train into a set of *arrivals*: some
packets vanish, some arrive twice, some arrive late enough to land behind
their successors.  All randomness comes from one ``random.Random(seed)``,
so a sweep configuration replays bit-identically — the same property the
fault injector (:mod:`repro.robustness.inject`) guarantees for bitstream
corruption.

Loss follows the **Gilbert–Elliott** two-state Markov chain, the standard
model for bursty packet loss on real networks: a *good* state that
delivers and a *bad* state that drops.  The model is parameterised by the
two numbers practitioners actually measure — the stationary loss rate
``π`` and the mean burst length ``L`` — and derives the transition
probabilities from them::

    r = 1 / L                  (bad → good: bursts end after L packets on average)
    p = r · π / (1 − π)        (good → bad: fixes the stationary loss rate)

``burst_length=1`` degenerates to i.i.d. (Bernoulli) loss.  Delay is a
base propagation delay plus exponentially distributed jitter; reordering
emerges from jitter and from an explicit reorder probability that holds a
packet back a few packet slots; duplication re-delivers a packet with an
independent delay draw.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.transport.packetize import Packet


@dataclass(frozen=True)
class Arrival:
    """One packet landing at the receiver at ``time`` seconds."""

    packet: Packet
    time: float


class GilbertElliott:
    """The two-state Markov loss process (good = deliver, bad = drop).

    >>> model = GilbertElliott(loss_rate=0.05, burst_length=3.0, seed=1)
    >>> sum(not model.survives() for _ in range(10000)) / 10000   # doctest: +SKIP
    0.0487                                                        # ≈ loss_rate
    """

    def __init__(self, loss_rate: float, burst_length: float = 1.0,
                 seed: int = 0, rng: Optional[random.Random] = None) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise ConfigError(f"loss_rate must be in [0, 1), got {loss_rate}")
        if burst_length < 1.0:
            raise ConfigError(
                f"burst_length must be >= 1 packet, got {burst_length}")
        self.loss_rate = loss_rate
        self.burst_length = burst_length
        #: bad → good transition probability
        self.r = 1.0 / burst_length
        #: good → bad transition probability (clamped: very high loss with
        #: very short bursts has no consistent chain)
        self.p = min(1.0, self.r * loss_rate / (1.0 - loss_rate))
        self._rng = rng if rng is not None else random.Random(seed)
        # Start from the stationary distribution so short runs are unbiased.
        self._bad = self._rng.random() < loss_rate

    def reconfigure(self, loss_rate: float, burst_length: float = 1.0) -> None:
        """Re-derive the chain parameters mid-stream (a channel *flap*).

        The RNG stream and the current good/bad state are kept, so a
        seeded run stays bit-reproducible across flaps: only the
        transition probabilities change from the next packet on.
        """
        if not 0.0 <= loss_rate < 1.0:
            raise ConfigError(f"loss_rate must be in [0, 1), got {loss_rate}")
        if burst_length < 1.0:
            raise ConfigError(
                f"burst_length must be >= 1 packet, got {burst_length}")
        self.loss_rate = loss_rate
        self.burst_length = burst_length
        self.r = 1.0 / burst_length
        self.p = min(1.0, self.r * loss_rate / (1.0 - loss_rate))

    def survives(self) -> bool:
        """Advance one packet; True when the packet is delivered."""
        delivered = not self._bad
        if self._bad:
            if self._rng.random() < self.r:
                self._bad = False
        elif self._rng.random() < self.p:
            self._bad = True
        return delivered


@dataclass
class ChannelReport:
    """What the channel did to one packet train."""

    sent: int = 0
    delivered: int = 0      # distinct packets that arrived at least once
    lost: int = 0
    duplicated: int = 0     # extra copies delivered
    reordered: int = 0      # arrivals landing behind a later-sent packet
    max_delay: float = 0.0  # worst single arrival delay (seconds)

    @property
    def observed_loss_rate(self) -> float:
        return self.lost / self.sent if self.sent else 0.0


class LossyChannel:
    """A composable lossy channel: loss, jitter, reordering, duplication.

    ``transmit`` never mutates packets; it returns
    ``(arrivals sorted by arrival time, report)``.
    """

    def __init__(
        self,
        loss_rate: float = 0.0,
        burst_length: float = 1.0,
        delay: float = 0.02,
        jitter: float = 0.0,
        reorder_rate: float = 0.0,
        reorder_depth: float = 3.0,
        duplicate_rate: float = 0.0,
        seed: int = 0,
    ) -> None:
        for name, value in (("delay", delay), ("jitter", jitter)):
            if value < 0:
                raise ConfigError(f"{name} must be >= 0, got {value}")
        for name, value in (("reorder_rate", reorder_rate),
                            ("duplicate_rate", duplicate_rate)):
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {value}")
        if reorder_depth < 0:
            raise ConfigError(f"reorder_depth must be >= 0, got {reorder_depth}")
        self.delay = delay
        self.jitter = jitter
        self.reorder_rate = reorder_rate
        self.reorder_depth = reorder_depth
        self.duplicate_rate = duplicate_rate
        self._rng = random.Random(seed)
        self._loss = GilbertElliott(loss_rate, burst_length, rng=self._rng)

    @property
    def loss_rate(self) -> float:
        return self._loss.loss_rate

    @property
    def burst_length(self) -> float:
        return self._loss.burst_length

    def set_loss(self, loss_rate: float, burst_length: float = 1.0) -> None:
        """Flap the channel: change the loss process without reseeding.

        The origin's chaos layer uses this to degrade and heal a live
        client mid-stream; the shared RNG keeps the run reproducible.
        """
        self._loss.reconfigure(loss_rate, burst_length)

    def _arrival_delay(self, packet_interval: float) -> float:
        delay = self.delay
        if self.jitter > 0:
            delay += self._rng.expovariate(1.0 / self.jitter)
        if self.reorder_rate and self._rng.random() < self.reorder_rate:
            delay += self._rng.uniform(1.0, self.reorder_depth) * packet_interval
        return delay

    def transmit(self, packets: Sequence[Packet], packet_interval: float = 1e-3,
                 start_time: float = 0.0,
                 ) -> Tuple[List[Arrival], ChannelReport]:
        """Carry ``packets`` (paced ``packet_interval`` seconds apart).

        ``start_time`` offsets the send timeline, so one persistent
        channel instance can carry a stream segment by segment (the
        origin transmits picture by picture) and the arrival clock keeps
        advancing instead of restarting at zero.
        """
        if packet_interval <= 0:
            raise ConfigError(
                f"packet_interval must be positive, got {packet_interval}")
        if start_time < 0:
            raise ConfigError(f"start_time must be >= 0, got {start_time}")
        report = ChannelReport(sent=len(packets))
        arrivals: List[Tuple[float, int, Packet]] = []
        for position, packet in enumerate(packets):
            send_time = start_time + position * packet_interval
            if not self._loss.survives():
                report.lost += 1
                continue
            report.delivered += 1
            copies = 1
            if self.duplicate_rate and self._rng.random() < self.duplicate_rate:
                copies = 2
                report.duplicated += 1
            for _ in range(copies):
                delay = self._arrival_delay(packet_interval)
                report.max_delay = max(report.max_delay, delay)
                arrivals.append((send_time + delay, position, packet))
        arrivals.sort(key=lambda item: item[0])
        highest_position = -1
        for _, position, _ in arrivals:
            if position < highest_position:
                report.reordered += 1
            else:
                highest_position = position
        return [Arrival(packet, time) for time, _, packet in arrivals], report
