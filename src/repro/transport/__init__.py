"""Resilient streaming transport: the encode → network → decode path.

HD-VideoBench measures codecs in isolation, but its target applications —
players, conferencing, streaming — deliver bitstreams over lossy
networks.  This package carries any
:class:`~repro.codecs.base.EncodedVideo` over a simulated channel and
decodes what survives, so the hardened decoders of
:mod:`repro.robustness` are exercised by realistic packet loss, bursts,
reordering and late arrival instead of only synthetic bit flips.

The path, sender to screen:

``packetize``
    Picture → MTU-sized fragments with sequence numbers and picture
    headers; a wire format; loss-exact reassembly on the far side.

``fec``
    XOR-parity forward error correction over interleaved packet groups —
    one loss per group is rebuilt before the decoder ever notices.

``channel``
    Seeded, reproducible network damage: i.i.d. and Gilbert–Elliott burst
    loss, delay/jitter, reordering, duplication.

``jitter``
    A playout-deadline jitter buffer: packets later than their picture's
    play-out time are dropped like any other loss.

``receiver``
    Jitter buffer → FEC → reassembly → the PR 1 hardened decode engine,
    with losses reported through the one :class:`~repro.errors.ReproError`
    taxonomy (``packet_seq`` context) and concealed by the existing
    strategies.

``bench``
    The seeded loss-rate × burst × FEC sweep behind
    ``hdvb-bench streaming`` (graceful-decode rate, FEC recovery rate,
    post-concealment PSNR delta).

Everything is off the plain encode/decode hot path: nothing in
:mod:`repro.codecs` imports this package, and telemetry stays behind the
usual no-op fast path.
"""

from repro.transport.channel import (
    Arrival,
    ChannelReport,
    GilbertElliott,
    LossyChannel,
)
from repro.transport.fec import FecReport, fec_decode, fec_encode
from repro.transport.jitter import DEFAULT_DEPTH, JitterBuffer, JitterReport
from repro.transport.packetize import (
    DEFAULT_MTU,
    Packet,
    PacketRef,
    PictureLoss,
    StreamSession,
    packet_from_bytes,
    packetize,
    reassemble,
)
from repro.transport.receiver import (
    TransportResult,
    receive,
    simulate_transmission,
)

__all__ = [
    "Arrival",
    "ChannelReport",
    "DEFAULT_DEPTH",
    "DEFAULT_MTU",
    "FecReport",
    "GilbertElliott",
    "JitterBuffer",
    "JitterReport",
    "LossyChannel",
    "Packet",
    "PacketRef",
    "PictureLoss",
    "StreamSession",
    "TransportResult",
    "fec_decode",
    "fec_encode",
    "packet_from_bytes",
    "packetize",
    "reassemble",
    "receive",
    "simulate_transmission",
]
