"""XOR-parity forward error correction over interleaved packet groups.

The simplest FEC that actually works on real networks (RFC 5109-style
single-parity): for every group of ``group_size`` media packets, send one
parity packet whose payload is the XOR of the group's (zero-padded)
payloads.  Any *one* loss inside a group is recoverable::

    lost = parity XOR (all surviving group members)

A burst of consecutive losses would defeat that, so groups are
**interleaved**: with depth ``d``, a block of ``group_size × d``
consecutive packets is split column-wise into ``d`` groups (packet ``i``
of the block goes to group ``i mod d``).  A burst of up to ``d``
consecutive losses then hits ``d`` *different* groups — one loss each —
and every packet is recovered.  Overhead is ``1 / group_size`` extra
packets regardless of depth.

The parity packet carries a :class:`~repro.transport.packetize.PacketRef`
per protected packet (sequence number, picture metadata, exact payload
length), so a recovered packet is rebuilt in full — metadata included —
from the parity packet plus the surviving members.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.common.gop import FrameType
from repro.errors import ConfigError
from repro.telemetry.metrics import registry as telemetry_registry
from repro.telemetry.trace import state as telemetry_state
from repro.transport.packetize import PARITY, Packet, PacketRef


def _xor_payloads(payloads: Iterable[bytes]) -> bytes:
    """XOR byte strings together, zero-padding to the longest."""
    result = bytearray()
    for payload in payloads:
        if len(payload) > len(result):
            result.extend(b"\x00" * (len(payload) - len(result)))
        for index, byte in enumerate(payload):
            result[index] ^= byte
    return bytes(result)


def _parity_packet(seq: int, group: Sequence[Packet]) -> Packet:
    # Picture fields are placeholders (not carried on the wire for parity);
    # pin them so a wire round trip reproduces the packet exactly.
    return Packet(
        seq=seq, picture_index=0, display_index=0,
        frame_type=FrameType.I, frag_index=0, frag_count=1,
        payload=_xor_payloads(p.payload for p in group),
        kind=PARITY, protects=tuple(p.ref() for p in group),
    )


def fec_encode(packets: Sequence[Packet], group_size: int = 4,
               depth: int = 1) -> List[Packet]:
    """Insert parity packets into a media packet train.

    Returns the transmission order: each block of ``group_size × depth``
    media packets is followed by its ``depth`` parity packets (so parity
    travels close to what it protects and meets similar playout
    deadlines).  ``group_size=0`` disables FEC and returns the packets
    unchanged.  Parity sequence numbers continue after the media range.
    """
    if group_size < 0:
        raise ConfigError(f"group_size must be >= 0, got {group_size}")
    if depth < 1:
        raise ConfigError(f"depth must be >= 1, got {depth}")
    if group_size == 0 or not packets:
        return list(packets)
    parity_seq = max(packet.seq for packet in packets) + 1
    out: List[Packet] = []
    block_span = group_size * depth
    parity_count = 0
    for block_start in range(0, len(packets), block_span):
        block = packets[block_start:block_start + block_span]
        out.extend(block)
        for column in range(depth):
            group = block[column::depth]
            if not group:
                continue
            out.append(_parity_packet(parity_seq, group))
            parity_seq += 1
            parity_count += 1
    if telemetry_state.enabled and parity_count:
        telemetry_registry().counter("transport.fec.parity_sent").inc(parity_count)
    return out


@dataclass
class FecReport:
    """Recovery accounting for one received packet train."""

    parity_received: int = 0
    groups_damaged: int = 0      # groups with at least one missing member
    recovered: int = 0           # packets rebuilt from parity
    unrecoverable: int = 0       # groups with >= 2 missing members
    recovered_seqs: List[int] = field(default_factory=list)

    @property
    def recovery_rate(self) -> float:
        """Recovered fraction of the losses FEC could see (1.0 when clean)."""
        lost = self.recovered + self.unrecoverable_losses
        return self.recovered / lost if lost else 1.0

    # unrecoverable counts *groups*; losses inside them can exceed one each,
    # so track the packet-level figure separately for the rate.
    unrecoverable_losses: int = 0


def fec_decode(packets: Iterable[Packet]) -> Tuple[List[Packet], FecReport]:
    """Recover what parity allows; returns (media packets, report).

    Duplicates (same sequence number) are dropped first.  For every parity
    packet whose group is missing exactly one member, the member is
    rebuilt; groups missing two or more stay lost (single parity cannot
    solve two unknowns).
    """
    media: Dict[int, Packet] = {}
    parity: Dict[int, Packet] = {}
    for packet in packets:
        target = parity if packet.is_parity else media
        target.setdefault(packet.seq, packet)

    report = FecReport(parity_received=len(parity))
    for parity_packet in parity.values():
        missing = [ref for ref in parity_packet.protects
                   if ref.seq not in media]
        if not missing:
            continue
        report.groups_damaged += 1
        if len(missing) > 1:
            report.unrecoverable += 1
            report.unrecoverable_losses += len(missing)
            continue
        ref = missing[0]
        survivors = (media[other.seq].payload
                     for other in parity_packet.protects
                     if other.seq != ref.seq)
        payload = _xor_payloads([parity_packet.payload, *survivors])[:ref.length]
        media[ref.seq] = Packet(
            ref.seq, ref.picture_index, ref.display_index, ref.frame_type,
            ref.frag_index, ref.frag_count, payload,
        )
        report.recovered += 1
        report.recovered_seqs.append(ref.seq)
    if telemetry_state.enabled:
        reg = telemetry_registry()
        if report.recovered:
            reg.counter("transport.fec.recovered").inc(report.recovered)
        if report.unrecoverable:
            reg.counter("transport.fec.unrecoverable").inc(report.unrecoverable)
    return [media[seq] for seq in sorted(media)], report
