"""Playout-deadline jitter buffer.

A streaming receiver cannot wait forever: display frame ``d`` must be on
screen at ``t = depth + d / fps``, where ``depth`` is the buffering delay
the player chose before starting playback.  The jitter buffer admits
every packet that arrives before the deadline of the picture it belongs
to and **drops late packets** — a packet that misses its playout deadline
is as lost as one the network dropped, and is handed to the same
loss-concealment machinery.

Parity packets inherit the *latest* deadline among the packets they
protect: parity is useful as long as at least one protected picture has
not played out yet.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Tuple

from repro.errors import ConfigError
from repro.telemetry.metrics import registry as telemetry_registry
from repro.telemetry.trace import state as telemetry_state
from repro.transport.channel import Arrival
from repro.transport.packetize import Packet

#: Default playout buffering delay (seconds): five frames at 25 fps.
DEFAULT_DEPTH = 0.2


@dataclass
class JitterReport:
    """Admission accounting for one arrival train."""

    admitted: int = 0
    late_dropped: int = 0
    max_lateness: float = 0.0   # worst miss past a deadline (seconds)
    late_seqs: List[int] = field(default_factory=list)

    @property
    def late_rate(self) -> float:
        total = self.admitted + self.late_dropped
        return self.late_dropped / total if total else 0.0


class JitterBuffer:
    """Admit arrivals against per-picture playout deadlines."""

    def __init__(self, fps: int, depth: float = DEFAULT_DEPTH) -> None:
        if fps <= 0:
            raise ConfigError(f"fps must be positive, got {fps}")
        if depth < 0:
            raise ConfigError(f"buffer depth must be >= 0, got {depth}")
        self.fps = fps
        self.depth = depth

    def deadline(self, packet: Packet) -> float:
        """The playout deadline of ``packet`` (seconds from stream start)."""
        if packet.is_parity and packet.protects:
            display = max(ref.display_index for ref in packet.protects)
        else:
            display = packet.display_index
        return self.depth + display / self.fps

    def admit(self, arrivals: Iterable[Arrival],
              ) -> Tuple[List[Packet], JitterReport]:
        """Split arrivals into admitted packets and late drops."""
        report = JitterReport()
        admitted: List[Packet] = []
        for arrival in arrivals:
            lateness = arrival.time - self.deadline(arrival.packet)
            if lateness > 0:
                report.late_dropped += 1
                report.late_seqs.append(arrival.packet.seq)
                report.max_lateness = max(report.max_lateness, lateness)
                continue
            report.admitted += 1
            admitted.append(arrival.packet)
        if telemetry_state.enabled and report.late_dropped:
            telemetry_registry().counter("transport.jitter.late_drops").inc(
                report.late_dropped)
        return admitted, report
