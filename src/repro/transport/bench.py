"""The streaming benchmark: a seeded loss-rate × burst × FEC sweep.

For each codec a tiny clip is encoded once, then every point of the
``loss rate × burst length × FEC overhead`` grid is simulated ``trials``
times over independently seeded channels.  Three things are measured:

* **graceful-decode rate** — the fraction of receptions that produced a
  decode without any unhandled exception (concealment is allowed and
  expected; a raw escape is not);
* **FEC recovery rate** — recovered packets over recoverable-plus-lost,
  i.e. how much of the network's damage the parity absorbed before the
  codec ever saw it;
* **post-concealment PSNR delta** — quality of what played out versus a
  loss-free decode of the same stream.

Every random draw descends from ``seed``, so a sweep is bit-reproducible:
the same seed yields the same reports, channel by channel, delta by
delta.  Exposed through ``hdvb-bench streaming`` and gated by
``benchmarks/test_streaming.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, ClassVar, Dict, List, Optional, Sequence, Tuple

from repro.codecs import get_decoder, get_encoder
from repro.codecs.base import EncodedVideo
from repro.common.metrics import PSNR_IDENTICAL, sequence_psnr
from repro.common.yuv import YuvSequence
from repro.robustness.bench import ALL_CODECS, encoder_fields, make_bench_clip
from repro.robustness.engine import decode_stream
from repro.transport.channel import LossyChannel
from repro.transport.receiver import simulate_transmission

#: Fragment size for the tiny benchmark clips: small enough that every
#: picture spans several packets, so partial-picture loss is exercised.
BENCH_MTU = 64

ProgressCallback = Callable[[str], None]


@dataclass
class StreamingReport:
    """Sweep outcome for one (codec, loss, burst, fec) grid point."""

    codec: str
    loss_rate: float
    burst_length: float
    fec_group: int
    trials: int
    graceful: int = 0            # receptions with no unhandled exception
    complete: int = 0            # receptions returning the full frame count
    packets_sent: int = 0
    packets_lost: int = 0        # dropped by the channel
    fec_recovered: int = 0
    residual_lost: int = 0       # still missing after FEC
    late_dropped: int = 0
    damaged_pictures: int = 0    # picture slots the decoder saw damaged
    concealed_pictures: int = 0
    psnr_deltas: List[float] = field(default_factory=list)
    #: repr() of the first few non-graceful receptions, for diagnosis
    failure_examples: List[str] = field(default_factory=list)

    #: cap on retained examples; ``graceful`` keeps the full total
    MAX_FAILURE_EXAMPLES: ClassVar[int] = 5

    def record_failure(self, error: BaseException) -> None:
        """Keep a bounded sample of unexpected reception errors."""
        if len(self.failure_examples) < self.MAX_FAILURE_EXAMPLES:
            self.failure_examples.append(repr(error))

    @property
    def graceful_rate(self) -> float:
        return self.graceful / self.trials if self.trials else 1.0

    @property
    def complete_rate(self) -> float:
        return self.complete / self.trials if self.trials else 1.0

    @property
    def fec_recovery_rate(self) -> float:
        seen = self.fec_recovered + self.residual_lost
        return self.fec_recovered / seen if seen else 1.0

    @property
    def mean_psnr_delta(self) -> float:
        if not self.psnr_deltas:
            return 0.0
        return sum(self.psnr_deltas) / len(self.psnr_deltas)

    @property
    def worst_psnr_delta(self) -> float:
        return min(self.psnr_deltas) if self.psnr_deltas else 0.0

    def to_record_fields(self) -> Dict[str, Dict[str, Any]]:
        """The axes/metrics split :mod:`repro.observe.record` persists."""
        return {
            "axes": {
                "codec": self.codec,
                "loss": self.loss_rate,
                "burst": self.burst_length,
                "fec": self.fec_group,
            },
            "metrics": {
                "trials": float(self.trials),
                "graceful_rate": self.graceful_rate,
                "complete_rate": self.complete_rate,
                "fec_recovery_rate": self.fec_recovery_rate,
                "packets_sent": float(self.packets_sent),
                "packets_lost": float(self.packets_lost),
                "fec_recovered": float(self.fec_recovered),
                "late_dropped": float(self.late_dropped),
                "concealed_pictures": float(self.concealed_pictures),
                "mean_psnr_delta_db": self.mean_psnr_delta,
                "worst_psnr_delta_db": self.worst_psnr_delta,
            },
        }


def run_streaming(
    codecs: Sequence[str] = ALL_CODECS,
    loss_rates: Sequence[float] = (0.02, 0.05, 0.10),
    burst_lengths: Sequence[float] = (1.0, 3.0),
    fec_groups: Sequence[int] = (0, 4),
    trials: int = 3,
    seed: int = 0,
    frames: int = 5,
    width: int = 32,
    height: int = 32,
    conceal: str = "copy-last",
    mtu: int = BENCH_MTU,
    progress: Optional[ProgressCallback] = None,
) -> List[StreamingReport]:
    """Run the seeded streaming sweep; one report per grid point."""
    video = make_bench_clip(width=width, height=height, frames=frames)
    reports: List[StreamingReport] = []
    config_index = 0
    for codec in codecs:
        encoder = get_encoder(codec, **encoder_fields(codec, width, height))
        stream = encoder.encode_sequence(video)
        clean = decode_stream(get_decoder(codec), stream).frames
        clean_psnr = sequence_psnr(video, clean).combined
        for loss_rate in loss_rates:
            for burst_length in burst_lengths:
                for fec_group in fec_groups:
                    if progress is not None:
                        progress(
                            f"streaming {codec}: loss {loss_rate:.0%}, "
                            f"burst {burst_length:g}, "
                            f"fec {fec_group or 'off'}, {trials} trials")
                    report = StreamingReport(
                        codec=codec, loss_rate=loss_rate,
                        burst_length=burst_length, fec_group=fec_group,
                        trials=trials,
                    )
                    for trial in range(trials):
                        trial_seed = (seed * 1_000_003
                                      + config_index * 101 + trial)
                        _run_trial(stream, video, clean_psnr, report,
                                   conceal, mtu, trial_seed)
                    config_index += 1
                    reports.append(report)
    return reports


def _run_trial(stream: EncodedVideo, video: YuvSequence,
               clean_psnr: float, report: StreamingReport,
               conceal: str, mtu: int, trial_seed: int) -> None:
    channel = LossyChannel(
        loss_rate=report.loss_rate,
        burst_length=report.burst_length,
        seed=trial_seed,
    )
    try:
        result = simulate_transmission(
            stream, mtu=mtu, fec_group=report.fec_group,
            fec_depth=max(1, round(report.burst_length)),
            channel=channel, conceal=conceal,
        )
    except Exception as error:  # noqa: BLE001 -- the metric counts raw escapes
        report.record_failure(error)
        return
    report.graceful += 1
    report.packets_sent += result.channel.sent
    report.packets_lost += result.channel.lost
    report.fec_recovered += result.fec.recovered
    report.residual_lost += sum(len(loss.lost_seqs) for loss in result.losses)
    report.late_dropped += result.jitter.late_dropped
    report.damaged_pictures += result.damaged_pictures
    report.concealed_pictures += result.concealed_count
    if not result.complete:
        return
    report.complete += 1
    received_psnr = sequence_psnr(video, result.frames).combined
    delta = received_psnr - clean_psnr
    if received_psnr >= PSNR_IDENTICAL and clean_psnr >= PSNR_IDENTICAL:
        delta = 0.0
    report.psnr_deltas.append(delta)


def render_streaming(reports: Sequence[StreamingReport],
                     title: str = "Streaming: seeded loss sweep") -> str:
    """Render the sweep reports as an aligned table."""
    from repro.bench.report import render_table

    headers = (
        "codec", "loss", "burst", "fec", "trials", "graceful", "complete",
        "pkt lost", "fec rec", "late", "concealed", "dPSNR mean",
    )
    rows: List[Tuple] = []
    for report in reports:
        rows.append((
            report.codec,
            f"{report.loss_rate * 100:.0f}%",
            f"{report.burst_length:g}",
            report.fec_group or "off",
            report.trials,
            f"{report.graceful_rate * 100:.0f}%",
            f"{report.complete_rate * 100:.0f}%",
            report.packets_lost,
            f"{report.fec_recovery_rate * 100:.0f}%",
            report.late_dropped,
            report.concealed_pictures,
            f"{report.mean_psnr_delta:+.2f} dB",
        ))
    lines = [render_table(headers, rows, title=title)]
    for report in reports:
        if report.failure_examples:
            failed = report.trials - report.graceful
            lines.append(f"{report.codec} loss={report.loss_rate:g} "
                         f"burst={report.burst_length:g} "
                         f"fec={report.fec_group}: {failed} non-graceful "
                         f"reception(s); first "
                         f"{len(report.failure_examples)} example(s):")
            for example in report.failure_examples:
                lines.append(f"  - {example}")
    return "\n".join(lines)
