"""Picture → packet fragmentation, the wire format, and reassembly.

A coded picture rarely fits one network datagram: an HD I picture is tens
of kilobytes, a path MTU is ~1500 bytes.  :func:`packetize` fragments each
:class:`~repro.codecs.base.EncodedPicture` payload into MTU-sized packets
carrying a transport sequence number plus enough picture metadata
(coding/display index, frame type, fragment position) for the receiver to
rebuild the stream without any side channel beyond the
:class:`StreamSession` handshake — the role SDP/a manifest plays for RTP
and DASH.

Wire format (big-endian), media packets::

    magic       2 bytes  b"HP"
    version     u8
    kind        u8       0 = media, 1 = parity
    seq         u32      transport sequence number
    picture     u32      coding-order picture index
    display     u32      display index
    frame_type  u8       I=0, P=1, B=2 (the container's codes)
    frag_index  u16
    frag_count  u16
    length      u16      payload bytes
    payload     bytes

Parity packets (:mod:`repro.transport.fec`) replace the picture fields
with a protected-packet table: ``count u8`` then one 19-byte header
(``seq u32, picture u32, display u32, frame_type u8, frag_index u16,
frag_count u16, length u16``) per protected media packet, followed by
``length u16`` and the XOR payload.

:func:`reassemble` inverts :func:`packetize` under loss: every picture
slot of the session reappears in the output stream — intact when all
fragments arrived, truncated to the contiguous fragment prefix when the
tail was lost, payload-erased when nothing arrived — and each damaged
slot is described by a :class:`PictureLoss` naming the missing sequence
numbers, so the hardened decode engine can conceal it and report the
failure with ``packet_seq`` context.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.codecs.base import EncodedPicture, EncodedVideo
from repro.codecs.container import FRAME_TYPE_CODE, FRAME_TYPE_FROM_CODE
from repro.common.gop import FrameType
from repro.errors import BitstreamError, ConfigError
from repro.telemetry.metrics import registry as telemetry_registry
from repro.telemetry.trace import state as telemetry_state

MAGIC = b"HP"
VERSION = 1

#: Packet kinds on the wire.
MEDIA = "media"
PARITY = "parity"

_KIND_CODE = {MEDIA: 0, PARITY: 1}
_KIND_FROM_CODE = {code: kind for kind, code in _KIND_CODE.items()}

#: Default fragment size (payload bytes per packet): a typical path MTU
#: minus IP/UDP/RTP-style header room.
DEFAULT_MTU = 1200

_MEDIA_HEADER = struct.Struct(">2sBBIIIBHHH")
_PROTECT_ENTRY = struct.Struct(">IIIBHHH")


@dataclass(frozen=True)
class PacketRef:
    """The header of one media packet, without its payload.

    Parity packets carry one ref per protected packet, so a recovered
    packet can be rebuilt in full (metadata *and* exact payload length)
    from the parity packet plus the surviving group members.
    """

    seq: int
    picture_index: int
    display_index: int
    frame_type: FrameType
    frag_index: int
    frag_count: int
    length: int


@dataclass(frozen=True)
class Packet:
    """One transport packet: a payload fragment or an FEC parity block."""

    seq: int
    picture_index: int
    display_index: int
    frame_type: FrameType
    frag_index: int
    frag_count: int
    payload: bytes = b""
    kind: str = MEDIA
    #: for parity packets: the media packets this parity block protects.
    protects: Tuple[PacketRef, ...] = ()

    @property
    def is_parity(self) -> bool:
        return self.kind == PARITY

    def ref(self) -> PacketRef:
        """This packet's header as a :class:`PacketRef`."""
        return PacketRef(
            self.seq, self.picture_index, self.display_index, self.frame_type,
            self.frag_index, self.frag_count, len(self.payload),
        )

    def to_bytes(self) -> bytes:
        """Serialise to the wire format."""
        if len(self.payload) > 0xFFFF:
            raise ConfigError(
                f"packet payload of {len(self.payload)} bytes exceeds the "
                "16-bit length field; lower the MTU"
            )
        if self.kind == MEDIA:
            return _MEDIA_HEADER.pack(
                MAGIC, VERSION, _KIND_CODE[MEDIA], self.seq,
                self.picture_index, self.display_index,
                FRAME_TYPE_CODE[self.frame_type],
                self.frag_index, self.frag_count, len(self.payload),
            ) + self.payload
        if len(self.protects) > 255:
            raise ConfigError(f"parity packet protects {len(self.protects)} "
                              "packets, limit is 255")
        parts = [
            MAGIC,
            struct.pack(">BBI", VERSION, _KIND_CODE[PARITY], self.seq),
            struct.pack(">B", len(self.protects)),
        ]
        for ref in self.protects:
            parts.append(_PROTECT_ENTRY.pack(
                ref.seq, ref.picture_index, ref.display_index,
                FRAME_TYPE_CODE[ref.frame_type],
                ref.frag_index, ref.frag_count, ref.length,
            ))
        parts.append(struct.pack(">H", len(self.payload)))
        parts.append(self.payload)
        return b"".join(parts)


def packet_from_bytes(data: bytes) -> Packet:
    """Parse one wire-format packet (inverse of :meth:`Packet.to_bytes`)."""
    view = memoryview(data)
    offset = 0

    def take(count: int) -> memoryview:
        nonlocal offset
        if offset + count > len(view):
            raise BitstreamError("truncated transport packet")
        chunk = view[offset:offset + count]
        offset += count
        return chunk

    magic, version, kind_code = struct.unpack(">2sBB", take(4))
    if magic != MAGIC:
        raise BitstreamError("not a transport packet (bad magic)")
    if version != VERSION:
        raise BitstreamError(f"unsupported packet version {version}")
    kind = _KIND_FROM_CODE.get(kind_code)
    if kind is None:
        raise BitstreamError(f"unknown packet kind code {kind_code}")
    if kind == MEDIA:
        seq, picture, display, type_code, frag_index, frag_count, length = (
            struct.unpack(">IIIBHHH", take(19)))
        frame_type = FRAME_TYPE_FROM_CODE.get(type_code)
        if frame_type is None:
            raise BitstreamError(f"invalid frame type code {type_code}")
        payload = bytes(take(length))
        packet = Packet(seq, picture, display, frame_type,
                        frag_index, frag_count, payload)
    else:
        (seq,) = struct.unpack(">I", take(4))
        (count,) = struct.unpack(">B", take(1))
        refs = []
        for _ in range(count):
            rseq, picture, display, type_code, frag_index, frag_count, length = (
                _PROTECT_ENTRY.unpack(take(_PROTECT_ENTRY.size)))
            frame_type = FRAME_TYPE_FROM_CODE.get(type_code)
            if frame_type is None:
                raise BitstreamError(f"invalid frame type code {type_code}")
            refs.append(PacketRef(rseq, picture, display, frame_type,
                                  frag_index, frag_count, length))
        (length,) = struct.unpack(">H", take(2))
        payload = bytes(take(length))
        packet = Packet(seq, 0, 0, FrameType.I, 0, 1, payload,
                        kind=PARITY, protects=tuple(refs))
    if offset != len(view):
        raise BitstreamError(f"{len(view) - offset} trailing bytes after packet")
    return packet


@dataclass(frozen=True)
class StreamSession:
    """The out-of-band stream description (the SDP/manifest analogue).

    Everything the receiver needs that does not travel in packets: codec,
    geometry, and the picture schedule (display index, frame type and
    fragment count per coding-order slot).  The schedule makes loss
    accounting exact — a picture whose packets were *all* lost still
    reappears as an erased slot at the right display position, and the
    missing sequence numbers are computable from the fragment counts alone.
    """

    codec: str
    width: int
    height: int
    fps: int
    mtu: int
    #: per coding-order picture: (display_index, frame_type, frag_count)
    pictures: Tuple[Tuple[int, FrameType, int], ...]

    @property
    def picture_count(self) -> int:
        return len(self.pictures)

    @property
    def packet_count(self) -> int:
        return sum(frag_count for _, _, frag_count in self.pictures)


@dataclass(frozen=True)
class PictureLoss:
    """One picture slot damaged by packet loss (for reports and errors)."""

    picture_index: int          # coding-order index
    display_index: int
    frame_type: FrameType
    lost_seqs: Tuple[int, ...]  # missing transport sequence numbers
    received_bytes: int         # contiguous payload prefix that survived

    @property
    def erased(self) -> bool:
        """True when nothing of the picture survived."""
        return self.received_bytes == 0

    def __str__(self) -> str:
        kept = (f"{self.received_bytes} bytes kept" if self.received_bytes
                else "fully lost")
        return (f"picture {self.picture_index} (display {self.display_index}, "
                f"{self.frame_type}) lost packets "
                f"{', '.join(map(str, self.lost_seqs))}: {kept}")


def packetize(stream: EncodedVideo, mtu: int = DEFAULT_MTU,
              ) -> Tuple[StreamSession, List[Packet]]:
    """Fragment ``stream`` into media packets.

    Every picture becomes ``ceil(len(payload) / mtu)`` packets (at least
    one, so zero-byte payloads still occupy a sequence number and their
    loss is detectable).  Returns the session description plus the packets
    in transmission order (coding order, fragments in payload order).
    """
    if mtu < 1:
        raise ConfigError(f"mtu must be >= 1, got {mtu}")
    if mtu > 0xFFFF:
        raise ConfigError(f"mtu {mtu} exceeds the 16-bit length field")
    packets: List[Packet] = []
    seq = 0
    for picture_index, picture in enumerate(stream.pictures):
        payload = picture.payload
        frag_count = max(1, -(-len(payload) // mtu))
        for frag_index in range(frag_count):
            fragment = payload[frag_index * mtu:(frag_index + 1) * mtu]
            packets.append(Packet(
                seq, picture_index, picture.display_index, picture.frame_type,
                frag_index, frag_count, fragment,
            ))
            seq += 1
    if telemetry_state.enabled:
        reg = telemetry_registry()
        reg.counter("transport.packets.sent").inc(len(packets))
        reg.counter("transport.bytes.sent").inc(
            sum(len(p.payload) for p in packets))
    session = StreamSession(
        codec=stream.codec, width=stream.width, height=stream.height,
        fps=stream.fps, mtu=mtu,
        pictures=tuple(
            (p.display_index, p.frame_type, max(1, -(-len(p.payload) // mtu)))
            for p in stream.pictures
        ),
    )
    return session, packets


def reassemble(session: StreamSession, packets: Iterable[Packet],
               ) -> Tuple[EncodedVideo, List[PictureLoss]]:
    """Rebuild the encoded stream from whatever media packets arrived.

    Duplicates are dropped (first arrival wins), arrival order is
    irrelevant.  Every picture slot of the session appears in the output:

    * all fragments present → the original payload, byte for byte;
    * a fragment missing → the payload truncated to its contiguous prefix
      (the decoder hits the cut and raises mid-parse, exactly like the
      ``truncate`` fault model);
    * nothing received → an empty payload (the ``erase`` fault model).

    Damaged slots are additionally described by :class:`PictureLoss`
    records carrying the lost sequence numbers.
    """
    by_picture: Dict[int, Dict[int, Packet]] = {}
    for packet in packets:
        if packet.is_parity:
            continue
        fragments = by_picture.setdefault(packet.picture_index, {})
        fragments.setdefault(packet.frag_index, packet)

    stream = EncodedVideo(codec=session.codec, width=session.width,
                          height=session.height, fps=session.fps)
    losses: List[PictureLoss] = []
    base_seq = 0
    for picture_index, (display_index, frame_type, frag_count) in enumerate(
            session.pictures):
        fragments = by_picture.get(picture_index, {})
        parts: List[bytes] = []
        lost: List[int] = []
        prefix_intact = True
        for frag_index in range(frag_count):
            packet = fragments.get(frag_index)
            if packet is None:
                prefix_intact = False
                lost.append(base_seq + frag_index)
            elif prefix_intact:
                parts.append(packet.payload)
        base_seq += frag_count
        payload = b"".join(parts)
        stream.pictures.append(EncodedPicture(payload, display_index, frame_type))
        if lost:
            losses.append(PictureLoss(
                picture_index, display_index, frame_type,
                tuple(lost), len(payload),
            ))
    if telemetry_state.enabled and losses:
        telemetry_registry().counter("transport.pictures.damaged").inc(len(losses))
    return stream, losses
