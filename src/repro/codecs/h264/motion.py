"""H.264 motion vector field at 4x4 granularity.

Motion vectors are predicted as the component-wise median of the left, top
and top-right neighbour 4x4 cells, which makes the rule uniform across the
16x16/16x8/8x16/8x8 partition shapes.  Cells covered by intra or skipped
macroblocks count as zero vectors.  The grid also carries the reference
index per cell for the deblocking-strength computation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.me.types import MotionVector, ZERO_MV, median_mv


@dataclass(frozen=True)
class CellMotion:
    """Per-4x4-cell motion state (quarter-pel units)."""

    mv: MotionVector
    ref: int


class MvGrid4:
    """Per-picture MV/ref grid at 4x4 cell granularity."""

    def __init__(self, mb_width: int, mb_height: int) -> None:
        self.width = 4 * mb_width
        self.height = 4 * mb_height
        self._cells: List[List[Optional[CellMotion]]] = [
            [None] * self.width for _ in range(self.height)
        ]

    def get(self, bx: int, by: int) -> Optional[CellMotion]:
        if 0 <= bx < self.width and 0 <= by < self.height:
            return self._cells[by][bx]
        return None

    def _candidate(self, bx: int, by: int) -> MotionVector:
        cell = self.get(bx, by)
        return cell.mv if cell is not None else ZERO_MV

    def predictor(self, bx: int, by: int, cells_wide: int) -> MotionVector:
        """Median MV predictor for a partition with top-left cell (bx, by)."""
        left = self._candidate(bx - 1, by)
        top = self._candidate(bx, by - 1)
        top_right = self._candidate(bx + cells_wide, by - 1)
        return median_mv(left, top, top_right)

    def set_rect(self, bx: int, by: int, cells_x: int, cells_y: int,
                 mv: MotionVector, ref: int) -> None:
        cell = CellMotion(mv, ref)
        for row in range(by, min(by + cells_y, self.height)):
            for col in range(bx, min(bx + cells_x, self.width)):
                self._cells[row][col] = cell

    def neighbours(self, bx: int, by: int) -> List[MotionVector]:
        """Distinct spatial neighbour vectors (search candidate predictors)."""
        seen: List[MotionVector] = []
        for nbx, nby in ((bx - 1, by), (bx, by - 1), (bx + 4, by - 1)):
            cell = self.get(nbx, nby)
            if cell is not None and cell.mv not in seen:
                seen.append(cell.mv)
        return seen


#: Inter partition shapes: name -> list of (off_x, off_y, width, height).
PARTITION_SHAPES = {
    "16x16": ((0, 0, 16, 16),),
    "16x8": ((0, 0, 16, 8), (0, 8, 16, 8)),
    "8x16": ((0, 0, 8, 16), (8, 0, 8, 16)),
    "8x8": ((0, 0, 8, 8), (8, 0, 8, 8), (0, 8, 8, 8), (8, 8, 8, 8)),
}
