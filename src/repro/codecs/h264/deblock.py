"""H.264 in-loop deblocking filter.

Runs over a reconstructed frame after the macroblock loop, smoothing block
edges with a strength (bS) derived from coding decisions: 4 across intra
macroblock boundaries (strong filter), 3 inside intra macroblocks, 2 where
either side has coded residual, 1 where motion differs by a pixel or more
or references differ, 0 (no filtering) otherwise.  Both encoder and decoder
apply the filter identically before a frame is used as a reference, so
prediction never drifts.

Edge-processing order: all vertical edges of the frame left-to-right (each
the full picture height), then all horizontal edges top-to-bottom (each
the full picture width).  This differs from the spec's per-macroblock
order but is self-consistent between encoder and decoder, and it exposes
whole-edge vectors to the kernels — exactly the data-parallel layout the
paper's SIMD deblocking kernels exploit.  The per-line sample arithmetic
lives in the kernel backends (``deblock_normal`` / ``deblock_strong``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.codecs.frames import WorkingFrame
from repro.kernels.tables import DEBLOCK_ALPHA, DEBLOCK_BETA, DEBLOCK_TC0
from repro.me.types import MotionVector


@dataclass(frozen=True)
class CellState:
    """Deblocking-relevant state of one 4x4 luma cell."""

    intra: bool
    nonzero: bool
    mv: MotionVector = MotionVector(0, 0)
    ref: int = 0


class DeblockMeta:
    """Per-picture 4x4-cell grid of deblocking state."""

    def __init__(self, mb_width: int, mb_height: int) -> None:
        self.mb_width = mb_width
        self.mb_height = mb_height
        self.width = 4 * mb_width
        self.height = 4 * mb_height
        default = CellState(intra=True, nonzero=True)
        self._cells: List[List[CellState]] = [
            [default] * self.width for _ in range(self.height)
        ]

    def cell(self, bx: int, by: int) -> CellState:
        return self._cells[by][bx]

    def set_rect(self, bx: int, by: int, cells_x: int, cells_y: int,
                 state: CellState) -> None:
        for row in range(by, min(by + cells_y, self.height)):
            for col in range(bx, min(bx + cells_x, self.width)):
                self._cells[row][col] = state

    def mark_intra_mb(self, mbx: int, mby: int) -> None:
        self.set_rect(4 * mbx, 4 * mby, 4, 4, CellState(intra=True, nonzero=True))

    def set_nonzero(self, bx: int, by: int, nonzero: bool) -> None:
        old = self._cells[by][bx]
        self._cells[by][bx] = CellState(old.intra, nonzero, old.mv, old.ref)

    def mark_inter(self, bx: int, by: int, cells_x: int, cells_y: int,
                   mv: MotionVector, ref: int) -> None:
        self.set_rect(bx, by, cells_x, cells_y,
                      CellState(intra=False, nonzero=False, mv=mv, ref=ref))


def boundary_strength(p: CellState, q: CellState, mb_edge: bool) -> int:
    """The bS of the edge between cells ``p`` and ``q``."""
    if p.intra or q.intra:
        return 4 if mb_edge else 3
    if p.nonzero or q.nonzero:
        return 2
    if p.ref != q.ref:
        return 1
    if abs(p.mv.x - q.mv.x) >= 4 or abs(p.mv.y - q.mv.y) >= 4:
        return 1
    return 0


class DeblockFilter:
    """Applies the loop filter to one reconstructed frame."""

    def __init__(self, kernels, qp: int) -> None:
        self.kernels = kernels
        self.alpha = int(DEBLOCK_ALPHA[qp])
        self.beta = int(DEBLOCK_BETA[qp])
        self.tc0_row = DEBLOCK_TC0[qp]

    def apply(self, frame: WorkingFrame, meta: DeblockMeta) -> None:
        """Filter ``frame`` in place (then invalidates its padding caches)."""
        if self.alpha == 0 or self.beta == 0:
            return
        self._filter_plane(frame.y, meta, chroma=False)
        for plane_name in ("u", "v"):
            self._filter_plane(frame.plane(plane_name), meta, chroma=True)
        frame.invalidate_padding()

    # ------------------------------------------------------------------

    def _filter_plane(self, plane: np.ndarray, meta: DeblockMeta, chroma: bool) -> None:
        size = plane.shape[1]
        mb_stride = 8 if chroma else 16
        for x in range(4, size, 4):
            self._filter_edge(plane, meta, x, vertical=True,
                              mb_edge=(x % mb_stride == 0), chroma=chroma)
        size = plane.shape[0]
        for y in range(4, size, 4):
            self._filter_edge(plane, meta, y, vertical=False,
                              mb_edge=(y % mb_stride == 0), chroma=chroma)

    def _edge_strengths(self, meta: DeblockMeta, position: int, count: int,
                        vertical: bool, mb_edge: bool, chroma: bool) -> List[int]:
        """bS per 4-sample segment along a full-length edge."""
        scale = 2 if chroma else 1  # chroma samples -> luma cell coordinates
        edge_cell = (position * scale) // 4
        strengths = []
        for segment in range(count // 4):
            along_cell = (segment * 4 * scale) // 4
            if vertical:
                p = meta.cell(edge_cell - 1, along_cell)
                q = meta.cell(edge_cell, along_cell)
            else:
                p = meta.cell(along_cell, edge_cell - 1)
                q = meta.cell(along_cell, edge_cell)
            strengths.append(boundary_strength(p, q, mb_edge))
        return strengths

    def _filter_edge(self, plane: np.ndarray, meta: DeblockMeta, position: int,
                     vertical: bool, mb_edge: bool, chroma: bool) -> None:
        count = plane.shape[0] if vertical else plane.shape[1]
        strengths = self._edge_strengths(meta, position, count, vertical,
                                         mb_edge, chroma)
        if not any(strengths):
            return
        c0, strong_mask = self._per_position(strengths)
        if np.any(c0 >= 0):
            self._normal_edge(plane, position, count, vertical, c0, chroma)
        if strong_mask is not None:
            self._strong_edge(plane, position, count, vertical, strong_mask, chroma)

    def _per_position(self, strengths: List[int]) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Per-position c0 (bS 1..3; -1 elsewhere) and bS-4 mask (or None)."""
        c0_values = []
        mask_values = []
        any_strong = False
        for bs in strengths:
            if bs == 4:
                c0_values.extend([-1] * 4)
                mask_values.extend([1] * 4)
                any_strong = True
            elif bs > 0:
                c0_values.extend([int(self.tc0_row[bs])] * 4)
                mask_values.extend([0] * 4)
            else:
                c0_values.extend([-1] * 4)
                mask_values.extend([0] * 4)
        c0 = np.array(c0_values, dtype=np.int64)
        mask = np.array(mask_values, dtype=np.int64) if any_strong else None
        return c0, mask

    # ------------------------------------------------------------------

    def _gather(self, plane: np.ndarray, position: int, vertical: bool,
                depth: int) -> List[np.ndarray]:
        """Sample lines p{depth-1}..p0, q0..q{depth-1} across the edge."""
        lines = []
        for offset in range(-depth, depth):
            if vertical:
                lines.append(plane[:, position + offset].copy())
            else:
                lines.append(plane[position + offset, :].copy())
        return lines

    def _scatter(self, plane: np.ndarray, position: int, vertical: bool,
                 offsets: Tuple[int, ...], lines) -> None:
        for offset, line in zip(offsets, lines):
            if vertical:
                plane[:, position + offset] = line
            else:
                plane[position + offset, :] = line

    def _normal_edge(self, plane: np.ndarray, position: int, count: int,
                     vertical: bool, c0: np.ndarray, chroma: bool) -> None:
        p2, p1, p0, q0, q1, q2 = self._gather(plane, position, vertical, 3)
        out_p1, out_p0, out_q0, out_q1 = self.kernels.deblock_normal(
            p2, p1, p0, q0, q1, q2, self.alpha, self.beta, c0, chroma
        )
        self._scatter(plane, position, vertical, (-2, -1, 0, 1),
                      (out_p1, out_p0, out_q0, out_q1))

    def _strong_edge(self, plane: np.ndarray, position: int, count: int,
                     vertical: bool, mask: np.ndarray, chroma: bool) -> None:
        p3, p2, p1, p0, q0, q1, q2, q3 = self._gather(plane, position, vertical, 4)
        out = self.kernels.deblock_strong(
            p3, p2, p1, p0, q0, q1, q2, q3, self.alpha, self.beta, mask, chroma
        )
        self._scatter(plane, position, vertical, (-3, -2, -1, 0, 1, 2), out)
