"""H.264 class codec (paper applications: x264 encoder, FFmpeg decoder)."""

from repro.codecs.h264.config import H264Config
from repro.codecs.h264.decoder import H264Decoder
from repro.codecs.h264.encoder import H264Encoder

__all__ = ["H264Config", "H264Decoder", "H264Encoder"]
