"""H.264 class decoder: bit-exact inverse of the encoder.

Plays the role of the paper's FFmpeg H.264 decode application.  Applies the
same in-loop deblocking filter as the encoder before a frame is used as a
reference, so encoder and decoder reconstructions never drift.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.codecs.base import EncodedPicture, EncodedVideo, VideoDecoder
from repro.codecs.frames import WorkingFrame
from repro.codecs.h264 import common, intra
from repro.codecs.h264.cavlc import CavlcCoder
from repro.codecs.h264.deblock import DeblockFilter, DeblockMeta
from repro.codecs.h264.motion import PARTITION_SHAPES, MvGrid4
from repro.common.bitstream import BitReader
from repro.common.expgolomb import read_se, read_ue
from repro.common.gop import FrameType
from repro.errors import BitstreamError, CodecError
from repro.kernels import get_kernels
from repro.me.types import MotionVector
from repro.robustness.guard import (
    check_header,
    check_motion_vector,
    read_frame_type,
)
from repro.transform.zigzag import ZIGZAG_2X2, unscan, unscan4


class H264Decoder(VideoDecoder):
    """H.264 class decoder (see module docstring)."""

    codec_name = "h264"

    def __init__(self, backend: str = "simd") -> None:
        self.kernels = get_kernels(backend)
        self.cavlc = CavlcCoder()
        self._ref_frames = 0

    def reference_window(self) -> int:
        """The stream's reference-frame count plus the B-picture anchors."""
        return self._ref_frames + 2

    def decode_picture(
        self,
        stream: EncodedVideo,
        picture: EncodedPicture,
        references: Dict[int, WorkingFrame],
    ) -> WorkingFrame:
        display_index = picture.display_index
        frame_type = picture.frame_type
        reader = self._open_reader(picture.payload)
        read_frame_type(reader, expected=frame_type)
        self._qp = check_header("qp", reader.read_bits(6), 0, 51)
        self._search_range = check_header(
            "search_range", reader.read_bits(8), 1, 255
        )
        deblock_on = bool(reader.read_bit())
        ref_frames = reader.read_bits(4)
        l0_count = reader.read_bits(4)
        self._ref_frames = ref_frames

        past = sorted(key for key in references if key < display_index)
        future = sorted(key for key in references if key > display_index)
        l0: List[WorkingFrame] = []
        l1: Optional[WorkingFrame] = None
        if frame_type is FrameType.P:
            if not past or l0_count == 0:
                raise CodecError("P picture without past references")
            if l0_count > len(past):
                raise CodecError("stream references more anchors than decoded")
            l0 = [references[key] for key in reversed(past[-l0_count:])]
        elif frame_type is FrameType.B:
            if not past or not future:
                raise CodecError("B picture requires surrounding anchors")
            l0 = [references[past[-1]]]
            l1 = references[future[0]]

        mb_width = stream.width // 16
        mb_height = stream.height // 16
        recon = WorkingFrame.blank(stream.width, stream.height)
        self._recon = recon
        self._meta = DeblockMeta(mb_width, mb_height)
        self._grid_l0 = MvGrid4(mb_width, mb_height)
        self._grid_l1 = MvGrid4(mb_width, mb_height)
        self._tc_luma = common.TcGrid(mb_width * 4, mb_height * 4)
        self._tc_chroma = {
            "u": common.TcGrid(mb_width * 2, mb_height * 2),
            "v": common.TcGrid(mb_width * 2, mb_height * 2),
        }
        self._intra4_modes: Dict[Tuple[int, int], int] = {}

        for mby in range(mb_height):
            for mbx in range(mb_width):
                if frame_type is FrameType.I:
                    mode = read_ue(reader)
                    if mode == common.I_4X4:
                        self._decode_i4_mb(reader, mbx, mby)
                    elif mode == common.I_16X16:
                        self._decode_i16_mb(reader, mbx, mby)
                    else:
                        raise BitstreamError(f"invalid I macroblock mode {mode}")
                elif frame_type is FrameType.P:
                    self._decode_p_mb(reader, l0, mbx, mby)
                else:
                    self._decode_b_mb(reader, l0[0], l1, mbx, mby)
        if deblock_on:
            DeblockFilter(self.kernels, self._qp).apply(recon, self._meta)
        return recon

    # ------------------------------------------------------------------
    # intra macroblocks
    # ------------------------------------------------------------------

    def _intra4_mpm(self, bx: int, by: int) -> int:
        left = self._intra4_modes.get((bx - 1, by))
        top = self._intra4_modes.get((bx, by - 1))
        if left is None or top is None:
            return intra.DC_MODE_INDEX
        return min(left, top)

    def _decode_i4_mb(self, reader: BitReader, mbx: int, mby: int) -> None:
        kernels = self.kernels
        qp = self._qp
        x0, y0 = 16 * mbx, 16 * mby
        for block_index, (off_x, off_y) in enumerate(common.LUMA_OFFSETS):
            x, y = x0 + off_x, y0 + off_y
            bx, by = x // 4, y // 4
            mpm = self._intra4_mpm(bx, by)
            if reader.read_bit():
                mode_index = mpm
            else:
                remaining = reader.read_bits(2)
                mode_index = remaining + (1 if remaining >= mpm else 0)
            self._intra4_modes[(bx, by)] = mode_index
            prediction = intra.predict_luma4(
                self._recon.y, x, y, intra.LUMA4_MODES[mode_index]
            )
            scanned, total_coeff = self.cavlc.decode_block(
                reader, 16, self._tc_luma.nc(bx, by)
            )
            self._tc_luma.set(bx, by, total_coeff)
            if total_coeff:
                levels = unscan4(scanned)
                rebuilt = kernels.inv_transform4(kernels.dequant_h264_4x4(levels, qp))
                pixels = kernels.add_clip(prediction, rebuilt)
            else:
                pixels = kernels.add_clip(prediction, np.zeros((4, 4), dtype=np.int64))
            self._recon.store_block("y", x, y, pixels)
        self._meta.mark_intra_mb(mbx, mby)
        self._decode_intra_chroma(reader, mbx, mby)

    def _decode_i16_mb(self, reader: BitReader, mbx: int, mby: int) -> None:
        kernels = self.kernels
        qp = self._qp
        x0, y0 = 16 * mbx, 16 * mby
        mode = intra.BLOCK_MODES[read_ue(reader)]
        prediction = intra.predict_block(self._recon.y, x0, y0, 16, mode)
        has_ac = bool(reader.read_bit())

        nc_dc = self._tc_luma.nc(4 * mbx, 4 * mby)
        dc_scanned, _ = self.cavlc.decode_block(reader, 16, nc_dc)
        dc_levels = unscan4(dc_scanned)
        dc_rebuilt = kernels.dequant_h264_dc4(dc_levels, qp)

        for block_index, (off_x, off_y) in enumerate(common.LUMA_OFFSETS):
            bx, by = (x0 + off_x) // 4, (y0 + off_y) // 4
            if has_ac:
                scanned, total_coeff = self.cavlc.decode_block(
                    reader, 15, self._tc_luma.nc(bx, by)
                )
                levels = unscan4([0] + scanned)
            else:
                total_coeff = 0
                levels = np.zeros((4, 4), dtype=np.int64)
            self._tc_luma.set(bx, by, total_coeff)
            coeffs = kernels.dequant_h264_4x4(levels, qp)
            coeffs[0, 0] = dc_rebuilt[off_y // 4, off_x // 4]
            pixels = kernels.add_clip(
                prediction[off_y : off_y + 4, off_x : off_x + 4],
                kernels.inv_transform4(coeffs),
            )
            self._recon.store_block("y", x0 + off_x, y0 + off_y, pixels)
        self._meta.mark_intra_mb(mbx, mby)
        self._decode_intra_chroma(reader, mbx, mby)

    def _decode_intra_chroma(self, reader: BitReader, mbx: int, mby: int) -> None:
        x, y = 8 * mbx, 8 * mby
        mode = intra.BLOCK_MODES[read_ue(reader)]
        prediction = {
            "u": intra.predict_block(self._recon.u, x, y, 8, mode),
            "v": intra.predict_block(self._recon.v, x, y, 8, mode),
        }
        self._decode_chroma_residual(reader, prediction, mbx, mby)

    # ------------------------------------------------------------------
    # chroma residual
    # ------------------------------------------------------------------

    def _decode_chroma_residual(self, reader: BitReader,
                                prediction: Dict[str, np.ndarray],
                                mbx: int, mby: int) -> None:
        kernels = self.kernels
        qp = self._qp
        x0, y0 = 8 * mbx, 8 * mby
        cbp = read_ue(reader)
        if cbp > 2:
            raise BitstreamError(f"invalid chroma cbp {cbp}")
        dc_levels: Dict[str, np.ndarray] = {}
        if cbp >= 1:
            for plane in ("u", "v"):
                scanned, _ = self.cavlc.decode_block(reader, 4, 0)
                dc_levels[plane] = unscan(scanned, ZIGZAG_2X2, 2)
        ac_levels: Dict[str, List[np.ndarray]] = {"u": [], "v": []}
        if cbp == 2:
            for plane in ("u", "v"):
                grid = self._tc_chroma[plane]
                for off_x, off_y in common.CHROMA_OFFSETS:
                    bx = (x0 + off_x) // 4
                    by = (y0 + off_y) // 4
                    scanned, total_coeff = self.cavlc.decode_block(
                        reader, 15, grid.nc(bx, by)
                    )
                    grid.set(bx, by, total_coeff)
                    ac_levels[plane].append(unscan4([0] + scanned))
        else:
            for plane in ("u", "v"):
                grid = self._tc_chroma[plane]
                for off_x, off_y in common.CHROMA_OFFSETS:
                    grid.set((x0 + off_x) // 4, (y0 + off_y) // 4, 0)

        for plane in ("u", "v"):
            if cbp >= 1:
                dc_rebuilt = kernels.dequant_h264_dc2(dc_levels[plane], qp)
            else:
                dc_rebuilt = np.zeros((2, 2), dtype=np.int64)
            for block_index, (off_x, off_y) in enumerate(common.CHROMA_OFFSETS):
                pred_block = prediction[plane][off_y : off_y + 4, off_x : off_x + 4]
                if cbp == 2:
                    levels = ac_levels[plane][block_index]
                else:
                    levels = np.zeros((4, 4), dtype=np.int64)
                coeffs = kernels.dequant_h264_4x4(levels, qp)
                coeffs[0, 0] = dc_rebuilt[off_y // 4, off_x // 4]
                pixels = kernels.add_clip(pred_block, kernels.inv_transform4(coeffs))
                self._recon.store_block(plane, x0 + off_x, y0 + off_y, pixels)

    # ------------------------------------------------------------------
    # inter machinery
    # ------------------------------------------------------------------

    def _partition_prediction(
        self,
        reference: WorkingFrame,
        mbx: int,
        mby: int,
        assignments,
    ) -> Dict[str, np.ndarray]:
        kernels = self.kernels
        search_range = self._search_range
        luma = reference.padded("y", search_range)
        pred_y = np.zeros((16, 16), dtype=np.int64)
        pred_c = {
            "u": np.zeros((8, 8), dtype=np.int64),
            "v": np.zeros((8, 8), dtype=np.int64),
        }
        for (off_x, off_y, width, height), mv in assignments:
            check_motion_vector(mv, search_range, 4)
            px, py = luma.offset(16 * mbx + off_x, 16 * mby + off_y)
            pred_y[off_y : off_y + height, off_x : off_x + width] = kernels.mc_qpel_h264(
                luma.plane, px, py, width, height, mv.x, mv.y
            )
            for plane in ("u", "v"):
                padded = reference.padded(plane, search_range)
                cx, cy = padded.offset(8 * mbx + off_x // 2, 8 * mby + off_y // 2)
                pred_c[plane][
                    off_y // 2 : (off_y + height) // 2,
                    off_x // 2 : (off_x + width) // 2,
                ] = kernels.mc_chroma_bilinear8(
                    padded.plane, cx, cy, width // 2, height // 2, mv.x, mv.y
                )
        return {"y": pred_y, "u": pred_c["u"], "v": pred_c["v"]}

    def _decode_luma_residual(self, reader: BitReader, prediction: np.ndarray,
                              mbx: int, mby: int) -> None:
        kernels = self.kernels
        qp = self._qp
        x0, y0 = 16 * mbx, 16 * mby
        cbp = reader.read_bits(4)
        for block_index, (off_x, off_y) in enumerate(common.LUMA_OFFSETS):
            bx, by = (x0 + off_x) // 4, (y0 + off_y) // 4
            pred_block = prediction[off_y : off_y + 4, off_x : off_x + 4]
            if cbp & (1 << common.luma_quadrant(block_index)):
                scanned, total_coeff = self.cavlc.decode_block(
                    reader, 16, self._tc_luma.nc(bx, by)
                )
            else:
                scanned, total_coeff = None, 0
            self._tc_luma.set(bx, by, total_coeff)
            self._meta.set_nonzero(bx, by, total_coeff > 0)
            if total_coeff:
                levels = unscan4(scanned)
                rebuilt = kernels.inv_transform4(kernels.dequant_h264_4x4(levels, qp))
                pixels = kernels.add_clip(pred_block, rebuilt)
            else:
                pixels = kernels.add_clip(pred_block, np.zeros((4, 4), dtype=np.int64))
            self._recon.store_block("y", x0 + off_x, y0 + off_y, pixels)

    def _no_residual_recon(self, prediction: Dict[str, np.ndarray],
                           mbx: int, mby: int) -> None:
        kernels = self.kernels
        zero4 = np.zeros((4, 4), dtype=np.int64)
        x0, y0 = 16 * mbx, 16 * mby
        for off_x, off_y in common.LUMA_OFFSETS:
            bx, by = (x0 + off_x) // 4, (y0 + off_y) // 4
            self._tc_luma.set(bx, by, 0)
            self._meta.set_nonzero(bx, by, False)
            pred_block = prediction["y"][off_y : off_y + 4, off_x : off_x + 4]
            self._recon.store_block(
                "y", x0 + off_x, y0 + off_y, kernels.add_clip(pred_block, zero4)
            )
        cx0, cy0 = 8 * mbx, 8 * mby
        for plane in ("u", "v"):
            grid = self._tc_chroma[plane]
            for off_x, off_y in common.CHROMA_OFFSETS:
                grid.set((cx0 + off_x) // 4, (cy0 + off_y) // 4, 0)
                pred_block = prediction[plane][off_y : off_y + 4, off_x : off_x + 4]
                self._recon.store_block(
                    plane, cx0 + off_x, cy0 + off_y, kernels.add_clip(pred_block, zero4)
                )

    # ------------------------------------------------------------------
    # P macroblocks
    # ------------------------------------------------------------------

    def _decode_p_mb(self, reader: BitReader, l0: List[WorkingFrame],
                     mbx: int, mby: int) -> None:
        mode = read_ue(reader)
        grid = self._grid_l0
        bx, by = 4 * mbx, 4 * mby
        if mode == common.P_SKIP:
            mv = grid.predictor(bx, by, 4)
            grid.set_rect(bx, by, 4, 4, mv, 0)
            self._meta.mark_inter(bx, by, 4, 4, mv, 0)
            prediction = self._partition_prediction(l0[0], mbx, mby, [((0, 0, 16, 16), mv)])
            self._no_residual_recon(prediction, mbx, mby)
            return
        if mode == common.P_I4:
            self._decode_i4_mb(reader, mbx, mby)
            return
        if mode == common.P_I16:
            self._decode_i16_mb(reader, mbx, mby)
            return
        shape = common.SHAPE_FOR_P_MODE.get(mode)
        if shape is None:
            raise BitstreamError(f"invalid P macroblock mode {mode}")
        assignments = []
        reference = None
        for rect in PARTITION_SHAPES[shape]:
            off_x, off_y, width, height = rect
            pbx, pby = (16 * mbx + off_x) // 4, (16 * mby + off_y) // 4
            ref_index = read_ue(reader) if len(l0) > 1 else 0
            if ref_index >= len(l0):
                raise BitstreamError(f"reference index {ref_index} out of range")
            reference = l0[ref_index]
            predictor = grid.predictor(pbx, pby, width // 4)
            mv = MotionVector(predictor.x + read_se(reader), predictor.y + read_se(reader))
            grid.set_rect(pbx, pby, width // 4, height // 4, mv, ref_index)
            self._meta.mark_inter(pbx, pby, width // 4, height // 4, mv, ref_index)
            assignments.append((rect, mv))
        prediction = self._partition_prediction(reference, mbx, mby, assignments)
        self._decode_luma_residual(reader, prediction["y"], mbx, mby)
        self._decode_chroma_residual(reader, prediction, mbx, mby)

    # ------------------------------------------------------------------
    # B macroblocks
    # ------------------------------------------------------------------

    def _decode_b_mb(self, reader: BitReader, forward: WorkingFrame,
                     backward: WorkingFrame, mbx: int, mby: int) -> None:
        mode = read_ue(reader)
        bx, by = 4 * mbx, 4 * mby
        rect = (0, 0, 16, 16)
        if mode == common.B_SKIP:
            mv = self._grid_l0.predictor(bx, by, 4)
            self._grid_l0.set_rect(bx, by, 4, 4, mv, 0)
            self._meta.mark_inter(bx, by, 4, 4, mv, 0)
            prediction = self._partition_prediction(forward, mbx, mby, [(rect, mv)])
            self._no_residual_recon(prediction, mbx, mby)
            return
        if mode == common.B_I4:
            self._decode_i4_mb(reader, mbx, mby)
            return
        if mode == common.B_I16:
            self._decode_i16_mb(reader, mbx, mby)
            return

        kernels = self.kernels
        mv_fwd = mv_bwd = None
        if mode in (common.B_BI, common.B_FWD):
            predictor = self._grid_l0.predictor(bx, by, 4)
            mv_fwd = MotionVector(
                predictor.x + read_se(reader), predictor.y + read_se(reader)
            )
            self._grid_l0.set_rect(bx, by, 4, 4, mv_fwd, 0)
        if mode in (common.B_BI, common.B_BWD):
            predictor = self._grid_l1.predictor(bx, by, 4)
            mv_bwd = MotionVector(
                predictor.x + read_se(reader), predictor.y + read_se(reader)
            )
            self._grid_l1.set_rect(bx, by, 4, 4, mv_bwd, 0)
        if mode == common.B_FWD:
            prediction = self._partition_prediction(forward, mbx, mby, [(rect, mv_fwd)])
            self._meta.mark_inter(bx, by, 4, 4, mv_fwd, 0)
        elif mode == common.B_BWD:
            prediction = self._partition_prediction(backward, mbx, mby, [(rect, mv_bwd)])
            self._meta.mark_inter(bx, by, 4, 4, mv_bwd, 1)
        elif mode == common.B_BI:
            pred_fwd = self._partition_prediction(forward, mbx, mby, [(rect, mv_fwd)])
            pred_bwd = self._partition_prediction(backward, mbx, mby, [(rect, mv_bwd)])
            prediction = {
                name: kernels.average(pred_fwd[name], pred_bwd[name])
                for name in ("y", "u", "v")
            }
            self._meta.mark_inter(bx, by, 4, 4, mv_fwd, 0)
        else:
            raise BitstreamError(f"invalid B macroblock mode {mode}")
        self._decode_luma_residual(reader, prediction["y"], mbx, mby)
        self._decode_chroma_residual(reader, prediction, mbx, mby)
