"""Configuration of the H.264 class codec."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.codecs.base import CodecConfig
from repro.errors import ConfigError
from repro.transform.qp import validate_h264_qp

#: Inter partition shapes the encoder may use (P macroblocks).
ALL_PARTITIONS: Tuple[str, ...] = ("16x16", "16x8", "8x16", "8x8")


def _default_partitions() -> Tuple[str, ...]:
    return ALL_PARTITIONS


@dataclass(frozen=True)
class H264Config(CodecConfig):
    """H.264 encoder settings.

    Defaults follow the paper's x264 command line (Table IV): ``--qp 26``
    (the Equation-1 equivalent of qscale 5), ``--me hex``, two B frames
    without adaptive placement, multiple reference frames (``--ref 16`` in
    the paper; bounded here by default for tractable pure-Python encodes),
    and the in-loop deblocking filter enabled.
    """

    qp: int = 26
    me_algorithm: str = "hex"
    ref_frames: int = 2
    deblock: bool = True
    partitions: Tuple[str, ...] = field(default_factory=_default_partitions)

    def __post_init__(self) -> None:
        super().__post_init__()
        validate_h264_qp(self.qp)
        if not 1 <= self.ref_frames <= 8:
            raise ConfigError(f"ref_frames must be in [1, 8], got {self.ref_frames}")
        if "16x16" not in self.partitions:
            raise ConfigError("the 16x16 partition cannot be disabled")
        for shape in self.partitions:
            if shape not in ALL_PARTITIONS:
                raise ConfigError(f"unknown partition shape {shape!r}")
