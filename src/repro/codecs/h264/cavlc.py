"""CAVLC-structured residual coding.

Context-Adaptive Variable Length Coding is H.264's baseline entropy coder
and a real part of why the format outperforms the MPEG-4 3-D VLC: the code
used for each block's coefficient count adapts to the neighbourhood (the
``nC`` context), trailing +-1 coefficients are coded as bare sign bits, and
level codes adapt their suffix length as magnitudes grow.

This implementation keeps the full CAVLC *structure* — coeff_token with
nC-adaptive tables, trailing-one signs, reverse-order levels with adaptive
suffix length, total_zeros, run_before — with self-consistent code tables
(Rice/truncated-binary families parameterised by the same contexts the
spec's lookup tables encode); see the bitstream note in DESIGN.md.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.common.bitstream import BitReader, BitWriter
from repro.errors import BitstreamError

#: Maximum trailing ones signalled separately, as in the spec.
MAX_TRAILING_ONES = 3


def _rice_param_from_nc(nc: int) -> int:
    """Adaptive parameter for the coeff_token code, mirroring the spec's
    four nC-selected tables (nC < 2, < 4, < 8, >= 8)."""
    if nc < 2:
        return 0
    if nc < 4:
        return 1
    if nc < 8:
        return 2
    return 3


#: Unary prefixes of this length escape to a fixed-width suffix, mirroring
#: the level_prefix >= 15 escape of the spec.
_ESCAPE_PREFIX = 15
_ESCAPE_BITS = 16


def _write_rice(writer: BitWriter, value: int, k: int) -> None:
    """Golomb-Rice code (unary quotient + k-bit remainder) with escape."""
    quotient = value >> k
    if quotient >= _ESCAPE_PREFIX:
        writer.write_bits(0, _ESCAPE_PREFIX)
        writer.write_bit(1)
        writer.write_bits(value - (_ESCAPE_PREFIX << k), _ESCAPE_BITS)
        return
    writer.write_bits(0, quotient)
    writer.write_bit(1)
    if k:
        writer.write_bits(value & ((1 << k) - 1), k)


def _read_rice(reader: BitReader, k: int) -> int:
    quotient = 0
    while reader.read_bit() == 0:
        quotient += 1
        if quotient > _ESCAPE_PREFIX:
            raise BitstreamError("runaway Rice prefix")
    if quotient == _ESCAPE_PREFIX:
        return (_ESCAPE_PREFIX << k) + reader.read_bits(_ESCAPE_BITS)
    remainder = reader.read_bits(k) if k else 0
    return (quotient << k) | remainder


def _truncated_binary_bits(maximum: int) -> Tuple[int, int]:
    """(short_len, threshold) for truncated binary over 0..maximum."""
    n = maximum + 1
    length = (n - 1).bit_length()
    unused = (1 << length) - n
    return length, unused


def _write_truncated(writer: BitWriter, value: int, maximum: int) -> None:
    """Truncated binary code of ``value`` in 0..maximum."""
    if maximum == 0:
        return
    length, unused = _truncated_binary_bits(maximum)
    if value < unused:
        writer.write_bits(value, length - 1)
    else:
        writer.write_bits(value + unused, length)


def _read_truncated(reader: BitReader, maximum: int) -> int:
    if maximum == 0:
        return 0
    length, unused = _truncated_binary_bits(maximum)
    value = reader.read_bits(length - 1)
    if value < unused:
        return value
    value = (value << 1) | reader.read_bit()
    return value - unused


class CavlcCoder:
    """Encodes/decodes one scanned coefficient block."""

    def encode_block(self, writer: BitWriter, scanned: Sequence[int], nc: int) -> int:
        """Code ``scanned`` (zigzag order); returns TotalCoeff for context."""
        n = len(scanned)
        nonzero = [(index, value) for index, value in enumerate(scanned) if value]
        total_coeff = len(nonzero)

        # Trailing ones: up to three +-1s at the end of the scan.
        trailing = 0
        for _, value in reversed(nonzero):
            if abs(value) == 1 and trailing < MAX_TRAILING_ONES:
                trailing += 1
            else:
                break

        # coeff_token: joint (TotalCoeff, TrailingOnes) with nC-adaptive code.
        k = _rice_param_from_nc(nc)
        _write_rice(writer, total_coeff, k)
        if total_coeff == 0:
            return 0
        writer.write_bits(trailing, 2)

        # Trailing one signs, reverse scan order (1 = negative).
        for _, value in nonzero[-1 : -trailing - 1 : -1]:
            writer.write_bit(1 if value < 0 else 0)

        # Remaining levels, reverse order, adaptive suffix length.
        suffix_length = 1 if total_coeff > 10 and trailing < 3 else 0
        remaining = nonzero[: total_coeff - trailing]
        for position, (_, value) in enumerate(reversed(remaining)):
            level_code = 2 * (abs(value) - 1) + (1 if value < 0 else 0)
            if position == 0 and trailing < MAX_TRAILING_ONES:
                # The first non-T1 level is known to exceed 1 in magnitude.
                level_code -= 2
            _write_rice(writer, level_code, suffix_length)
            if suffix_length == 0:
                suffix_length = 1
            if abs(value) > (3 << (suffix_length - 1)) and suffix_length < 6:
                suffix_length += 1

        # total_zeros: zeros before the last coefficient.
        last_index = nonzero[-1][0]
        total_zeros = last_index + 1 - total_coeff
        if total_coeff < n:
            _write_truncated(writer, total_zeros, n - total_coeff)

        # run_before for each coefficient (reverse order, except the first).
        zeros_left = total_zeros
        previous_index = None
        for index, _ in reversed(nonzero):
            if previous_index is None:
                previous_index = index
                continue
            run_before = previous_index - index - 1
            _write_truncated(writer, run_before, zeros_left)
            zeros_left -= run_before
            previous_index = index
            if zeros_left == 0:
                break
        return total_coeff

    def decode_block(self, reader: BitReader, n: int, nc: int) -> Tuple[List[int], int]:
        """Decode a block of ``n`` scan positions; returns (scanned, TC)."""
        k = _rice_param_from_nc(nc)
        total_coeff = _read_rice(reader, k)
        if total_coeff > n:
            raise BitstreamError(f"TotalCoeff {total_coeff} exceeds block size {n}")
        scanned = [0] * n
        if total_coeff == 0:
            return scanned, 0
        trailing = reader.read_bits(2)
        if trailing > total_coeff:
            raise BitstreamError("TrailingOnes exceeds TotalCoeff")

        # Levels in reverse scan order: trailing ones first.
        levels_reverse: List[int] = []
        for _ in range(trailing):
            levels_reverse.append(-1 if reader.read_bit() else 1)
        suffix_length = 1 if total_coeff > 10 and trailing < 3 else 0
        for position in range(total_coeff - trailing):
            level_code = _read_rice(reader, suffix_length)
            if position == 0 and trailing < MAX_TRAILING_ONES:
                level_code += 2
            magnitude = (level_code >> 1) + 1
            value = -magnitude if level_code & 1 else magnitude
            levels_reverse.append(value)
            if suffix_length == 0:
                suffix_length = 1
            if abs(value) > (3 << (suffix_length - 1)) and suffix_length < 6:
                suffix_length += 1

        if total_coeff < n:
            total_zeros = _read_truncated(reader, n - total_coeff)
        else:
            total_zeros = 0

        # Place coefficients: walk backwards from the last position.
        index = total_coeff + total_zeros - 1
        zeros_left = total_zeros
        for position, value in enumerate(levels_reverse):
            if index < 0:
                raise BitstreamError("coefficient placement underflow")
            scanned[index] = value
            if position == total_coeff - 1:
                break
            if zeros_left > 0:
                run_before = _read_truncated(reader, zeros_left)
            else:
                run_before = 0
            zeros_left -= run_before
            index -= run_before + 1
        return scanned, total_coeff


def nc_context(left_tc, top_tc) -> int:
    """The nC context from neighbour TotalCoeff values (None = unavailable)."""
    if left_tc is not None and top_tc is not None:
        return (left_tc + top_tc + 1) >> 1
    if left_tc is not None:
        return left_tc
    if top_tc is not None:
        return top_tc
    return 0
