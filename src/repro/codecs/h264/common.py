"""Shared helpers of the H.264 encoder/decoder pair."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.codecs.h264.cavlc import nc_context

#: Offsets of the sixteen 4x4 luma blocks inside a macroblock, raster order.
LUMA_OFFSETS: Tuple[Tuple[int, int], ...] = tuple(
    (4 * (index % 4), 4 * (index // 4)) for index in range(16)
)

#: Offsets of the four 4x4 chroma blocks inside an 8x8 chroma macroblock.
CHROMA_OFFSETS: Tuple[Tuple[int, int], ...] = ((0, 0), (4, 0), (0, 4), (4, 4))


def luma_quadrant(block_index: int) -> int:
    """8x8 quadrant (0..3) of the 4x4 luma block ``block_index``."""
    row = block_index // 4
    col = block_index % 4
    return (row // 2) * 2 + (col // 2)


class TcGrid:
    """Per-picture TotalCoeff grid: the CAVLC nC context state."""

    def __init__(self, width_blocks: int, height_blocks: int) -> None:
        self.width = width_blocks
        self.height = height_blocks
        self._tc: List[List[Optional[int]]] = [
            [None] * width_blocks for _ in range(height_blocks)
        ]

    def get(self, bx: int, by: int) -> Optional[int]:
        if 0 <= bx < self.width and 0 <= by < self.height:
            return self._tc[by][bx]
        return None

    def set(self, bx: int, by: int, total_coeff: int) -> None:
        self._tc[by][bx] = total_coeff

    def nc(self, bx: int, by: int) -> int:
        """The nC context for the block at (bx, by)."""
        return nc_context(self.get(bx - 1, by), self.get(bx, by - 1))


#: P macroblock mode code numbers (ue-coded).
P_SKIP, P_16X16, P_16X8, P_8X16, P_8X8, P_I4, P_I16 = range(7)
P_MODE_FOR_SHAPE = {"16x16": P_16X16, "16x8": P_16X8, "8x16": P_8X16, "8x8": P_8X8}
SHAPE_FOR_P_MODE = {code: shape for shape, code in P_MODE_FOR_SHAPE.items()}

#: B macroblock mode code numbers (ue-coded).
B_SKIP, B_BI, B_FWD, B_BWD, B_I4, B_I16 = range(6)

#: I-picture macroblock mode code numbers.
I_4X4, I_16X16 = range(2)
