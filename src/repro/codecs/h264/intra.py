"""H.264 intra prediction.

Implements the Intra_4x4 directional modes (vertical, horizontal, DC,
diagonal-down-left, diagonal-down-right), the Intra_16x16 modes (vertical,
horizontal, DC, plane) and the chroma 8x8 modes (DC, horizontal, vertical,
plane).  Prediction reads *unfiltered* reconstructed neighbour samples, as
in the standard (the deblocking filter runs after the macroblock loop).

One simplification versus the spec: the top-right extension used by the
diagonal-down-left mode is always padded by replicating the last top
sample (the spec does this only when the top-right block is unavailable).
Both encoder and decoder share these functions, so prediction is always
consistent.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import CodecError

#: Intra_4x4 mode names in code order.
LUMA4_MODES: Tuple[str, ...] = ("V", "H", "DC", "DDL", "DDR")
#: Intra_16x16 / chroma mode names in code order.
BLOCK_MODES: Tuple[str, ...] = ("V", "H", "DC", "PLANE")

#: Mode index used as the "most probable" default (DC), as in the spec.
DC_MODE_INDEX = LUMA4_MODES.index("DC")


def available_luma4_modes(has_top: bool, has_left: bool) -> List[str]:
    """Intra_4x4 modes usable given neighbour availability."""
    modes = ["DC"]
    if has_top:
        modes.append("V")
        modes.append("DDL")
    if has_left:
        modes.append("H")
    if has_top and has_left:
        modes.append("DDR")
    return modes


def available_block_modes(has_top: bool, has_left: bool) -> List[str]:
    """Intra_16x16 / chroma modes usable given neighbour availability."""
    modes = ["DC"]
    if has_top:
        modes.append("V")
    if has_left:
        modes.append("H")
    if has_top and has_left:
        modes.append("PLANE")
    return modes


def _top_row(plane: np.ndarray, x: int, y: int, count: int) -> np.ndarray:
    return plane[y - 1, x : x + count]


def _left_col(plane: np.ndarray, x: int, y: int, count: int) -> np.ndarray:
    return plane[y : y + count, x - 1]


def predict_luma4(plane: np.ndarray, x: int, y: int, mode: str) -> np.ndarray:
    """Predict one 4x4 luma block at (x, y) from its decoded neighbours."""
    if mode == "DC":
        return _predict_dc(plane, x, y, 4)
    if mode == "V":
        return np.tile(_top_row(plane, x, y, 4).astype(np.int64), (4, 1))
    if mode == "H":
        return np.tile(
            _left_col(plane, x, y, 4).astype(np.int64).reshape(4, 1), (1, 4)
        )
    if mode == "DDL":
        return _predict_ddl(plane, x, y)
    if mode == "DDR":
        return _predict_ddr(plane, x, y)
    raise CodecError(f"unknown Intra_4x4 mode {mode!r}")


def _predict_dc(plane: np.ndarray, x: int, y: int, size: int) -> np.ndarray:
    has_top = y > 0
    has_left = x > 0
    if has_top and has_left:
        total = int(np.sum(_top_row(plane, x, y, size))) + int(
            np.sum(_left_col(plane, x, y, size))
        )
        dc = (total + size) // (2 * size)
    elif has_top:
        dc = (int(np.sum(_top_row(plane, x, y, size))) + size // 2) // size
    elif has_left:
        dc = (int(np.sum(_left_col(plane, x, y, size))) + size // 2) // size
    else:
        dc = 128
    return np.full((size, size), dc, dtype=np.int64)


def _predict_ddl(plane: np.ndarray, x: int, y: int) -> np.ndarray:
    # Top samples t[0..7]; t[4..7] replicated from t[3] (see module note).
    top = _top_row(plane, x, y, 4).astype(np.int64)
    t = np.concatenate([top, np.full(5, top[3], dtype=np.int64)])
    out = np.zeros((4, 4), dtype=np.int64)
    for i in range(4):
        for j in range(4):
            k = i + j
            if i == 3 and j == 3:
                out[i, j] = (t[6] + 3 * t[7] + 2) >> 2
            else:
                out[i, j] = (t[k] + 2 * t[k + 1] + t[k + 2] + 2) >> 2
    return out


def _predict_ddr(plane: np.ndarray, x: int, y: int) -> np.ndarray:
    top = _top_row(plane, x, y, 4).astype(np.int64)
    left = _left_col(plane, x, y, 4).astype(np.int64)
    corner = int(plane[y - 1, x - 1])
    # Build the diagonal support array: left reversed, corner, top.
    support = np.concatenate([left[::-1], [corner], top])  # length 9, index 4 = corner
    out = np.zeros((4, 4), dtype=np.int64)
    for i in range(4):
        for j in range(4):
            k = 4 + j - i  # position along the support
            out[i, j] = (support[k - 1] + 2 * support[k] + support[k + 1] + 2) >> 2
    return out


def predict_block(plane: np.ndarray, x: int, y: int, size: int, mode: str) -> np.ndarray:
    """Intra_16x16 (size=16) or chroma (size=8) prediction."""
    if mode == "DC":
        return _predict_dc(plane, x, y, size)
    if mode == "V":
        return np.tile(_top_row(plane, x, y, size).astype(np.int64), (size, 1))
    if mode == "H":
        return np.tile(
            _left_col(plane, x, y, size).astype(np.int64).reshape(size, 1), (1, size)
        )
    if mode == "PLANE":
        return _predict_plane(plane, x, y, size)
    raise CodecError(f"unknown intra block mode {mode!r}")


def _predict_plane(plane: np.ndarray, x: int, y: int, size: int) -> np.ndarray:
    half = size // 2
    top = _top_row(plane, x, y, size).astype(np.int64)
    left = _left_col(plane, x, y, size).astype(np.int64)
    corner = int(plane[y - 1, x - 1])
    grad_h = 0
    grad_v = 0
    for i in range(half):
        right_sample = int(top[half + i])
        left_sample = int(top[half - 2 - i]) if half - 2 - i >= 0 else corner
        grad_h += (i + 1) * (right_sample - left_sample)
        bottom_sample = int(left[half + i])
        top_sample = int(left[half - 2 - i]) if half - 2 - i >= 0 else corner
        grad_v += (i + 1) * (bottom_sample - top_sample)
    if size == 16:
        b = (5 * grad_h + 32) >> 6
        c = (5 * grad_v + 32) >> 6
    else:
        b = (17 * grad_h + 16) >> 5
        c = (17 * grad_v + 16) >> 5
    a = 16 * (int(left[size - 1]) + int(top[size - 1]))
    ys, xs = np.mgrid[0:size, 0:size].astype(np.int64)
    values = (a + b * (xs - (half - 1)) + c * (ys - (half - 1)) + 16) >> 5
    return np.clip(values, 0, 255)
