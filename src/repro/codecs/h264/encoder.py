"""H.264 class encoder.

Implements the toolset of the paper's x264 application (Table IV command
line): 4x4 integer transform with the standard quantiser tables, Intra_4x4
and Intra_16x16 prediction, variable inter partitions (16x16/16x8/8x16/
8x8), six-tap quarter-pel luma motion compensation, multiple reference
frames, hexagon motion estimation, CAVLC-structured entropy coding and the
in-loop deblocking filter.  These tools are exactly what makes H.264 both
the best compressor and the most expensive codec in the benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.codecs.base import EncodedPicture, EncodedVideo, VideoEncoder
from repro.codecs.frames import WorkingFrame
from repro.codecs.h264 import common, intra
from repro.codecs.h264.cavlc import CavlcCoder
from repro.codecs.h264.config import H264Config
from repro.codecs.h264.deblock import DeblockFilter, DeblockMeta
from repro.codecs.h264.motion import PARTITION_SHAPES, MvGrid4
from repro.common.bitstream import BitWriter
from repro.common.expgolomb import se_bit_length, ue_bit_length, write_se, write_ue
from repro.common.gop import CodedFrame, FrameType
from repro.common.yuv import YuvSequence
from repro.errors import CodecError
from repro.kernels import get_kernels
from repro.me.cost import MotionCost, lambda_from_qp
from repro.me.search import run_search
from repro.me.subpel import refine_subpel
from repro.me.types import MotionVector, SearchResult, ZERO_MV
from repro.transform.zigzag import ZIGZAG_2X2, scan, scan4, unscan4

INTRA_BIAS = 96


def _div_to_zero(value: int, divisor: int) -> int:
    return value // divisor if value >= 0 else -((-value) // divisor)


def _int_mv(mv: MotionVector) -> MotionVector:
    return MotionVector(_div_to_zero(mv.x, 4), _div_to_zero(mv.y, 4))


@dataclass
class _ChromaPrep:
    """Prepared chroma residual of one macroblock."""

    cbp: int  # 0 = none, 1 = DC only, 2 = DC + AC
    dc_levels: Dict[str, np.ndarray] = field(default_factory=dict)
    ac_levels: Dict[str, List[np.ndarray]] = field(default_factory=dict)


class H264Encoder(VideoEncoder):
    """H.264 class encoder (see module docstring)."""

    codec_name = "h264"

    def __init__(self, config: H264Config) -> None:
        super().__init__(config)
        self.config: H264Config = config
        self.kernels = get_kernels(config.backend)
        self.lagrangian = lambda_from_qp(config.qp)
        self.cavlc = CavlcCoder()

    # ------------------------------------------------------------------
    # sequence level
    # ------------------------------------------------------------------

    def encode_sequence(self, video: YuvSequence) -> EncodedVideo:
        self._check_input(video)
        config = self.config
        stream = EncodedVideo(
            codec=self.codec_name,
            width=config.width,
            height=config.height,
            fps=video.fps,
        )
        references: Dict[int, WorkingFrame] = {}
        for entry in self.config.gop.coding_order(len(video)):
            source = WorkingFrame.from_yuv(video[entry.display_index])
            payload, recon = self._encode_picture(entry, source, references)
            stream.pictures.append(EncodedPicture(payload, entry.display_index, entry.frame_type))
            self.stats.frame_bits.append(8 * len(payload))
            if entry.frame_type.is_anchor:
                if config.deblock:
                    DeblockFilter(self.kernels, config.qp).apply(recon, self._meta)
                references[entry.display_index] = recon
                for key in sorted(references)[: -(config.ref_frames + 2)]:
                    del references[key]
        return stream

    def _reference_lists(
        self, references: Dict[int, WorkingFrame], display_index: int,
        frame_type: FrameType,
    ) -> Tuple[List[WorkingFrame], Optional[WorkingFrame]]:
        """(L0 list, L1 reference) for the picture at ``display_index``."""
        past = sorted(key for key in references if key < display_index)
        future = sorted(key for key in references if key > display_index)
        if frame_type is FrameType.P:
            if not past:
                raise CodecError("P picture without past references")
            l0 = [references[key] for key in reversed(past[-self.config.ref_frames :])]
            return l0, None
        if frame_type is FrameType.B:
            if not past or not future:
                raise CodecError("B picture requires surrounding anchors")
            return [references[past[-1]]], references[future[0]]
        return [], None

    # ------------------------------------------------------------------
    # picture level
    # ------------------------------------------------------------------

    _TYPE_CODE = {FrameType.I: 0, FrameType.P: 1, FrameType.B: 2}

    def _encode_picture(
        self,
        entry: CodedFrame,
        source: WorkingFrame,
        references: Dict[int, WorkingFrame],
    ) -> Tuple[bytes, WorkingFrame]:
        config = self.config
        writer = BitWriter()
        writer.write_bits(self._TYPE_CODE[entry.frame_type], 2)
        writer.write_bits(config.qp, 6)
        writer.write_bits(config.search_range, 8)
        writer.write_bit(1 if config.deblock else 0)
        writer.write_bits(config.ref_frames, 4)

        l0, l1 = self._reference_lists(references, entry.display_index, entry.frame_type)
        # The active L0 size is signalled explicitly so a decoder whose DPB
        # holds more past anchors than the encoder saw (e.g. after a
        # GOP-parallel chunk boundary) builds the identical list.
        writer.write_bits(len(l0), 4)

        recon = WorkingFrame.blank(config.width, config.height)
        self._recon = recon
        self._meta = DeblockMeta(config.mb_width, config.mb_height)
        self._grid_l0 = MvGrid4(config.mb_width, config.mb_height)
        self._grid_l1 = MvGrid4(config.mb_width, config.mb_height)
        self._tc_luma = TcGridAlias(config.mb_width * 4, config.mb_height * 4)
        self._tc_chroma = {
            "u": TcGridAlias(config.mb_width * 2, config.mb_height * 2),
            "v": TcGridAlias(config.mb_width * 2, config.mb_height * 2),
        }
        self._intra4_modes: Dict[Tuple[int, int], int] = {}

        for mby in range(config.mb_height):
            for mbx in range(config.mb_width):
                if entry.frame_type is FrameType.I:
                    self._encode_i_mb(writer, source, mbx, mby)
                elif entry.frame_type is FrameType.P:
                    self._encode_p_mb(writer, source, l0, mbx, mby)
                else:
                    self._encode_b_mb(writer, source, l0[0], l1, mbx, mby)
        writer.align()
        return writer.to_bytes(), recon

    # ------------------------------------------------------------------
    # intra coding
    # ------------------------------------------------------------------

    def _intra4_mpm(self, bx: int, by: int) -> int:
        left = self._intra4_modes.get((bx - 1, by))
        top = self._intra4_modes.get((bx, by - 1))
        if left is None or top is None:
            return intra.DC_MODE_INDEX
        return min(left, top)

    def _encode_i_mb(self, writer: BitWriter, source: WorkingFrame,
                     mbx: int, mby: int) -> None:
        """Choose I4x4 vs I16x16 and code the macroblock (I pictures)."""
        i16_mode, i16_cost = self._best_i16_mode(source, mbx, mby)
        i4_cost_estimate = self._estimate_i4_cost(source, mbx, mby)
        if i4_cost_estimate < i16_cost:
            write_ue(writer, common.I_4X4)
            self._code_i4_mb(writer, source, mbx, mby)
        else:
            write_ue(writer, common.I_16X16)
            self._code_i16_mb(writer, source, mbx, mby, i16_mode)

    def _best_i16_mode(self, source: WorkingFrame, mbx: int, mby: int) -> Tuple[str, int]:
        x, y = 16 * mbx, 16 * mby
        current = source.y[y : y + 16, x : x + 16]
        best_mode, best_cost = "DC", None
        for mode in intra.available_block_modes(y > 0, x > 0):
            prediction = intra.predict_block(self._recon.y, x, y, 16, mode)
            cost = self.kernels.sad(current, prediction)
            if best_cost is None or cost < best_cost:
                best_mode, best_cost = mode, cost
        return best_mode, best_cost

    def _estimate_i4_cost(self, source: WorkingFrame, mbx: int, mby: int) -> int:
        """Cheap I4 cost proxy: per-block best-of-DC/V/H SAD plus mode bits.

        A full I4 evaluation needs sequential reconstruction; this estimate
        predicts every block from the *source* neighbourhood instead, which
        is close enough for the I4-vs-I16 decision.
        """
        total = 4 * self.lagrangian  # mode signalling overhead
        x0, y0 = 16 * mbx, 16 * mby
        for off_x, off_y in common.LUMA_OFFSETS:
            x, y = x0 + off_x, y0 + off_y
            block = source.y[y : y + 4, x : x + 4]
            candidates = []
            if y > 0:
                candidates.append(np.tile(source.y[y - 1, x : x + 4], (4, 1)))
            if x > 0:
                candidates.append(np.tile(source.y[y : y + 4, x - 1].reshape(4, 1), (1, 4)))
            candidates.append(np.full((4, 4), int(np.mean(block)), dtype=np.int64))
            total += min(self.kernels.sad(block, cand) for cand in candidates)
            total += self.lagrangian  # ~1-3 bits of mode per block
        return total

    def _code_i4_mb(self, writer: BitWriter, source: WorkingFrame,
                    mbx: int, mby: int) -> None:
        """Code an I4x4 macroblock: 16 predicted/transformed luma blocks."""
        kernels = self.kernels
        qp = self.config.qp
        x0, y0 = 16 * mbx, 16 * mby
        for block_index, (off_x, off_y) in enumerate(common.LUMA_OFFSETS):
            x, y = x0 + off_x, y0 + off_y
            bx, by = x // 4, y // 4
            modes = intra.available_luma4_modes(y > 0, x > 0)
            best_mode, best_pred, best_cost = None, None, None
            mpm = self._intra4_mpm(bx, by)
            for mode in modes:
                prediction = intra.predict_luma4(self._recon.y, x, y, mode)
                mode_index = intra.LUMA4_MODES.index(mode)
                bits = 1 if mode_index == mpm else 3
                cost = kernels.sad(source.y[y : y + 4, x : x + 4], prediction)
                cost += self.lagrangian * bits
                if best_cost is None or cost < best_cost:
                    best_mode, best_pred, best_cost = mode, prediction, cost
            mode_index = intra.LUMA4_MODES.index(best_mode)
            if mode_index == mpm:
                writer.write_bit(1)
            else:
                writer.write_bit(0)
                remaining = mode_index - (1 if mode_index > mpm else 0)
                writer.write_bits(remaining, 2)
            self._intra4_modes[(bx, by)] = mode_index

            residual = kernels.sub(source.y[y : y + 4, x : x + 4], best_pred)
            levels = kernels.quant_h264_4x4(kernels.fwd_transform4(residual), qp, intra=True)
            scanned = scan4(levels)
            total_coeff = self.cavlc.encode_block(writer, scanned, self._tc_luma.nc(bx, by))
            self._tc_luma.set(bx, by, total_coeff)
            if total_coeff:
                rebuilt = kernels.inv_transform4(kernels.dequant_h264_4x4(levels, qp))
                pixels = kernels.add_clip(best_pred, rebuilt)
            else:
                pixels = kernels.add_clip(best_pred, np.zeros((4, 4), dtype=np.int64))
            self._recon.store_block("y", x, y, pixels)
        self._meta.mark_intra_mb(mbx, mby)
        self._code_intra_chroma(writer, source, mbx, mby)
        self.stats.intra_macroblocks += 1

    def _code_i16_mb(self, writer: BitWriter, source: WorkingFrame,
                     mbx: int, mby: int, mode: str) -> None:
        kernels = self.kernels
        qp = self.config.qp
        x0, y0 = 16 * mbx, 16 * mby
        write_ue(writer, intra.BLOCK_MODES.index(mode))
        prediction = intra.predict_block(self._recon.y, x0, y0, 16, mode)
        residual = kernels.sub(source.y[y0 : y0 + 16, x0 : x0 + 16], prediction)

        dc = np.zeros((4, 4), dtype=np.int64)
        ac_levels: List[np.ndarray] = []
        for block_index, (off_x, off_y) in enumerate(common.LUMA_OFFSETS):
            coeffs = kernels.fwd_transform4(residual[off_y : off_y + 4, off_x : off_x + 4])
            dc[off_y // 4, off_x // 4] = coeffs[0, 0]
            levels = kernels.quant_h264_4x4(coeffs, qp, intra=True)
            levels[0, 0] = 0
            ac_levels.append(levels)
        dc_levels = kernels.quant_h264_dc4(kernels.hadamard4_forward(dc), qp, intra=True)
        has_ac = any(np.any(levels) for levels in ac_levels)
        writer.write_bit(1 if has_ac else 0)

        nc_dc = self._tc_luma.nc(4 * mbx, 4 * mby)
        self.cavlc.encode_block(writer, scan4(dc_levels), nc_dc)

        dc_rebuilt = kernels.dequant_h264_dc4(dc_levels, qp)
        for block_index, (off_x, off_y) in enumerate(common.LUMA_OFFSETS):
            bx, by = (x0 + off_x) // 4, (y0 + off_y) // 4
            levels = ac_levels[block_index]
            if has_ac:
                total_coeff = self.cavlc.encode_block(
                    writer, scan4(levels)[1:], self._tc_luma.nc(bx, by)
                )
            else:
                total_coeff = 0
            self._tc_luma.set(bx, by, total_coeff)
            coeffs = kernels.dequant_h264_4x4(levels, qp)
            coeffs[0, 0] = dc_rebuilt[off_y // 4, off_x // 4]
            pixels = kernels.add_clip(
                prediction[off_y : off_y + 4, off_x : off_x + 4],
                kernels.inv_transform4(coeffs),
            )
            self._recon.store_block("y", x0 + off_x, y0 + off_y, pixels)
        self._meta.mark_intra_mb(mbx, mby)
        self._code_intra_chroma(writer, source, mbx, mby)
        self.stats.intra_macroblocks += 1

    def _code_intra_chroma(self, writer: BitWriter, source: WorkingFrame,
                           mbx: int, mby: int) -> None:
        x, y = 8 * mbx, 8 * mby
        best_mode, best_cost, best_pred = None, None, None
        for mode in intra.available_block_modes(y > 0, x > 0):
            pred_u = intra.predict_block(self._recon.u, x, y, 8, mode)
            pred_v = intra.predict_block(self._recon.v, x, y, 8, mode)
            cost = self.kernels.sad(source.u[y : y + 8, x : x + 8], pred_u)
            cost += self.kernels.sad(source.v[y : y + 8, x : x + 8], pred_v)
            if best_cost is None or cost < best_cost:
                best_mode, best_cost, best_pred = mode, cost, (pred_u, pred_v)
        write_ue(writer, intra.BLOCK_MODES.index(best_mode))
        prep = self._prepare_chroma(source, dict(zip(("u", "v"), best_pred)), mbx, mby, intra_mb=True)
        self._write_chroma(writer, prep, mbx, mby)
        self._recon_chroma(prep, dict(zip(("u", "v"), best_pred)), mbx, mby)

    # ------------------------------------------------------------------
    # chroma residual (shared by every macroblock type)
    # ------------------------------------------------------------------

    def _prepare_chroma(self, source: WorkingFrame, prediction: Dict[str, np.ndarray],
                        mbx: int, mby: int, intra_mb: bool) -> _ChromaPrep:
        kernels = self.kernels
        qp = self.config.qp
        x0, y0 = 8 * mbx, 8 * mby
        prep = _ChromaPrep(cbp=0)
        any_dc = False
        any_ac = False
        for plane in ("u", "v"):
            dc = np.zeros((2, 2), dtype=np.int64)
            plane_levels: List[np.ndarray] = []
            for block_index, (off_x, off_y) in enumerate(common.CHROMA_OFFSETS):
                current = source.plane(plane)[
                    y0 + off_y : y0 + off_y + 4, x0 + off_x : x0 + off_x + 4
                ]
                residual = kernels.sub(current, prediction[plane][off_y : off_y + 4, off_x : off_x + 4])
                coeffs = kernels.fwd_transform4(residual)
                dc[off_y // 4, off_x // 4] = coeffs[0, 0]
                levels = kernels.quant_h264_4x4(coeffs, qp, intra_mb)
                levels[0, 0] = 0
                plane_levels.append(levels)
                if np.any(levels):
                    any_ac = True
            dc_levels = kernels.quant_h264_dc2(kernels.hadamard2(dc), qp, intra_mb)
            if np.any(dc_levels):
                any_dc = True
            prep.dc_levels[plane] = dc_levels
            prep.ac_levels[plane] = plane_levels
        prep.cbp = 2 if any_ac else (1 if any_dc else 0)
        return prep

    def _write_chroma(self, writer: BitWriter, prep: _ChromaPrep,
                      mbx: int, mby: int) -> None:
        write_ue(writer, prep.cbp)
        if prep.cbp == 0:
            self._set_chroma_tc_zero(mbx, mby)
            return
        for plane in ("u", "v"):
            self.cavlc.encode_block(writer, scan(prep.dc_levels[plane], ZIGZAG_2X2), 0)
        if prep.cbp < 2:
            self._set_chroma_tc_zero(mbx, mby)
            return
        for plane in ("u", "v"):
            grid = self._tc_chroma[plane]
            for block_index, (off_x, off_y) in enumerate(common.CHROMA_OFFSETS):
                bx = (8 * mbx + off_x) // 4
                by = (8 * mby + off_y) // 4
                total_coeff = self.cavlc.encode_block(
                    writer, scan4(prep.ac_levels[plane][block_index])[1:], grid.nc(bx, by)
                )
                grid.set(bx, by, total_coeff)

    def _set_chroma_tc_zero(self, mbx: int, mby: int) -> None:
        for plane in ("u", "v"):
            grid = self._tc_chroma[plane]
            for off_x, off_y in common.CHROMA_OFFSETS:
                grid.set((8 * mbx + off_x) // 4, (8 * mby + off_y) // 4, 0)

    def _recon_chroma(self, prep: _ChromaPrep, prediction: Dict[str, np.ndarray],
                      mbx: int, mby: int) -> None:
        kernels = self.kernels
        qp = self.config.qp
        x0, y0 = 8 * mbx, 8 * mby
        for plane in ("u", "v"):
            if prep.cbp >= 1:
                dc_rebuilt = kernels.dequant_h264_dc2(prep.dc_levels[plane], qp)
            else:
                dc_rebuilt = np.zeros((2, 2), dtype=np.int64)
            for block_index, (off_x, off_y) in enumerate(common.CHROMA_OFFSETS):
                pred_block = prediction[plane][off_y : off_y + 4, off_x : off_x + 4]
                if prep.cbp == 2:
                    levels = prep.ac_levels[plane][block_index]
                else:
                    levels = np.zeros((4, 4), dtype=np.int64)
                coeffs = kernels.dequant_h264_4x4(levels, qp)
                coeffs[0, 0] = dc_rebuilt[off_y // 4, off_x // 4]
                pixels = kernels.add_clip(pred_block, kernels.inv_transform4(coeffs))
                self._recon.store_block(plane, x0 + off_x, y0 + off_y, pixels)

    # ------------------------------------------------------------------
    # inter prediction helpers
    # ------------------------------------------------------------------

    def _partition_prediction(
        self,
        reference: WorkingFrame,
        mbx: int,
        mby: int,
        assignments: List[Tuple[Tuple[int, int, int, int], MotionVector]],
    ) -> Dict[str, np.ndarray]:
        """Assemble an MB prediction from per-partition (rect, mv) pairs."""
        kernels = self.kernels
        search_range = self.config.search_range
        luma = reference.padded("y", search_range)
        pred_y = np.zeros((16, 16), dtype=np.int64)
        pred_c = {
            "u": np.zeros((8, 8), dtype=np.int64),
            "v": np.zeros((8, 8), dtype=np.int64),
        }
        for (off_x, off_y, width, height), mv in assignments:
            px, py = luma.offset(16 * mbx + off_x, 16 * mby + off_y)
            pred_y[off_y : off_y + height, off_x : off_x + width] = kernels.mc_qpel_h264(
                luma.plane, px, py, width, height, mv.x, mv.y
            )
            for plane in ("u", "v"):
                padded = reference.padded(plane, search_range)
                cx, cy = padded.offset(8 * mbx + off_x // 2, 8 * mby + off_y // 2)
                pred_c[plane][
                    off_y // 2 : (off_y + height) // 2,
                    off_x // 2 : (off_x + width) // 2,
                ] = kernels.mc_chroma_bilinear8(
                    padded.plane, cx, cy, width // 2, height // 2, mv.x, mv.y
                )
        return {"y": pred_y, "u": pred_c["u"], "v": pred_c["v"]}

    def _search_partition(
        self,
        source: WorkingFrame,
        reference: WorkingFrame,
        mbx: int,
        mby: int,
        rect: Tuple[int, int, int, int],
        grid: MvGrid4,
    ) -> SearchResult:
        """Hexagon + quarter-pel search of one partition; MV in qpel units."""
        config = self.config
        kernels = self.kernels
        off_x, off_y, width, height = rect
        x, y = 16 * mbx + off_x, 16 * mby + off_y
        current = source.y[y : y + height, x : x + width]
        predictor = grid.predictor(x // 4, y // 4, width // 4)
        padded = reference.padded("y", config.search_range)
        cost = MotionCost(
            kernels=kernels,
            current=current,
            reference=padded,
            x=x,
            y=y,
            width=width,
            height=height,
            predictor=_int_mv(predictor),
            lagrangian=self.lagrangian,
            search_range=config.search_range,
        )
        extra = [_int_mv(mv) for mv in grid.neighbours(x // 4, y // 4)]
        integer = run_search(config.me_algorithm, cost, extra)
        return refine_subpel(
            kernels, current, padded, x, y, width, height,
            integer,
            predictor=predictor,
            lagrangian=self.lagrangian,
            unit=4,
            interp=kernels.mc_qpel_h264,
        )

    # ------------------------------------------------------------------
    # luma residual (inter)
    # ------------------------------------------------------------------

    def _prepare_luma_residual(
        self, source: WorkingFrame, prediction: np.ndarray, mbx: int, mby: int,
    ) -> Tuple[int, List[np.ndarray]]:
        kernels = self.kernels
        qp = self.config.qp
        x0, y0 = 16 * mbx, 16 * mby
        blocks: List[np.ndarray] = []
        cbp = 0
        for block_index, (off_x, off_y) in enumerate(common.LUMA_OFFSETS):
            current = source.y[y0 + off_y : y0 + off_y + 4, x0 + off_x : x0 + off_x + 4]
            residual = kernels.sub(current, prediction[off_y : off_y + 4, off_x : off_x + 4])
            levels = kernels.quant_h264_4x4(kernels.fwd_transform4(residual), qp, intra=False)
            blocks.append(levels)
            if np.any(levels):
                cbp |= 1 << common.luma_quadrant(block_index)
        return cbp, blocks

    def _write_luma_residual(self, writer: BitWriter, cbp: int,
                             blocks: List[np.ndarray], mbx: int, mby: int) -> None:
        writer.write_bits(cbp, 4)
        for block_index, (off_x, off_y) in enumerate(common.LUMA_OFFSETS):
            bx = (16 * mbx + off_x) // 4
            by = (16 * mby + off_y) // 4
            if cbp & (1 << common.luma_quadrant(block_index)):
                total_coeff = self.cavlc.encode_block(
                    writer, scan4(blocks[block_index]), self._tc_luma.nc(bx, by)
                )
            else:
                total_coeff = 0
            self._tc_luma.set(bx, by, total_coeff)
            self._meta.set_nonzero(bx, by, total_coeff > 0)

    def _recon_luma_inter(self, cbp: int, blocks: List[np.ndarray],
                          prediction: np.ndarray, mbx: int, mby: int) -> None:
        kernels = self.kernels
        qp = self.config.qp
        x0, y0 = 16 * mbx, 16 * mby
        for block_index, (off_x, off_y) in enumerate(common.LUMA_OFFSETS):
            pred_block = prediction[off_y : off_y + 4, off_x : off_x + 4]
            if cbp & (1 << common.luma_quadrant(block_index)) and np.any(blocks[block_index]):
                rebuilt = kernels.inv_transform4(
                    kernels.dequant_h264_4x4(blocks[block_index], qp)
                )
                pixels = kernels.add_clip(pred_block, rebuilt)
            else:
                pixels = kernels.add_clip(pred_block, np.zeros((4, 4), dtype=np.int64))
            self._recon.store_block("y", x0 + off_x, y0 + off_y, pixels)

    # ------------------------------------------------------------------
    # P macroblocks
    # ------------------------------------------------------------------

    def _encode_p_mb(self, writer: BitWriter, source: WorkingFrame,
                     l0: List[WorkingFrame], mbx: int, mby: int) -> None:
        config = self.config
        grid = self._grid_l0

        # 16x16 search over every reference; keep the best.
        best_ref, best16 = 0, None
        for ref_index, reference in enumerate(l0):
            result = self._search_partition(source, reference, mbx, mby, (0, 0, 16, 16), grid)
            penalised = SearchResult(
                result.mv, result.cost + self.lagrangian * ue_bit_length(ref_index)
            )
            if best16 is None or penalised.cost < best16.cost:
                best_ref, best16 = ref_index, penalised

        # Other partition shapes on the best reference.
        reference = l0[best_ref]
        shape_results: Dict[str, List[SearchResult]] = {"16x16": [best16]}
        shape_costs: Dict[str, int] = {
            "16x16": best16.cost + self.lagrangian * ue_bit_length(common.P_16X16)
        }
        for shape in config.partitions:
            if shape == "16x16":
                continue
            results = [
                self._search_partition(source, reference, mbx, mby, rect, grid)
                for rect in PARTITION_SHAPES[shape]
            ]
            shape_results[shape] = results
            shape_costs[shape] = (
                sum(result.cost for result in results)
                + self.lagrangian * ue_bit_length(common.P_MODE_FOR_SHAPE[shape])
                + self.lagrangian * ue_bit_length(best_ref) * len(results)
            )
        best_shape = min(shape_costs, key=shape_costs.get)

        intra_cost = self._quick_intra_cost(source, mbx, mby)
        if intra_cost < shape_costs[best_shape]:
            self._encode_intra_in_inter(writer, source, mbx, mby, is_b=False)
            return

        rects = PARTITION_SHAPES[best_shape]
        assignments = [
            (rect, result.mv)
            for rect, result in zip(rects, shape_results[best_shape])
        ]
        prediction = self._partition_prediction(reference, mbx, mby, assignments)
        cbp_luma, luma_blocks = self._prepare_luma_residual(source, prediction["y"], mbx, mby)
        chroma_prep = self._prepare_chroma(source, prediction, mbx, mby, intra_mb=False)

        # Skip: 16x16, first reference, predicted MV, no residual anywhere.
        if (
            best_shape == "16x16"
            and best_ref == 0
            and cbp_luma == 0
            and chroma_prep.cbp == 0
            and assignments[0][1] == grid.predictor(4 * mbx, 4 * mby, 4)
        ):
            write_ue(writer, common.P_SKIP)
            mv = assignments[0][1]
            grid.set_rect(4 * mbx, 4 * mby, 4, 4, mv, 0)
            self._meta.mark_inter(4 * mbx, 4 * mby, 4, 4, mv, 0)
            self._recon_luma_inter(0, luma_blocks, prediction["y"], mbx, mby)
            self._recon_chroma(chroma_prep, prediction, mbx, mby)
            self._set_chroma_tc_zero(mbx, mby)
            self._set_luma_tc_zero(mbx, mby)
            self.stats.skipped_macroblocks += 1
            return

        write_ue(writer, common.P_MODE_FOR_SHAPE[best_shape])
        for rect, result in zip(rects, shape_results[best_shape]):
            off_x, off_y, width, height = rect
            bx, by = (16 * mbx + off_x) // 4, (16 * mby + off_y) // 4
            if len(l0) > 1:
                write_ue(writer, best_ref)
            predictor = grid.predictor(bx, by, width // 4)
            write_se(writer, result.mv.x - predictor.x)
            write_se(writer, result.mv.y - predictor.y)
            grid.set_rect(bx, by, width // 4, height // 4, result.mv, best_ref)
            self._meta.mark_inter(bx, by, width // 4, height // 4, result.mv, best_ref)
        self._write_luma_residual(writer, cbp_luma, luma_blocks, mbx, mby)
        self._write_chroma(writer, chroma_prep, mbx, mby)
        self._recon_luma_inter(cbp_luma, luma_blocks, prediction["y"], mbx, mby)
        self._recon_chroma(chroma_prep, prediction, mbx, mby)
        self.stats.inter_macroblocks += 1

    def _set_luma_tc_zero(self, mbx: int, mby: int) -> None:
        for off_x, off_y in common.LUMA_OFFSETS:
            self._tc_luma.set((16 * mbx + off_x) // 4, (16 * mby + off_y) // 4, 0)

    def _quick_intra_cost(self, source: WorkingFrame, mbx: int, mby: int) -> int:
        _, cost = self._best_i16_mode(source, mbx, mby)
        return cost + INTRA_BIAS + self.lagrangian * 8

    def _encode_intra_in_inter(self, writer: BitWriter, source: WorkingFrame,
                               mbx: int, mby: int, is_b: bool) -> None:
        """Code an intra MB inside a P/B picture (mode + payload)."""
        i16_mode, i16_cost = self._best_i16_mode(source, mbx, mby)
        i4_cost = self._estimate_i4_cost(source, mbx, mby)
        if i4_cost < i16_cost:
            write_ue(writer, common.B_I4 if is_b else common.P_I4)
            self._code_i4_mb(writer, source, mbx, mby)
        else:
            write_ue(writer, common.B_I16 if is_b else common.P_I16)
            self._code_i16_mb(writer, source, mbx, mby, i16_mode)

    # ------------------------------------------------------------------
    # B macroblocks
    # ------------------------------------------------------------------

    def _encode_b_mb(self, writer: BitWriter, source: WorkingFrame,
                     forward: WorkingFrame, backward: WorkingFrame,
                     mbx: int, mby: int) -> None:
        kernels = self.kernels
        rect = (0, 0, 16, 16)
        fwd = self._search_partition(source, forward, mbx, mby, rect, self._grid_l0)
        bwd = self._search_partition(source, backward, mbx, mby, rect, self._grid_l1)

        pred_fwd = self._partition_prediction(forward, mbx, mby, [(rect, fwd.mv)])
        pred_bwd = self._partition_prediction(backward, mbx, mby, [(rect, bwd.mv)])
        bx, by = 4 * mbx, 4 * mby
        pred_l0 = self._grid_l0.predictor(bx, by, 4)
        pred_l1 = self._grid_l1.predictor(bx, by, 4)
        current = source.y[16 * mby : 16 * mby + 16, 16 * mbx : 16 * mbx + 16]
        bi_luma = kernels.average(pred_fwd["y"], pred_bwd["y"])
        bi_rate = (
            se_bit_length(fwd.mv.x - pred_l0.x)
            + se_bit_length(fwd.mv.y - pred_l0.y)
            + se_bit_length(bwd.mv.x - pred_l1.x)
            + se_bit_length(bwd.mv.y - pred_l1.y)
        )
        bi_cost = kernels.sad(current, bi_luma) + self.lagrangian * bi_rate
        mode_costs = {"fwd": fwd.cost, "bwd": bwd.cost, "bi": bi_cost}
        mode = min(mode_costs, key=mode_costs.get)

        if self._quick_intra_cost(source, mbx, mby) < mode_costs[mode]:
            self._encode_intra_in_inter(writer, source, mbx, mby, is_b=True)
            return

        if mode == "fwd":
            prediction = pred_fwd
        elif mode == "bwd":
            prediction = pred_bwd
        else:
            prediction = {
                name: kernels.average(pred_fwd[name], pred_bwd[name])
                for name in ("y", "u", "v")
            }
        cbp_luma, luma_blocks = self._prepare_luma_residual(source, prediction["y"], mbx, mby)
        chroma_prep = self._prepare_chroma(source, prediction, mbx, mby, intra_mb=False)

        if mode == "fwd" and cbp_luma == 0 and chroma_prep.cbp == 0 and fwd.mv == pred_l0:
            write_ue(writer, common.B_SKIP)
            self._grid_l0.set_rect(bx, by, 4, 4, fwd.mv, 0)
            self._meta.mark_inter(bx, by, 4, 4, fwd.mv, 0)
            self._recon_luma_inter(0, luma_blocks, prediction["y"], mbx, mby)
            self._recon_chroma(chroma_prep, prediction, mbx, mby)
            self._set_luma_tc_zero(mbx, mby)
            self._set_chroma_tc_zero(mbx, mby)
            self.stats.skipped_macroblocks += 1
            return

        code = {"bi": common.B_BI, "fwd": common.B_FWD, "bwd": common.B_BWD}[mode]
        write_ue(writer, code)
        deblock_mv = fwd.mv if mode in ("fwd", "bi") else bwd.mv
        if mode in ("fwd", "bi"):
            write_se(writer, fwd.mv.x - pred_l0.x)
            write_se(writer, fwd.mv.y - pred_l0.y)
            self._grid_l0.set_rect(bx, by, 4, 4, fwd.mv, 0)
        if mode in ("bwd", "bi"):
            write_se(writer, bwd.mv.x - pred_l1.x)
            write_se(writer, bwd.mv.y - pred_l1.y)
            self._grid_l1.set_rect(bx, by, 4, 4, bwd.mv, 0)
        self._meta.mark_inter(bx, by, 4, 4, deblock_mv, 0 if mode != "bwd" else 1)
        self._write_luma_residual(writer, cbp_luma, luma_blocks, mbx, mby)
        self._write_chroma(writer, chroma_prep, mbx, mby)
        self._recon_luma_inter(cbp_luma, luma_blocks, prediction["y"], mbx, mby)
        self._recon_chroma(chroma_prep, prediction, mbx, mby)
        self.stats.inter_macroblocks += 1


#: Alias so the encoder module reads naturally.
TcGridAlias = common.TcGrid
