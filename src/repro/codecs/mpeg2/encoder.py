"""MPEG-2 class encoder.

Implements the MPEG-2 Main Profile toolset the paper's FFmpeg encoder
exercises: I/P/B pictures in the fixed I-P-B-B GOP, 8x8 DCT with the
default intra/inter quantiser matrices, 16x16 motion compensation with
half-pel bilinear interpolation, EPZS motion estimation, differential
intra-DC prediction and run/level VLC entropy coding.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.codecs.base import (
    EncodedPicture,
    EncodedVideo,
    VideoEncoder,
)
from repro.codecs.frames import WorkingFrame
from repro.codecs.mpeg2 import tables
from repro.codecs.mpeg2.coefficients import encode_run_level
from repro.codecs.mpeg2.config import Mpeg2Config
from repro.codecs.mpeg2.prediction import average_prediction, predict_mb
from repro.common.bitstream import BitWriter
from repro.common.expgolomb import se_bit_length, write_se
from repro.common.gop import CodedFrame, FrameType
from repro.common.yuv import YuvSequence
from repro.errors import CodecError
from repro.kernels import get_kernels
from repro.kernels.tables import MPEG_INTER_MATRIX, MPEG_INTRA_MATRIX
from repro.me.cost import MotionCost, lambda_from_qp
from repro.me.search import run_search
from repro.me.subpel import refine_subpel
from repro.me.types import MotionVector, SearchResult, ZERO_MV
from repro.transform.qp import h264_qp_from_mpeg
from repro.transform.zigzag import scan8

#: Fixed-cost bias (in SAD units) that inter prediction must beat before a
#: macroblock falls back to intra coding, as in FFmpeg's mb decision.
INTRA_BIAS = 128


def _halve_to_zero(value: int) -> int:
    return value // 2 if value >= 0 else -((-value) // 2)


def _int_mv_from_halfpel(mv: MotionVector) -> MotionVector:
    return MotionVector(_halve_to_zero(mv.x), _halve_to_zero(mv.y))


class Mpeg2Encoder(VideoEncoder):
    """MPEG-2 class encoder (see module docstring)."""

    codec_name = "mpeg2"

    def __init__(self, config: Mpeg2Config) -> None:
        super().__init__(config)
        self.config: Mpeg2Config = config
        self.kernels = get_kernels(config.backend)
        self.lagrangian = lambda_from_qp(h264_qp_from_mpeg(config.qscale))

    # ------------------------------------------------------------------
    # sequence level
    # ------------------------------------------------------------------

    def encode_sequence(self, video: YuvSequence) -> EncodedVideo:
        self._check_input(video)
        stream = EncodedVideo(
            codec=self.codec_name,
            width=self.config.width,
            height=self.config.height,
            fps=video.fps,
        )
        references: Dict[int, WorkingFrame] = {}
        for entry in self.config.gop.coding_order(len(video)):
            source = WorkingFrame.from_yuv(video[entry.display_index])
            forward = references.get(entry.forward_ref) if entry.forward_ref is not None else None
            backward = references.get(entry.backward_ref) if entry.backward_ref is not None else None
            if entry.frame_type is not FrameType.I and forward is None:
                raise CodecError(f"missing forward reference for frame {entry.display_index}")
            if entry.frame_type is FrameType.B and backward is None:
                raise CodecError(f"missing backward reference for frame {entry.display_index}")
            payload, recon = self._encode_picture(entry, source, forward, backward)
            stream.pictures.append(
                EncodedPicture(payload, entry.display_index, entry.frame_type)
            )
            self.stats.frame_bits.append(8 * len(payload))
            if entry.frame_type.is_anchor and recon is not None:
                references[entry.display_index] = recon
                for key in sorted(references)[:-2]:
                    del references[key]
        return stream

    # ------------------------------------------------------------------
    # picture level
    # ------------------------------------------------------------------

    _TYPE_CODE = {FrameType.I: 0, FrameType.P: 1, FrameType.B: 2}

    def _encode_picture(
        self,
        entry: CodedFrame,
        source: WorkingFrame,
        forward: Optional[WorkingFrame],
        backward: Optional[WorkingFrame],
    ) -> Tuple[bytes, Optional[WorkingFrame]]:
        config = self.config
        writer = BitWriter()
        writer.write_bits(self._TYPE_CODE[entry.frame_type], 2)
        writer.write_bits(config.qscale, 5)
        writer.write_bits(config.search_range, 8)

        is_anchor = entry.frame_type.is_anchor
        recon = WorkingFrame.blank(config.width, config.height) if is_anchor else None

        # Per-picture coding state.
        self._pmv_fwd = ZERO_MV
        self._pmv_bwd = ZERO_MV
        self._dc_pred = dict.fromkeys(("y", "u", "v"), tables.DC_PREDICTOR_RESET)
        self._mv_field: List[List[Optional[MotionVector]]] = [
            [None] * config.mb_width for _ in range(config.mb_height)
        ]

        for mby in range(config.mb_height):
            self._reset_row_state()
            for mbx in range(config.mb_width):
                if entry.frame_type is FrameType.I:
                    self._encode_intra_mb(writer, source, recon, mbx, mby)
                elif entry.frame_type is FrameType.P:
                    self._encode_p_mb(writer, source, recon, forward, mbx, mby)
                else:
                    self._encode_b_mb(writer, source, forward, backward, mbx, mby)
        writer.align()
        return writer.to_bytes(), recon

    def _reset_row_state(self) -> None:
        self._pmv_fwd = ZERO_MV
        self._pmv_bwd = ZERO_MV
        for name in ("y", "u", "v"):
            self._dc_pred[name] = tables.DC_PREDICTOR_RESET

    def _reset_dc_pred(self) -> None:
        for name in ("y", "u", "v"):
            self._dc_pred[name] = tables.DC_PREDICTOR_RESET

    # ------------------------------------------------------------------
    # intra macroblocks
    # ------------------------------------------------------------------

    def _encode_intra_mb(
        self,
        writer: BitWriter,
        source: WorkingFrame,
        recon: Optional[WorkingFrame],
        mbx: int,
        mby: int,
    ) -> None:
        kernels = self.kernels
        qscale = self.config.qscale
        for plane, off_x, off_y in tables.BLOCK_LAYOUT:
            base = 16 if plane == "y" else 8
            x = mbx * base + off_x
            y = mby * base + off_y
            block = source.plane(plane)[y : y + 8, x : x + 8]
            coeffs = kernels.fdct8(block)
            levels = kernels.quant_mpeg(coeffs, MPEG_INTRA_MATRIX, qscale, intra=True)
            dc = int(levels[0, 0])
            write_se(writer, dc - self._dc_pred[plane])
            self._dc_pred[plane] = dc
            encode_run_level(writer, scan8(levels), start=1)
            if recon is not None:
                rebuilt = kernels.dequant_mpeg(levels, MPEG_INTRA_MATRIX, qscale, intra=True)
                pixels = kernels.add_clip(np.zeros((8, 8), dtype=np.int64), kernels.idct8(rebuilt))
                recon.store_block(plane, x, y, pixels)
        self.stats.intra_macroblocks += 1

    # ------------------------------------------------------------------
    # motion estimation helpers
    # ------------------------------------------------------------------

    def _spatial_predictors(self, mbx: int, mby: int) -> List[MotionVector]:
        field = self._mv_field
        predictors = []
        if mbx > 0 and field[mby][mbx - 1] is not None:
            predictors.append(field[mby][mbx - 1])
        if mby > 0:
            if field[mby - 1][mbx] is not None:
                predictors.append(field[mby - 1][mbx])
            if mbx + 1 < self.config.mb_width and field[mby - 1][mbx + 1] is not None:
                predictors.append(field[mby - 1][mbx + 1])
        return predictors

    def _search_luma(
        self,
        source: WorkingFrame,
        reference: WorkingFrame,
        mbx: int,
        mby: int,
        pmv: MotionVector,
    ) -> SearchResult:
        """Integer EPZS + half-pel refinement; result MV in half-pel units."""
        config = self.config
        kernels = self.kernels
        x, y = mbx * 16, mby * 16
        current = source.y[y : y + 16, x : x + 16]
        padded = reference.padded("y", config.search_range)
        cost = MotionCost(
            kernels=kernels,
            current=current,
            reference=padded,
            x=x,
            y=y,
            width=16,
            height=16,
            predictor=_int_mv_from_halfpel(pmv),
            lagrangian=self.lagrangian,
            search_range=config.search_range,
        )
        integer = run_search(config.me_algorithm, cost, self._spatial_predictors(mbx, mby))
        return refine_subpel(
            kernels,
            current,
            padded,
            x,
            y,
            16,
            16,
            integer,
            predictor=pmv,
            lagrangian=self.lagrangian,
            unit=2,
            interp=kernels.mc_halfpel,
        )

    def _predict_mb(
        self, reference: WorkingFrame, mbx: int, mby: int, mv: MotionVector
    ) -> Dict[str, np.ndarray]:
        """Motion-compensated prediction of all three planes for one MB."""
        return predict_mb(
            self.kernels, reference, mbx, mby, mv, self.config.search_range
        )

    # ------------------------------------------------------------------
    # residual coding
    # ------------------------------------------------------------------

    def _quantise_residual(
        self,
        source: WorkingFrame,
        prediction: Dict[str, np.ndarray],
        mbx: int,
        mby: int,
    ) -> Tuple[int, List[Optional[np.ndarray]]]:
        """Transform/quantise the 6 residual blocks; returns (cbp, levels)."""
        kernels = self.kernels
        qscale = self.config.qscale
        cbp = 0
        all_levels: List[Optional[np.ndarray]] = []
        for block_index, (plane, off_x, off_y) in enumerate(tables.BLOCK_LAYOUT):
            if plane == "y":
                x, y = mbx * 16 + off_x, mby * 16 + off_y
                pred_block = prediction["y"][off_y : off_y + 8, off_x : off_x + 8]
            else:
                x, y = mbx * 8, mby * 8
                pred_block = prediction[plane]
            current = source.plane(plane)[y : y + 8, x : x + 8]
            residual = kernels.sub(current, pred_block)
            coeffs = kernels.fdct8(residual)
            levels = kernels.quant_mpeg(coeffs, MPEG_INTER_MATRIX, qscale, intra=False)
            if np.any(levels):
                cbp |= tables.cbp_bit(block_index)
                all_levels.append(levels)
            else:
                all_levels.append(None)
        return cbp, all_levels

    def _write_residual(self, writer: BitWriter, cbp: int,
                        all_levels: List[Optional[np.ndarray]]) -> None:
        tables.CBP_TABLE.write(writer, cbp)
        for levels in all_levels:
            if levels is not None:
                encode_run_level(writer, scan8(levels), start=0)

    def _reconstruct_inter(
        self,
        recon: WorkingFrame,
        prediction: Dict[str, np.ndarray],
        all_levels: List[Optional[np.ndarray]],
        mbx: int,
        mby: int,
    ) -> None:
        kernels = self.kernels
        qscale = self.config.qscale
        for block_index, (plane, off_x, off_y) in enumerate(tables.BLOCK_LAYOUT):
            if plane == "y":
                x, y = mbx * 16 + off_x, mby * 16 + off_y
                pred_block = prediction["y"][off_y : off_y + 8, off_x : off_x + 8]
            else:
                x, y = mbx * 8, mby * 8
                pred_block = prediction[plane]
            levels = all_levels[block_index]
            if levels is None:
                pixels = kernels.add_clip(pred_block, np.zeros((8, 8), dtype=np.int64))
            else:
                coeffs = kernels.dequant_mpeg(levels, MPEG_INTER_MATRIX, qscale, intra=False)
                pixels = kernels.add_clip(pred_block, kernels.idct8(coeffs))
            recon.store_block(plane, x, y, pixels)

    # ------------------------------------------------------------------
    # P macroblocks
    # ------------------------------------------------------------------

    def _intra_cost(self, source: WorkingFrame, mbx: int, mby: int) -> int:
        block = source.y[mby * 16 : mby * 16 + 16, mbx * 16 : mbx * 16 + 16]
        mean = int(np.mean(block) + 0.5)
        flat = np.full((16, 16), mean, dtype=np.int64)
        return self.kernels.sad(block, flat) + INTRA_BIAS

    def _encode_p_mb(
        self,
        writer: BitWriter,
        source: WorkingFrame,
        recon: WorkingFrame,
        forward: WorkingFrame,
        mbx: int,
        mby: int,
    ) -> None:
        best = self._search_luma(source, forward, mbx, mby, self._pmv_fwd)
        if self._intra_cost(source, mbx, mby) < best.cost:
            tables.MB_P_TABLE.write(writer, "intra")
            self._reset_dc_pred()
            self._encode_intra_mb(writer, source, recon, mbx, mby)
            self._pmv_fwd = ZERO_MV
            self._mv_field[mby][mbx] = ZERO_MV
            return
        mv = best.mv
        prediction = self._predict_mb(forward, mbx, mby, mv)
        cbp, all_levels = self._quantise_residual(source, prediction, mbx, mby)
        if cbp == 0 and mv == ZERO_MV:
            tables.MB_P_TABLE.write(writer, "skip")
            self._pmv_fwd = ZERO_MV
            self._mv_field[mby][mbx] = ZERO_MV
            self._reconstruct_inter(recon, prediction, all_levels, mbx, mby)
            self._reset_dc_pred()
            self.stats.skipped_macroblocks += 1
            return
        tables.MB_P_TABLE.write(writer, "inter")
        write_se(writer, mv.x - self._pmv_fwd.x)
        write_se(writer, mv.y - self._pmv_fwd.y)
        self._pmv_fwd = mv
        self._mv_field[mby][mbx] = _int_mv_from_halfpel(mv)
        self._write_residual(writer, cbp, all_levels)
        self._reconstruct_inter(recon, prediction, all_levels, mbx, mby)
        self._reset_dc_pred()
        self.stats.inter_macroblocks += 1

    # ------------------------------------------------------------------
    # B macroblocks
    # ------------------------------------------------------------------

    def _encode_b_mb(
        self,
        writer: BitWriter,
        source: WorkingFrame,
        forward: WorkingFrame,
        backward: WorkingFrame,
        mbx: int,
        mby: int,
    ) -> None:
        kernels = self.kernels
        fwd = self._search_luma(source, forward, mbx, mby, self._pmv_fwd)
        bwd = self._search_luma(source, backward, mbx, mby, self._pmv_bwd)

        x, y = mbx * 16, mby * 16
        current = source.y[y : y + 16, x : x + 16]
        pred_fwd = self._predict_mb(forward, mbx, mby, fwd.mv)
        pred_bwd = self._predict_mb(backward, mbx, mby, bwd.mv)
        bi_luma = kernels.average(pred_fwd["y"], pred_bwd["y"])
        bi_rate = (
            se_bit_length(fwd.mv.x - self._pmv_fwd.x)
            + se_bit_length(fwd.mv.y - self._pmv_fwd.y)
            + se_bit_length(bwd.mv.x - self._pmv_bwd.x)
            + se_bit_length(bwd.mv.y - self._pmv_bwd.y)
        )
        bi_cost = kernels.sad(current, bi_luma) + self.lagrangian * bi_rate

        mode_costs = {"fwd": fwd.cost, "bwd": bwd.cost, "bi": bi_cost}
        mode = min(mode_costs, key=mode_costs.get)
        if self._intra_cost(source, mbx, mby) < mode_costs[mode]:
            tables.MB_B_TABLE.write(writer, "intra")
            self._reset_dc_pred()
            self._encode_intra_mb(writer, source, None, mbx, mby)
            self._pmv_fwd = ZERO_MV
            self._pmv_bwd = ZERO_MV
            self._mv_field[mby][mbx] = ZERO_MV
            return

        if mode == "fwd":
            prediction = pred_fwd
        elif mode == "bwd":
            prediction = pred_bwd
        else:
            prediction = average_prediction(kernels, pred_fwd, pred_bwd)
        cbp, all_levels = self._quantise_residual(source, prediction, mbx, mby)

        if mode == "fwd" and cbp == 0 and fwd.mv == self._pmv_fwd:
            tables.MB_B_TABLE.write(writer, "skip")
            self._mv_field[mby][mbx] = _int_mv_from_halfpel(fwd.mv)
            self.stats.skipped_macroblocks += 1
            return

        tables.MB_B_TABLE.write(writer, mode)
        if mode in ("fwd", "bi"):
            write_se(writer, fwd.mv.x - self._pmv_fwd.x)
            write_se(writer, fwd.mv.y - self._pmv_fwd.y)
            self._pmv_fwd = fwd.mv
        if mode in ("bwd", "bi"):
            write_se(writer, bwd.mv.x - self._pmv_bwd.x)
            write_se(writer, bwd.mv.y - self._pmv_bwd.y)
            self._pmv_bwd = bwd.mv
        self._mv_field[mby][mbx] = _int_mv_from_halfpel(
            fwd.mv if mode in ("fwd", "bi") else bwd.mv
        )
        self._write_residual(writer, cbp, all_levels)
        self.stats.inter_macroblocks += 1
