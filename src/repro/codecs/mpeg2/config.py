"""Configuration of the MPEG-2 class codec."""

from __future__ import annotations

from dataclasses import dataclass

from repro.codecs.base import CodecConfig
from repro.transform.qp import validate_mpeg_qscale


@dataclass(frozen=True)
class Mpeg2Config(CodecConfig):
    """MPEG-2 encoder settings.

    ``qscale`` is the constant quantiser scale; the paper encodes with
    ``vqscale=5`` (Table IV).  Motion estimation defaults to EPZS with
    half-pel refinement, per Section IV.
    """

    qscale: int = 5

    def __post_init__(self) -> None:
        super().__post_init__()
        validate_mpeg_qscale(self.qscale)
