"""Motion-compensated macroblock prediction shared by encoder and decoder."""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.codecs.frames import WorkingFrame
from repro.mc.chroma import chroma_mv_from_halfpel
from repro.me.types import MotionVector
from repro.robustness.guard import check_motion_vector


def predict_mb(
    kernels,
    reference: WorkingFrame,
    mbx: int,
    mby: int,
    mv: MotionVector,
    search_range: int,
) -> Dict[str, np.ndarray]:
    """Half-pel prediction of one macroblock (luma 16x16 + chroma 8x8)."""
    check_motion_vector(mv, search_range, 2)
    luma = reference.padded("y", search_range)
    px, py = luma.offset(mbx * 16, mby * 16)
    prediction = {"y": kernels.mc_halfpel(luma.plane, px, py, 16, 16, mv.x, mv.y)}
    cmv = chroma_mv_from_halfpel(mv)
    for plane in ("u", "v"):
        padded = reference.padded(plane, search_range)
        cx, cy = padded.offset(mbx * 8, mby * 8)
        prediction[plane] = kernels.mc_halfpel(padded.plane, cx, cy, 8, 8, cmv.x, cmv.y)
    return prediction


def average_prediction(
    kernels,
    forward: Dict[str, np.ndarray],
    backward: Dict[str, np.ndarray],
) -> Dict[str, np.ndarray]:
    """Bi-directional prediction: rounded average of both directions."""
    return {
        name: kernels.average(forward[name], backward[name])
        for name in ("y", "u", "v")
    }
