"""MPEG-2 class codec (paper applications: FFmpeg encoder, libmpeg2 decoder)."""

from repro.codecs.mpeg2.config import Mpeg2Config
from repro.codecs.mpeg2.decoder import Mpeg2Decoder
from repro.codecs.mpeg2.encoder import Mpeg2Encoder

__all__ = ["Mpeg2Config", "Mpeg2Decoder", "Mpeg2Encoder"]
