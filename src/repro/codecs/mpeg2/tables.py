"""Static VLC tables of the MPEG-2 class codec.

Code tables are built from explicit priors via deterministic Huffman
construction (see :mod:`repro.codecs.huffman` and the bitstream note in
DESIGN.md): two-dimensional (run, level) coefficient events with an escape,
a coded-block-pattern table and macroblock mode tables — the table
*structure* of ISO 13818-2 with self-consistent codes.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.codecs.huffman import VlcTable, geometric

#: Sentinel symbols.
EOB = "EOB"
ESCAPE = "ESC"

#: Limits of the non-escape (run, level) alphabet.
MAX_RUN = 14
MAX_LEVEL = 15

#: Escape payload field widths.
ESCAPE_RUN_BITS = 6
ESCAPE_LEVEL_BITS = 12


def _coefficient_frequencies() -> Dict[object, float]:
    freqs: Dict[object, float] = {EOB: 0.28, ESCAPE: 1e-7}
    for run in range(MAX_RUN + 1):
        for level in range(1, MAX_LEVEL + 1):
            freqs[(run, level)] = (
                0.72 * geometric(0.45, run) * geometric(0.55, level - 1)
            )
    return freqs


COEFF_TABLE = VlcTable.from_frequencies(_coefficient_frequencies(), name="mpeg2-coeff")


def _cbp_frequencies() -> Dict[int, float]:
    """Coded block pattern prior: sparse patterns are likelier."""
    freqs = {}
    for pattern in range(64):
        set_bits = bin(pattern).count("1")
        freqs[pattern] = 0.62 ** set_bits * 0.38 ** (6 - set_bits) + 1e-9
    # Full and luma-only patterns are disproportionately common.
    freqs[0b111111] *= 8.0
    freqs[0b111100] *= 4.0
    return freqs


CBP_TABLE = VlcTable.from_frequencies(_cbp_frequencies(), name="mpeg2-cbp")

#: Macroblock modes in P pictures.
MB_P_TABLE = VlcTable.from_frequencies(
    {"inter": 0.62, "skip": 0.28, "intra": 0.10}, name="mpeg2-mb-p"
)

#: Macroblock modes in B pictures.
MB_B_TABLE = VlcTable.from_frequencies(
    {"bi": 0.34, "fwd": 0.26, "skip": 0.22, "bwd": 0.14, "intra": 0.04},
    name="mpeg2-mb-b",
)

#: Block index -> coded block pattern bit (Y0 Y1 Y2 Y3 U V, MSB first).
def cbp_bit(block_index: int) -> int:
    return 1 << (5 - block_index)


#: Offsets of the six 8x8 blocks inside a macroblock: (plane, x, y).
BLOCK_LAYOUT: Tuple[Tuple[str, int, int], ...] = (
    ("y", 0, 0),
    ("y", 8, 0),
    ("y", 0, 8),
    ("y", 8, 8),
    ("u", 0, 0),
    ("v", 0, 0),
)

#: Initial intra DC predictor (the level of a flat mid-grey block).
DC_PREDICTOR_RESET = 128
