"""MPEG-2 class decoder.

Bit-exact inverse of :mod:`repro.codecs.mpeg2.encoder`: parses the picture
payloads, rebuilds predictions from the decoded motion vectors and adds the
dequantised/inverse-transformed residuals.  Plays the role libmpeg2 plays
in the paper (the high-performance MPEG-2 decode application).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.codecs.base import EncodedPicture, EncodedVideo, VideoDecoder
from repro.codecs.frames import WorkingFrame
from repro.codecs.mpeg2 import tables
from repro.codecs.mpeg2.coefficients import decode_run_level
from repro.codecs.mpeg2.prediction import average_prediction, predict_mb
from repro.common.bitstream import BitReader
from repro.common.expgolomb import read_se
from repro.common.gop import FrameType
from repro.errors import CodecError
from repro.kernels import get_kernels
from repro.kernels.tables import MPEG_INTER_MATRIX, MPEG_INTRA_MATRIX
from repro.me.types import MotionVector, ZERO_MV
from repro.robustness.guard import check_header, read_frame_type
from repro.transform.zigzag import unscan8


class Mpeg2Decoder(VideoDecoder):
    """MPEG-2 class decoder (see module docstring)."""

    codec_name = "mpeg2"

    def __init__(self, backend: str = "simd") -> None:
        self.kernels = get_kernels(backend)

    def decode_picture(
        self,
        stream: EncodedVideo,
        picture: EncodedPicture,
        references: Dict[int, WorkingFrame],
    ) -> WorkingFrame:
        reader = self._open_reader(picture.payload)
        frame_type = read_frame_type(reader, expected=picture.frame_type)
        qscale = check_header("qscale", reader.read_bits(5), 1, 31)
        search_range = check_header("search_range", reader.read_bits(8), 1, 255)

        if frame_type is not FrameType.I and not references:
            raise CodecError("inter picture without reference frames")
        ordered = sorted(references)
        forward = references[ordered[-1]] if frame_type is FrameType.P else None
        backward: Optional[WorkingFrame] = None
        if frame_type is FrameType.B:
            if len(ordered) < 2:
                raise CodecError("B picture requires two reference frames")
            forward = references[ordered[-2]]
            backward = references[ordered[-1]]

        mb_width = stream.width // 16
        mb_height = stream.height // 16
        recon = WorkingFrame.blank(stream.width, stream.height)

        self._qscale = qscale
        self._search_range = search_range
        for mby in range(mb_height):
            self._pmv_fwd = ZERO_MV
            self._pmv_bwd = ZERO_MV
            self._dc_pred = dict.fromkeys(("y", "u", "v"), tables.DC_PREDICTOR_RESET)
            for mbx in range(mb_width):
                if frame_type is FrameType.I:
                    self._decode_intra_mb(reader, recon, mbx, mby)
                elif frame_type is FrameType.P:
                    self._decode_p_mb(reader, recon, forward, mbx, mby)
                else:
                    self._decode_b_mb(reader, recon, forward, backward, mbx, mby)
        return recon

    def _reset_dc_pred(self) -> None:
        for name in ("y", "u", "v"):
            self._dc_pred[name] = tables.DC_PREDICTOR_RESET

    # ------------------------------------------------------------------

    def _decode_intra_mb(self, reader: BitReader, recon: WorkingFrame,
                         mbx: int, mby: int) -> None:
        kernels = self.kernels
        for plane, off_x, off_y in tables.BLOCK_LAYOUT:
            base = 16 if plane == "y" else 8
            x = mbx * base + off_x
            y = mby * base + off_y
            dc = self._dc_pred[plane] + read_se(reader)
            self._dc_pred[plane] = dc
            scanned = decode_run_level(reader, 64, start=1)
            scanned[0] = dc
            levels = unscan8(scanned)
            coeffs = kernels.dequant_mpeg(levels, MPEG_INTRA_MATRIX, self._qscale, intra=True)
            pixels = kernels.add_clip(
                np.zeros((8, 8), dtype=np.int64), kernels.idct8(coeffs)
            )
            recon.store_block(plane, x, y, pixels)

    def _read_residual(self, reader: BitReader) -> List[Optional[np.ndarray]]:
        cbp = tables.CBP_TABLE.read(reader)
        all_levels: List[Optional[np.ndarray]] = []
        for block_index in range(6):
            if cbp & tables.cbp_bit(block_index):
                scanned = decode_run_level(reader, 64, start=0)
                all_levels.append(unscan8(scanned))
            else:
                all_levels.append(None)
        return all_levels

    def _reconstruct_inter(
        self,
        recon: WorkingFrame,
        prediction: Dict[str, np.ndarray],
        all_levels: List[Optional[np.ndarray]],
        mbx: int,
        mby: int,
    ) -> None:
        kernels = self.kernels
        for block_index, (plane, off_x, off_y) in enumerate(tables.BLOCK_LAYOUT):
            if plane == "y":
                x, y = mbx * 16 + off_x, mby * 16 + off_y
                pred_block = prediction["y"][off_y : off_y + 8, off_x : off_x + 8]
            else:
                x, y = mbx * 8, mby * 8
                pred_block = prediction[plane]
            levels = all_levels[block_index]
            if levels is None:
                pixels = kernels.add_clip(pred_block, np.zeros((8, 8), dtype=np.int64))
            else:
                coeffs = kernels.dequant_mpeg(
                    levels, MPEG_INTER_MATRIX, self._qscale, intra=False
                )
                pixels = kernels.add_clip(pred_block, kernels.idct8(coeffs))
            recon.store_block(plane, x, y, pixels)

    def _predict(self, reference: WorkingFrame, mbx: int, mby: int,
                 mv: MotionVector) -> Dict[str, np.ndarray]:
        return predict_mb(self.kernels, reference, mbx, mby, mv, self._search_range)

    # ------------------------------------------------------------------

    def _decode_p_mb(self, reader: BitReader, recon: WorkingFrame,
                     forward: WorkingFrame, mbx: int, mby: int) -> None:
        mode = tables.MB_P_TABLE.read(reader)
        if mode == "intra":
            self._reset_dc_pred()
            self._decode_intra_mb(reader, recon, mbx, mby)
            self._pmv_fwd = ZERO_MV
            return
        if mode == "skip":
            self._pmv_fwd = ZERO_MV
            prediction = self._predict(forward, mbx, mby, ZERO_MV)
            self._reconstruct_inter(recon, prediction, [None] * 6, mbx, mby)
            self._reset_dc_pred()
            return
        mv = MotionVector(
            self._pmv_fwd.x + read_se(reader),
            self._pmv_fwd.y + read_se(reader),
        )
        self._pmv_fwd = mv
        all_levels = self._read_residual(reader)
        prediction = self._predict(forward, mbx, mby, mv)
        self._reconstruct_inter(recon, prediction, all_levels, mbx, mby)
        self._reset_dc_pred()

    def _decode_b_mb(self, reader: BitReader, recon: WorkingFrame,
                     forward: WorkingFrame, backward: WorkingFrame,
                     mbx: int, mby: int) -> None:
        mode = tables.MB_B_TABLE.read(reader)
        if mode == "intra":
            self._reset_dc_pred()
            self._decode_intra_mb(reader, recon, mbx, mby)
            self._pmv_fwd = ZERO_MV
            self._pmv_bwd = ZERO_MV
            return
        if mode == "skip":
            prediction = self._predict(forward, mbx, mby, self._pmv_fwd)
            self._reconstruct_inter(recon, prediction, [None] * 6, mbx, mby)
            self._reset_dc_pred()
            return
        mv_fwd = mv_bwd = None
        if mode in ("fwd", "bi"):
            mv_fwd = MotionVector(
                self._pmv_fwd.x + read_se(reader),
                self._pmv_fwd.y + read_se(reader),
            )
            self._pmv_fwd = mv_fwd
        if mode in ("bwd", "bi"):
            mv_bwd = MotionVector(
                self._pmv_bwd.x + read_se(reader),
                self._pmv_bwd.y + read_se(reader),
            )
            self._pmv_bwd = mv_bwd
        all_levels = self._read_residual(reader)
        if mode == "fwd":
            prediction = self._predict(forward, mbx, mby, mv_fwd)
        elif mode == "bwd":
            prediction = self._predict(backward, mbx, mby, mv_bwd)
        else:
            prediction = average_prediction(
                self.kernels,
                self._predict(forward, mbx, mby, mv_fwd),
                self._predict(backward, mbx, mby, mv_bwd),
            )
        self._reconstruct_inter(recon, prediction, all_levels, mbx, mby)
        self._reset_dc_pred()
