"""JPEG-structured entropy coding: (run, size) symbols + amplitude bits."""

from __future__ import annotations

from typing import List, Sequence

from repro.codecs.mjpeg import tables
from repro.common.bitstream import BitReader, BitWriter
from repro.errors import BitstreamError


def write_amplitude(writer: BitWriter, value: int, size: int) -> None:
    """JPEG amplitude convention: negatives are coded as value-1 in
    ``size`` bits (so the top bit distinguishes the sign)."""
    if size == 0:
        return
    if value > 0:
        writer.write_bits(value, size)
    else:
        writer.write_bits(value + (1 << size) - 1, size)


def read_amplitude(reader: BitReader, size: int) -> int:
    if size == 0:
        return 0
    raw = reader.read_bits(size)
    if raw >> (size - 1):
        return raw
    return raw - (1 << size) + 1


def encode_dc(writer: BitWriter, diff: int) -> None:
    """Code a DC differential: size symbol + amplitude bits."""
    size = tables.amplitude_size(diff)
    if size > tables.DC_MAX_SIZE:
        raise BitstreamError(f"DC differential {diff} out of range")
    tables.DC_TABLE.write(writer, size)
    write_amplitude(writer, diff, size)


def decode_dc(reader: BitReader) -> int:
    size = tables.DC_TABLE.read(reader)
    return read_amplitude(reader, size)


def encode_ac(writer: BitWriter, scanned: Sequence[int]) -> None:
    """Code AC coefficients ``scanned[1:]`` with (run, size) events."""
    run = 0
    for value in scanned[1:]:
        if value == 0:
            run += 1
            continue
        while run > tables.MAX_RUN:
            tables.AC_TABLE.write(writer, tables.ZRL)
            run -= 16
        size = tables.amplitude_size(value)
        if size > tables.MAX_SIZE:
            raise BitstreamError(f"AC coefficient {value} out of range")
        tables.AC_TABLE.write(writer, (run, size))
        write_amplitude(writer, value, size)
        run = 0
    tables.AC_TABLE.write(writer, tables.EOB)


def decode_ac(reader: BitReader, size: int = 64) -> List[int]:
    """Decode AC coefficients; position 0 (DC) is left as zero."""
    scanned = [0] * size
    position = 1
    while True:
        symbol = tables.AC_TABLE.read(reader)
        if symbol == tables.EOB:
            return scanned
        if symbol == tables.ZRL:
            position += 16
            if position > size:
                raise BitstreamError("ZRL past end of block")
            continue
        run, amp_size = symbol
        position += run
        if position >= size:
            raise BitstreamError("(run, size) event past end of block")
        scanned[position] = read_amplitude(reader, amp_size)
        position += 1
