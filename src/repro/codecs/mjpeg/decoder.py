"""Motion-JPEG class decoder: bit-exact inverse of the encoder."""

from __future__ import annotations

import numpy as np

from repro.codecs.base import EncodedVideo, VideoDecoder
from repro.codecs.frames import WorkingFrame
from repro.codecs.mjpeg import tables
from repro.codecs.mjpeg.coefficients import decode_ac, decode_dc
from repro.common.bitstream import BitReader
from repro.common.yuv import YuvFrame, YuvSequence
from repro.errors import CodecError
from repro.kernels import get_kernels
from repro.transform.zigzag import unscan8


class MjpegDecoder(VideoDecoder):
    """Motion-JPEG class decoder."""

    codec_name = "mjpeg"

    def __init__(self, backend: str = "simd") -> None:
        self.kernels = get_kernels(backend)

    def decode(self, stream: EncodedVideo) -> YuvSequence:
        self._check_stream(stream)
        decoded = {}
        for picture in stream.pictures:
            if picture.display_index in decoded:
                raise CodecError(
                    f"duplicate display index {picture.display_index} in stream"
                )
            decoded[picture.display_index] = self._decode_frame(
                stream, picture.payload
            ).to_yuv()
        frames = [decoded[index] for index in sorted(decoded)]
        if sorted(decoded) != list(range(len(frames))):
            raise CodecError("stream has missing or duplicate display indices")
        return YuvSequence(frames, fps=stream.fps)

    def _decode_frame(self, stream: EncodedVideo, payload: bytes) -> WorkingFrame:
        kernels = self.kernels
        reader = BitReader(payload)
        quality = reader.read_bits(7)
        luma_matrix = tables.scaled_matrix(tables.LUMA_MATRIX, quality)
        chroma_matrix = tables.scaled_matrix(tables.CHROMA_MATRIX, quality)
        recon = WorkingFrame.blank(stream.width, stream.height)
        level_shift = np.full((8, 8), 128, dtype=np.int64)
        dc_pred = dict.fromkeys(("y", "u", "v"), 0)
        for mby in range(stream.height // 16):
            for mbx in range(stream.width // 16):
                for plane, off_x, off_y in tables.BLOCK_LAYOUT:
                    base = 16 if plane == "y" else 8
                    x = mbx * base + off_x
                    y = mby * base + off_y
                    matrix = luma_matrix if plane == "y" else chroma_matrix
                    dc = dc_pred[plane] + decode_dc(reader)
                    dc_pred[plane] = dc
                    scanned = decode_ac(reader)
                    scanned[0] = dc
                    coeffs = kernels.dequant_matrix(unscan8(scanned), matrix)
                    pixels = kernels.add_clip(level_shift, kernels.idct8(coeffs))
                    recon.store_block(plane, x, y, pixels)
        return recon
