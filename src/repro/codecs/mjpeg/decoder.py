"""Motion-JPEG class decoder: bit-exact inverse of the encoder."""

from __future__ import annotations

import numpy as np

from repro.codecs.base import EncodedPicture, EncodedVideo, VideoDecoder
from repro.codecs.frames import WorkingFrame
from repro.codecs.mjpeg import tables
from repro.codecs.mjpeg.coefficients import decode_ac, decode_dc
from repro.kernels import get_kernels
from repro.robustness.guard import check_header
from repro.transform.zigzag import unscan8


class MjpegDecoder(VideoDecoder):
    """Motion-JPEG class decoder."""

    codec_name = "mjpeg"

    def __init__(self, backend: str = "simd") -> None:
        self.kernels = get_kernels(backend)

    def decode_picture(self, stream: EncodedVideo, picture: EncodedPicture,
                       references) -> WorkingFrame:
        """Intra-only: every picture decodes independently of references."""
        return self._decode_frame(stream, picture.payload)

    def _decode_frame(self, stream: EncodedVideo, payload: bytes) -> WorkingFrame:
        kernels = self.kernels
        reader = self._open_reader(payload)
        quality = check_header("quality", reader.read_bits(7), 1, 100)
        luma_matrix = tables.scaled_matrix(tables.LUMA_MATRIX, quality)
        chroma_matrix = tables.scaled_matrix(tables.CHROMA_MATRIX, quality)
        recon = WorkingFrame.blank(stream.width, stream.height)
        level_shift = np.full((8, 8), 128, dtype=np.int64)
        dc_pred = dict.fromkeys(("y", "u", "v"), 0)
        for mby in range(stream.height // 16):
            for mbx in range(stream.width // 16):
                for plane, off_x, off_y in tables.BLOCK_LAYOUT:
                    base = 16 if plane == "y" else 8
                    x = mbx * base + off_x
                    y = mby * base + off_y
                    matrix = luma_matrix if plane == "y" else chroma_matrix
                    dc = dc_pred[plane] + decode_dc(reader)
                    dc_pred[plane] = dc
                    scanned = decode_ac(reader)
                    scanned[0] = dc
                    coeffs = kernels.dequant_matrix(unscan8(scanned), matrix)
                    pixels = kernels.add_clip(level_shift, kernels.idct8(coeffs))
                    recon.store_block(plane, x, y, pixels)
        return recon
