"""Motion-JPEG class encoder.

The intra-only extension codec the paper's conclusions plan for (Section
VII): every frame is a JPEG-structured picture — 8x8 DCT, Annex-K
quantisation matrices scaled by a quality factor, per-component DC
differential prediction and (run, size)+amplitude entropy coding.  No
motion compensation: the bitrate/throughput contrast against the hybrid
codecs is the point of including it in the benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.codecs.base import EncodedPicture, EncodedVideo, VideoEncoder
from repro.codecs.frames import WorkingFrame
from repro.codecs.mjpeg import tables
from repro.codecs.mjpeg.coefficients import encode_ac, encode_dc
from repro.codecs.mjpeg.config import MjpegConfig
from repro.common.bitstream import BitWriter
from repro.common.gop import FrameType
from repro.common.yuv import YuvSequence
from repro.kernels import get_kernels
from repro.transform.zigzag import scan8


class MjpegEncoder(VideoEncoder):
    """Motion-JPEG class encoder (see module docstring)."""

    codec_name = "mjpeg"

    def __init__(self, config: MjpegConfig) -> None:
        super().__init__(config)
        self.config: MjpegConfig = config
        self.kernels = get_kernels(config.backend)
        self.luma_matrix = tables.scaled_matrix(tables.LUMA_MATRIX, config.quality)
        self.chroma_matrix = tables.scaled_matrix(tables.CHROMA_MATRIX, config.quality)

    def encode_sequence(self, video: YuvSequence) -> EncodedVideo:
        self._check_input(video)
        stream = EncodedVideo(
            codec=self.codec_name,
            width=self.config.width,
            height=self.config.height,
            fps=video.fps,
        )
        for display_index, frame in enumerate(video):
            payload = self._encode_frame(WorkingFrame.from_yuv(frame))
            stream.pictures.append(EncodedPicture(payload, display_index, FrameType.I))
            self.stats.frame_bits.append(8 * len(payload))
        return stream

    def _encode_frame(self, source: WorkingFrame) -> bytes:
        kernels = self.kernels
        writer = BitWriter()
        writer.write_bits(self.config.quality, 7)
        dc_pred = dict.fromkeys(("y", "u", "v"), 0)
        for mby in range(self.config.mb_height):
            for mbx in range(self.config.mb_width):
                for plane, off_x, off_y in tables.BLOCK_LAYOUT:
                    base = 16 if plane == "y" else 8
                    x = mbx * base + off_x
                    y = mby * base + off_y
                    matrix = self.luma_matrix if plane == "y" else self.chroma_matrix
                    # JPEG level shift: samples are centred before the DCT.
                    block = source.plane(plane)[y : y + 8, x : x + 8] - 128
                    levels = kernels.quant_matrix(kernels.fdct8(block), matrix)
                    dc = int(levels[0, 0])
                    encode_dc(writer, dc - dc_pred[plane])
                    dc_pred[plane] = dc
                    encode_ac(writer, scan8(levels))
                self.stats.intra_macroblocks += 1
        writer.align()
        return writer.to_bytes()
