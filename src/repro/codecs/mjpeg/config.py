"""Configuration of the Motion-JPEG class codec."""

from __future__ import annotations

from dataclasses import dataclass

from repro.codecs.base import CodecConfig
from repro.errors import ConfigError


@dataclass(frozen=True)
class MjpegConfig(CodecConfig):
    """Motion-JPEG encoder settings.

    Intra-only: every frame is coded independently, so the GOP and motion
    search fields of :class:`CodecConfig` are ignored.  ``quality`` is the
    libjpeg-style 1..100 factor scaling the Annex K quantisation matrices.
    """

    quality: int = 75

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 1 <= self.quality <= 100:
            raise ConfigError(f"quality must be in [1, 100], got {self.quality}")
