"""Static tables of the Motion-JPEG class codec.

The paper's conclusions list Motion-JPEG-2000 among the planned benchmark
extensions (Section VII); this codec family provides the intra-only
baseline that extension calls for, built on JPEG's structure: the standard
luminance/chrominance quantisation matrices with libjpeg quality scaling,
and (run, size)+amplitude entropy coding with EOB/ZRL control symbols.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.codecs.huffman import VlcTable, geometric
from repro.errors import ConfigError

#: ITU-T T.81 Annex K luminance quantisation matrix.
LUMA_MATRIX = np.array(
    [
        [16, 11, 10, 16, 24, 40, 51, 61],
        [12, 12, 14, 19, 26, 58, 60, 55],
        [14, 13, 16, 24, 40, 57, 69, 56],
        [14, 17, 22, 29, 51, 87, 80, 62],
        [18, 22, 37, 56, 68, 109, 103, 77],
        [24, 35, 55, 64, 81, 104, 113, 92],
        [49, 64, 78, 87, 103, 121, 120, 101],
        [72, 92, 95, 98, 112, 100, 103, 99],
    ],
    dtype=np.int64,
)

#: ITU-T T.81 Annex K chrominance quantisation matrix.
CHROMA_MATRIX = np.array(
    [
        [17, 18, 24, 47, 99, 99, 99, 99],
        [18, 21, 26, 66, 99, 99, 99, 99],
        [24, 26, 56, 99, 99, 99, 99, 99],
        [47, 66, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
    ],
    dtype=np.int64,
)


def scaled_matrix(base: np.ndarray, quality: int) -> np.ndarray:
    """libjpeg quality scaling: 50 = the Annex K tables, 100 ~ lossless."""
    if not 1 <= quality <= 100:
        raise ConfigError(f"JPEG quality must be in [1, 100], got {quality}")
    if quality < 50:
        factor = 5000 // quality
    else:
        factor = 200 - 2 * quality
    scaled = (base * factor + 50) // 100
    return np.clip(scaled, 1, 255).astype(np.int64)


# ---------------------------------------------------------------------------
# Entropy coding: JPEG-structured (run, size) symbols.
# ---------------------------------------------------------------------------

EOB = (0, 0)
ZRL = (15, 0)  # run of 16 zeros
MAX_RUN = 15
MAX_SIZE = 11
DC_MAX_SIZE = 12


def amplitude_size(value: int) -> int:
    """JPEG category: the number of amplitude bits for ``value``."""
    return abs(value).bit_length()


def _ac_frequencies() -> Dict[Tuple[int, int], float]:
    freqs: Dict[Tuple[int, int], float] = {EOB: 0.22, ZRL: 0.002}
    for run in range(MAX_RUN + 1):
        for size in range(1, MAX_SIZE + 1):
            freqs[(run, size)] = (
                0.78 * geometric(0.42, run) * geometric(0.5, size - 1)
            )
    return freqs


AC_TABLE = VlcTable.from_frequencies(_ac_frequencies(), name="mjpeg-ac")

DC_TABLE = VlcTable.from_frequencies(
    {size: geometric(0.35, size) + 1e-9 for size in range(DC_MAX_SIZE + 1)},
    name="mjpeg-dc",
)

#: Offsets of the six 8x8 blocks inside a macroblock: (plane, x, y).
BLOCK_LAYOUT: Tuple[Tuple[str, int, int], ...] = (
    ("y", 0, 0),
    ("y", 8, 0),
    ("y", 0, 8),
    ("y", 8, 8),
    ("u", 0, 0),
    ("v", 0, 0),
)
