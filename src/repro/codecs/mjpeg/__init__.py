"""Motion-JPEG class codec — the paper's planned intra-only extension."""

from repro.codecs.mjpeg.config import MjpegConfig
from repro.codecs.mjpeg.decoder import MjpegDecoder
from repro.codecs.mjpeg.encoder import MjpegEncoder

__all__ = ["MjpegConfig", "MjpegDecoder", "MjpegEncoder"]
