"""The HDVB container: on-disk framing for encoded streams.

The paper wraps coded video in AVI (via MEncoder) or raw Annex-B files;
this library uses a single minimal container for all three codecs so the
player front end can probe the codec and feed the right decoder, the role
AVI plays for MPlayer.

Layout (big-endian):

    magic    4 bytes  b"HDVB"
    version  u8
    codec    u8 length + ASCII name
    width    u16
    height   u16
    fps      u8
    count    u32     number of pictures
    then per picture (coding order):
        display_index u32
        frame_type    u8   (I=0, P=1, B=2)
        length        u32
        payload       bytes
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Union

from repro.codecs.base import EncodedPicture, EncodedVideo
from repro.common.gop import FrameType
from repro.errors import BitstreamError

MAGIC = b"HDVB"
VERSION = 1

#: Frame-type wire codes shared by the container's picture headers and the
#: transport packetizer (:mod:`repro.transport.packetize`), so a packet
#: header and a container header spell the same picture the same way.
FRAME_TYPE_CODE = {FrameType.I: 0, FrameType.P: 1, FrameType.B: 2}
FRAME_TYPE_FROM_CODE = {code: ftype for ftype, code in FRAME_TYPE_CODE.items()}

_FRAME_TYPE_CODE = FRAME_TYPE_CODE
_FRAME_TYPE_FROM_CODE = FRAME_TYPE_FROM_CODE

PathLike = Union[str, Path]


def pack(stream: EncodedVideo) -> bytes:
    """Serialise ``stream`` to container bytes."""
    codec = stream.codec.encode("ascii")
    if not codec or len(codec) > 255:
        raise BitstreamError(f"invalid codec name {stream.codec!r}")
    parts = [
        MAGIC,
        struct.pack(">B", VERSION),
        struct.pack(">B", len(codec)),
        codec,
        struct.pack(">HHB", stream.width, stream.height, stream.fps),
        struct.pack(">I", len(stream.pictures)),
    ]
    for picture in stream.pictures:
        parts.append(
            struct.pack(
                ">IBI",
                picture.display_index,
                _FRAME_TYPE_CODE[picture.frame_type],
                len(picture.payload),
            )
        )
        parts.append(picture.payload)
    return b"".join(parts)


def unpack(data: bytes) -> EncodedVideo:
    """Parse container bytes back into an :class:`EncodedVideo`."""
    view = memoryview(data)
    offset = 0

    def take(count: int) -> memoryview:
        nonlocal offset
        if offset + count > len(view):
            raise BitstreamError("truncated HDVB container")
        chunk = view[offset : offset + count]
        offset += count
        return chunk

    if bytes(take(4)) != MAGIC:
        raise BitstreamError("not an HDVB container (bad magic)")
    (version,) = struct.unpack(">B", take(1))
    if version != VERSION:
        raise BitstreamError(f"unsupported container version {version}")
    (name_len,) = struct.unpack(">B", take(1))
    try:
        codec = bytes(take(name_len)).decode("ascii")
    except UnicodeDecodeError:
        raise BitstreamError("corrupt codec name in container header") from None
    width, height, fps = struct.unpack(">HHB", take(5))
    (count,) = struct.unpack(">I", take(4))
    stream = EncodedVideo(codec=codec, width=width, height=height, fps=fps)
    for _ in range(count):
        display_index, type_code, length = struct.unpack(">IBI", take(9))
        try:
            frame_type = _FRAME_TYPE_FROM_CODE[type_code]
        except KeyError:
            raise BitstreamError(f"invalid frame type code {type_code}") from None
        payload = bytes(take(length))
        stream.pictures.append(EncodedPicture(payload, display_index, frame_type))
    if offset != len(view):
        raise BitstreamError(f"{len(view) - offset} trailing bytes after container")
    return stream


def write_file(path: PathLike, stream: EncodedVideo) -> int:
    """Write a container file; returns bytes written."""
    data = pack(stream)
    Path(path).write_bytes(data)
    return len(data)


def read_file(path: PathLike) -> EncodedVideo:
    """Read a container file."""
    return unpack(Path(path).read_bytes())


def probe_codec(path: PathLike) -> str:
    """Return the codec name stored in a container file without full parse."""
    with open(path, "rb") as handle:
        header = handle.read(6)
        if len(header) < 6 or header[:4] != MAGIC:
            raise BitstreamError(f"{path}: not an HDVB container")
        name_len = header[5]
        name = handle.read(name_len)
        if len(name) != name_len:
            raise BitstreamError(f"{path}: truncated codec name")
        return name.decode("ascii")
