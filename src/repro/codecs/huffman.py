"""Deterministic Huffman construction and VLC tables.

The MPEG-2 and MPEG-4 class codecs use static variable-length codes for
coefficient events, coded block patterns and macroblock modes.  Rather than
copying the ISO code tables verbatim, each codec declares a *prior*
(expected symbol frequencies) and builds a canonical Huffman code from it
at import time; see the bitstream note in DESIGN.md.  The construction is
fully deterministic, so encoder and decoder always agree.
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, List, Mapping, Tuple

from repro.common.bitstream import BitReader, BitWriter
from repro.errors import BitstreamError, ConfigError

Symbol = Hashable
Code = Tuple[int, int]  # (value, length)


def huffman_code_lengths(frequencies: Mapping[Symbol, float]) -> Dict[Symbol, int]:
    """Huffman code length per symbol, deterministic under ties."""
    if not frequencies:
        raise ConfigError("cannot build a Huffman code over no symbols")
    if len(frequencies) == 1:
        return {symbol: 1 for symbol in frequencies}
    # Heap entries: (frequency, creation order, symbols-in-subtree)
    heap: List[Tuple[float, int, List[Symbol]]] = []
    order = 0
    for symbol in sorted(frequencies, key=repr):
        freq = frequencies[symbol]
        if freq <= 0:
            raise ConfigError(f"frequency for {symbol!r} must be positive")
        heap.append((freq, order, [symbol]))
        order += 1
    heapq.heapify(heap)
    lengths = {symbol: 0 for symbol in frequencies}
    while len(heap) > 1:
        freq_a, _, symbols_a = heapq.heappop(heap)
        freq_b, _, symbols_b = heapq.heappop(heap)
        merged = symbols_a + symbols_b
        for symbol in merged:
            lengths[symbol] += 1
        heapq.heappush(heap, (freq_a + freq_b, order, merged))
        order += 1
    return lengths


def canonical_codes(lengths: Mapping[Symbol, int]) -> Dict[Symbol, Code]:
    """Canonical code assignment from code lengths (shortest first)."""
    ordered = sorted(lengths.items(), key=lambda item: (item[1], repr(item[0])))
    codes: Dict[Symbol, Code] = {}
    code = 0
    previous_length = 0
    for symbol, length in ordered:
        code <<= length - previous_length
        codes[symbol] = (code, length)
        code += 1
        previous_length = length
    return codes


class VlcTable:
    """A static prefix-free code over a symbol alphabet."""

    def __init__(self, codes: Mapping[Symbol, Code], name: str = "") -> None:
        self.name = name
        self._encode: Dict[Symbol, Code] = dict(codes)
        self._decode: Dict[Code, Symbol] = {}
        for symbol, (value, length) in self._encode.items():
            if length <= 0:
                raise ConfigError(f"{name}: zero-length code for {symbol!r}")
            key = (value, length)
            if key in self._decode:
                raise ConfigError(f"{name}: duplicate code for {symbol!r}")
            self._decode[key] = symbol
        self.max_length = max(length for _, length in self._encode.values())
        self._check_prefix_free()

    @classmethod
    def from_frequencies(cls, frequencies: Mapping[Symbol, float], name: str = "") -> "VlcTable":
        return cls(canonical_codes(huffman_code_lengths(frequencies)), name=name)

    def _check_prefix_free(self) -> None:
        by_length = sorted(self._decode, key=lambda key: key[1])
        seen = set()
        for value, length in by_length:
            for prefix_len, prefix_val in seen:
                if prefix_len < length and (value >> (length - prefix_len)) == prefix_val:
                    raise ConfigError(f"{self.name}: code table is not prefix free")
            seen.add((length, value))

    def __len__(self) -> int:
        return len(self._encode)

    def __contains__(self, symbol: Symbol) -> bool:
        return symbol in self._encode

    def bits(self, symbol: Symbol) -> int:
        """Code length of ``symbol`` (for rate estimation)."""
        return self._encode[symbol][1]

    def write(self, writer: BitWriter, symbol: Symbol) -> None:
        try:
            value, length = self._encode[symbol]
        except KeyError:
            raise BitstreamError(f"{self.name}: symbol {symbol!r} has no code") from None
        writer.write_bits(value, length)

    def read(self, reader: BitReader) -> Symbol:
        value = 0
        for length in range(1, self.max_length + 1):
            value = (value << 1) | reader.read_bit()
            symbol = self._decode.get((value, length))
            if symbol is not None:
                return symbol
        raise BitstreamError(f"{self.name}: invalid code in bitstream")


def geometric(probability: float, value: int) -> float:
    """Unnormalised geometric prior p * (1-p)^value; used to build tables."""
    return probability * (1.0 - probability) ** value
