"""Encoder/decoder base classes and the encoded-stream container types."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.bitstream import BitReader
from repro.common.gop import FrameType, GopStructure, PAPER_GOP
from repro.common.metrics import bitrate_kbps
from repro.common.resolution import FRAME_RATE
from repro.common.yuv import YuvSequence
from repro.errors import CodecError, ConfigError
from repro.telemetry.instrument import traced_encode, traced_picture
from repro.telemetry.metrics import registry as telemetry_registry
from repro.telemetry.trace import span as telemetry_span, state as telemetry_state


@dataclass(frozen=True)
class EncodedPicture:
    """One coded picture: payload bytes plus scheduling metadata."""

    payload: bytes
    display_index: int
    frame_type: FrameType


@dataclass
class EncodedVideo:
    """A coded sequence: per-picture payloads in coding order."""

    codec: str
    width: int
    height: int
    fps: int
    pictures: List[EncodedPicture] = field(default_factory=list)

    @property
    def frame_count(self) -> int:
        return len(self.pictures)

    @property
    def total_bytes(self) -> int:
        return sum(len(picture.payload) for picture in self.pictures)

    @property
    def bitrate_kbps(self) -> float:
        return bitrate_kbps(self.total_bytes, self.frame_count, self.fps)

    def frame_types(self) -> Dict[FrameType, int]:
        counts = {FrameType.I: 0, FrameType.P: 0, FrameType.B: 0}
        for picture in self.pictures:
            counts[picture.frame_type] += 1
        return counts


@dataclass
class EncoderStats:
    """Aggregate statistics collected during an encode."""

    frame_bits: List[int] = field(default_factory=list)
    intra_macroblocks: int = 0
    inter_macroblocks: int = 0
    skipped_macroblocks: int = 0

    @property
    def total_bits(self) -> int:
        return sum(self.frame_bits)

    @property
    def macroblocks(self) -> int:
        return self.intra_macroblocks + self.inter_macroblocks + self.skipped_macroblocks


@dataclass(frozen=True)
class CodecConfig:
    """Configuration fields shared by all three codec families."""

    width: int
    height: int
    fps: int = FRAME_RATE
    backend: str = "simd"
    gop: GopStructure = PAPER_GOP
    search_range: int = 16
    me_algorithm: str = "epzs"

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ConfigError(f"invalid dimensions {self.width}x{self.height}")
        if self.width % 16 or self.height % 16:
            raise ConfigError(
                f"dimensions must be macroblock aligned, got {self.width}x{self.height}"
            )
        if self.fps <= 0:
            raise ConfigError(f"fps must be positive, got {self.fps}")
        if self.search_range < 1:
            raise ConfigError(f"search_range must be >= 1, got {self.search_range}")

    @property
    def mb_width(self) -> int:
        return self.width // 16

    @property
    def mb_height(self) -> int:
        return self.height // 16


class VideoEncoder(abc.ABC):
    """Base class of the three encoders.

    Subclassing automatically instruments the telemetry seams: the
    concrete ``encode_sequence`` gains a sequence-level span plus the
    standard encode counters, and the per-picture method
    (``_encode_picture``/``_encode_frame``) gains a per-picture span.
    All of it is a single flag check while telemetry is disabled (see
    :mod:`repro.telemetry.instrument`).
    """

    #: codec registry name, e.g. ``"mpeg2"``; set by subclasses.
    codec_name = ""

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        if "encode_sequence" in cls.__dict__:
            cls.encode_sequence = traced_encode(cls.__dict__["encode_sequence"])
        for picture_method in ("_encode_picture", "_encode_frame"):
            if picture_method in cls.__dict__:
                cls_fn = cls.__dict__[picture_method]
                setattr(cls, picture_method, traced_picture(cls_fn))

    def __init__(self, config: CodecConfig) -> None:
        self.config = config
        self.stats = EncoderStats()

    @abc.abstractmethod
    def encode_sequence(self, video: YuvSequence) -> EncodedVideo:
        """Encode ``video`` and return the coded stream (coding order)."""

    def _check_input(self, video: YuvSequence) -> None:
        if len(video) == 0:
            raise CodecError("cannot encode an empty sequence")
        if (video.width, video.height) != (self.config.width, self.config.height):
            raise CodecError(
                f"input is {video.width}x{video.height}, encoder configured for "
                f"{self.config.width}x{self.config.height}"
            )


class VideoDecoder(abc.ABC):
    """Base class of the decoders.

    Subclasses implement :meth:`decode_picture` (one coded picture ->
    reconstructed frame); the sequence loop itself -- coding order,
    reference management, duplicate detection -- lives in the hardened
    decode engine (:mod:`repro.robustness.engine`), which also normalises
    decode errors and optionally conceals corrupt pictures.
    """

    codec_name = ""

    def decode(self, stream: EncodedVideo, *, conceal=None,
               on_event=None) -> YuvSequence:
        """Decode ``stream`` and return frames in display order.

        ``conceal`` selects an error-concealment strategy (``"skip"``,
        ``"copy-last"``, ``"grey"``, ``"motion"`` or a
        :class:`~repro.robustness.conceal.Concealer`); with the default
        ``None`` any corrupt picture raises a normalised
        :class:`~repro.errors.ReproError`.  ``on_event`` receives one
        :class:`~repro.errors.ConcealmentEvent` per concealed picture.
        """
        from repro.robustness.engine import decode_stream

        if not telemetry_state.enabled:
            return decode_stream(self, stream, conceal=conceal, on_event=on_event).frames
        with telemetry_span(
            f"{self.codec_name}.decode",
            codec=self.codec_name,
            width=stream.width,
            height=stream.height,
            frames=stream.frame_count,
        ):
            result = decode_stream(self, stream, conceal=conceal, on_event=on_event)
        reg = telemetry_registry()
        reg.counter(f"decode.{self.codec_name}.pictures").inc(stream.frame_count)
        reg.counter(f"decode.{self.codec_name}.bits").inc(8 * stream.total_bytes)
        return result.frames

    @abc.abstractmethod
    def decode_picture(self, stream: EncodedVideo, picture: EncodedPicture,
                       references: Dict[int, "object"]):
        """Decode one picture against ``references`` (display index -> frame).

        Returns the reconstructed :class:`~repro.codecs.frames.WorkingFrame`.
        The engine stores anchors into ``references`` and trims the window;
        implementations only read it.
        """

    def reference_window(self) -> int:
        """How many anchor frames the engine keeps as references."""
        return 2

    def begin_picture(self) -> None:
        """Reset per-picture guard state (called by the engine)."""
        self._active_reader = None

    def _open_reader(self, payload: bytes) -> "BitReader":
        """Create the payload reader, tracked for error bit positions."""
        reader = BitReader(payload)
        self._active_reader = reader
        return reader

    def bit_position(self) -> int:
        """Bit position of the active payload reader (0 before any read)."""
        reader = getattr(self, "_active_reader", None)
        return reader.bit_position if reader is not None else 0

    def _check_stream(self, stream: EncodedVideo, expect_codec: Optional[str] = None) -> None:
        expected = expect_codec or self.codec_name
        if stream.codec != expected:
            raise CodecError(
                f"stream is {stream.codec!r}, this decoder handles {expected!r}"
            )
        if stream.frame_count == 0:
            raise CodecError("stream contains no pictures")
