"""Configuration of the VC-1 class codec."""

from __future__ import annotations

from dataclasses import dataclass

from repro.codecs.base import CodecConfig
from repro.transform.qp import validate_mpeg_qscale


@dataclass(frozen=True)
class Vc1Config(CodecConfig):
    """VC-1 class encoder settings.

    ``qscale`` is the constant quantiser scale on the MPEG 1..31 scale
    (the 4x4 transform path derives its H.264-scale QP through Equation
    1).  ``adaptive_transform`` disables the 4x4 path when False (the
    ablation baseline).
    """

    qscale: int = 5
    adaptive_transform: bool = True

    def __post_init__(self) -> None:
        super().__post_init__()
        validate_mpeg_qscale(self.qscale)
