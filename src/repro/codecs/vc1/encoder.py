"""VC-1 class encoder.

The second future-work codec of the paper's Section VII.  Toolset:
I/P/B pictures in the shared GOP, quarter-pel bilinear motion compensation
with median MV prediction, MPEG-4-style intra DC/AC prediction, and the
VC-1 signature **adaptive transform size** — each coded inter residual
block is transformed as one 8x8 DCT or four 4x4 integer transforms,
whichever costs fewer bits (see :mod:`repro.codecs.vc1.transform`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.codecs.base import EncodedPicture, EncodedVideo, VideoEncoder
from repro.codecs.frames import WorkingFrame
from repro.codecs.mpeg4.acdc import AcDcStore, apply_ac_prediction, predict
from repro.codecs.mpeg4.motion import MvGrid
from repro.codecs.mpeg4.prediction import average_prediction, predict_mb_qpel
from repro.codecs.vc1 import tables
from repro.codecs.vc1.coefficients import encode_run_level, run_level_bits
from repro.codecs.vc1.config import Vc1Config
from repro.codecs.vc1.transform import TransformedBlock, forward_adaptive, inverse_adaptive
from repro.common.bitstream import BitWriter
from repro.common.expgolomb import se_bit_length, write_se
from repro.common.gop import CodedFrame, FrameType
from repro.common.yuv import YuvSequence
from repro.errors import CodecError
from repro.kernels import get_kernels
from repro.me.cost import MotionCost, lambda_from_qp
from repro.me.search import run_search
from repro.me.subpel import refine_subpel
from repro.me.types import MotionVector, SearchResult, ZERO_MV
from repro.transform.qp import h264_qp_from_mpeg
from repro.transform.zigzag import scan8

INTRA_BIAS = 128


def _div_to_zero(value: int, divisor: int) -> int:
    return value // divisor if value >= 0 else -((-value) // divisor)


def _int_mv(mv: MotionVector) -> MotionVector:
    return MotionVector(_div_to_zero(mv.x, 4), _div_to_zero(mv.y, 4))


class Vc1Encoder(VideoEncoder):
    """VC-1 class encoder (see module docstring)."""

    codec_name = "vc1"

    def __init__(self, config: Vc1Config) -> None:
        super().__init__(config)
        self.config: Vc1Config = config
        self.kernels = get_kernels(config.backend)
        self.qp264 = h264_qp_from_mpeg(config.qscale)
        self.lagrangian = lambda_from_qp(self.qp264)

    # ------------------------------------------------------------------
    # sequence level
    # ------------------------------------------------------------------

    def encode_sequence(self, video: YuvSequence) -> EncodedVideo:
        self._check_input(video)
        stream = EncodedVideo(
            codec=self.codec_name,
            width=self.config.width,
            height=self.config.height,
            fps=video.fps,
        )
        references: Dict[int, WorkingFrame] = {}
        for entry in self.config.gop.coding_order(len(video)):
            source = WorkingFrame.from_yuv(video[entry.display_index])
            forward = references.get(entry.forward_ref) if entry.forward_ref is not None else None
            backward = references.get(entry.backward_ref) if entry.backward_ref is not None else None
            if entry.frame_type is not FrameType.I and forward is None:
                raise CodecError(f"missing forward reference for frame {entry.display_index}")
            if entry.frame_type is FrameType.B and backward is None:
                raise CodecError(f"missing backward reference for frame {entry.display_index}")
            payload, recon = self._encode_picture(entry, source, forward, backward)
            stream.pictures.append(EncodedPicture(payload, entry.display_index, entry.frame_type))
            self.stats.frame_bits.append(8 * len(payload))
            if entry.frame_type.is_anchor and recon is not None:
                references[entry.display_index] = recon
                for key in sorted(references)[:-2]:
                    del references[key]
        return stream

    # ------------------------------------------------------------------
    # picture level
    # ------------------------------------------------------------------

    _TYPE_CODE = {FrameType.I: 0, FrameType.P: 1, FrameType.B: 2}

    def _encode_picture(
        self,
        entry: CodedFrame,
        source: WorkingFrame,
        forward: Optional[WorkingFrame],
        backward: Optional[WorkingFrame],
    ) -> Tuple[bytes, Optional[WorkingFrame]]:
        config = self.config
        writer = BitWriter()
        writer.write_bits(self._TYPE_CODE[entry.frame_type], 2)
        writer.write_bits(config.qscale, 5)
        writer.write_bits(config.search_range, 8)
        writer.write_bit(1 if config.adaptive_transform else 0)

        is_anchor = entry.frame_type.is_anchor
        recon = WorkingFrame.blank(config.width, config.height) if is_anchor else None

        self._grid = MvGrid(config.mb_width, config.mb_height)
        self._acdc = {name: AcDcStore() for name in ("y", "u", "v")}

        for mby in range(config.mb_height):
            self._pmv_fwd = ZERO_MV
            self._pmv_bwd = ZERO_MV
            for mbx in range(config.mb_width):
                if entry.frame_type is FrameType.I:
                    self._encode_intra_mb(writer, source, recon, mbx, mby)
                elif entry.frame_type is FrameType.P:
                    self._encode_p_mb(writer, source, recon, forward, mbx, mby)
                else:
                    self._encode_b_mb(writer, source, forward, backward, mbx, mby)
        writer.align()
        return writer.to_bytes(), recon

    # ------------------------------------------------------------------
    # intra macroblocks (MPEG-4 style DC/AC prediction, 8x8 only)
    # ------------------------------------------------------------------

    def _block_grid(self, plane: str, mbx: int, mby: int, block_index: int) -> Tuple[int, int]:
        if plane == "y":
            return 2 * mbx + (block_index & 1), 2 * mby + (block_index >> 1)
        return mbx, mby

    def _encode_intra_mb(
        self,
        writer: BitWriter,
        source: WorkingFrame,
        recon: Optional[WorkingFrame],
        mbx: int,
        mby: int,
    ) -> None:
        kernels = self.kernels
        qscale = self.config.qscale

        prepared = []
        bits_raw = 0
        bits_pred = 0
        for block_index, (plane, off_x, off_y) in enumerate(tables.BLOCK_LAYOUT):
            base = 16 if plane == "y" else 8
            x = mbx * base + off_x
            y = mby * base + off_y
            block = source.plane(plane)[y : y + 8, x : x + 8]
            levels = kernels.quant_h263(kernels.fdct8(block), qscale, intra=True)
            bx, by = self._block_grid(plane, mbx, mby, block_index)
            direction, pred_dc, pred_ac = predict(self._acdc[plane], bx, by)
            self._acdc[plane].put(bx, by, levels)
            adjusted = apply_ac_prediction(levels, direction, pred_ac, -1)
            raw_scan = scan8(levels)
            pred_scan = scan8(adjusted)
            bits_raw += run_level_bits(raw_scan, start=1)
            bits_pred += run_level_bits(pred_scan, start=1)
            prepared.append((plane, x, y, levels, pred_dc, raw_scan, pred_scan))

        use_prediction = bits_pred < bits_raw
        writer.write_bit(1 if use_prediction else 0)

        cbp = 0
        for block_index, (_, _, _, _, _, raw_scan, pred_scan) in enumerate(prepared):
            scanned = pred_scan if use_prediction else raw_scan
            if any(scanned[1:]):
                cbp |= 1 << (5 - block_index)
        tables.CBP_TABLE.write(writer, cbp)

        for block_index, (plane, x, y, levels, pred_dc, raw_scan, pred_scan) in enumerate(prepared):
            write_se(writer, int(levels[0, 0]) - pred_dc)
            if cbp & (1 << (5 - block_index)):
                scanned = pred_scan if use_prediction else raw_scan
                encode_run_level(writer, scanned, start=1)
            if recon is not None:
                coeffs = kernels.dequant_h263(levels, qscale, intra=True)
                pixels = kernels.add_clip(
                    np.zeros((8, 8), dtype=np.int64), kernels.idct8(coeffs)
                )
                recon.store_block(plane, x, y, pixels)
        self.stats.intra_macroblocks += 1

    # ------------------------------------------------------------------
    # inter machinery
    # ------------------------------------------------------------------

    def _search_luma(self, source: WorkingFrame, reference: WorkingFrame,
                     mbx: int, mby: int, predictor: MotionVector) -> SearchResult:
        config = self.config
        kernels = self.kernels
        x, y = 16 * mbx, 16 * mby
        current = source.y[y : y + 16, x : x + 16]
        padded = reference.padded("y", config.search_range)
        cost = MotionCost(
            kernels=kernels,
            current=current,
            reference=padded,
            x=x,
            y=y,
            width=16,
            height=16,
            predictor=_int_mv(predictor),
            lagrangian=self.lagrangian,
            search_range=config.search_range,
        )
        extra = [_int_mv(mv) for mv in self._grid.neighbours(2 * mbx, 2 * mby)]
        integer = run_search(config.me_algorithm, cost, extra)
        return refine_subpel(
            kernels, current, padded, x, y, 16, 16,
            integer,
            predictor=predictor,
            lagrangian=self.lagrangian,
            unit=4,
            interp=kernels.mc_qpel_bilinear,
        )

    def _transform_residual(
        self, source: WorkingFrame, prediction: Dict[str, np.ndarray],
        mbx: int, mby: int,
    ) -> Tuple[int, List[Optional[TransformedBlock]]]:
        """Adaptive-transform every residual block; returns (cbp, blocks)."""
        kernels = self.kernels
        config = self.config
        cbp = 0
        blocks: List[Optional[TransformedBlock]] = []
        for block_index, (plane, off_x, off_y) in enumerate(tables.BLOCK_LAYOUT):
            if plane == "y":
                x, y = 16 * mbx + off_x, 16 * mby + off_y
                pred_block = prediction["y"][off_y : off_y + 8, off_x : off_x + 8]
            else:
                x, y = 8 * mbx, 8 * mby
                pred_block = prediction[plane]
            residual = kernels.sub(source.plane(plane)[y : y + 8, x : x + 8], pred_block)
            if config.adaptive_transform:
                block = forward_adaptive(kernels, residual, config.qscale, self.qp264)
            else:
                levels = kernels.quant_h263(kernels.fdct8(residual), config.qscale,
                                            intra=False)
                block = TransformedBlock(tables.TRANSFORM_8X8, levels8=levels)
            if block.any_nonzero:
                cbp |= 1 << (5 - block_index)
                blocks.append(block)
            else:
                blocks.append(None)
        return cbp, blocks

    def _write_residual(self, writer: BitWriter, cbp: int,
                        blocks: List[Optional[TransformedBlock]]) -> None:
        from repro.transform.zigzag import scan4

        tables.CBP_TABLE.write(writer, cbp)
        for block in blocks:
            if block is None:
                continue
            if self.config.adaptive_transform:
                writer.write_bit(block.size)
            if block.size == tables.TRANSFORM_8X8:
                encode_run_level(writer, scan8(block.levels8))
            else:
                for levels in block.levels4:
                    encode_run_level(writer, scan4(levels))

    def _reconstruct_inter(
        self,
        recon: Optional[WorkingFrame],
        prediction: Dict[str, np.ndarray],
        blocks: List[Optional[TransformedBlock]],
        mbx: int,
        mby: int,
    ) -> None:
        if recon is None:
            return
        kernels = self.kernels
        for block_index, (plane, off_x, off_y) in enumerate(tables.BLOCK_LAYOUT):
            if plane == "y":
                x, y = 16 * mbx + off_x, 16 * mby + off_y
                pred_block = prediction["y"][off_y : off_y + 8, off_x : off_x + 8]
            else:
                x, y = 8 * mbx, 8 * mby
                pred_block = prediction[plane]
            block = blocks[block_index]
            if block is None:
                pixels = kernels.add_clip(pred_block, np.zeros((8, 8), dtype=np.int64))
            else:
                residual = inverse_adaptive(kernels, block, self.config.qscale, self.qp264)
                pixels = kernels.add_clip(pred_block, residual)
            recon.store_block(plane, x, y, pixels)

    def _predict(self, reference: WorkingFrame, mbx: int, mby: int,
                 mv: MotionVector) -> Dict[str, np.ndarray]:
        return predict_mb_qpel(
            self.kernels, reference, mbx, mby, mv, self.config.search_range
        )

    def _intra_cost(self, source: WorkingFrame, mbx: int, mby: int) -> int:
        block = source.y[16 * mby : 16 * mby + 16, 16 * mbx : 16 * mbx + 16]
        mean = int(np.mean(block) + 0.5)
        flat = np.full((16, 16), mean, dtype=np.int64)
        return self.kernels.sad(block, flat) + INTRA_BIAS

    # ------------------------------------------------------------------
    # P macroblocks
    # ------------------------------------------------------------------

    def _encode_p_mb(self, writer: BitWriter, source: WorkingFrame,
                     recon: WorkingFrame, forward: WorkingFrame,
                     mbx: int, mby: int) -> None:
        bx, by = 2 * mbx, 2 * mby
        predictor = self._grid.predictor(bx, by, 2)
        best = self._search_luma(source, forward, mbx, mby, predictor)
        if self._intra_cost(source, mbx, mby) < best.cost:
            tables.MB_P_TABLE.write(writer, "intra")
            self._encode_intra_mb(writer, source, recon, mbx, mby)
            self._grid.set_block(bx, by, 2, 2, ZERO_MV)
            return
        mv = best.mv
        prediction = self._predict(forward, mbx, mby, mv)
        cbp, blocks = self._transform_residual(source, prediction, mbx, mby)
        if cbp == 0 and mv == ZERO_MV:
            tables.MB_P_TABLE.write(writer, "skip")
            self._grid.set_block(bx, by, 2, 2, ZERO_MV)
            self._reconstruct_inter(recon, prediction, blocks, mbx, mby)
            self.stats.skipped_macroblocks += 1
            return
        tables.MB_P_TABLE.write(writer, "inter")
        current_predictor = self._grid.predictor(bx, by, 2)
        write_se(writer, mv.x - current_predictor.x)
        write_se(writer, mv.y - current_predictor.y)
        self._grid.set_block(bx, by, 2, 2, mv)
        self._write_residual(writer, cbp, blocks)
        self._reconstruct_inter(recon, prediction, blocks, mbx, mby)
        self.stats.inter_macroblocks += 1

    # ------------------------------------------------------------------
    # B macroblocks
    # ------------------------------------------------------------------

    def _encode_b_mb(self, writer: BitWriter, source: WorkingFrame,
                     forward: WorkingFrame, backward: WorkingFrame,
                     mbx: int, mby: int) -> None:
        kernels = self.kernels
        fwd = self._search_luma(source, forward, mbx, mby, self._pmv_fwd)
        bwd = self._search_luma(source, backward, mbx, mby, self._pmv_bwd)
        current = source.y[16 * mby : 16 * mby + 16, 16 * mbx : 16 * mbx + 16]
        pred_fwd = self._predict(forward, mbx, mby, fwd.mv)
        pred_bwd = self._predict(backward, mbx, mby, bwd.mv)
        bi_luma = kernels.average(pred_fwd["y"], pred_bwd["y"])
        bi_rate = (
            se_bit_length(fwd.mv.x - self._pmv_fwd.x)
            + se_bit_length(fwd.mv.y - self._pmv_fwd.y)
            + se_bit_length(bwd.mv.x - self._pmv_bwd.x)
            + se_bit_length(bwd.mv.y - self._pmv_bwd.y)
        )
        bi_cost = kernels.sad(current, bi_luma) + self.lagrangian * bi_rate
        mode_costs = {"fwd": fwd.cost, "bwd": bwd.cost, "bi": bi_cost}
        mode = min(mode_costs, key=mode_costs.get)

        if self._intra_cost(source, mbx, mby) < mode_costs[mode]:
            tables.MB_B_TABLE.write(writer, "intra")
            self._encode_intra_mb(writer, source, None, mbx, mby)
            self._pmv_fwd = ZERO_MV
            self._pmv_bwd = ZERO_MV
            return

        if mode == "fwd":
            prediction = pred_fwd
        elif mode == "bwd":
            prediction = pred_bwd
        else:
            prediction = average_prediction(kernels, pred_fwd, pred_bwd)
        cbp, blocks = self._transform_residual(source, prediction, mbx, mby)

        if mode == "fwd" and cbp == 0 and fwd.mv == self._pmv_fwd:
            tables.MB_B_TABLE.write(writer, "skip")
            self.stats.skipped_macroblocks += 1
            return

        tables.MB_B_TABLE.write(writer, mode)
        if mode in ("fwd", "bi"):
            write_se(writer, fwd.mv.x - self._pmv_fwd.x)
            write_se(writer, fwd.mv.y - self._pmv_fwd.y)
            self._pmv_fwd = fwd.mv
        if mode in ("bwd", "bi"):
            write_se(writer, bwd.mv.x - self._pmv_bwd.x)
            write_se(writer, bwd.mv.y - self._pmv_bwd.y)
            self._pmv_bwd = bwd.mv
        self._write_residual(writer, cbp, blocks)
        self.stats.inter_macroblocks += 1
