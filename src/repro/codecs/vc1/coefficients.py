"""Run/level coefficient coding for the VC-1 class codec.

Same 2-D (run, level) event structure as the MPEG-2 codec, but size-
parameterised: the adaptive-transform path codes 64-position (8x8) and
16-position (4x4) blocks through the same table.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.codecs.vc1 import tables
from repro.common.bitstream import BitReader, BitWriter
from repro.errors import BitstreamError


def encode_run_level(writer: BitWriter, scanned: Sequence[int], start: int = 0) -> None:
    """Code ``scanned[start:]`` as (run, level) events followed by EOB."""
    run = 0
    for value in scanned[start:]:
        if value == 0:
            run += 1
            continue
        magnitude = abs(value)
        if run <= tables.MAX_RUN and magnitude <= tables.MAX_LEVEL:
            tables.COEFF_TABLE.write(writer, (run, magnitude))
            writer.write_bit(1 if value < 0 else 0)
        else:
            tables.COEFF_TABLE.write(writer, tables.ESCAPE)
            writer.write_bits(run, tables.ESCAPE_RUN_BITS)
            writer.write_signed(value, tables.ESCAPE_LEVEL_BITS)
        run = 0
    tables.COEFF_TABLE.write(writer, tables.EOB)


def decode_run_level(reader: BitReader, size: int, start: int = 0) -> List[int]:
    """Decode a block of ``size`` scan positions coded from index ``start``."""
    scanned = [0] * size
    position = start
    while True:
        symbol = tables.COEFF_TABLE.read(reader)
        if symbol == tables.EOB:
            return scanned
        if symbol == tables.ESCAPE:
            run = reader.read_bits(tables.ESCAPE_RUN_BITS)
            level = reader.read_signed(tables.ESCAPE_LEVEL_BITS)
        else:
            run, level = symbol
            if reader.read_bit():
                level = -level
        position += run
        if position >= size:
            raise BitstreamError("run/level event past end of block")
        scanned[position] = level
        position += 1


def run_level_bits(scanned: Sequence[int], start: int = 0) -> int:
    """Bit cost of coding ``scanned[start:]`` (transform-size decisions)."""
    bits = 0
    run = 0
    for value in scanned[start:]:
        if value == 0:
            run += 1
            continue
        magnitude = abs(value)
        if run <= tables.MAX_RUN and magnitude <= tables.MAX_LEVEL:
            bits += tables.COEFF_TABLE.bits((run, magnitude)) + 1
        else:
            bits += (
                tables.COEFF_TABLE.bits(tables.ESCAPE)
                + tables.ESCAPE_RUN_BITS
                + tables.ESCAPE_LEVEL_BITS
            )
        run = 0
    return bits + tables.COEFF_TABLE.bits(tables.EOB)
