"""VC-1 class decoder: bit-exact inverse of the encoder."""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.codecs.base import EncodedPicture, EncodedVideo, VideoDecoder
from repro.codecs.frames import WorkingFrame
from repro.codecs.mpeg4.acdc import AcDcStore, apply_ac_prediction, predict
from repro.codecs.mpeg4.motion import MvGrid
from repro.codecs.mpeg4.prediction import average_prediction, predict_mb_qpel
from repro.codecs.vc1 import tables
from repro.codecs.vc1.coefficients import decode_run_level
from repro.codecs.vc1.transform import TransformedBlock, inverse_adaptive
from repro.common.bitstream import BitReader
from repro.common.expgolomb import read_se
from repro.common.gop import FrameType
from repro.errors import CodecError
from repro.kernels import get_kernels
from repro.me.types import MotionVector, ZERO_MV
from repro.robustness.guard import check_header, read_frame_type
from repro.transform.qp import h264_qp_from_mpeg
from repro.transform.zigzag import unscan4, unscan8


class Vc1Decoder(VideoDecoder):
    """VC-1 class decoder."""

    codec_name = "vc1"

    def __init__(self, backend: str = "simd") -> None:
        self.kernels = get_kernels(backend)

    def decode_picture(self, stream: EncodedVideo, picture: EncodedPicture,
                       references: Dict[int, WorkingFrame]) -> WorkingFrame:
        reader = self._open_reader(picture.payload)
        frame_type = read_frame_type(reader, expected=picture.frame_type)
        self._qscale = check_header("qscale", reader.read_bits(5), 1, 31)
        self._qp264 = h264_qp_from_mpeg(self._qscale)
        self._search_range = check_header(
            "search_range", reader.read_bits(8), 1, 255
        )
        self._adaptive = bool(reader.read_bit())

        ordered = sorted(references)
        forward = backward = None
        if frame_type is FrameType.P:
            if not ordered:
                raise CodecError("P picture without a reference")
            forward = references[ordered[-1]]
        elif frame_type is FrameType.B:
            if len(ordered) < 2:
                raise CodecError("B picture requires two reference frames")
            forward = references[ordered[-2]]
            backward = references[ordered[-1]]

        mb_width = stream.width // 16
        mb_height = stream.height // 16
        recon = WorkingFrame.blank(stream.width, stream.height)
        self._grid = MvGrid(mb_width, mb_height)
        self._acdc = {name: AcDcStore() for name in ("y", "u", "v")}

        for mby in range(mb_height):
            self._pmv_fwd = ZERO_MV
            self._pmv_bwd = ZERO_MV
            for mbx in range(mb_width):
                if frame_type is FrameType.I:
                    self._decode_intra_mb(reader, recon, mbx, mby)
                elif frame_type is FrameType.P:
                    self._decode_p_mb(reader, recon, forward, mbx, mby)
                else:
                    self._decode_b_mb(reader, recon, forward, backward, mbx, mby)
        return recon

    # ------------------------------------------------------------------

    def _block_grid(self, plane: str, mbx: int, mby: int, block_index: int):
        if plane == "y":
            return 2 * mbx + (block_index & 1), 2 * mby + (block_index >> 1)
        return mbx, mby

    def _decode_intra_mb(self, reader: BitReader, recon: WorkingFrame,
                         mbx: int, mby: int) -> None:
        kernels = self.kernels
        qscale = self._qscale
        use_prediction = bool(reader.read_bit())
        cbp = tables.CBP_TABLE.read(reader)
        for block_index, (plane, off_x, off_y) in enumerate(tables.BLOCK_LAYOUT):
            base = 16 if plane == "y" else 8
            x = mbx * base + off_x
            y = mby * base + off_y
            bx, by = self._block_grid(plane, mbx, mby, block_index)
            direction, pred_dc, pred_ac = predict(self._acdc[plane], bx, by)
            dc = pred_dc + read_se(reader)
            if cbp & (1 << (5 - block_index)):
                scanned = decode_run_level(reader, 64, start=1)
            else:
                scanned = [0] * 64
            levels = unscan8(scanned)
            if use_prediction:
                levels = apply_ac_prediction(levels, direction, pred_ac, +1)
            levels[0, 0] = dc
            self._acdc[plane].put(bx, by, levels)
            coeffs = kernels.dequant_h263(levels, qscale, intra=True)
            pixels = kernels.add_clip(
                np.zeros((8, 8), dtype=np.int64), kernels.idct8(coeffs)
            )
            recon.store_block(plane, x, y, pixels)

    # ------------------------------------------------------------------

    def _read_residual(self, reader: BitReader) -> List[Optional[TransformedBlock]]:
        cbp = tables.CBP_TABLE.read(reader)
        blocks: List[Optional[TransformedBlock]] = []
        for block_index in range(6):
            if not cbp & (1 << (5 - block_index)):
                blocks.append(None)
                continue
            size = reader.read_bit() if self._adaptive else tables.TRANSFORM_8X8
            if size == tables.TRANSFORM_8X8:
                scanned = decode_run_level(reader, 64)
                blocks.append(TransformedBlock(size, levels8=unscan8(scanned)))
            else:
                levels4 = [
                    unscan4(decode_run_level(reader, 16))
                    for _ in tables.SUBBLOCK_OFFSETS
                ]
                blocks.append(TransformedBlock(size, levels4=levels4))
        return blocks

    def _reconstruct_inter(self, recon: WorkingFrame,
                           prediction: Dict[str, np.ndarray],
                           blocks: List[Optional[TransformedBlock]],
                           mbx: int, mby: int) -> None:
        kernels = self.kernels
        for block_index, (plane, off_x, off_y) in enumerate(tables.BLOCK_LAYOUT):
            if plane == "y":
                x, y = 16 * mbx + off_x, 16 * mby + off_y
                pred_block = prediction["y"][off_y : off_y + 8, off_x : off_x + 8]
            else:
                x, y = 8 * mbx, 8 * mby
                pred_block = prediction[plane]
            block = blocks[block_index]
            if block is None:
                pixels = kernels.add_clip(pred_block, np.zeros((8, 8), dtype=np.int64))
            else:
                residual = inverse_adaptive(kernels, block, self._qscale, self._qp264)
                pixels = kernels.add_clip(pred_block, residual)
            recon.store_block(plane, x, y, pixels)

    def _predict(self, reference: WorkingFrame, mbx: int, mby: int,
                 mv: MotionVector) -> Dict[str, np.ndarray]:
        return predict_mb_qpel(
            self.kernels, reference, mbx, mby, mv, self._search_range
        )

    # ------------------------------------------------------------------

    def _decode_p_mb(self, reader: BitReader, recon: WorkingFrame,
                     forward: WorkingFrame, mbx: int, mby: int) -> None:
        mode = tables.MB_P_TABLE.read(reader)
        bx, by = 2 * mbx, 2 * mby
        if mode == "intra":
            self._decode_intra_mb(reader, recon, mbx, mby)
            self._grid.set_block(bx, by, 2, 2, ZERO_MV)
            return
        if mode == "skip":
            self._grid.set_block(bx, by, 2, 2, ZERO_MV)
            prediction = self._predict(forward, mbx, mby, ZERO_MV)
            self._reconstruct_inter(recon, prediction, [None] * 6, mbx, mby)
            return
        predictor = self._grid.predictor(bx, by, 2)
        mv = MotionVector(predictor.x + read_se(reader), predictor.y + read_se(reader))
        self._grid.set_block(bx, by, 2, 2, mv)
        blocks = self._read_residual(reader)
        prediction = self._predict(forward, mbx, mby, mv)
        self._reconstruct_inter(recon, prediction, blocks, mbx, mby)

    def _decode_b_mb(self, reader: BitReader, recon: WorkingFrame,
                     forward: WorkingFrame, backward: WorkingFrame,
                     mbx: int, mby: int) -> None:
        mode = tables.MB_B_TABLE.read(reader)
        if mode == "intra":
            self._decode_intra_mb(reader, recon, mbx, mby)
            self._pmv_fwd = ZERO_MV
            self._pmv_bwd = ZERO_MV
            return
        if mode == "skip":
            prediction = self._predict(forward, mbx, mby, self._pmv_fwd)
            self._reconstruct_inter(recon, prediction, [None] * 6, mbx, mby)
            return
        mv_fwd = mv_bwd = None
        if mode in ("fwd", "bi"):
            mv_fwd = MotionVector(
                self._pmv_fwd.x + read_se(reader),
                self._pmv_fwd.y + read_se(reader),
            )
            self._pmv_fwd = mv_fwd
        if mode in ("bwd", "bi"):
            mv_bwd = MotionVector(
                self._pmv_bwd.x + read_se(reader),
                self._pmv_bwd.y + read_se(reader),
            )
            self._pmv_bwd = mv_bwd
        blocks = self._read_residual(reader)
        if mode == "fwd":
            prediction = self._predict(forward, mbx, mby, mv_fwd)
        elif mode == "bwd":
            prediction = self._predict(backward, mbx, mby, mv_bwd)
        else:
            prediction = average_prediction(
                self.kernels,
                self._predict(forward, mbx, mby, mv_fwd),
                self._predict(backward, mbx, mby, mv_bwd),
            )
        self._reconstruct_inter(recon, prediction, blocks, mbx, mby)
