"""VC-1 class codec — the paper's other planned extension (Section VII)."""

from repro.codecs.vc1.config import Vc1Config
from repro.codecs.vc1.decoder import Vc1Decoder
from repro.codecs.vc1.encoder import Vc1Encoder

__all__ = ["Vc1Config", "Vc1Decoder", "Vc1Encoder"]
