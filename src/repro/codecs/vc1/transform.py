"""Adaptive transform size: the VC-1 class codec's signature tool.

A coded inter residual block is transformed either as one 8x8 DCT or as
four 4x4 integer transforms; the encoder picks per block by estimated bit
cost and signals the choice with one bit.  The 8x8 path uses the uniform
H.263-style quantiser at the MPEG quantiser scale; the 4x4 path uses the
H.264 quantiser at the Equation-1-equivalent QP, which places both paths
at the same effective step size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.codecs.vc1 import tables
from repro.codecs.vc1.coefficients import run_level_bits
from repro.transform.zigzag import scan4, scan8


@dataclass
class TransformedBlock:
    """One coded 8x8 residual block under either transform size."""

    size: int  # tables.TRANSFORM_8X8 or tables.TRANSFORM_4X4
    levels8: Optional[np.ndarray] = None          # 8x8 levels
    levels4: Optional[List[np.ndarray]] = None    # four 4x4 level blocks

    @property
    def any_nonzero(self) -> bool:
        if self.size == tables.TRANSFORM_8X8:
            return bool(np.any(self.levels8))
        return any(np.any(levels) for levels in self.levels4)


def forward_adaptive(kernels, residual: np.ndarray, qscale: int,
                     qp264: int) -> TransformedBlock:
    """Quantise ``residual`` under both transform sizes; keep the cheaper.

    Cost = estimated entropy bits (plus the 1-bit signal, identical for
    both, hence omitted).
    """
    levels8 = kernels.quant_h263(kernels.fdct8(residual), qscale, intra=False)
    bits8 = run_level_bits(scan8(levels8))

    levels4 = []
    bits4 = 0
    for off_x, off_y in tables.SUBBLOCK_OFFSETS:
        sub = residual[off_y : off_y + 4, off_x : off_x + 4]
        levels = kernels.quant_h264_4x4(kernels.fwd_transform4(sub), qp264, intra=False)
        levels4.append(levels)
        bits4 += run_level_bits(scan4(levels))

    if bits4 < bits8:
        return TransformedBlock(tables.TRANSFORM_4X4, levels4=levels4)
    return TransformedBlock(tables.TRANSFORM_8X8, levels8=levels8)


def inverse_adaptive(kernels, block: TransformedBlock, qscale: int,
                     qp264: int) -> np.ndarray:
    """Rebuild the 8x8 residual of a :class:`TransformedBlock`."""
    if block.size == tables.TRANSFORM_8X8:
        return kernels.idct8(kernels.dequant_h263(block.levels8, qscale, intra=False))
    residual = np.zeros((8, 8), dtype=np.int64)
    for levels, (off_x, off_y) in zip(block.levels4, tables.SUBBLOCK_OFFSETS):
        rebuilt = kernels.inv_transform4(kernels.dequant_h264_4x4(levels, qp264))
        residual[off_y : off_y + 4, off_x : off_x + 4] = rebuilt
    return residual
