"""Static tables of the VC-1 class codec.

VC-1 (SMPTE 421M) is the other codec the paper's conclusions plan to add
(Section VII).  This codec family reproduces its distinguishing tool —
per-block **adaptive transform size** (a coded 8x8 residual block may be
transformed as one 8x8 or as four 4x4 blocks) — on top of the shared
substrate: quarter-pel bilinear motion compensation, median MV prediction
and MPEG-4-style intra DC/AC prediction.  Entropy tables follow the same
deterministic-Huffman construction as the other codecs.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.codecs.huffman import VlcTable, geometric

EOB = "EOB"
ESCAPE = "ESC"

MAX_RUN = 14
MAX_LEVEL = 14

ESCAPE_RUN_BITS = 6
ESCAPE_LEVEL_BITS = 12


def _coefficient_frequencies() -> Dict[object, float]:
    freqs: Dict[object, float] = {EOB: 0.30, ESCAPE: 1e-7}
    for run in range(MAX_RUN + 1):
        for level in range(1, MAX_LEVEL + 1):
            freqs[(run, level)] = (
                0.70 * geometric(0.44, run) * geometric(0.54, level - 1)
            )
    return freqs


COEFF_TABLE = VlcTable.from_frequencies(_coefficient_frequencies(), name="vc1-coeff")


def _cbp_frequencies() -> Dict[int, float]:
    freqs = {}
    for pattern in range(64):
        set_bits = bin(pattern).count("1")
        freqs[pattern] = 0.60 ** set_bits * 0.40 ** (6 - set_bits) + 1e-9
    freqs[0b111111] *= 6.0
    return freqs


CBP_TABLE = VlcTable.from_frequencies(_cbp_frequencies(), name="vc1-cbp")

MB_P_TABLE = VlcTable.from_frequencies(
    {"inter": 0.60, "skip": 0.30, "intra": 0.10}, name="vc1-mb-p"
)

MB_B_TABLE = VlcTable.from_frequencies(
    {"bi": 0.34, "fwd": 0.26, "skip": 0.22, "bwd": 0.14, "intra": 0.04},
    name="vc1-mb-b",
)

#: Offsets of the six 8x8 blocks inside a macroblock: (plane, x, y).
BLOCK_LAYOUT: Tuple[Tuple[str, int, int], ...] = (
    ("y", 0, 0),
    ("y", 8, 0),
    ("y", 0, 8),
    ("y", 8, 8),
    ("u", 0, 0),
    ("v", 0, 0),
)

#: Offsets of the four 4x4 sub-blocks inside an 8x8 block.
SUBBLOCK_OFFSETS: Tuple[Tuple[int, int], ...] = ((0, 0), (4, 0), (0, 4), (4, 4))

#: Transform-size signal values (1 bit per coded inter block).
TRANSFORM_8X8 = 0
TRANSFORM_4X4 = 1
