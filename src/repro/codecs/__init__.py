"""Codec registry: the HD-VideoBench applications (Table II of the paper).

Maps benchmark codec names to encoder/decoder implementations:

========  =============================  ==============================
name      paper encode application        paper decode application
========  =============================  ==============================
mpeg2     FFmpeg MPEG-2 encoder           libmpeg2
mpeg4     Xvid (MPEG-4 ASP)               Xvid
h264      x264                            FFmpeg H.264 decoder
========  =============================  ==============================
"""

from __future__ import annotations

from typing import Tuple

from repro.codecs.base import (
    CodecConfig,
    EncodedPicture,
    EncodedVideo,
    EncoderStats,
    VideoDecoder,
    VideoEncoder,
)
from repro.errors import ConfigError

#: Codec names in the order the paper reports them.
CODEC_NAMES: Tuple[str, ...] = ("mpeg2", "mpeg4", "h264")

#: Extension codecs (Section VII future work: VC-1, Motion-JPEG-2000);
#: not part of the paper's tables, available through the same registry.
EXTENSION_CODEC_NAMES: Tuple[str, ...] = ("mjpeg", "vc1")


def _entry(codec: str):
    if codec == "mpeg2":
        from repro.codecs.mpeg2 import Mpeg2Config, Mpeg2Decoder, Mpeg2Encoder

        return Mpeg2Config, Mpeg2Encoder, Mpeg2Decoder
    if codec == "mpeg4":
        from repro.codecs.mpeg4 import Mpeg4Config, Mpeg4Decoder, Mpeg4Encoder

        return Mpeg4Config, Mpeg4Encoder, Mpeg4Decoder
    if codec == "h264":
        from repro.codecs.h264 import H264Config, H264Decoder, H264Encoder

        return H264Config, H264Encoder, H264Decoder
    if codec == "mjpeg":
        from repro.codecs.mjpeg import MjpegConfig, MjpegDecoder, MjpegEncoder

        return MjpegConfig, MjpegEncoder, MjpegDecoder
    if codec == "vc1":
        from repro.codecs.vc1 import Vc1Config, Vc1Decoder, Vc1Encoder

        return Vc1Config, Vc1Encoder, Vc1Decoder
    known = ", ".join(CODEC_NAMES + EXTENSION_CODEC_NAMES)
    raise ConfigError(f"unknown codec {codec!r} (known: {known})")


def get_config_class(codec: str):
    """The configuration dataclass for ``codec``."""
    return _entry(codec)[0]


def get_encoder(codec: str, **config_fields) -> VideoEncoder:
    """Build an encoder for ``codec``.

    ``config_fields`` are passed to the codec's configuration dataclass
    (``width`` and ``height`` are required)::

        encoder = get_encoder("h264", width=160, height=96, qp=26)
    """
    config_cls, encoder_cls, _ = _entry(codec)
    return encoder_cls(config_cls(**config_fields))


def get_decoder(codec: str, backend: str = "simd") -> VideoDecoder:
    """Build a decoder for ``codec`` using the given kernel backend."""
    _, _, decoder_cls = _entry(codec)
    return decoder_cls(backend=backend)


__all__ = [
    "CODEC_NAMES",
    "CodecConfig",
    "EncodedPicture",
    "EncodedVideo",
    "EncoderStats",
    "VideoDecoder",
    "VideoEncoder",
    "get_config_class",
    "get_decoder",
    "get_encoder",
]
