"""Static VLC tables of the MPEG-4 ASP class codec.

MPEG-4 improves on MPEG-2's entropy layer with three-dimensional
(last, run, level) coefficient events — the ``last`` flag replaces the
separate end-of-block symbol, which is one of the reasons the format
compresses better.  Tables are built from priors as in the MPEG-2 codec.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.codecs.huffman import VlcTable, geometric

ESCAPE = "ESC"

MAX_RUN = 14
MAX_LEVEL = 12

ESCAPE_RUN_BITS = 6
ESCAPE_LEVEL_BITS = 12


def _coefficient_frequencies() -> Dict[object, float]:
    freqs: Dict[object, float] = {ESCAPE: 1e-7}
    for last in (0, 1):
        last_prob = 0.74 if last == 0 else 0.26
        for run in range(MAX_RUN + 1):
            for level in range(1, MAX_LEVEL + 1):
                freqs[(last, run, level)] = (
                    last_prob * geometric(0.45, run) * geometric(0.55, level - 1)
                )
    return freqs


COEFF3D_TABLE = VlcTable.from_frequencies(_coefficient_frequencies(), name="mpeg4-coeff")


def _cbp_frequencies() -> Dict[int, float]:
    freqs = {}
    for pattern in range(64):
        set_bits = bin(pattern).count("1")
        freqs[pattern] = 0.58 ** set_bits * 0.42 ** (6 - set_bits) + 1e-9
    freqs[0b111111] *= 8.0
    freqs[0b111100] *= 4.0
    return freqs


CBP_TABLE = VlcTable.from_frequencies(_cbp_frequencies(), name="mpeg4-cbp")

#: P-VOP macroblock modes; ``inter4v`` is the four-motion-vector ASP mode.
MB_P_TABLE = VlcTable.from_frequencies(
    {"inter": 0.44, "skip": 0.26, "inter4v": 0.20, "intra": 0.10},
    name="mpeg4-mb-p",
)

#: B-VOP macroblock modes.
MB_B_TABLE = VlcTable.from_frequencies(
    {"bi": 0.34, "fwd": 0.26, "skip": 0.22, "bwd": 0.14, "intra": 0.04},
    name="mpeg4-mb-b",
)


def cbp_bit(block_index: int) -> int:
    return 1 << (5 - block_index)


#: Offsets of the six 8x8 blocks inside a macroblock: (plane, x, y).
BLOCK_LAYOUT: Tuple[Tuple[str, int, int], ...] = (
    ("y", 0, 0),
    ("y", 8, 0),
    ("y", 0, 8),
    ("y", 8, 8),
    ("u", 0, 0),
    ("v", 0, 0),
)

#: Default intra DC level when a prediction neighbour is missing
#: (the level of a flat mid-grey block with dc_scaler = 8).
DC_DEFAULT = 128
