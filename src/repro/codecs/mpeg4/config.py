"""Configuration of the MPEG-4 ASP class codec."""

from __future__ import annotations

from dataclasses import dataclass

from repro.codecs.base import CodecConfig
from repro.transform.qp import validate_mpeg_qscale


@dataclass(frozen=True)
class Mpeg4Config(CodecConfig):
    """MPEG-4 ASP encoder settings.

    Defaults follow the paper's Xvid command line (Table IV):
    ``fixed_quant=5`` -> ``qscale=5``, ``qpel`` -> quarter-pel on, EPZS
    motion estimation.  ``four_mv`` enables the ASP four-motion-vector
    inter mode.
    """

    qscale: int = 5
    qpel: bool = True
    four_mv: bool = True

    def __post_init__(self) -> None:
        super().__post_init__()
        validate_mpeg_qscale(self.qscale)
