"""Three-dimensional (last, run, level) coefficient coding (MPEG-4 class)."""

from __future__ import annotations

from typing import List, Sequence

from repro.codecs.mpeg4 import tables
from repro.common.bitstream import BitReader, BitWriter
from repro.errors import BitstreamError


def encode_3d(writer: BitWriter, scanned: Sequence[int], start: int = 0) -> bool:
    """Code ``scanned[start:]`` as (last, run, level) events.

    Returns ``False`` (and writes nothing) when there are no non-zero
    coefficients — the caller signals that through the coded block pattern.
    """
    events = []
    run = 0
    for value in scanned[start:]:
        if value == 0:
            run += 1
        else:
            events.append((run, value))
            run = 0
    if not events:
        return False
    for index, (run, value) in enumerate(events):
        last = 1 if index == len(events) - 1 else 0
        magnitude = abs(value)
        if run <= tables.MAX_RUN and magnitude <= tables.MAX_LEVEL:
            tables.COEFF3D_TABLE.write(writer, (last, run, magnitude))
            writer.write_bit(1 if value < 0 else 0)
        else:
            tables.COEFF3D_TABLE.write(writer, tables.ESCAPE)
            writer.write_bit(last)
            writer.write_bits(run, tables.ESCAPE_RUN_BITS)
            writer.write_signed(value, tables.ESCAPE_LEVEL_BITS)
    return True


def decode_3d(reader: BitReader, size: int, start: int = 0) -> List[int]:
    """Decode one block of ``size`` scan positions coded from ``start``."""
    scanned = [0] * size
    position = start
    while True:
        symbol = tables.COEFF3D_TABLE.read(reader)
        if symbol == tables.ESCAPE:
            last = reader.read_bit()
            run = reader.read_bits(tables.ESCAPE_RUN_BITS)
            level = reader.read_signed(tables.ESCAPE_LEVEL_BITS)
        else:
            last, run, level = symbol
            if reader.read_bit():
                level = -level
        position += run
        if position >= size:
            raise BitstreamError("(last, run, level) event past end of block")
        scanned[position] = level
        position += 1
        if last:
            return scanned


def estimate_3d_bits(scanned: Sequence[int], start: int = 0) -> int:
    """Bit cost of coding ``scanned[start:]`` (for AC-prediction decisions)."""
    events = []
    run = 0
    for value in scanned[start:]:
        if value == 0:
            run += 1
        else:
            events.append((run, value))
            run = 0
    if not events:
        return 0
    bits = 0
    for index, (run, value) in enumerate(events):
        last = 1 if index == len(events) - 1 else 0
        magnitude = abs(value)
        if run <= tables.MAX_RUN and magnitude <= tables.MAX_LEVEL:
            bits += tables.COEFF3D_TABLE.bits((last, run, magnitude)) + 1
        else:
            bits += (
                tables.COEFF3D_TABLE.bits(tables.ESCAPE)
                + 1
                + tables.ESCAPE_RUN_BITS
                + tables.ESCAPE_LEVEL_BITS
            )
    return bits
