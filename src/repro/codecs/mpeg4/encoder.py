"""MPEG-4 ASP class encoder.

Implements the Advanced-Simple-Profile toolset of the paper's Xvid
application: quarter-pel motion compensation (``qpel``), the four-motion-
vector 8x8 inter mode, intra AC/DC prediction, H.263-style quantisation,
EPZS motion estimation with median MV prediction, and three-dimensional
(last, run, level) VLC entropy coding — each the reason this codec sits
between MPEG-2 and H.264 in both compression and compute cost.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.codecs.base import EncodedPicture, EncodedVideo, VideoEncoder
from repro.codecs.frames import WorkingFrame
from repro.codecs.mpeg4 import tables
from repro.codecs.mpeg4.acdc import AcDcStore, apply_ac_prediction, predict
from repro.codecs.mpeg4.coefficients import encode_3d, estimate_3d_bits
from repro.codecs.mpeg4.config import Mpeg4Config
from repro.codecs.mpeg4.motion import MvGrid
from repro.codecs.mpeg4.prediction import (
    average_prediction,
    predict_mb_4mv,
    predict_mb_qpel,
)
from repro.codecs.mpeg2.prediction import predict_mb as predict_mb_halfpel
from repro.common.bitstream import BitWriter
from repro.common.expgolomb import se_bit_length, write_se
from repro.common.gop import CodedFrame, FrameType
from repro.common.yuv import YuvSequence
from repro.errors import CodecError
from repro.kernels import get_kernels
from repro.me.cost import MotionCost, lambda_from_qp
from repro.me.search import run_search
from repro.me.subpel import refine_subpel
from repro.me.types import MotionVector, SearchResult, ZERO_MV
from repro.transform.qp import h264_qp_from_mpeg
from repro.transform.zigzag import scan8

INTRA_BIAS = 128
#: Extra cost charged to the four-MV mode for its added side information.
FOUR_MV_BIAS_BITS = 10


def _div_to_zero(value: int, divisor: int) -> int:
    return value // divisor if value >= 0 else -((-value) // divisor)


def _int_mv(mv: MotionVector, unit: int) -> MotionVector:
    return MotionVector(_div_to_zero(mv.x, unit), _div_to_zero(mv.y, unit))


class Mpeg4Encoder(VideoEncoder):
    """MPEG-4 ASP class encoder (see module docstring)."""

    codec_name = "mpeg4"

    def __init__(self, config: Mpeg4Config) -> None:
        super().__init__(config)
        self.config: Mpeg4Config = config
        self.kernels = get_kernels(config.backend)
        self.lagrangian = lambda_from_qp(h264_qp_from_mpeg(config.qscale))
        self.unit = 4 if config.qpel else 2

    # ------------------------------------------------------------------
    # sequence level
    # ------------------------------------------------------------------

    def encode_sequence(self, video: YuvSequence) -> EncodedVideo:
        self._check_input(video)
        stream = EncodedVideo(
            codec=self.codec_name,
            width=self.config.width,
            height=self.config.height,
            fps=video.fps,
        )
        references: Dict[int, WorkingFrame] = {}
        for entry in self.config.gop.coding_order(len(video)):
            source = WorkingFrame.from_yuv(video[entry.display_index])
            forward = references.get(entry.forward_ref) if entry.forward_ref is not None else None
            backward = references.get(entry.backward_ref) if entry.backward_ref is not None else None
            if entry.frame_type is not FrameType.I and forward is None:
                raise CodecError(f"missing forward reference for frame {entry.display_index}")
            if entry.frame_type is FrameType.B and backward is None:
                raise CodecError(f"missing backward reference for frame {entry.display_index}")
            payload, recon = self._encode_picture(entry, source, forward, backward)
            stream.pictures.append(EncodedPicture(payload, entry.display_index, entry.frame_type))
            self.stats.frame_bits.append(8 * len(payload))
            if entry.frame_type.is_anchor and recon is not None:
                references[entry.display_index] = recon
                for key in sorted(references)[:-2]:
                    del references[key]
        return stream

    # ------------------------------------------------------------------
    # picture level
    # ------------------------------------------------------------------

    _TYPE_CODE = {FrameType.I: 0, FrameType.P: 1, FrameType.B: 2}

    def _encode_picture(
        self,
        entry: CodedFrame,
        source: WorkingFrame,
        forward: Optional[WorkingFrame],
        backward: Optional[WorkingFrame],
    ) -> Tuple[bytes, Optional[WorkingFrame]]:
        config = self.config
        writer = BitWriter()
        writer.write_bits(self._TYPE_CODE[entry.frame_type], 2)
        writer.write_bits(config.qscale, 5)
        writer.write_bits(config.search_range, 8)
        writer.write_bit(1 if config.qpel else 0)
        writer.write_bit(1 if config.four_mv else 0)

        is_anchor = entry.frame_type.is_anchor
        recon = WorkingFrame.blank(config.width, config.height) if is_anchor else None

        self._grid = MvGrid(config.mb_width, config.mb_height)
        self._acdc = {name: AcDcStore() for name in ("y", "u", "v")}

        for mby in range(config.mb_height):
            self._pmv_fwd = ZERO_MV
            self._pmv_bwd = ZERO_MV
            for mbx in range(config.mb_width):
                if entry.frame_type is FrameType.I:
                    self._encode_intra_mb(writer, source, recon, mbx, mby)
                elif entry.frame_type is FrameType.P:
                    self._encode_p_mb(writer, source, recon, forward, mbx, mby)
                else:
                    self._encode_b_mb(writer, source, forward, backward, mbx, mby)
        writer.align()
        return writer.to_bytes(), recon

    # ------------------------------------------------------------------
    # intra macroblocks
    # ------------------------------------------------------------------

    def _block_grid(self, plane: str, mbx: int, mby: int, block_index: int) -> Tuple[int, int]:
        if plane == "y":
            return 2 * mbx + (block_index & 1), 2 * mby + (block_index >> 1)
        return mbx, mby

    def _encode_intra_mb(
        self,
        writer: BitWriter,
        source: WorkingFrame,
        recon: Optional[WorkingFrame],
        mbx: int,
        mby: int,
    ) -> None:
        kernels = self.kernels
        qscale = self.config.qscale

        prepared = []
        bits_raw = 0
        bits_pred = 0
        for block_index, (plane, off_x, off_y) in enumerate(tables.BLOCK_LAYOUT):
            base = 16 if plane == "y" else 8
            x = mbx * base + off_x
            y = mby * base + off_y
            block = source.plane(plane)[y : y + 8, x : x + 8]
            levels = kernels.quant_h263(kernels.fdct8(block), qscale, intra=True)
            bx, by = self._block_grid(plane, mbx, mby, block_index)
            direction, pred_dc, pred_ac = predict(self._acdc[plane], bx, by)
            self._acdc[plane].put(bx, by, levels)
            adjusted = apply_ac_prediction(levels, direction, pred_ac, -1)
            raw_scan = scan8(levels)
            pred_scan = scan8(adjusted)
            bits_raw += estimate_3d_bits(raw_scan, start=1)
            bits_pred += estimate_3d_bits(pred_scan, start=1)
            prepared.append((plane, x, y, levels, pred_dc, raw_scan, pred_scan))

        use_prediction = bits_pred < bits_raw
        writer.write_bit(1 if use_prediction else 0)

        cbp = 0
        for block_index, (_, _, _, _, _, raw_scan, pred_scan) in enumerate(prepared):
            scanned = pred_scan if use_prediction else raw_scan
            if any(scanned[1:]):
                cbp |= tables.cbp_bit(block_index)
        tables.CBP_TABLE.write(writer, cbp)

        for block_index, (plane, x, y, levels, pred_dc, raw_scan, pred_scan) in enumerate(prepared):
            dc = int(levels[0, 0])
            write_se(writer, dc - pred_dc)
            if cbp & tables.cbp_bit(block_index):
                scanned = pred_scan if use_prediction else raw_scan
                encode_3d(writer, scanned, start=1)
            if recon is not None:
                coeffs = kernels.dequant_h263(levels, qscale, intra=True)
                pixels = kernels.add_clip(
                    np.zeros((8, 8), dtype=np.int64), kernels.idct8(coeffs)
                )
                recon.store_block(plane, x, y, pixels)
        self.stats.intra_macroblocks += 1

    # ------------------------------------------------------------------
    # motion estimation
    # ------------------------------------------------------------------

    def _interp(self):
        return self.kernels.mc_qpel_bilinear if self.config.qpel else self.kernels.mc_halfpel

    def _search_block(
        self,
        source_block: np.ndarray,
        reference: WorkingFrame,
        x: int,
        y: int,
        size: int,
        predictor_frac: MotionVector,
        extra_int: List[MotionVector],
    ) -> SearchResult:
        """Integer search + sub-pel refinement; result in fractional units."""
        config = self.config
        kernels = self.kernels
        padded = reference.padded("y", config.search_range)
        cost = MotionCost(
            kernels=kernels,
            current=source_block,
            reference=padded,
            x=x,
            y=y,
            width=size,
            height=size,
            predictor=_int_mv(predictor_frac, self.unit),
            lagrangian=self.lagrangian,
            search_range=config.search_range,
        )
        integer = run_search(config.me_algorithm, cost, extra_int)
        return refine_subpel(
            kernels, source_block, padded, x, y, size, size,
            integer,
            predictor=predictor_frac,
            lagrangian=self.lagrangian,
            unit=self.unit,
            interp=self._interp(),
        )

    def _predict_inter(self, reference: WorkingFrame, mbx: int, mby: int,
                       mv: MotionVector) -> Dict[str, np.ndarray]:
        if self.config.qpel:
            return predict_mb_qpel(
                self.kernels, reference, mbx, mby, mv, self.config.search_range
            )
        return predict_mb_halfpel(
            self.kernels, reference, mbx, mby, mv, self.config.search_range
        )

    # ------------------------------------------------------------------
    # residual coding
    # ------------------------------------------------------------------

    def _quantise_residual(
        self,
        source: WorkingFrame,
        prediction: Dict[str, np.ndarray],
        mbx: int,
        mby: int,
    ) -> Tuple[int, List[Optional[np.ndarray]]]:
        kernels = self.kernels
        qscale = self.config.qscale
        cbp = 0
        all_levels: List[Optional[np.ndarray]] = []
        for block_index, (plane, off_x, off_y) in enumerate(tables.BLOCK_LAYOUT):
            if plane == "y":
                x, y = mbx * 16 + off_x, mby * 16 + off_y
                pred_block = prediction["y"][off_y : off_y + 8, off_x : off_x + 8]
            else:
                x, y = mbx * 8, mby * 8
                pred_block = prediction[plane]
            current = source.plane(plane)[y : y + 8, x : x + 8]
            residual = kernels.sub(current, pred_block)
            levels = kernels.quant_h263(kernels.fdct8(residual), qscale, intra=False)
            if np.any(levels):
                cbp |= tables.cbp_bit(block_index)
                all_levels.append(levels)
            else:
                all_levels.append(None)
        return cbp, all_levels

    def _write_residual(self, writer: BitWriter, cbp: int,
                        all_levels: List[Optional[np.ndarray]]) -> None:
        tables.CBP_TABLE.write(writer, cbp)
        for levels in all_levels:
            if levels is not None:
                encode_3d(writer, scan8(levels), start=0)

    def _reconstruct_inter(
        self,
        recon: WorkingFrame,
        prediction: Dict[str, np.ndarray],
        all_levels: List[Optional[np.ndarray]],
        mbx: int,
        mby: int,
    ) -> None:
        kernels = self.kernels
        qscale = self.config.qscale
        for block_index, (plane, off_x, off_y) in enumerate(tables.BLOCK_LAYOUT):
            if plane == "y":
                x, y = mbx * 16 + off_x, mby * 16 + off_y
                pred_block = prediction["y"][off_y : off_y + 8, off_x : off_x + 8]
            else:
                x, y = mbx * 8, mby * 8
                pred_block = prediction[plane]
            levels = all_levels[block_index]
            if levels is None:
                pixels = kernels.add_clip(pred_block, np.zeros((8, 8), dtype=np.int64))
            else:
                coeffs = kernels.dequant_h263(levels, qscale, intra=False)
                pixels = kernels.add_clip(pred_block, kernels.idct8(coeffs))
            recon.store_block(plane, x, y, pixels)

    # ------------------------------------------------------------------
    # P macroblocks
    # ------------------------------------------------------------------

    def _intra_cost(self, source: WorkingFrame, mbx: int, mby: int) -> int:
        block = source.y[mby * 16 : mby * 16 + 16, mbx * 16 : mbx * 16 + 16]
        mean = int(np.mean(block) + 0.5)
        flat = np.full((16, 16), mean, dtype=np.int64)
        return self.kernels.sad(block, flat) + INTRA_BIAS

    def _mark_intra(self, mbx: int, mby: int) -> None:
        self._grid.set_block(2 * mbx, 2 * mby, 2, 2, ZERO_MV)

    def _encode_p_mb(
        self,
        writer: BitWriter,
        source: WorkingFrame,
        recon: WorkingFrame,
        forward: WorkingFrame,
        mbx: int,
        mby: int,
    ) -> None:
        config = self.config
        x, y = mbx * 16, mby * 16
        current16 = source.y[y : y + 16, x : x + 16]
        bx, by = 2 * mbx, 2 * mby

        predictor16 = self._grid.predictor(bx, by, 2)
        extra = [_int_mv(mv, self.unit) for mv in self._grid.neighbours(bx, by)]
        best16 = self._search_block(current16, forward, x, y, 16, predictor16, extra)

        best4: Optional[List[SearchResult]] = None
        cost4 = None
        # The four-MV mode is defined on the quarter-pel path only.
        if config.four_mv and config.qpel:
            best4 = []
            cost4 = self.lagrangian * FOUR_MV_BIAS_BITS
            seed = [_int_mv(best16.mv, self.unit)]
            for block_index in range(4):
                off_x = 8 * (block_index & 1)
                off_y = 8 * (block_index >> 1)
                block = source.y[y + off_y : y + off_y + 8, x + off_x : x + off_x + 8]
                predictor8 = self._grid.predictor(bx + (block_index & 1), by + (block_index >> 1), 1)
                result = self._search_block(
                    block, forward, x + off_x, y + off_y, 8, predictor8, seed
                )
                best4.append(result)
                cost4 += result.cost

        use_4mv = cost4 is not None and cost4 < best16.cost
        inter_cost = cost4 if use_4mv else best16.cost

        if self._intra_cost(source, mbx, mby) < inter_cost:
            tables.MB_P_TABLE.write(writer, "intra")
            self._encode_intra_mb(writer, source, recon, mbx, mby)
            self._mark_intra(mbx, mby)
            return

        if use_4mv:
            mvs = [result.mv for result in best4]
            prediction = predict_mb_4mv(
                self.kernels, forward, mbx, mby, mvs, config.search_range
            )
            cbp, all_levels = self._quantise_residual(source, prediction, mbx, mby)
            tables.MB_P_TABLE.write(writer, "inter4v")
            for block_index, mv in enumerate(mvs):
                cell_x = bx + (block_index & 1)
                cell_y = by + (block_index >> 1)
                predictor = self._grid.predictor(cell_x, cell_y, 1)
                write_se(writer, mv.x - predictor.x)
                write_se(writer, mv.y - predictor.y)
                self._grid.set_block(cell_x, cell_y, 1, 1, mv)
            self._write_residual(writer, cbp, all_levels)
            self._reconstruct_inter(recon, prediction, all_levels, mbx, mby)
            self.stats.inter_macroblocks += 1
            return

        mv = best16.mv
        prediction = self._predict_inter(forward, mbx, mby, mv)
        cbp, all_levels = self._quantise_residual(source, prediction, mbx, mby)
        if cbp == 0 and mv == ZERO_MV:
            tables.MB_P_TABLE.write(writer, "skip")
            self._grid.set_block(bx, by, 2, 2, ZERO_MV)
            self._reconstruct_inter(recon, prediction, all_levels, mbx, mby)
            self.stats.skipped_macroblocks += 1
            return
        tables.MB_P_TABLE.write(writer, "inter")
        predictor = self._grid.predictor(bx, by, 2)
        write_se(writer, mv.x - predictor.x)
        write_se(writer, mv.y - predictor.y)
        self._grid.set_block(bx, by, 2, 2, mv)
        self._write_residual(writer, cbp, all_levels)
        self._reconstruct_inter(recon, prediction, all_levels, mbx, mby)
        self.stats.inter_macroblocks += 1

    # ------------------------------------------------------------------
    # B macroblocks
    # ------------------------------------------------------------------

    def _encode_b_mb(
        self,
        writer: BitWriter,
        source: WorkingFrame,
        forward: WorkingFrame,
        backward: WorkingFrame,
        mbx: int,
        mby: int,
    ) -> None:
        kernels = self.kernels
        x, y = mbx * 16, mby * 16
        current = source.y[y : y + 16, x : x + 16]

        fwd = self._search_block(current, forward, x, y, 16, self._pmv_fwd, [])
        bwd = self._search_block(current, backward, x, y, 16, self._pmv_bwd, [])

        pred_fwd = self._predict_inter(forward, mbx, mby, fwd.mv)
        pred_bwd = self._predict_inter(backward, mbx, mby, bwd.mv)
        bi_luma = kernels.average(pred_fwd["y"], pred_bwd["y"])
        bi_rate = (
            se_bit_length(fwd.mv.x - self._pmv_fwd.x)
            + se_bit_length(fwd.mv.y - self._pmv_fwd.y)
            + se_bit_length(bwd.mv.x - self._pmv_bwd.x)
            + se_bit_length(bwd.mv.y - self._pmv_bwd.y)
        )
        bi_cost = kernels.sad(current, bi_luma) + self.lagrangian * bi_rate

        mode_costs = {"fwd": fwd.cost, "bwd": bwd.cost, "bi": bi_cost}
        mode = min(mode_costs, key=mode_costs.get)
        if self._intra_cost(source, mbx, mby) < mode_costs[mode]:
            tables.MB_B_TABLE.write(writer, "intra")
            self._encode_intra_mb(writer, source, None, mbx, mby)
            self._pmv_fwd = ZERO_MV
            self._pmv_bwd = ZERO_MV
            return

        if mode == "fwd":
            prediction = pred_fwd
        elif mode == "bwd":
            prediction = pred_bwd
        else:
            prediction = average_prediction(kernels, pred_fwd, pred_bwd)
        cbp, all_levels = self._quantise_residual(source, prediction, mbx, mby)

        if mode == "fwd" and cbp == 0 and fwd.mv == self._pmv_fwd:
            tables.MB_B_TABLE.write(writer, "skip")
            self.stats.skipped_macroblocks += 1
            return

        tables.MB_B_TABLE.write(writer, mode)
        if mode in ("fwd", "bi"):
            write_se(writer, fwd.mv.x - self._pmv_fwd.x)
            write_se(writer, fwd.mv.y - self._pmv_fwd.y)
            self._pmv_fwd = fwd.mv
        if mode in ("bwd", "bi"):
            write_se(writer, bwd.mv.x - self._pmv_bwd.x)
            write_se(writer, bwd.mv.y - self._pmv_bwd.y)
            self._pmv_bwd = bwd.mv
        self._write_residual(writer, cbp, all_levels)
        self.stats.inter_macroblocks += 1
