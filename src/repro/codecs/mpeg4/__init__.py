"""MPEG-4 ASP class codec (paper application: Xvid)."""

from repro.codecs.mpeg4.config import Mpeg4Config
from repro.codecs.mpeg4.decoder import Mpeg4Decoder
from repro.codecs.mpeg4.encoder import Mpeg4Encoder

__all__ = ["Mpeg4Config", "Mpeg4Decoder", "Mpeg4Encoder"]
