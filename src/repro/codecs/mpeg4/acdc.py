"""MPEG-4 intra AC/DC prediction.

Intra blocks predict their quantised DC level — and optionally the first
row/column of AC levels — from the left or top neighbour block.  The
direction is chosen per block with the standard gradient rule: compare the
DC levels of the left (A), above-left (B) and above (C) neighbours; if
``|dcA - dcB| < |dcB - dcC|`` predict vertically from C, else horizontally
from A.  Both sides derive the direction from decoded DC values only, so
encoder and decoder always agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.codecs.mpeg4.tables import DC_DEFAULT

VERTICAL = "vertical"
HORIZONTAL = "horizontal"

#: Number of predicted AC coefficients along a row/column.
AC_COUNT = 7


@dataclass
class BlockAcDc:
    """Stored prediction context of one intra block (raw, unpredicted)."""

    dc: int
    row: List[int]  # levels[0][1..7]
    col: List[int]  # levels[1..7][0]


class AcDcStore:
    """Per-picture, per-plane store of intra block prediction contexts."""

    def __init__(self) -> None:
        self._blocks: Dict[Tuple[int, int], BlockAcDc] = {}

    def get(self, bx: int, by: int) -> Optional[BlockAcDc]:
        if bx < 0 or by < 0:
            return None
        return self._blocks.get((bx, by))

    def put(self, bx: int, by: int, levels: np.ndarray) -> None:
        """Record the raw levels of the intra block at grid (bx, by)."""
        rows = levels.tolist()
        self._blocks[(bx, by)] = BlockAcDc(
            dc=int(rows[0][0]),
            row=[int(rows[0][j]) for j in range(1, 8)],
            col=[int(rows[i][0]) for i in range(1, 8)],
        )


def predict(store: AcDcStore, bx: int, by: int) -> Tuple[str, int, List[int]]:
    """Prediction for block (bx, by): (direction, dc, ac_levels)."""
    a = store.get(bx - 1, by)
    b = store.get(bx - 1, by - 1)
    c = store.get(bx, by - 1)
    dc_a = a.dc if a else DC_DEFAULT
    dc_b = b.dc if b else DC_DEFAULT
    dc_c = c.dc if c else DC_DEFAULT
    if abs(dc_a - dc_b) < abs(dc_b - dc_c):
        ac = c.row if c else [0] * AC_COUNT
        return VERTICAL, dc_c, list(ac)
    ac = a.col if a else [0] * AC_COUNT
    return HORIZONTAL, dc_a, list(ac)


def apply_ac_prediction(levels: np.ndarray, direction: str,
                        predicted: List[int], sign: int) -> np.ndarray:
    """Add (sign=+1) or subtract (sign=-1) the predicted AC coefficients."""
    adjusted = levels.copy()
    if direction == VERTICAL:
        for j in range(1, 8):
            adjusted[0, j] += sign * predicted[j - 1]
    else:
        for i in range(1, 8):
            adjusted[i, 0] += sign * predicted[i - 1]
    return adjusted
