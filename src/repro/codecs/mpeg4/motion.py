"""MPEG-4 motion vector field: 8x8-granular grid with median prediction.

P-VOP motion vectors are coded differentially against the component-wise
median of the left, top and top-right neighbour block vectors — at 8x8
block granularity so the four-MV mode and the one-MV mode share one rule.
Both encoder and decoder maintain this grid identically.
"""

from __future__ import annotations

from typing import List, Optional

from repro.me.types import MotionVector, ZERO_MV, median_mv


class MvGrid:
    """Per-picture motion vector grid at 8x8 granularity (quarter-pel units)."""

    def __init__(self, mb_width: int, mb_height: int) -> None:
        self.width = 2 * mb_width
        self.height = 2 * mb_height
        self._grid: List[List[Optional[MotionVector]]] = [
            [None] * self.width for _ in range(self.height)
        ]

    def get(self, bx: int, by: int) -> Optional[MotionVector]:
        if 0 <= bx < self.width and 0 <= by < self.height:
            return self._grid[by][bx]
        return None

    def _candidate(self, bx: int, by: int) -> MotionVector:
        mv = self.get(bx, by)
        return mv if mv is not None else ZERO_MV

    def predictor(self, bx: int, by: int, block_cells: int) -> MotionVector:
        """Median predictor for the block whose top-left cell is (bx, by).

        ``block_cells`` is the block width in grid cells (2 for a 16x16
        macroblock vector, 1 for an 8x8 four-MV block).
        """
        left = self._candidate(bx - 1, by)
        top = self._candidate(bx, by - 1)
        top_right = self._candidate(bx + block_cells, by - 1)
        return median_mv(left, top, top_right)

    def set_block(self, bx: int, by: int, cells_x: int, cells_y: int,
                  mv: MotionVector) -> None:
        for row in range(by, min(by + cells_y, self.height)):
            for col in range(bx, min(bx + cells_x, self.width)):
                self._grid[row][col] = mv

    def neighbours(self, bx: int, by: int) -> List[MotionVector]:
        """Distinct spatial neighbour vectors (EPZS candidate predictors)."""
        seen = []
        for nbx, nby in ((bx - 1, by), (bx, by - 1), (bx + 2, by - 1)):
            mv = self.get(nbx, nby)
            if mv is not None and mv not in seen:
                seen.append(mv)
        return seen
