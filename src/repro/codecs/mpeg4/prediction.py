"""Quarter-pel macroblock prediction shared by the MPEG-4 encoder/decoder."""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.codecs.frames import WorkingFrame
from repro.mc.chroma import chroma_mv_from_qpel
from repro.me.types import MotionVector
from repro.robustness.guard import check_motion_vector


def _div_to_zero(value: int, divisor: int) -> int:
    return value // divisor if value >= 0 else -((-value) // divisor)


def predict_mb_qpel(
    kernels,
    reference: WorkingFrame,
    mbx: int,
    mby: int,
    mv: MotionVector,
    search_range: int,
) -> Dict[str, np.ndarray]:
    """One-MV prediction: quarter-pel luma, half-pel chroma."""
    check_motion_vector(mv, search_range, 4)
    luma = reference.padded("y", search_range)
    px, py = luma.offset(mbx * 16, mby * 16)
    prediction = {"y": kernels.mc_qpel_bilinear(luma.plane, px, py, 16, 16, mv.x, mv.y)}
    cmv = chroma_mv_from_qpel(mv)
    for plane in ("u", "v"):
        padded = reference.padded(plane, search_range)
        cx, cy = padded.offset(mbx * 8, mby * 8)
        prediction[plane] = kernels.mc_halfpel(padded.plane, cx, cy, 8, 8, cmv.x, cmv.y)
    return prediction


def predict_mb_4mv(
    kernels,
    reference: WorkingFrame,
    mbx: int,
    mby: int,
    mvs: Sequence[MotionVector],
    search_range: int,
) -> Dict[str, np.ndarray]:
    """Four-MV prediction: one quarter-pel vector per 8x8 luma block.

    The chroma vector is the rounded average of the four luma vectors, as
    in MPEG-4 ASP.
    """
    for mv in mvs:
        check_motion_vector(mv, search_range, 4)
    luma = reference.padded("y", search_range)
    assembled = np.zeros((16, 16), dtype=np.int64)
    for index, mv in enumerate(mvs):
        off_x = 8 * (index & 1)
        off_y = 8 * (index >> 1)
        px, py = luma.offset(mbx * 16 + off_x, mby * 16 + off_y)
        assembled[off_y : off_y + 8, off_x : off_x + 8] = kernels.mc_qpel_bilinear(
            luma.plane, px, py, 8, 8, mv.x, mv.y
        )
    prediction = {"y": assembled}
    total_x = sum(mv.x for mv in mvs)
    total_y = sum(mv.y for mv in mvs)
    cmv = MotionVector(_div_to_zero(total_x, 16), _div_to_zero(total_y, 16))
    for plane in ("u", "v"):
        padded = reference.padded(plane, search_range)
        cx, cy = padded.offset(mbx * 8, mby * 8)
        prediction[plane] = kernels.mc_halfpel(padded.plane, cx, cy, 8, 8, cmv.x, cmv.y)
    return prediction


def average_prediction(
    kernels,
    forward: Dict[str, np.ndarray],
    backward: Dict[str, np.ndarray],
) -> Dict[str, np.ndarray]:
    """Bi-directional prediction: rounded average of both directions."""
    return {
        name: kernels.average(forward[name], backward[name])
        for name in ("y", "u", "v")
    }
