"""Working frame representation shared by the encoders and decoders.

Codecs operate on ``int64`` planes (the kernel backends are integer-only);
``WorkingFrame`` converts from/to the public ``uint8`` :class:`YuvFrame`
and caches edge-padded copies of its planes for motion search/compensation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from repro.common.yuv import YuvFrame
from repro.mc.pad import PaddedPlane, pad_plane

PLANE_NAMES = ("y", "u", "v")


@dataclass
class WorkingFrame:
    """Integer planes plus cached padded versions keyed by search range."""

    y: np.ndarray
    u: np.ndarray
    v: np.ndarray
    _padded: Dict[Tuple[str, int], PaddedPlane] = field(default_factory=dict)

    @classmethod
    def from_yuv(cls, frame: YuvFrame) -> "WorkingFrame":
        return cls(
            frame.y.astype(np.int64),
            frame.u.astype(np.int64),
            frame.v.astype(np.int64),
        )

    @classmethod
    def blank(cls, width: int, height: int) -> "WorkingFrame":
        return cls(
            np.zeros((height, width), dtype=np.int64),
            np.zeros((height // 2, width // 2), dtype=np.int64),
            np.zeros((height // 2, width // 2), dtype=np.int64),
        )

    @property
    def width(self) -> int:
        return self.y.shape[1]

    @property
    def height(self) -> int:
        return self.y.shape[0]

    def plane(self, name: str) -> np.ndarray:
        return getattr(self, name)

    def to_yuv(self) -> YuvFrame:
        return YuvFrame(
            np.clip(self.y, 0, 255).astype(np.uint8),
            np.clip(self.u, 0, 255).astype(np.uint8),
            np.clip(self.v, 0, 255).astype(np.uint8),
        )

    def padded(self, name: str, search_range: int) -> PaddedPlane:
        """Edge-padded copy of plane ``name``, cached per search range."""
        key = (name, search_range)
        cached = self._padded.get(key)
        if cached is None:
            cached = pad_plane(self.plane(name), search_range)
            self._padded[key] = cached
        return cached

    def invalidate_padding(self) -> None:
        """Drop padded caches (call after mutating planes, e.g. deblocking)."""
        self._padded.clear()

    def store_block(self, name: str, x: int, y: int, block: np.ndarray) -> None:
        """Write a reconstructed block into plane ``name`` at (x, y)."""
        plane = self.plane(name)
        height, width = block.shape
        plane[y : y + height, x : x + width] = block
