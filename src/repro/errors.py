"""Exception hierarchy for the HD-VideoBench reproduction.

Hierarchy::

    ReproError                  base of every library error; carries optional
    |                           decode context (codec, picture index, frame
    |                           type, bit position) filled in by the hardened
    |                           decode path in :mod:`repro.robustness`
    +-- BitstreamError          malformed bitstream input: bad syntax codes,
    |   |                       out-of-range headers, wild motion vectors --
    |   |                       the payload *parses wrongly*
    |   +-- TruncationError     the payload *ends early*: any read past the
    |                           end of the data (truncated download, dropped
    |                           tail).  Distinguishable from semantic
    |                           corruption so callers can decide to re-fetch
    |                           instead of conceal.
    +-- CodecError              encoding or decoding fails semantically
    |                           (missing references, duplicate pictures,
    |                           stream/decoder mismatch)
    +-- ConfigError             invalid encoder/decoder/benchmark configuration
    +-- SequenceError           an input sequence cannot be generated/loaded
    +-- ObserveError            malformed benchmark record or history store
    |                           (:mod:`repro.observe`)
    +-- OrchestrateError        a run spec is malformed, a cell fails, or the
    |                           artifact cache misbehaves
    |                           (:mod:`repro.orchestrate`); carries the
    |                           ``spec`` name and ``cell`` identity
    +-- ChaosError              the fault-injection layer itself is misused
    |   |                       (:mod:`repro.chaos`): malformed fault plans,
    |   |                       unregistered crash points; carries the
    |   |                       ``crash_point`` name and filesystem ``path``
    |   +-- CrashInjected       simulated process death at a named crash
    |                           point -- never caught and converted to a
    |                           failed-cell record, it must propagate (or
    |                           hard-exit) exactly like a real kill
    +-- OriginError             the streaming origin (:mod:`repro.origin`)
        |                       failed a session operation; carries
        |                       ``session_id`` and supervisor ``state``
        +-- SessionAborted      a session was terminated by the supervisor
                                (failure budget exhausted, shed under load,
                                cancelled mid-stream)

Errors raised while decoding untrusted payloads are normalised by
:func:`repro.robustness.guard.normalize_decode_error` so that every escape
is a :class:`ReproError` subclass carrying ``codec``, ``picture_index`` and
``bit_position`` -- never a raw ``IndexError``/``KeyError``/numpy error.

:class:`ConcealmentEvent` is not an exception: it is the record emitted by
the error-concealment engine each time a corrupt picture is replaced
instead of aborting the decode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple, Type


def _rebuild_error(cls: Type["ReproError"], message: str,
                   context: Dict[str, Any]) -> "ReproError":
    error = cls(message, **context)
    return error


def _active_correlation() -> Dict[str, str]:
    """The event-log correlation scope, if the telemetry plane is up.

    Imported lazily so :mod:`repro.errors` stays importable first and
    free of cycles (telemetry never imports this module).
    """
    try:
        from repro.telemetry.events import current_correlation
    except ImportError:  # pragma: no cover - partial installs only
        return {}
    return current_correlation()


class ReproError(Exception):
    """Base class for all library errors.

    Optional keyword-only context fields locate a decode failure inside a
    stream; they default to ``None`` for errors raised outside the decode
    path.  ``packet_seq`` extends the taxonomy to the transport layer
    (:mod:`repro.transport`): when a picture was damaged by packet loss,
    it names the first lost transport sequence number, so bitstream faults
    and network losses report through one error shape.  ``session_id``
    extends it once more to the streaming origin (:mod:`repro.origin`):
    a failure inside a multi-client serve names the session it belongs
    to, so one sick client is attributable among thousands.
    ``correlation_id``/``cell_id`` extend it to the observability plane
    (:mod:`repro.telemetry.events`): any error constructed inside an
    active ``correlation_scope`` automatically inherits the scope's ids,
    so flight-record dumps and the event log can attribute the failure
    without per-subsystem plumbing.  ``str(error)`` appends the decode
    context when present, so existing ``pytest.raises(..., match=...)``
    patterns keep matching the message prefix (correlation ids are
    reported via :meth:`to_context_dict`, never in the message).
    """

    def __init__(
        self,
        message: str = "",
        *,
        codec: Optional[str] = None,
        picture_index: Optional[int] = None,
        frame_type: Any = None,
        bit_position: Optional[int] = None,
        packet_seq: Optional[int] = None,
        session_id: Optional[str] = None,
        correlation_id: Optional[str] = None,
        cell_id: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.message = message
        self.codec = codec
        self.picture_index = picture_index
        self.frame_type = frame_type
        self.bit_position = bit_position
        self.packet_seq = packet_seq
        self.session_id = session_id
        self.correlation_id = correlation_id
        self.cell_id = cell_id
        if session_id is None or correlation_id is None or cell_id is None:
            scope = _active_correlation()
            if scope:
                if self.session_id is None:
                    self.session_id = scope.get("session_id")
                if self.cell_id is None:
                    self.cell_id = scope.get("cell_id")
                if self.correlation_id is None:
                    self.correlation_id = (
                        self.session_id or self.cell_id
                        or scope.get("run_id"))

    @property
    def context(self) -> Dict[str, Any]:
        """The context fields as a dict (``None`` entries included)."""
        return {
            "codec": self.codec,
            "picture_index": self.picture_index,
            "frame_type": self.frame_type,
            "bit_position": self.bit_position,
            "packet_seq": self.packet_seq,
            "session_id": self.session_id,
            "correlation_id": self.correlation_id,
            "cell_id": self.cell_id,
        }

    def to_context_dict(self) -> Dict[str, Any]:
        """The complete, compact form shared by the event log and
        flight-record dumps: error class, message, and every non-``None``
        context field."""
        data: Dict[str, Any] = {
            "error": type(self).__name__,
            "message": self.message,
        }
        for key, value in self.context.items():
            if value is not None:
                data[key] = value
        return data

    def has_decode_context(self) -> bool:
        """True when the error locates a failure inside a stream."""
        return (
            self.codec is not None
            and self.picture_index is not None
            and self.bit_position is not None
        )

    def __str__(self) -> str:
        parts = []
        if self.codec is not None:
            parts.append(f"codec={self.codec}")
        if self.picture_index is not None:
            parts.append(f"picture={self.picture_index}")
        if self.frame_type is not None:
            parts.append(f"type={self.frame_type}")
        if self.bit_position is not None:
            parts.append(f"bit={self.bit_position}")
        if self.packet_seq is not None:
            parts.append(f"packet={self.packet_seq}")
        if self.session_id is not None:
            parts.append(f"session={self.session_id}")
        if parts:
            return f"{self.message} [{', '.join(parts)}]"
        return self.message

    def __reduce__(self) -> Tuple[Any, ...]:
        # Default Exception pickling round-trips only ``args``; keep the
        # context fields across process boundaries (parallel encoding).
        return (_rebuild_error, (type(self), self.message, self.context))


class BitstreamError(ReproError):
    """Raised on malformed or corrupted bitstream input."""


class TruncationError(BitstreamError):
    """Raised when a bitstream ends before its syntax does.

    A subclass of :class:`BitstreamError`, so existing handlers keep
    working; callers that care can distinguish a short payload (re-fetch,
    wait for more data) from semantic corruption (conceal, resync).
    """


class ConfigError(ReproError):
    """Raised when encoder/decoder/benchmark configuration is invalid."""


class CodecError(ReproError):
    """Raised when encoding or decoding fails semantically."""


class SequenceError(ReproError):
    """Raised when an input sequence cannot be generated or loaded."""


class ObserveError(ReproError):
    """Raised by the benchmark-observability layer (:mod:`repro.observe`)
    on malformed records, unreadable history stores or invalid queries."""


class OrchestrateError(ReproError):
    """Raised by the benchmark orchestrator (:mod:`repro.orchestrate`).

    Adds the ``spec`` name and the ``cell`` identity (the canonical
    axis string of the failing cell), so a failure inside a thousand-cell
    matrix run names the spec it came from and the exact cell it broke
    on.  Both default to ``None`` for errors raised outside a run (a
    malformed spec file, an unreadable cache).
    """

    def __init__(self, message: str = "", *, spec: Optional[str] = None,
                 cell: Optional[str] = None, **kwargs: Any) -> None:
        super().__init__(message, **kwargs)
        self.spec = spec
        self.cell = cell

    @property
    def context(self) -> Dict[str, Any]:
        data = dict(super().context)
        data["spec"] = self.spec
        data["cell"] = self.cell
        return data

    def __str__(self) -> str:
        rendered = super().__str__()
        extra = []
        if self.spec is not None:
            extra.append(f"spec={self.spec}")
        if self.cell is not None:
            extra.append(f"cell={self.cell}")
        if not extra:
            return rendered
        joined = ", ".join(extra)
        if rendered.endswith("]"):
            return f"{rendered[:-1]}, {joined}]"
        return f"{rendered} [{joined}]"


class ChaosError(ReproError):
    """Raised by the deterministic fault-injection layer (:mod:`repro.chaos`).

    Adds the ``crash_point`` name (an entry of the crash-point registry)
    and the filesystem ``path`` the chaos shim was operating on.  Note
    that *injected* faults are deliberately **not** ChaosErrors: the shim
    raises genuine ``OSError``s so that production error handling is
    exercised exactly as a real flaky filesystem would exercise it.
    ChaosError itself marks misuse of the chaos machinery (a malformed
    fault plan, an unregistered crash point).
    """

    def __init__(self, message: str = "", *,
                 crash_point: Optional[str] = None,
                 path: Optional[str] = None, **kwargs: Any) -> None:
        super().__init__(message, **kwargs)
        self.crash_point = crash_point
        self.path = path

    @property
    def context(self) -> Dict[str, Any]:
        data = dict(super().context)
        data["crash_point"] = self.crash_point
        data["path"] = self.path
        return data

    def __str__(self) -> str:
        rendered = super().__str__()
        extra = []
        if self.crash_point is not None:
            extra.append(f"crash_point={self.crash_point}")
        if self.path is not None:
            extra.append(f"path={self.path}")
        if not extra:
            return rendered
        joined = ", ".join(extra)
        if rendered.endswith("]"):
            return f"{rendered[:-1]}, {joined}]"
        return f"{rendered} [{joined}]"


class CrashInjected(ChaosError):
    """Raised (or hard-exited) at a registered crash point to simulate
    process death.  Recovery code must never catch this and carry on:
    the crash-proof harness treats it exactly like ``kill -9``, so any
    handler that swallows it is masking an untested recovery path."""


class OriginError(ReproError):
    """Raised by the streaming origin (:mod:`repro.origin`).

    Adds the supervisor ``state`` the session was in when the failure
    happened; together with ``session_id`` (on the base class) every
    origin failure is attributable to one client at one point of its
    lifecycle.
    """

    def __init__(self, message: str = "", *, state: Optional[str] = None,
                 **kwargs: Any) -> None:
        super().__init__(message, **kwargs)
        self.state = state

    @property
    def context(self) -> Dict[str, Any]:
        data = dict(super().context)
        data["state"] = self.state
        return data

    def __str__(self) -> str:
        rendered = super().__str__()
        if self.state is None:
            return rendered
        if rendered.endswith("]"):
            return f"{rendered[:-1]}, state={self.state}]"
        return f"{rendered} [state={self.state}]"


class SessionAborted(OriginError):
    """Raised when the supervisor terminates a session instead of
    retrying forever: failure budget exhausted, shed by the degradation
    ladder's last step, or cancelled mid-stream."""


@dataclass(frozen=True)
class ConcealmentEvent:
    """One concealed (or skipped) picture in a hardened decode.

    Emitted by :mod:`repro.robustness.engine` through the ``on_event``
    callback and collected in :class:`~repro.robustness.engine.DecodeResult`.

    ``picture_index`` is the coding-order index (``None`` for display-order
    holes filled after the main pass), ``error`` the normalised
    :class:`ReproError` that triggered concealment (``None`` for holes).
    """

    codec: str
    strategy: str
    display_index: int
    picture_index: Optional[int] = None
    frame_type: Any = None
    error: Optional[ReproError] = None

    @property
    def truncated(self) -> bool:
        """True when the trigger was a short payload, not corruption."""
        return isinstance(self.error, TruncationError)

    def __str__(self) -> str:
        cause = f": {self.error}" if self.error is not None else ": missing picture"
        return (
            f"concealed display frame {self.display_index} of {self.codec} "
            f"with {self.strategy!r}{cause}"
        )
