"""Exception hierarchy for the HD-VideoBench reproduction."""


class ReproError(Exception):
    """Base class for all library errors."""


class BitstreamError(ReproError):
    """Raised on malformed or truncated bitstream input."""


class ConfigError(ReproError):
    """Raised when encoder/decoder/benchmark configuration is invalid."""


class CodecError(ReproError):
    """Raised when encoding or decoding fails semantically."""


class SequenceError(ReproError):
    """Raised when an input sequence cannot be generated or loaded."""
