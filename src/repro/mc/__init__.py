"""Motion compensation: reference padding and chroma MV derivation.

The per-block interpolation kernels themselves live in the kernel backends
(:mod:`repro.kernels`); this package provides the surrounding machinery.
"""

from repro.mc.chroma import (
    chroma_mv_from_halfpel,
    chroma_mv_from_qpel,
)
from repro.mc.pad import INTERP_MARGIN, PaddedPlane, pad_plane

__all__ = [
    "INTERP_MARGIN",
    "PaddedPlane",
    "chroma_mv_from_halfpel",
    "chroma_mv_from_qpel",
    "pad_plane",
]
