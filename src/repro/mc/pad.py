"""Edge-padded reference planes.

Motion vectors may point (partially) outside the picture; all standards
define the out-of-bounds samples by edge replication.  Rather than clamping
coordinates per pixel in the hot interpolation loops, reference planes are
padded once per frame with a margin that covers the motion search range
plus the widest interpolation support (the H.264 six-tap filter needs
samples from -2 to +3 around the block).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError

#: Extra margin beyond the search range for sub-pel filter support.
INTERP_MARGIN = 8


@dataclass
class PaddedPlane:
    """A reference plane with replicated borders.

    ``plane`` holds the padded samples as ``int64``; frame coordinate
    (x, y) lives at ``plane[y + pad, x + pad]``.
    """

    plane: np.ndarray
    pad: int
    width: int
    height: int

    def offset(self, x: int, y: int) -> tuple:
        """Translate frame coordinates into padded-plane coordinates."""
        return (x + self.pad, y + self.pad)


def pad_plane(plane: np.ndarray, search_range: int) -> PaddedPlane:
    """Edge-replicate ``plane`` for motion searches up to ``search_range``."""
    if search_range < 0:
        raise ConfigError(f"search_range must be >= 0, got {search_range}")
    pad = search_range + INTERP_MARGIN
    height, width = plane.shape
    padded = np.pad(plane.astype(np.int64), pad, mode="edge")
    return PaddedPlane(plane=padded, pad=pad, width=width, height=height)


def max_mv_magnitude(padded: PaddedPlane, block_size: int) -> int:
    """Largest integer-pel MV magnitude safely addressable in ``padded``."""
    return padded.pad - INTERP_MARGIN
