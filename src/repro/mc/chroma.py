"""Chroma motion vector derivation for 4:2:0.

The chroma planes are half the luma resolution, so a luma displacement of
``d`` pixels is ``d/2`` chroma pixels.  Each codec family expresses this in
its own units:

* MPEG-2/MPEG-4 half-pel luma MVs map to half-pel chroma MVs by dividing
  by two (truncating toward zero, the MPEG convention).
* MPEG-4 quarter-pel luma MVs map to half-pel chroma MVs by dividing by
  four (truncating toward zero).
* H.264 quarter-pel luma MVs map to *eighth-pel* chroma MVs with the same
  numeric value (quarter-luma-pel == eighth-chroma-pel in 4:2:0), so no
  conversion is needed there.
"""

from __future__ import annotations

from repro.me.types import MotionVector


def _div_to_zero(value: int, divisor: int) -> int:
    if value >= 0:
        return value // divisor
    return -((-value) // divisor)


def chroma_mv_from_halfpel(mv: MotionVector) -> MotionVector:
    """Half-pel luma MV -> half-pel chroma MV (MPEG-2 class)."""
    return MotionVector(_div_to_zero(mv.x, 2), _div_to_zero(mv.y, 2))


def chroma_mv_from_qpel(mv: MotionVector) -> MotionVector:
    """Quarter-pel luma MV -> half-pel chroma MV (MPEG-4 ASP class)."""
    return MotionVector(_div_to_zero(mv.x, 4), _div_to_zero(mv.y, 4))
