"""The crash-recovery proof: kill, fsck, resume, compare bit-for-bit.

For **every** entry of the crash-point registry
(:data:`repro.chaos.plan.CRASH_POINTS`) this harness:

1. runs an uninterrupted reference scenario (once per scenario shape —
   the expansion, encodes and records are all deterministic);
2. forks a child that runs the same scenario with a
   :class:`~repro.chaos.fsops.ChaosFS` armed to **hard-crash**
   (``os._exit``, no ``finally`` blocks, no flushes — honest ``kill
   -9`` semantics) at the crash point, and asserts the child died with
   :data:`~repro.chaos.fsops.CRASH_EXIT_CODE`;
3. runs ``fsck --repair`` over the survivor store and cache (stale
   locks broken unconditionally — every lock owner is known dead) and
   asserts a re-check comes back clean;
4. resumes the scenario without chaos — same run id, record-granular
   resume — and asserts the final store records are **bit-identical**
   (serialised line for line) to the uninterrupted reference.

Two scenario shapes cover the registry: ``run`` (a mini
:func:`~repro.orchestrate.scheduler.run_cells` campaign — exercises the
append, artifact-commit and scheduler points) and ``compact`` (two runs
then ``compact(keep_last=1)`` — exercises the compaction points).

CI entry point::

    python -m repro.chaos.harness [--spec specs/ci-mini.json]
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import shutil
import sys
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

from repro.chaos.fsops import CRASH_EXIT_CODE, ChaosFS, activate
from repro.chaos.plan import CRASH_POINTS, FaultPlan
from repro.errors import ChaosError
from repro.observe.fsck import fsck_store
from repro.observe.record import RunInfo
from repro.observe.store import HistoryStore, _serialise
from repro.orchestrate.artifacts import ArtifactCache
from repro.orchestrate.fsck import fsck_cache
from repro.orchestrate.scheduler import run_cells
from repro.orchestrate.spec import RunSpec, load_spec, parse_spec

#: The default matrix workload: two cells, tiny frames, serial only --
#: small enough that the full registry proves out in seconds.
DEFAULT_SPEC: Dict[str, object] = {
    "schema": "repro.orchestrate.spec/1",
    "name": "chaos-mini",
    "axes": {
        "codec": ["mpeg2"],
        "sequence": ["blue_sky"],
        "resolution": ["576p25"],
        "qp": [8, 12],
    },
    "frames": 2,
    "scale": "1/16",
    "seed": 0,
}

#: Crash points proven through the ``compact`` scenario; every other
#: registered point fires inside the ``run`` scenario.
COMPACT_POINTS = frozenset({
    "store.compact.pre_replace",
    "store.compact.post_replace",
})

_EXIT_UNEXPECTED_ERROR = 3      #: child failed before the crash point
_EXIT_POINT_NOT_REACHED = 4     #: scenario finished, point never fired


@dataclass
class CrashProof:
    """Outcome of one crash point's kill → fsck → resume → compare."""

    point: str
    scenario: str
    child_exit: Optional[int]
    fsck_findings: int          #: pre-repair findings (store + cache)
    recheck_clean: bool
    identical: bool

    @property
    def ok(self) -> bool:
        return (self.child_exit == CRASH_EXIT_CODE and self.recheck_clean
                and self.identical)

    def render(self) -> str:
        status = "ok" if self.ok else "FAIL"
        return (f"{status:4s} {self.point:32s} scenario={self.scenario:8s} "
                f"exit={self.child_exit} findings={self.fsck_findings} "
                f"recheck={'clean' if self.recheck_clean else 'dirty'} "
                f"records={'identical' if self.identical else 'DIVERGED'}")


def scenario_for(point: str) -> str:
    return "compact" if point in COMPACT_POINTS else "run"


# ----------------------------------------------------------------------
# scenarios (module-level so forked children can run them)
# ----------------------------------------------------------------------


def _store(root: Path) -> HistoryStore:
    return HistoryStore(str(root / "store"))


def _cache(root: Path) -> ArtifactCache:
    return ArtifactCache(str(root / "cache"))


def _do_run(root: Path, spec: RunSpec) -> None:
    """The ``run`` scenario: one mini campaign under a fixed run id."""
    run_cells(spec, _store(root), RunInfo(run_id="chaos-run"),
              cache=_cache(root))


def _prepare_compact(root: Path, spec: RunSpec) -> None:
    """Two uninterrupted runs -- the state ``compact`` then bounds."""
    store, cache = _store(root), _cache(root)
    run_cells(spec, store, RunInfo(run_id="chaos-A"), cache=cache)
    run_cells(spec, store, RunInfo(run_id="chaos-B"), cache=cache)


def _do_compact(root: Path, spec: RunSpec) -> None:
    del spec
    _store(root).compact(keep_last=1)


def _run_scenario(scenario: str, root: Path, spec: RunSpec) -> None:
    if scenario == "compact":
        _do_compact(root, spec)
    else:
        _do_run(root, spec)


def _crash_child(point: str, root: str, spec_data: str) -> None:
    """Forked-child entry: run the scenario armed to die at ``point``."""
    spec = parse_spec(json.loads(spec_data))
    plan = FaultPlan().crash_at(point)
    try:
        with activate(ChaosFS(plan, hard_crash=True)):
            _run_scenario(scenario_for(point), Path(root), spec)
    # A hard-exit child can only speak through its exit code; any error
    # other than the armed crash means the proof is invalid.
    except BaseException:  # hdvb: disable=HDVB111
        os._exit(_EXIT_UNEXPECTED_ERROR)
    os._exit(_EXIT_POINT_NOT_REACHED)


# ----------------------------------------------------------------------
# comparison
# ----------------------------------------------------------------------


def store_lines(root: Path) -> List[bytes]:
    """Every record of the store, re-serialised, sorted — the identity
    two recovered-vs-uninterrupted stores are compared under (append
    order legitimately differs when a resumed run re-executes cells)."""
    return sorted(_serialise(record) for record in _store(root).load())


# ----------------------------------------------------------------------
# the proof
# ----------------------------------------------------------------------


def prove_crash_point(point: str, spec: RunSpec, work_dir: Path,
                      reference: List[bytes]) -> CrashProof:
    """Kill at ``point``, fsck --repair, resume, compare to reference."""
    scenario = scenario_for(point)
    root = work_dir / point.replace(".", "-")
    shutil.rmtree(root, ignore_errors=True)
    root.mkdir(parents=True)
    if scenario == "compact":
        _prepare_compact(root, spec)

    context = multiprocessing.get_context("fork")
    spec_data = json.dumps(spec.to_dict())
    child = context.Process(target=_crash_child,
                            args=(point, str(root), spec_data))
    child.start()
    child.join(timeout=300)
    if child.is_alive():
        child.kill()
        child.join()

    store = _store(root)
    cache = _cache(root)
    findings = (fsck_store(store, repair=True)
                + fsck_cache(cache, repair=True, lock_age=0.0))
    recheck = (fsck_store(store, repair=False)
               + fsck_cache(cache, repair=False, lock_age=0.0))

    _run_scenario(scenario, root, spec)
    final_recheck = (fsck_store(store, repair=False)
                     + fsck_cache(cache, repair=False))

    return CrashProof(
        point=point,
        scenario=scenario,
        child_exit=child.exitcode,
        fsck_findings=len(findings),
        recheck_clean=not recheck and not final_recheck,
        identical=store_lines(root) == reference,
    )


def run_matrix(spec: Optional[RunSpec] = None,
               work_dir: Optional[Path] = None,
               progress: Optional[object] = None) -> List[CrashProof]:
    """Prove every registered crash point; returns one proof per point."""
    if "fork" not in multiprocessing.get_all_start_methods():
        raise ChaosError("crash-proof harness needs the fork start method")
    if spec is None:
        spec = parse_spec(DEFAULT_SPEC)
    owns_dir = work_dir is None
    if work_dir is None:
        work_dir = Path(tempfile.mkdtemp(prefix="hdvb-chaos-"))
    try:
        references: Dict[str, List[bytes]] = {}
        for scenario in ("run", "compact"):
            root = work_dir / f"reference-{scenario}"
            shutil.rmtree(root, ignore_errors=True)
            root.mkdir(parents=True)
            if scenario == "compact":
                _prepare_compact(root, spec)
            _run_scenario(scenario, root, spec)
            references[scenario] = store_lines(root)

        proofs = []
        for point in CRASH_POINTS:
            proof = prove_crash_point(point, spec, work_dir,
                                      references[scenario_for(point)])
            if callable(progress):
                progress(proof)
            proofs.append(proof)
        return proofs
    finally:
        if owns_dir:
            shutil.rmtree(work_dir, ignore_errors=True)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos.harness",
        description="Exhaustive crash-point recovery proof: kill a mini "
                    "run at every registered crash point, fsck --repair, "
                    "resume, and require bit-identical records.")
    parser.add_argument("spec", nargs="?", default=None, metavar="SPEC",
                        help="run-spec JSON file (default: the built-in "
                             "two-cell chaos-mini spec)")
    options = parser.parse_args(argv)
    spec = load_spec(options.spec) if options.spec else None

    proofs = run_matrix(spec=spec,
                        progress=lambda proof: print(proof.render(),
                                                     flush=True))
    failed = [proof for proof in proofs if not proof.ok]
    print(f"chaos harness: {len(proofs) - len(failed)}/{len(proofs)} "
          f"crash point(s) recovered bit-identically")
    return 0 if not failed else 1


if __name__ == "__main__":
    raise SystemExit(main())
