"""The filesystem seam: real ops by default, chaos when activated.

Durable code in :mod:`repro.observe.store` and
:mod:`repro.orchestrate.artifacts` never calls ``os.open``/``os.replace``
directly for its critical writes; it goes through :func:`fileops`, which
returns the passthrough :class:`FileOps` unless a :class:`ChaosFS` has
been :func:`activate`\\ d.  Production cost is one attribute lookup; test
benefit is that every torn write, full disk, lying fsync and stale lock
the real world can produce is reproducible from a seed.

Crash points are the second seam: durable code brackets its critical
sections with ``crash_point("store.append.pre_write", path)`` calls.
They are no-ops without an active ChaosFS; with one, an armed
:class:`~repro.chaos.plan.FaultPlan` simulates process death there —
either by raising :class:`~repro.errors.CrashInjected` (in-process
tests) or via ``os._exit(CRASH_EXIT_CODE)`` (forked crash-proof
harness; a hard exit runs no ``finally`` blocks and flushes nothing,
which is the honest model of ``kill -9``).

Injected IO faults are genuine ``OSError`` instances — **not**
ChaosErrors — so the production ``except OSError`` paths are exercised
exactly as a real flaky filesystem would exercise them.
"""

from __future__ import annotations

import contextlib
import os
from typing import Dict, Iterator, List, Optional

from repro.chaos.plan import Fault, FaultPlan, require_crash_point
from repro.errors import CrashInjected

#: Exit status of a hard-crashed chaos child.  Distinct from every
#: status the interpreter or pytest uses, so the harness can tell "died
#: at the armed crash point" from "died of an unrelated bug".
CRASH_EXIT_CODE = 77


class FileOps:
    """Passthrough file operations; the seam durable code writes through.

    The signatures mirror the ``os`` module, with two additions: ``write``
    takes the owning ``path`` (for fault context) and an optional
    ``tear_point`` naming the crash point that models dying *mid-write*
    with only a prefix of the payload on disk.
    """

    def open(self, path: str, flags: int, mode: int = 0o666) -> int:
        return os.open(path, flags, mode)

    def write(self, fd: int, data: bytes, *, path: str = "",
              tear_point: Optional[str] = None) -> int:
        return os.write(fd, data)

    def fsync(self, fd: int) -> None:
        os.fsync(fd)

    def close(self, fd: int) -> None:
        os.close(fd)

    def replace(self, src: str, dst: str) -> None:
        os.replace(src, dst)

    def unlink(self, path: str) -> None:
        os.unlink(path)

    def read_bytes(self, path: str) -> bytes:
        with open(path, "rb") as handle:
            return handle.read()

    def crash_point(self, name: str, path: str = "") -> None:
        """No-op in production; ChaosFS overrides."""


class ChaosFS(FileOps):
    """FileOps that consults a :class:`FaultPlan` before every op.

    ``hard_crash=False`` (default) raises :class:`CrashInjected` at an
    armed crash point — right for in-process tests that want to observe
    the exception.  ``hard_crash=True`` calls ``os._exit`` instead,
    which is the only faithful way to model ``kill -9`` from inside a
    forked child: no ``finally`` blocks run, no buffers flush, no locks
    release.
    """

    def __init__(self, plan: FaultPlan, hard_crash: bool = False) -> None:
        self.plan = plan
        self.hard_crash = hard_crash
        self._fd_paths: Dict[int, str] = {}
        #: faults actually raised/applied, in order
        self.injected: List[Fault] = []
        #: fsyncs silently skipped by a ``fsync_lie`` fault
        self.fsync_lies = 0
        #: crash points that fired (useful when ``hard_crash`` is False)
        self.crashes_fired: List[str] = []

    # ------------------------------------------------------------------

    def _inject(self, op: str, path: str) -> Optional[Fault]:
        fault = self.plan.draw(op, path)
        if fault is None:
            return None
        self.injected.append(fault)
        return fault

    def maybe_crash(self, name: str, path: str = "") -> None:
        if not self.plan.should_crash(name):
            return
        self.crashes_fired.append(name)
        _flight_dump_crash(name, path)
        if self.hard_crash:
            os._exit(CRASH_EXIT_CODE)
        raise CrashInjected(
            f"simulated process death at crash point {name!r}",
            crash_point=name, path=path)

    def crash_point(self, name: str, path: str = "") -> None:
        self.maybe_crash(name, path)

    # ------------------------------------------------------------------

    def open(self, path: str, flags: int, mode: int = 0o666) -> int:
        fault = self._inject("open", path)
        if fault is not None and fault.kind != "fsync_lie":
            if fault.kind == "lock_busy" and flags & os.O_EXCL:
                raise fault.as_os_error()
            if fault.kind in ("oserror", "enospc"):
                raise fault.as_os_error()
            # short_write / mismatched lock_busy: meaningless for open
        fd = os.open(path, flags, mode)
        self._fd_paths[fd] = path
        return fd

    def write(self, fd: int, data: bytes, *, path: str = "",
              tear_point: Optional[str] = None) -> int:
        path = path or self._fd_paths.get(fd, "")
        if tear_point is not None and self.plan.should_crash(tear_point):
            # The torn write: half the payload reaches disk, then death.
            self.crashes_fired.append(tear_point)
            os.write(fd, data[: max(1, len(data) // 2)])
            _flight_dump_crash(tear_point, path)
            if self.hard_crash:
                os._exit(CRASH_EXIT_CODE)
            raise CrashInjected(
                f"simulated process death mid-write at {tear_point!r}",
                crash_point=tear_point, path=path)
        fault = self._inject("write", path)
        if fault is not None:
            if fault.kind in ("oserror", "enospc"):
                raise fault.as_os_error()
            if fault.kind == "short_write" and len(data) > 1:
                return os.write(fd, data[: len(data) // 2])
        return os.write(fd, data)

    def fsync(self, fd: int) -> None:
        path = self._fd_paths.get(fd, "")
        fault = self._inject("fsync", path)
        if fault is not None:
            if fault.kind in ("oserror", "enospc"):
                raise fault.as_os_error()
            if fault.kind == "fsync_lie":
                self.fsync_lies += 1
                return  # report success, sync nothing
        os.fsync(fd)

    def close(self, fd: int) -> None:
        self._fd_paths.pop(fd, None)
        os.close(fd)

    def replace(self, src: str, dst: str) -> None:
        fault = self._inject("replace", src)
        if fault is not None and fault.kind in ("oserror", "enospc"):
            raise fault.as_os_error()
        os.replace(src, dst)

    def unlink(self, path: str) -> None:
        fault = self._inject("unlink", path)
        if fault is not None and fault.kind in ("oserror", "enospc"):
            raise fault.as_os_error()
        os.unlink(path)

    def read_bytes(self, path: str) -> bytes:
        fault = self._inject("read", path)
        if fault is not None and fault.kind in ("oserror", "enospc"):
            raise fault.as_os_error()
        with open(path, "rb") as handle:
            return handle.read()


def _flight_dump_crash(name: str, path: str) -> None:
    """Record the injected death on the flight recorder *before* dying.

    Runs only when the event log is enabled; emits the ``crash.injected``
    event so the dumped ring's last entry names the crash point, then
    writes the post-mortem.  Crucially this happens before ``os._exit``
    in hard-crash mode — exactly like a real black box, the dump is the
    only survivor of the process.
    """
    from repro.telemetry import flightrec
    from repro.telemetry.events import emit, enabled
    if not enabled():
        return
    emit("crash.injected", crash_point=name, path=path)
    flightrec.recorder.dump("crash.injected",
                            extra={"crash_point": name, "path": path})


_REAL = FileOps()
_active: Optional[ChaosFS] = None


def fileops() -> FileOps:
    """The current seam: the active :class:`ChaosFS`, else passthrough."""
    return _active if _active is not None else _REAL


def crash_point(name: str, path: str = "") -> None:
    """Announce a named crash seam.  Validates the name even in
    production (a typo'd point would silently void harness coverage),
    then delegates to the active ChaosFS, if any."""
    require_crash_point(name)
    active = _active
    if active is not None:
        active.maybe_crash(name, path)


@contextlib.contextmanager
def activate(fs: ChaosFS) -> Iterator[ChaosFS]:
    """Route all seamed file operations through ``fs`` for the duration."""
    global _active
    previous = _active
    _active = fs
    try:
        yield fs
    finally:
        _active = previous


__all__ = [
    "CRASH_EXIT_CODE",
    "ChaosFS",
    "FileOps",
    "activate",
    "crash_point",
    "fileops",
]
