"""Seeded fault plans: *which* faults fire, *when*, reproducibly.

A :class:`FaultPlan` is the schedule the :class:`~repro.chaos.fsops.ChaosFS`
shim consults on every intercepted filesystem operation.  Like the
origin's traffic chaos (:mod:`repro.origin.traffic`), everything derives
from ``random.Random(seed)`` in call order, so a chaos run is a pure
function of ``(seed, workload)`` — the same seed always injects the same
fault sequence, which is what lets a failing chaos test be replayed
bit-for-bit.

Two scheduling styles compose in one plan:

* **seeded random faults** — every intercepted op draws against
  ``rate``; a hit injects one of the configured :data:`FAULT_KINDS`
  (a genuine ``OSError``/``ENOSPC``, a short write, an ``fsync`` that
  lies, a busy ``O_EXCL`` lock).  ``max_faults`` bounds the total so a
  retry loop cannot starve forever under ``rate=1.0``;
* **named crash points** — :meth:`FaultPlan.crash_at` arms simulated
  process death at the N-th hit of one entry of the
  :data:`CRASH_POINTS` registry (the seams the store, the artifact
  cache and the scheduler announce via
  :func:`repro.chaos.fsops.crash_point`).
"""

from __future__ import annotations

import errno
import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ChaosError

#: Fault kinds the shim can inject on an intercepted op.
#:
#: ``oserror``     a generic ``OSError(EIO)`` — the op fails outright;
#: ``enospc``      ``OSError(ENOSPC)`` — the disk is full;
#: ``short_write`` only a prefix of the payload reaches the file and the
#:                 short count is returned (a torn write: callers that
#:                 check the count see it, callers that don't corrupt
#:                 their file);
#: ``fsync_lie``   ``fsync`` returns success without syncing — the
#:                 durability lie cheap disks tell;
#: ``lock_busy``   an ``O_EXCL`` create fails with ``EEXIST`` as if a
#:                 foreign (possibly dead) process held the lock.
FAULT_KINDS: Tuple[str, ...] = (
    "oserror", "enospc", "short_write", "fsync_lie", "lock_busy",
)

#: Filesystem operations the shim intercepts and a plan may target.
INJECTABLE_OPS: Tuple[str, ...] = (
    "open", "read", "write", "fsync", "replace", "unlink",
)

#: Every registered crash point: a named seam where a crash plan may
#: simulate process death.  The crash-proof harness iterates this
#: registry exhaustively, so adding a seam here without wiring a
#: ``crash_point()`` call (or tear point) into the production code makes
#: the harness fail loudly instead of silently shrinking coverage.
CRASH_POINTS: Tuple[str, ...] = (
    "store.append.pre_write",       # record not yet written
    "store.append.mid_write",       # torn line: half a record on disk
    "store.append.post_write",      # record durable, caller never learned
    "store.compact.pre_replace",    # compacted temp written, not swapped in
    "store.compact.post_replace",   # compaction durable, temp gone
    "artifacts.write.pre_replace",  # cache temp file written, not swapped in
    "artifacts.commit.pre_artifact",  # lock held, nothing written
    "artifacts.commit.pre_meta",    # artifact durable, meta (commit point) not
    "artifacts.commit.post_meta",   # entry committed, lock still held
    "scheduler.cell.pre_execute",   # cell about to run
    "scheduler.cell.pre_record",    # cell ran, record not yet appended
)

_CRASH_POINT_SET = frozenset(CRASH_POINTS)

_FAULT_ERRNO = {
    "oserror": errno.EIO,
    "enospc": errno.ENOSPC,
    "lock_busy": errno.EEXIST,
    "short_write": 0,
    "fsync_lie": 0,
}


def require_crash_point(name: str) -> None:
    """Fail loudly on a typo'd/unregistered crash-point name."""
    if name not in _CRASH_POINT_SET:
        raise ChaosError(
            f"unregistered crash point {name!r}; registered points: "
            f"{', '.join(CRASH_POINTS)}", crash_point=name)


@dataclass(frozen=True)
class Fault:
    """One injected fault: what fired, where, with which errno."""

    kind: str
    op: str
    errno_value: int
    path: str = ""

    def as_os_error(self) -> OSError:
        """The genuine ``OSError`` production code must cope with."""
        import os as _os

        if self.kind == "lock_busy":
            return FileExistsError(self.errno_value,
                                   _os.strerror(self.errno_value), self.path)
        return OSError(self.errno_value, _os.strerror(self.errno_value),
                       self.path)


class FaultPlan:
    """A deterministic, seeded schedule of faults and crash points."""

    def __init__(self, seed: int = 0, rate: float = 0.0,
                 kinds: Iterable[str] = FAULT_KINDS,
                 ops: Iterable[str] = INJECTABLE_OPS,
                 max_faults: Optional[int] = None) -> None:
        kinds = tuple(kinds)
        ops = tuple(ops)
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise ChaosError(f"unknown fault kind {kind!r}; known: "
                                 f"{', '.join(FAULT_KINDS)}")
        for op in ops:
            if op not in INJECTABLE_OPS:
                raise ChaosError(f"unknown fault op {op!r}; known: "
                                 f"{', '.join(INJECTABLE_OPS)}")
        if not 0.0 <= rate <= 1.0:
            raise ChaosError(f"fault rate must be in [0, 1], got {rate}")
        if max_faults is not None and max_faults < 0:
            raise ChaosError(f"max_faults must be >= 0, got {max_faults}")
        self.seed = seed
        self.rate = rate
        self.kinds = kinds
        self.ops = ops
        self.max_faults = max_faults
        self._rng = random.Random(seed)
        self._crashes: Dict[str, int] = {}
        self._hits: Dict[str, int] = {}
        #: every fault this plan handed out, in injection order
        self.injected: List[Fault] = []

    # ------------------------------------------------------------------
    # crash points
    # ------------------------------------------------------------------

    def crash_at(self, point: str, hit: int = 1) -> "FaultPlan":
        """Arm simulated process death at the ``hit``-th pass of ``point``."""
        require_crash_point(point)
        if hit < 1:
            raise ChaosError(f"crash hit index must be >= 1, got {hit}",
                             crash_point=point)
        self._crashes[point] = hit
        return self

    def should_crash(self, point: str) -> bool:
        """True exactly once: on the armed hit of an armed point."""
        armed = self._crashes.get(point)
        if armed is None:
            return False
        count = self._hits.get(point, 0) + 1
        self._hits[point] = count
        return count == armed

    @property
    def armed_points(self) -> Tuple[str, ...]:
        return tuple(sorted(self._crashes))

    # ------------------------------------------------------------------
    # seeded fault stream
    # ------------------------------------------------------------------

    def draw(self, op: str, path: str = "") -> Optional[Fault]:
        """The fault to inject for this op, or ``None`` to pass through.

        The decision stream is a pure function of the seed and the call
        sequence: same seed, same ops, same faults.
        """
        if op not in self.ops or self.rate <= 0.0:
            return None
        if (self.max_faults is not None
                and len(self.injected) >= self.max_faults):
            return None
        if self._rng.random() >= self.rate:
            return None
        kind = self.kinds[self._rng.randrange(len(self.kinds))]
        fault = Fault(kind=kind, op=op, errno_value=_FAULT_ERRNO[kind],
                      path=path)
        self.injected.append(fault)
        return fault


__all__ = [
    "CRASH_POINTS",
    "FAULT_KINDS",
    "Fault",
    "FaultPlan",
    "INJECTABLE_OPS",
    "require_crash_point",
]
