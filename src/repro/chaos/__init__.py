"""repro.chaos — deterministic crash/IO fault injection and recovery proofs.

The durability backbone (observe ``HistoryStore``, orchestrate
``ArtifactCache``, the resumable scheduler) claims to survive crashes,
torn writes and flaky disks.  This package makes the claim testable:

* :mod:`repro.chaos.plan` — seeded :class:`FaultPlan` schedules (which
  faults fire when, reproducibly) and the frozen crash-point registry;
* :mod:`repro.chaos.fsops` — the :func:`fileops` seam durable code
  writes through, the :class:`ChaosFS` shim that injects genuine
  ``OSError``/``ENOSPC``/short-write/fsync-lie/stale-lock faults, and
  :func:`crash_point` for simulated process death;
* :mod:`repro.chaos.harness` — the crash-recovery proof: for every
  registered crash point, kill a mini run there in a forked child,
  ``fsck --repair``, resume under the same run id, and assert the final
  records are bit-identical to an uninterrupted run.

fsck itself lives with the data it checks: :mod:`repro.observe.fsck`
and :mod:`repro.orchestrate.fsck`.
"""

from repro.chaos.fsops import (CRASH_EXIT_CODE, ChaosFS, FileOps, activate,
                               crash_point, fileops)
from repro.chaos.plan import (CRASH_POINTS, FAULT_KINDS, INJECTABLE_OPS,
                              Fault, FaultPlan, require_crash_point)

__all__ = [
    "CRASH_EXIT_CODE",
    "CRASH_POINTS",
    "ChaosFS",
    "FAULT_KINDS",
    "Fault",
    "FaultPlan",
    "FileOps",
    "INJECTABLE_OPS",
    "activate",
    "crash_point",
    "fileops",
    "require_crash_point",
]
