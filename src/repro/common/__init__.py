"""Shared substrates: bitstream I/O, YUV frames, GOP structure, metrics."""

from repro.common.bitstream import BitReader, BitWriter
from repro.common.gop import PAPER_GOP, CodedFrame, FrameType, GopStructure
from repro.common.metrics import (
    FramePsnr,
    bitrate_kbps,
    compression_gain,
    frame_psnr,
    sequence_psnr,
)
from repro.common.resolution import (
    DVD,
    FRAME_RATE,
    HD720,
    HD1088,
    PAPER_TIERS,
    Resolution,
    bench_tiers,
    scaled_tier,
    tier_by_name,
)
from repro.common.yuv import YuvFrame, YuvSequence, read_yuv_file, write_yuv_file

__all__ = [
    "BitReader",
    "BitWriter",
    "CodedFrame",
    "DVD",
    "FRAME_RATE",
    "FramePsnr",
    "FrameType",
    "GopStructure",
    "HD720",
    "HD1088",
    "PAPER_GOP",
    "PAPER_TIERS",
    "Resolution",
    "YuvFrame",
    "YuvSequence",
    "bench_tiers",
    "bitrate_kbps",
    "compression_gain",
    "frame_psnr",
    "read_yuv_file",
    "scaled_tier",
    "sequence_psnr",
    "tier_by_name",
    "write_yuv_file",
]
