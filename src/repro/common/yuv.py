"""Planar YUV 4:2:0 frames and raw-file I/O.

HD-VideoBench operates on progressive 4:2:0 video (Section IV): a full
resolution luma plane and two chroma planes subsampled by two in both
directions.  ``YuvFrame`` is the in-memory representation used throughout
the library; ``read_yuv_file``/``write_yuv_file`` implement the raw I420
format the paper's ``mencoder`` commands consume (``-demuxer rawvideo``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, List, Sequence, Union

import numpy as np

from repro.common.resolution import FRAME_RATE, Resolution
from repro.errors import SequenceError

PathLike = Union[str, Path]


@dataclass
class YuvFrame:
    """One planar 4:2:0 frame.  Planes are ``uint8`` numpy arrays."""

    y: np.ndarray
    u: np.ndarray
    v: np.ndarray

    def __post_init__(self) -> None:
        for name in ("y", "u", "v"):
            plane = getattr(self, name)
            if plane.dtype != np.uint8:
                setattr(self, name, plane.astype(np.uint8))
        height, width = self.y.shape
        if height % 2 or width % 2:
            raise SequenceError(f"luma dimensions must be even, got {width}x{height}")
        expected = (height // 2, width // 2)
        if self.u.shape != expected or self.v.shape != expected:
            raise SequenceError(
                f"chroma planes must be {expected}, got {self.u.shape}/{self.v.shape}"
            )

    @property
    def width(self) -> int:
        return self.y.shape[1]

    @property
    def height(self) -> int:
        return self.y.shape[0]

    @property
    def resolution(self) -> tuple:
        return (self.width, self.height)

    def planes(self) -> tuple:
        return (self.y, self.u, self.v)

    def copy(self) -> "YuvFrame":
        return YuvFrame(self.y.copy(), self.u.copy(), self.v.copy())

    @classmethod
    def blank(cls, width: int, height: int, y: int = 16, u: int = 128, v: int = 128) -> "YuvFrame":
        """A constant-colour frame (defaults to video black)."""
        return cls(
            np.full((height, width), y, dtype=np.uint8),
            np.full((height // 2, width // 2), u, dtype=np.uint8),
            np.full((height // 2, width // 2), v, dtype=np.uint8),
        )

    @classmethod
    def from_float(cls, y: np.ndarray, u: np.ndarray, v: np.ndarray) -> "YuvFrame":
        """Build a frame from float planes, clipping to [0, 255]."""
        return cls(
            np.clip(np.rint(y), 0, 255).astype(np.uint8),
            np.clip(np.rint(u), 0, 255).astype(np.uint8),
            np.clip(np.rint(v), 0, 255).astype(np.uint8),
        )

    def to_bytes(self) -> bytes:
        """Serialise as raw planar I420 (Y then U then V)."""
        return self.y.tobytes() + self.u.tobytes() + self.v.tobytes()

    @classmethod
    def frame_size_bytes(cls, width: int, height: int) -> int:
        return width * height * 3 // 2

    @classmethod
    def from_bytes(cls, data: bytes, width: int, height: int) -> "YuvFrame":
        expected = cls.frame_size_bytes(width, height)
        if len(data) != expected:
            raise SequenceError(f"I420 frame needs {expected} bytes, got {len(data)}")
        ysize = width * height
        csize = ysize // 4
        y = np.frombuffer(data, dtype=np.uint8, count=ysize).reshape(height, width)
        u = np.frombuffer(data, dtype=np.uint8, count=csize, offset=ysize)
        v = np.frombuffer(data, dtype=np.uint8, count=csize, offset=ysize + csize)
        half = (height // 2, width // 2)
        return cls(y.copy(), u.reshape(half).copy(), v.reshape(half).copy())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, YuvFrame):
            return NotImplemented
        return (
            np.array_equal(self.y, other.y)
            and np.array_equal(self.u, other.u)
            and np.array_equal(self.v, other.v)
        )


@dataclass
class YuvSequence:
    """An ordered list of equally sized frames plus timing metadata."""

    frames: List[YuvFrame] = field(default_factory=list)
    fps: int = FRAME_RATE
    name: str = ""

    def __post_init__(self) -> None:
        if self.frames:
            first = self.frames[0].resolution
            for index, frame in enumerate(self.frames):
                if frame.resolution != first:
                    raise SequenceError(
                        f"frame {index} is {frame.resolution}, expected {first}"
                    )

    def __len__(self) -> int:
        return len(self.frames)

    def __iter__(self) -> Iterator[YuvFrame]:
        return iter(self.frames)

    def __getitem__(self, index: int) -> YuvFrame:
        return self.frames[index]

    @property
    def width(self) -> int:
        self._require_frames()
        return self.frames[0].width

    @property
    def height(self) -> int:
        self._require_frames()
        return self.frames[0].height

    @property
    def duration_seconds(self) -> float:
        return len(self.frames) / self.fps

    def _require_frames(self) -> None:
        if not self.frames:
            raise SequenceError("sequence is empty")

    def append(self, frame: YuvFrame) -> None:
        if self.frames and frame.resolution != self.frames[0].resolution:
            raise SequenceError(
                f"frame is {frame.resolution}, expected {self.frames[0].resolution}"
            )
        self.frames.append(frame)

    def matches(self, resolution: Resolution) -> bool:
        self._require_frames()
        return (self.width, self.height) == (resolution.width, resolution.height)


def write_yuv_file(path: PathLike, sequence: Union[YuvSequence, Iterable[YuvFrame]]) -> int:
    """Write frames as raw planar I420; returns bytes written."""
    frames: Sequence[YuvFrame] = list(sequence)
    total = 0
    with open(path, "wb") as handle:
        for frame in frames:
            data = frame.to_bytes()
            handle.write(data)
            total += len(data)
    return total


def read_yuv_file(
    path: PathLike,
    width: int,
    height: int,
    fps: int = FRAME_RATE,
    max_frames: int = 0,
) -> YuvSequence:
    """Read raw planar I420 frames from ``path``.

    ``max_frames`` of zero means read everything.  A trailing partial frame
    raises :class:`SequenceError`.
    """
    frame_bytes = YuvFrame.frame_size_bytes(width, height)
    frames = []
    with open(path, "rb") as handle:
        while True:
            if max_frames and len(frames) >= max_frames:
                break
            chunk = handle.read(frame_bytes)
            if not chunk:
                break
            if len(chunk) != frame_bytes:
                raise SequenceError(
                    f"{path}: truncated frame ({len(chunk)} of {frame_bytes} bytes)"
                )
            frames.append(YuvFrame.from_bytes(chunk, width, height))
    if not frames:
        raise SequenceError(f"{path}: no frames found")
    return YuvSequence(frames, fps=fps, name=str(path))
