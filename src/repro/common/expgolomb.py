"""Exp-Golomb codes, as used by the H.264 syntax layer.

``ue`` is the unsigned code (code number ``k`` is written as
``zeros(len) 1 suffix``), ``se`` the signed mapping where positive values
come first: 0, 1, -1, 2, -2, ...
"""

from __future__ import annotations

from repro.common.bitstream import BitReader, BitWriter
from repro.errors import BitstreamError


def write_ue(writer: BitWriter, value: int) -> None:
    """Write an unsigned Exp-Golomb code."""
    if value < 0:
        raise BitstreamError(f"ue(v) requires v >= 0, got {value}")
    code = value + 1
    nbits = code.bit_length()
    writer.write_bits(0, nbits - 1)
    writer.write_bits(code, nbits)


def read_ue(reader: BitReader) -> int:
    """Read an unsigned Exp-Golomb code."""
    zeros = 0
    while reader.read_bit() == 0:
        zeros += 1
    value = 1 << zeros
    if zeros:
        value |= reader.read_bits(zeros)
    return value - 1


def write_se(writer: BitWriter, value: int) -> None:
    """Write a signed Exp-Golomb code (0, 1, -1, 2, -2, ...)."""
    if value > 0:
        write_ue(writer, 2 * value - 1)
    else:
        write_ue(writer, -2 * value)


def read_se(reader: BitReader) -> int:
    """Read a signed Exp-Golomb code."""
    k = read_ue(reader)
    magnitude = (k + 1) >> 1
    return magnitude if k & 1 else -magnitude


def ue_bit_length(value: int) -> int:
    """Number of bits ue(v) occupies; useful for rate estimation."""
    return 2 * (value + 1).bit_length() - 1


def se_bit_length(value: int) -> int:
    """Number of bits se(v) occupies."""
    k = 2 * value - 1 if value > 0 else -2 * value
    return ue_bit_length(k)
