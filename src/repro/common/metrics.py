"""Quality and rate metrics: MSE, PSNR, bitrate.

Table V of the paper reports PSNR (dB) and bitrate (kbit/s) per encode.
PSNR here follows the convention of the paper's tools: computed per plane
against the 8-bit peak (255), combined 4:2:0-weighted as
``(4*Y + U + V) / 6`` (each chroma plane carries a quarter of the samples of
the luma plane).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.common.yuv import YuvFrame, YuvSequence
from repro.errors import ConfigError

PEAK = 255.0
#: PSNR value reported for identical planes (a convention, as in FFmpeg).
PSNR_IDENTICAL = 100.0


def mse(reference: np.ndarray, test: np.ndarray) -> float:
    """Mean squared error between two equally shaped planes."""
    if reference.shape != test.shape:
        raise ConfigError(f"shape mismatch: {reference.shape} vs {test.shape}")
    diff = reference.astype(np.float64) - test.astype(np.float64)
    return float(np.mean(diff * diff))


def psnr_from_mse(value: float) -> float:
    """PSNR in dB for an 8-bit MSE; identical planes report 100 dB."""
    if value <= 0.0:
        return PSNR_IDENTICAL
    return 10.0 * math.log10(PEAK * PEAK / value)


def plane_psnr(reference: np.ndarray, test: np.ndarray) -> float:
    return psnr_from_mse(mse(reference, test))


@dataclass(frozen=True)
class FramePsnr:
    """Per-plane and combined PSNR of one frame."""

    y: float
    u: float
    v: float

    @property
    def combined(self) -> float:
        """4:2:0 sample-weighted combination: (4*Y + U + V) / 6."""
        return (4.0 * self.y + self.u + self.v) / 6.0


def frame_psnr(reference: YuvFrame, test: YuvFrame) -> FramePsnr:
    """PSNR of ``test`` against ``reference``, per plane."""
    return FramePsnr(
        y=plane_psnr(reference.y, test.y),
        u=plane_psnr(reference.u, test.u),
        v=plane_psnr(reference.v, test.v),
    )


def sequence_psnr(reference: YuvSequence, test: YuvSequence) -> FramePsnr:
    """Average per-plane PSNR over a sequence.

    Averages the per-frame MSE (not the per-frame dB values), matching the
    ``global PSNR`` convention of the encoders the paper benchmarks.
    """
    if len(reference) != len(test):
        raise ConfigError(
            f"sequence length mismatch: {len(reference)} vs {len(test)}"
        )
    if len(reference) == 0:
        raise ConfigError("cannot compute PSNR of empty sequences")
    sums = {"y": 0.0, "u": 0.0, "v": 0.0}
    for ref_frame, test_frame in zip(reference, test):
        sums["y"] += mse(ref_frame.y, test_frame.y)
        sums["u"] += mse(ref_frame.u, test_frame.u)
        sums["v"] += mse(ref_frame.v, test_frame.v)
    count = len(reference)
    return FramePsnr(
        y=psnr_from_mse(sums["y"] / count),
        u=psnr_from_mse(sums["u"] / count),
        v=psnr_from_mse(sums["v"] / count),
    )


def bitrate_kbps(total_bytes: int, frame_count: int, fps: float) -> float:
    """Average bitrate in kbit/s, as reported in Table V."""
    if frame_count <= 0:
        raise ConfigError(f"frame_count must be positive, got {frame_count}")
    if fps <= 0:
        raise ConfigError(f"fps must be positive, got {fps}")
    seconds = frame_count / fps
    return total_bytes * 8.0 / seconds / 1000.0


def compression_gain(baseline_bitrate: float, test_bitrate: float) -> float:
    """Bitrate reduction of ``test`` vs ``baseline``, in percent.

    This is the statistic quoted in Section VI ("MPEG-4 achieves a 39.4%
    compression gain over MPEG-2").
    """
    if baseline_bitrate <= 0:
        raise ConfigError("baseline bitrate must be positive")
    return (1.0 - test_bitrate / baseline_bitrate) * 100.0


def mean(values: Iterable[float]) -> float:
    items: Sequence[float] = list(values)
    if not items:
        raise ConfigError("mean of empty collection")
    return sum(items) / len(items)
