"""Resolution tiers of HD-VideoBench.

The paper evaluates three resolutions (Section IV): DVD (720x576), HD-720
(1280x720) and HD-1088 (1920x1088), all at 25 frames per second.

Pure-Python codecs cannot encode 1920x1088x100 frames in reasonable time, so
the benchmark harness also defines *scaled* tiers: the same three names at a
configurable linear scale (default 1/8), rounded to macroblock-aligned
dimensions.  Throughput ratios between codecs, backends and tiers — the
quantities Figure 1 of the paper is about — survive uniform downscaling; see
DESIGN.md section 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.errors import ConfigError

MACROBLOCK_SIZE = 16


@dataclass(frozen=True)
class Resolution:
    """A named frame geometry.

    Width and height must be positive multiples of 16 (macroblock aligned);
    the codecs rely on this.
    """

    name: str
    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ConfigError(f"invalid resolution {self.width}x{self.height}")
        if self.width % MACROBLOCK_SIZE or self.height % MACROBLOCK_SIZE:
            raise ConfigError(
                f"{self.name}: {self.width}x{self.height} is not macroblock aligned"
            )

    @property
    def pixels(self) -> int:
        return self.width * self.height

    @property
    def macroblocks(self) -> int:
        return (self.width // MACROBLOCK_SIZE) * (self.height // MACROBLOCK_SIZE)

    @property
    def mb_width(self) -> int:
        return self.width // MACROBLOCK_SIZE

    @property
    def mb_height(self) -> int:
        return self.height // MACROBLOCK_SIZE

    def __str__(self) -> str:
        return f"{self.name} ({self.width}x{self.height})"


# The paper's full-size tiers (Table III).
DVD = Resolution("576p25", 720, 576)
HD720 = Resolution("720p25", 1280, 720)
HD1088 = Resolution("1088p25", 1920, 1088)

PAPER_TIERS = (DVD, HD720, HD1088)
FRAME_RATE = 25
PAPER_FRAME_COUNT = 100


def _align(value: float) -> int:
    """Round to the nearest positive multiple of the macroblock size."""
    aligned = int(value / MACROBLOCK_SIZE + 0.5) * MACROBLOCK_SIZE
    return max(MACROBLOCK_SIZE, aligned)


def scaled_tier(tier: Resolution, scale: Fraction) -> Resolution:
    """Return ``tier`` downscaled by the linear factor ``scale``.

    The result keeps the tier name (so benchmark reports read like the
    paper's) and is macroblock aligned.
    """
    if scale <= 0:
        raise ConfigError(f"scale must be positive, got {scale}")
    if scale == 1:
        return tier
    return Resolution(
        tier.name,
        _align(tier.width * float(scale)),
        _align(tier.height * float(scale)),
    )


def bench_tiers(scale: Fraction = Fraction(1, 8)) -> tuple:
    """The three paper tiers at the given benchmark scale.

    With the default 1/8 scale this yields 96x80, 160x96 and 240x144, whose
    pixel-count ratios (1 : 2 : 4.5) track the paper's tiers (1 : 2.2 : 5).
    """
    return tuple(scaled_tier(tier, scale) for tier in PAPER_TIERS)


def tier_by_name(name: str, scale: Fraction = Fraction(1, 1)) -> Resolution:
    """Look up a paper tier by name (e.g. ``"720p25"``), optionally scaled."""
    for tier in PAPER_TIERS:
        if tier.name == name:
            return scaled_tier(tier, scale)
    known = ", ".join(t.name for t in PAPER_TIERS)
    raise ConfigError(f"unknown resolution tier {name!r} (known: {known})")
