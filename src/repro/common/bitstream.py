"""Bit-level stream writer and reader.

Every codec in the library serialises its syntax through these two classes.
Bits are written MSB-first within each byte, matching the convention of the
MPEG and H.264 bitstream specifications.

Both directions report through the :mod:`repro.errors` taxonomy
(``hdvb-lint`` rule HDVB110): a read past the end of the data raises
:class:`TruncationError`, every other misuse — a count or value that
cannot be represented, reading whole bytes while unaligned — raises
:class:`BitstreamError`, because the stream it would produce or consume
is malformed either way.  Decode loops can therefore catch
``BitstreamError`` and know they have seen *every* failure class this
layer can emit; nothing escapes as a raw ``ValueError``.
"""

from __future__ import annotations

from repro.errors import BitstreamError, TruncationError


class BitWriter:
    """Accumulates bits MSB-first and renders them as ``bytes``.

    >>> w = BitWriter()
    >>> w.write_bits(0b101, 3)
    >>> w.write_bit(1)
    >>> w.align()
    >>> w.to_bytes()
    b'\\xb0'
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._accum = 0      # bits not yet flushed to the buffer
        self._nbits = 0      # number of bits in _accum (< 8)

    def __len__(self) -> int:
        """Total number of bits written so far."""
        return 8 * len(self._buffer) + self._nbits

    @property
    def bit_position(self) -> int:
        return len(self)

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""
        if bit not in (0, 1):
            raise BitstreamError(f"bit must be 0 or 1, got {bit!r}")
        self._accum = (self._accum << 1) | bit
        self._nbits += 1
        if self._nbits == 8:
            self._buffer.append(self._accum)
            self._accum = 0
            self._nbits = 0

    def write_bits(self, value: int, count: int) -> None:
        """Append ``count`` bits of ``value``, most significant bit first."""
        if count < 0:
            raise BitstreamError(f"count must be non-negative, got {count}")
        # int() lifts numpy integers to Python ints so the range check is
        # exact for every count (numpy shifts are undefined at >= 64 bits).
        value = int(value)
        if value < 0 or value >> count:
            raise BitstreamError(f"value {value} does not fit in {count} bits")
        for shift in range(count - 1, -1, -1):
            self.write_bit((value >> shift) & 1)

    def write_signed(self, value: int, count: int) -> None:
        """Append ``value`` as ``count``-bit two's complement."""
        if count < 1:
            raise BitstreamError("count must be >= 1 for signed values")
        lo = -(1 << (count - 1))
        hi = (1 << (count - 1)) - 1
        if not lo <= value <= hi:
            raise BitstreamError(f"value {value} does not fit in {count} signed bits")
        self.write_bits(value & ((1 << count) - 1), count)

    def write_bytes(self, data: bytes) -> None:
        """Append whole bytes; requires byte alignment."""
        if self._nbits:
            raise BitstreamError("write_bytes requires byte alignment")
        self._buffer.extend(data)

    def align(self, fill: int = 0) -> int:
        """Pad with ``fill`` bits up to the next byte boundary.

        Returns the number of padding bits written.
        """
        padded = 0
        while self._nbits:
            self.write_bit(fill)
            padded += 1
        return padded

    def to_bytes(self) -> bytes:
        """Return the stream contents, zero-padding the final partial byte."""
        if not self._nbits:
            return bytes(self._buffer)
        tail = self._accum << (8 - self._nbits)
        return bytes(self._buffer) + bytes([tail])


class BitReader:
    """Reads bits MSB-first from a ``bytes`` object.

    Raises :class:`BitstreamError` when reading past the end of the data.
    """

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0  # bit position

    @property
    def bit_position(self) -> int:
        return self._pos

    @property
    def bits_remaining(self) -> int:
        return 8 * len(self._data) - self._pos

    def at_end(self) -> bool:
        return self.bits_remaining <= 0

    def read_bit(self) -> int:
        if self._pos >= 8 * len(self._data):
            raise TruncationError("read past end of bitstream")
        byte = self._data[self._pos >> 3]
        bit = (byte >> (7 - (self._pos & 7))) & 1
        self._pos += 1
        return bit

    def read_bits(self, count: int) -> int:
        """Read ``count`` bits, MSB first, returned as an unsigned int."""
        if count < 0:
            raise BitstreamError(f"count must be non-negative, got {count}")
        if count == 0:
            return 0
        if count > self.bits_remaining:
            raise TruncationError(
                f"requested {count} bits but only {self.bits_remaining} remain"
            )
        position = self._pos
        end = position + count
        start_byte = position >> 3
        end_byte = (end + 7) >> 3
        chunk = int.from_bytes(self._data[start_byte:end_byte], "big")
        shift = 8 * (end_byte - start_byte) - (end - 8 * start_byte)
        self._pos = end
        return (chunk >> shift) & ((1 << count) - 1)

    def read_signed(self, count: int) -> int:
        """Read a ``count``-bit two's-complement value."""
        if count < 1:
            raise BitstreamError("count must be >= 1 for signed values")
        raw = self.read_bits(count)
        if raw >= 1 << (count - 1):
            raw -= 1 << count
        return raw

    def peek_bits(self, count: int) -> int:
        """Read ``count`` bits without consuming them.

        Bits beyond the end of the stream are returned as zeros so that VLC
        table lookups near the stream tail remain simple; consuming them
        still raises.
        """
        saved = self._pos
        avail = min(count, self.bits_remaining)
        value = self.read_bits(avail) << (count - avail)
        self._pos = saved
        return value

    def skip_bits(self, count: int) -> None:
        if count > self.bits_remaining:
            raise TruncationError("skip past end of bitstream")
        self._pos += count

    def align(self) -> int:
        """Advance to the next byte boundary; returns bits skipped.

        Bounds-checked like :meth:`skip_bits`: aligning past the end of the
        data raises instead of leaving the reader positioned out of range.
        """
        skip = (8 - (self._pos & 7)) & 7
        if skip > self.bits_remaining:
            raise TruncationError("align past end of bitstream")
        self._pos += skip
        return skip

    def read_bytes(self, count: int) -> bytes:
        """Read whole bytes; requires byte alignment."""
        if self._pos & 7:
            raise BitstreamError("read_bytes requires byte alignment")
        start = self._pos >> 3
        if start + count > len(self._data):
            raise TruncationError("read past end of bitstream")
        self._pos += 8 * count
        return self._data[start : start + count]
