"""Bjøntegaard-delta metrics for comparing rate-distortion curves.

Table V compares codecs at a single quantiser point; the standard tool for
comparing them across the operating range (and the metric every codec
paper since has used) is the Bjøntegaard delta: fit a cubic to each RD
curve (PSNR over log-bitrate), integrate over the overlapping interval,
and report the average PSNR difference (BD-PSNR) or the average bitrate
difference at equal quality (BD-rate, percent).
"""

from __future__ import annotations

import math
from typing import Any, Iterable, List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError

RdPoint = Tuple[float, float]  # (bitrate, psnr)


def _prepare(points: Sequence[RdPoint]) -> Tuple[np.ndarray, np.ndarray]:
    if len(points) < 4:
        raise ConfigError(
            f"Bjøntegaard fits need at least 4 RD points, got {len(points)}"
        )
    rates = np.array([p[0] for p in points], dtype=float)
    psnrs = np.array([p[1] for p in points], dtype=float)
    if np.any(rates <= 0):
        raise ConfigError("bitrates must be positive")
    order = np.argsort(rates)
    return np.log10(rates[order]), psnrs[order]


def _poly_integral(coeffs: np.ndarray, low: float, high: float) -> float:
    integral = np.polyint(coeffs)
    return float(np.polyval(integral, high) - np.polyval(integral, low))


def bd_psnr(anchor: Sequence[RdPoint], test: Sequence[RdPoint]) -> float:
    """Average PSNR gain of ``test`` over ``anchor`` at equal bitrate (dB)."""
    log_rate_a, psnr_a = _prepare(anchor)
    log_rate_t, psnr_t = _prepare(test)
    fit_a = np.polyfit(log_rate_a, psnr_a, 3)
    fit_t = np.polyfit(log_rate_t, psnr_t, 3)
    low = max(log_rate_a.min(), log_rate_t.min())
    high = min(log_rate_a.max(), log_rate_t.max())
    if high <= low:
        raise ConfigError("RD curves do not overlap in bitrate")
    span = high - low
    return (_poly_integral(fit_t, low, high) - _poly_integral(fit_a, low, high)) / span


def bd_rate(anchor: Sequence[RdPoint], test: Sequence[RdPoint]) -> float:
    """Average bitrate change of ``test`` vs ``anchor`` at equal quality (%).

    Negative means ``test`` needs fewer bits (better compression).
    """
    log_rate_a, psnr_a = _prepare(anchor)
    log_rate_t, psnr_t = _prepare(test)
    # Fit log-rate as a function of PSNR (the inverted curves).
    fit_a = np.polyfit(psnr_a, log_rate_a, 3)
    fit_t = np.polyfit(psnr_t, log_rate_t, 3)
    low = max(psnr_a.min(), psnr_t.min())
    high = min(psnr_a.max(), psnr_t.max())
    if high <= low:
        raise ConfigError("RD curves do not overlap in quality")
    span = high - low
    delta = (_poly_integral(fit_t, low, high) - _poly_integral(fit_a, low, high)) / span
    return (math.pow(10.0, delta) - 1.0) * 100.0


def rd_points_from_rows(rows: Iterable[Any], codec: str, sequence: str,
                        resolution: str) -> List[RdPoint]:
    """Extract (bitrate, combined-PSNR) points from RdRow records."""
    points = [
        (row.bitrate_kbps, row.psnr.combined)
        for row in rows
        if (row.codec, row.sequence, row.resolution) == (codec, sequence, resolution)
    ]
    return sorted(points)
