"""GOP structure: frame types, display order and coding order.

HD-VideoBench fixes the frame pattern to I-P-B-B for all codecs (Section
IV): two B frames between anchors, adaptive B placement disabled, and the
only intra frame is the first one.  This module turns a frame count into
that schedule and provides the display/coding order permutation the
encoders and decoders share.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ConfigError


class FrameType(enum.Enum):
    I = "I"
    P = "P"
    B = "B"

    def __str__(self) -> str:
        return self.value

    @property
    def is_anchor(self) -> bool:
        return self is not FrameType.B


@dataclass(frozen=True)
class CodedFrame:
    """One entry of a GOP schedule.

    ``forward_ref`` / ``backward_ref`` are *display* indices of the past and
    future anchor used for prediction (``None`` where not applicable).
    """

    display_index: int
    frame_type: FrameType
    forward_ref: Optional[int] = None
    backward_ref: Optional[int] = None

    def __post_init__(self) -> None:
        if self.frame_type is FrameType.I:
            if self.forward_ref is not None or self.backward_ref is not None:
                raise ConfigError("I frames take no references")
        elif self.frame_type is FrameType.P:
            if self.forward_ref is None or self.backward_ref is not None:
                raise ConfigError("P frames take exactly a forward reference")
        else:
            if self.forward_ref is None or self.backward_ref is None:
                raise ConfigError("B frames take both references")


@dataclass(frozen=True)
class GopStructure:
    """The HD-VideoBench GOP: ``bframes`` B pictures between anchors.

    ``intra_period`` of zero reproduces the paper's "only intra frame is the
    first one"; a positive value forces an I frame every that many anchors
    (an extension used by the ablation benchmarks).
    """

    bframes: int = 2
    intra_period: int = 0

    def __post_init__(self) -> None:
        if self.bframes < 0:
            raise ConfigError(f"bframes must be >= 0, got {self.bframes}")
        if self.intra_period < 0:
            raise ConfigError(f"intra_period must be >= 0, got {self.intra_period}")

    @property
    def pattern_name(self) -> str:
        """Human-readable pattern, e.g. ``"I-P-B-B"`` for the paper's GOP."""
        return "-".join(["I", "P"] + ["B"] * self.bframes)

    def anchor_positions(self, frame_count: int) -> List[int]:
        """Display indices of anchor (I/P) frames for ``frame_count`` frames."""
        if frame_count <= 0:
            raise ConfigError(f"frame_count must be positive, got {frame_count}")
        anchors = [0]
        while anchors[-1] < frame_count - 1:
            anchors.append(min(anchors[-1] + self.bframes + 1, frame_count - 1))
        return anchors

    def display_types(self, frame_count: int) -> List[FrameType]:
        """Frame type of every frame in display order."""
        anchors = set(self.anchor_positions(frame_count))
        types = []
        anchor_count = 0
        for index in range(frame_count):
            if index not in anchors:
                types.append(FrameType.B)
                continue
            is_intra = anchor_count == 0 or (
                self.intra_period and anchor_count % self.intra_period == 0
            )
            types.append(FrameType.I if is_intra else FrameType.P)
            anchor_count += 1
        return types

    def coding_order(self, frame_count: int) -> List[CodedFrame]:
        """The schedule in coding order.

        Each anchor is coded before the B frames that display before it,
        exactly as an I-P-B-B encoder emits them.
        """
        types = self.display_types(frame_count)
        anchors = self.anchor_positions(frame_count)
        order: List[CodedFrame] = []
        previous_anchor: Optional[int] = None
        for anchor in anchors:
            if types[anchor] is FrameType.I:
                order.append(CodedFrame(anchor, FrameType.I))
            else:
                order.append(CodedFrame(anchor, FrameType.P, forward_ref=previous_anchor))
            if previous_anchor is not None:
                for display in range(previous_anchor + 1, anchor):
                    order.append(
                        CodedFrame(
                            display,
                            FrameType.B,
                            forward_ref=previous_anchor,
                            backward_ref=anchor,
                        )
                    )
            previous_anchor = anchor
        return order

    def display_order(self, frame_count: int) -> List[int]:
        """Permutation mapping coding position -> display index."""
        return [entry.display_index for entry in self.coding_order(frame_count)]


# The configuration the paper uses for every codec.
PAPER_GOP = GopStructure(bframes=2, intra_period=0)
