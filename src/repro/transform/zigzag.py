"""Coefficient scan orders.

Quantised transform coefficients are serialised in zigzag order before
entropy coding; all three codecs use these scans.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np


def _zigzag_positions(size: int) -> List[Tuple[int, int]]:
    """Classic zigzag order for a ``size`` x ``size`` block."""
    positions = []
    for diag in range(2 * size - 1):
        wave = []
        for i in range(diag + 1):
            j = diag - i
            if i < size and j < size:
                wave.append((i, j))
        if diag % 2 == 0:
            wave.reverse()
        positions.extend(wave)
    return positions


ZIGZAG_8X8: Tuple[Tuple[int, int], ...] = tuple(_zigzag_positions(8))
ZIGZAG_4X4: Tuple[Tuple[int, int], ...] = tuple(_zigzag_positions(4))
ZIGZAG_2X2: Tuple[Tuple[int, int], ...] = ((0, 0), (0, 1), (1, 0), (1, 1))


def scan(block: np.ndarray, order: Sequence[Tuple[int, int]]) -> List[int]:
    """Serialise ``block`` in the given scan order."""
    rows = block.tolist()
    return [rows[i][j] for i, j in order]


def unscan(values: Sequence[int], order: Sequence[Tuple[int, int]], size: int) -> np.ndarray:
    """Rebuild a ``size`` x ``size`` block from scan-ordered ``values``."""
    block = np.zeros((size, size), dtype=np.int64)
    for value, (i, j) in zip(values, order):
        block[i, j] = value
    return block


def scan8(block: np.ndarray) -> List[int]:
    return scan(block, ZIGZAG_8X8)


def unscan8(values: Sequence[int]) -> np.ndarray:
    return unscan(values, ZIGZAG_8X8, 8)


def scan4(block: np.ndarray) -> List[int]:
    return scan(block, ZIGZAG_4X4)


def unscan4(values: Sequence[int]) -> np.ndarray:
    return unscan(values, ZIGZAG_4X4, 4)
