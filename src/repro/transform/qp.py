"""Quantiser-scale equivalence between the codec families.

Section IV of the paper derives empirically (Equation 1) how to pick an
H.264 QP that matches the subjective/objective quality of an MPEG-2/MPEG-4
quantiser scale:

    H264_QP = 12 + 6 * log2(MPEG_QP)

The paper's own settings obey it: ``vqscale=5`` / ``fixed_quant=5`` for the
MPEG codecs and ``--qp 26`` for x264 (12 + 6*log2(5) = 25.93 -> 26).
"""

from __future__ import annotations

import math

from repro.errors import ConfigError

MPEG_QSCALE_MIN = 1
MPEG_QSCALE_MAX = 31
H264_QP_MIN = 0
H264_QP_MAX = 51


def h264_qp_from_mpeg(mpeg_qscale: float) -> int:
    """Equation 1 of the paper, rounded to the nearest integer QP."""
    if mpeg_qscale < MPEG_QSCALE_MIN:
        raise ConfigError(f"MPEG quantiser scale must be >= 1, got {mpeg_qscale}")
    qp = int(round(12.0 + 6.0 * math.log2(mpeg_qscale)))
    return max(H264_QP_MIN, min(H264_QP_MAX, qp))


def mpeg_qscale_from_h264(h264_qp: int) -> float:
    """Inverse of Equation 1 (exact, unrounded)."""
    if not H264_QP_MIN <= h264_qp <= H264_QP_MAX:
        raise ConfigError(f"H.264 QP must be in [0, 51], got {h264_qp}")
    return 2.0 ** ((h264_qp - 12.0) / 6.0)


def validate_mpeg_qscale(qscale: int) -> int:
    if not MPEG_QSCALE_MIN <= qscale <= MPEG_QSCALE_MAX:
        raise ConfigError(
            f"MPEG quantiser scale must be in "
            f"[{MPEG_QSCALE_MIN}, {MPEG_QSCALE_MAX}], got {qscale}"
        )
    return qscale


def validate_h264_qp(qp: int) -> int:
    if not H264_QP_MIN <= qp <= H264_QP_MAX:
        raise ConfigError(f"H.264 QP must be in [{H264_QP_MIN}, {H264_QP_MAX}], got {qp}")
    return qp
