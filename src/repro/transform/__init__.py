"""Transforms and quantisation helpers: scan orders and QP equivalence.

The transform/quantisation arithmetic itself lives in the kernel backends
(:mod:`repro.kernels`) so that it exists in both scalar and SIMD form; this
package holds the backend-independent pieces.
"""

from repro.transform.qp import (
    h264_qp_from_mpeg,
    mpeg_qscale_from_h264,
    validate_h264_qp,
    validate_mpeg_qscale,
)
from repro.transform.zigzag import (
    ZIGZAG_2X2,
    ZIGZAG_4X4,
    ZIGZAG_8X8,
    scan4,
    scan8,
    unscan4,
    unscan8,
)

__all__ = [
    "ZIGZAG_2X2",
    "ZIGZAG_4X4",
    "ZIGZAG_8X8",
    "h264_qp_from_mpeg",
    "mpeg_qscale_from_h264",
    "scan4",
    "scan8",
    "unscan4",
    "unscan8",
    "validate_h264_qp",
    "validate_mpeg_qscale",
]
