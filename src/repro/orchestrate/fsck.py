"""fsck for the artifact cache: re-verify content addresses, heal debris.

``hdvb-cache fsck`` walks the cache layout
(``<root>/<fp[:2]>/<fp>/{artifact.hdvb,meta.json}`` + ``<fp>.lock``)
and reports problems as ``repro.chaos.fsck/1`` findings (the lint
reporters reused, like :mod:`repro.observe.fsck`):

========  ============================================================
FSCK310   uncommitted entry -- a dir with no ``meta.json`` (a crash
          before the commit point; the entry never logically existed)
FSCK311   corrupt ``meta.json`` (unreadable / bad JSON / wrong schema)
FSCK312   artifact does not match its content address: missing file,
          size mismatch, or SHA-256 digest mismatch (bit flip)
FSCK313   orphan ``*.tmp`` (a crash between temp write and swap)
FSCK314   stale single-flight lock (a dead leader's claim)
FSCK315   meta predates digest coverage (no ``sha256`` field)
========  ============================================================

Repair semantics:

* FSCK310 / FSCK313 — **delete**: the debris is by construction a
  strict subset of what the next producer regenerates;
* FSCK311 / FSCK312 — **quarantine**: the entry directory moves to
  ``<root>/quarantine/<fingerprint>`` (kept for inspection), so the
  fingerprint misses and the next ``ensure`` re-produces it;
* FSCK314 — **break** the lock (through the cache's counted
  stale-lock path, so ``cache.stale_locks_broken`` telemetry fires);
* FSCK315 — **upgrade**: compute the digest of the artifact that is
  actually on disk and rewrite the meta atomically;
* a healthy cache is never modified.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import time
from pathlib import Path
from typing import List, Optional

from repro.analysis.findings import Finding
from repro.errors import OrchestrateError
from repro.orchestrate.artifacts import ARTIFACT_SCHEMA, ArtifactCache

#: Where quarantined entries move, inside the cache root.
QUARANTINE_DIRNAME = "quarantine"


def _finding(rule_id: str, path: Path, message: str, hint: str) -> Finding:
    return Finding(rule_id=rule_id, path=str(path), line=0, message=message,
                   module=str(path), hint=hint)


def _quarantine_entry(cache: ArtifactCache, entry_dir: Path) -> None:
    target_root = cache.root / QUARANTINE_DIRNAME
    target_root.mkdir(parents=True, exist_ok=True)
    target = target_root / entry_dir.name
    suffix = 0
    while target.exists():
        suffix += 1
        target = target_root / f"{entry_dir.name}.{suffix}"
    try:
        os.replace(str(entry_dir), str(target))
    except OSError as error:
        raise OrchestrateError(
            f"cannot quarantine cache entry {entry_dir}: {error}") from error


def _check_entry(cache: ArtifactCache, entry_dir: Path, repair: bool,
                 findings: List[Finding]) -> None:
    meta_path = entry_dir / "meta.json"
    artifact_path = entry_dir / "artifact.hdvb"
    if not meta_path.is_file():
        findings.append(_finding(
            "FSCK310", entry_dir,
            "uncommitted cache entry (no meta.json commit point)",
            "run `hdvb-cache fsck --repair` to delete it"))
        if repair:
            shutil.rmtree(str(entry_dir), ignore_errors=True)
        return
    meta_error: Optional[str] = None
    meta: dict = {}
    try:
        parsed = json.loads(meta_path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as error:
        meta_error = str(error)
    else:
        if not isinstance(parsed, dict):
            meta_error = "meta is not a JSON object"
        elif parsed.get("schema") != ARTIFACT_SCHEMA:
            meta_error = (f"schema is {parsed.get('schema')!r}, expected "
                          f"{ARTIFACT_SCHEMA!r}")
        else:
            meta = parsed
    if meta_error is not None:
        findings.append(_finding(
            "FSCK311", meta_path, f"corrupt cache meta: {meta_error}",
            "run `hdvb-cache fsck --repair` to quarantine the entry"))
        if repair:
            _quarantine_entry(cache, entry_dir)
        return
    if not artifact_path.is_file():
        findings.append(_finding(
            "FSCK312", artifact_path,
            "committed entry has no artifact file",
            "run `hdvb-cache fsck --repair` to quarantine the entry"))
        if repair:
            _quarantine_entry(cache, entry_dir)
        return
    try:
        payload = artifact_path.read_bytes()
    except OSError as error:
        raise OrchestrateError(
            f"cannot read cache artifact {artifact_path}: {error}") from error
    expected_bytes = meta.get("bytes")
    expected_digest = meta.get("sha256")
    if expected_digest is None:
        findings.append(_finding(
            "FSCK315", meta_path,
            "meta predates digest coverage (no sha256 field)",
            "run `hdvb-cache fsck --repair` to record the digest"))
        if repair:
            meta["sha256"] = hashlib.sha256(payload).hexdigest()
            _rewrite_meta(meta_path, meta)
        return
    actual_digest = hashlib.sha256(payload).hexdigest()
    if ((isinstance(expected_bytes, int) and expected_bytes != len(payload))
            or actual_digest != expected_digest):
        findings.append(_finding(
            "FSCK312", artifact_path,
            f"artifact does not match its content address: "
            f"{len(payload)} byte(s), sha256 {actual_digest[:12]}… vs "
            f"recorded {str(expected_digest)[:12]}…",
            "run `hdvb-cache fsck --repair` to quarantine the entry"))
        if repair:
            _quarantine_entry(cache, entry_dir)


def _rewrite_meta(meta_path: Path, meta: dict) -> None:
    temp = str(meta_path) + ".tmp"
    payload = json.dumps(meta, sort_keys=True, indent=2).encode("utf-8")
    try:
        with open(temp, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, str(meta_path))
    except OSError as error:
        if os.path.exists(temp):
            os.unlink(temp)
        raise OrchestrateError(
            f"cannot rewrite cache meta {meta_path}: {error}") from error


def fsck_cache(cache: ArtifactCache, repair: bool = False,
               lock_age: Optional[float] = None) -> List[Finding]:
    """Check (and with ``repair=True`` heal) one artifact cache.

    ``lock_age`` overrides the staleness threshold for FSCK314 —
    recovery harnesses pass ``0.0`` when every lock owner is known dead
    (the process that held them was killed).  Returns the findings
    describing the pre-repair state; after a successful repair a second
    ``fsck_cache`` returns ``[]``.
    """
    findings: List[Finding] = []
    root = cache.root
    if not root.is_dir():
        return findings
    threshold = cache.stale_lock_seconds if lock_age is None else lock_age
    for shard in sorted(root.iterdir()):
        if shard.name == QUARANTINE_DIRNAME or not shard.is_dir():
            continue
        for item in sorted(shard.iterdir()):
            if item.is_dir():
                _check_entry(cache, item, repair, findings)
                for temp in sorted(item.glob("*.tmp")):
                    findings.append(_finding(
                        "FSCK313", temp,
                        "orphan temp file (crash between write and swap)",
                        "run `hdvb-cache fsck --repair` to delete it"))
                    if repair:
                        _delete(temp)
            elif item.suffix == ".lock":
                try:
                    # Same mtime-vs-epoch comparison as _break_stale_lock:
                    # the wall clock is the only clock comparable to
                    # st_mtime, and lock repair is operational hygiene.
                    age = time.time() - item.stat().st_mtime  # hdvb: disable=HDVB200
                except OSError:
                    continue        # released while we looked
                if age > threshold or threshold <= 0.0:
                    findings.append(_finding(
                        "FSCK314", item,
                        f"stale single-flight lock ({age:.0f}s old)",
                        "run `hdvb-cache fsck --repair` to break it"))
                    if repair:
                        cache._break_stale_lock(item, age_limit=threshold)
            elif item.suffix == ".tmp":
                findings.append(_finding(
                    "FSCK313", item,
                    "orphan temp file (crash between write and swap)",
                    "run `hdvb-cache fsck --repair` to delete it"))
                if repair:
                    _delete(item)
    return findings


def _delete(path: Path) -> None:
    try:
        os.unlink(str(path))
    except OSError as error:
        raise OrchestrateError(
            f"cannot delete orphan temp {path}: {error}") from error


__all__ = [
    "QUARANTINE_DIRNAME",
    "fsck_cache",
]
