"""Shard planning and cell execution for the benchmark orchestrator.

Two execution shapes share one cell runner:

* **Local pooled run** — :func:`run_cells` executes a spec's pending
  cells in this process (``scheduler_workers=1``) or across a local
  process pool, reusing :func:`repro.parallel.run_pooled`'s hardened
  semantics (per-job deadlines from submission, one retried pool with
  jittered backoff, serial fallback).  Every finished cell is appended
  to the observe store **immediately**, which is what makes runs
  resumable: a rerun under the same run id queries the store first and
  skips cells that already have an ``ok`` record.
* **Multi-host shards** — :func:`plan_shards` stripes the deterministic
  cell list round-robin into N shards and :func:`write_manifests`
  serialises each as a JSON manifest (``repro.orchestrate.manifest/1``).
  A worker host loads its manifest with :func:`load_manifest` and runs
  the cells locally; because cell expansion, fingerprints and record
  axes are all deterministic, the hosts' stores merge cleanly.

Encoded artifacts flow through the content-addressed
:class:`~repro.orchestrate.artifacts.ArtifactCache`, so a repeated cell
(rerun, repeat axis, hull sweep) reports the metrics stored at first
encode without touching an encoder.  Per-cell telemetry snapshots ship
back from pool workers and merge into the parent registry, mirroring
``parallel_encode``'s worker protocol.

Results persist **only** via the observe store (the HDVB180 invariant)
and every failure is routed through
:class:`~repro.errors.OrchestrateError` carrying the spec name and cell
identity; a failed cell never aborts the run — it becomes a ``failed``
record and counts against the OBS207 cell-failure-rate gate.
"""

from __future__ import annotations

import json
import os
import random
import time
from dataclasses import dataclass, field
from fractions import Fraction
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.chaos.fsops import crash_point
from repro.codecs import get_decoder, get_encoder
from repro.common.metrics import sequence_psnr
from repro.common.resolution import tier_by_name
from repro.errors import CrashInjected, OrchestrateError, ReproError
from repro.observe.record import BenchRecord, RunInfo
from repro.observe.store import HistoryStore
from repro.orchestrate.artifacts import (
    ArtifactCache, cell_fingerprint, sequence_digest,
)
from repro.orchestrate.spec import (
    Cell, RunSpec, cell_from_dict, encoder_fields_for_cell, expand_cells,
)
from repro.parallel import parallel_encode, run_pooled
from repro.sequences import generate_sequence
from repro.telemetry import flightrec
from repro.telemetry.events import correlation_scope, emit
from repro.telemetry.metrics import CELL_BUCKETS, registry as telemetry_registry
from repro.telemetry.trace import span as telemetry_span, state as telemetry_state

#: Schema of one shard manifest document.
MANIFEST_SCHEMA = "repro.orchestrate.manifest/1"

#: The bench name of one cell measurement in the observe store.
ORCHESTRATE_BENCH = "orchestrate"

#: Pool waves this many times the worker count: big enough to amortise
#: pool startup, small enough that a killed run loses at most one wave
#: of un-persisted results.
WAVE_FACTOR = 4


@dataclass
class CellResult:
    """What running one cell produced (picklable, pool-safe)."""

    cell: Dict[str, Any]           #: the cell's manifest dict
    cell_id: str                   #: canonical axis string (resume identity)
    status: str                    #: ``"ok"`` or ``"failed"``
    metrics: Dict[str, float]      #: deterministic measurement metrics
    seconds: float                 #: wall time of this execution
    cache_hit: bool                #: True when no encode ran
    fingerprint: str               #: artifact content address ("" on failure)
    error: str = ""                #: rendered OrchestrateError on failure
    telemetry: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def execute_cell(cell: Cell, cache: ArtifactCache) -> CellResult:
    """Run one cell in this process, through the artifact cache.

    Never raises for a cell-level failure: every escape — a
    :class:`~repro.errors.ReproError` from the codec stack or anything
    unexpected — is normalised into an :class:`OrchestrateError` naming
    the spec and cell, rendered onto a ``failed`` result.  The cell runs
    inside a ``correlation_scope`` bound to its cell id, so events,
    errors and flight dumps attribute to the exact cell.
    """
    with correlation_scope(cell_id=cell.cell_id):
        start = time.perf_counter()
        crash_point("scheduler.cell.pre_execute", cell.cell_id)
        emit("cell.start", spec=cell.spec_name, codec=cell.codec,
             sequence=cell.sequence, workers=cell.workers)
        try:
            with telemetry_span("orchestrate.cell", codec=cell.codec,
                                sequence=cell.sequence, workers=cell.workers):
                metrics, hit, fingerprint = _measure_cell(cell, cache)
            seconds = time.perf_counter() - start
            emit("cell.done", spec=cell.spec_name, cache_hit=hit)
            return CellResult(cell=cell.to_dict(), cell_id=cell.cell_id,
                              status="ok", metrics=metrics, seconds=seconds,
                              cache_hit=hit, fingerprint=fingerprint)
        except CrashInjected:
            # Simulated process death must propagate like a real kill --
            # folding it into a ``failed`` record would fake a clean run.
            raise
        except ReproError as error:
            wrapped = _normalize_cell_error(error, cell)
        except Exception as error:    # noqa: BLE001 -- normalised below
            wrapped = OrchestrateError(
                f"unexpected {type(error).__name__} while running cell: "
                f"{error}",
                spec=cell.spec_name, cell=cell.cell_id)
            wrapped.__cause__ = error
        seconds = time.perf_counter() - start
        emit("cell.fail", spec=cell.spec_name, error=str(wrapped))
        flightrec.recorder.dump("cell.failed", error=wrapped)
        return CellResult(cell=cell.to_dict(), cell_id=cell.cell_id,
                          status="failed", metrics={}, seconds=seconds,
                          cache_hit=False, fingerprint="", error=str(wrapped))


def _normalize_cell_error(error: ReproError, cell: Cell) -> OrchestrateError:
    if isinstance(error, OrchestrateError):
        if error.spec is None:
            error.spec = cell.spec_name
        if error.cell is None:
            error.cell = cell.cell_id
        return error
    wrapped = OrchestrateError(
        f"cell failed with {type(error).__name__}: {error}",
        spec=cell.spec_name, cell=cell.cell_id)
    wrapped.__cause__ = error
    return wrapped


def _measure_cell(cell: Cell, cache: ArtifactCache,
                  ) -> Tuple[Dict[str, float], bool, str]:
    """Encode (or fetch) the cell's artifact and return its metrics."""
    scale = Fraction(cell.scale)
    tier = tier_by_name(cell.resolution, scale)
    video = generate_sequence(cell.sequence, tier.name, frames=cell.frames,
                              scale=scale)
    fields = encoder_fields_for_cell(cell, tier)
    fingerprint = cell_fingerprint(
        cell.codec, sequence_digest(video), fields, chunks=cell.workers)

    def produce():
        if cell.workers > 1:
            # Backoff jitter seeded from the cell so retry timing is
            # replayable alongside everything else about the cell.
            stream = parallel_encode(cell.codec, video, workers=cell.workers,
                                     chunk_timeout=cell.timeout,
                                     rng=random.Random(cell.seed),
                                     **fields)
        else:
            stream = get_encoder(cell.codec, **fields).encode_sequence(video)
        decoded = get_decoder(cell.codec).decode(stream)
        psnr = sequence_psnr(video, decoded)
        metrics = {
            "psnr_db": psnr.combined,
            "psnr_y_db": psnr.y,
            "bitrate_kbps": stream.bitrate_kbps,
            "total_bytes": float(stream.total_bytes),
            "pictures": float(stream.frame_count),
        }
        return stream, metrics

    entry, hit = cache.ensure(fingerprint, produce,
                              context={"cell": cell.cell_id,
                                       "spec": cell.spec_name})
    return dict(entry.metrics), hit, fingerprint


def _execute_cell_job(cell_data: Dict[str, Any], cache_root: str,
                      telemetry_on: bool = False) -> CellResult:
    """Pool-worker entry point (module-level, picklable)."""
    if telemetry_on:
        # Pool workers are reused across cells (and, under fork, inherit
        # the parent's enabled state): start from a clean registry so
        # each snapshot is this cell's delta only.
        import repro.telemetry as telemetry

        telemetry.reset()
        telemetry.enable()
    cell = cell_from_dict(cell_data)
    result = execute_cell(cell, ArtifactCache(cache_root))
    if telemetry_on:
        result.telemetry = telemetry_registry().snapshot()
    return result


def _execute_cell_job_inline(cell_data: Dict[str, Any], cache_root: str,
                             telemetry_on: bool = False) -> CellResult:
    """Serial in-process cell worker: records into the live registry
    directly, so it must not reset it or ship a snapshot back."""
    del telemetry_on
    return execute_cell(cell_from_dict(cell_data), ArtifactCache(cache_root))


# ----------------------------------------------------------------------
# shard planning (multi-host execution)
# ----------------------------------------------------------------------


def plan_shards(cells: Sequence[Cell], shards: int) -> List[List[Cell]]:
    """Stripe the deterministic cell list round-robin into ``shards``.

    Round-robin (not contiguous blocks) so expensive axes — a slow codec,
    a large worker count — spread evenly instead of landing on one host.
    Empty shards are kept (shard k of n is always ``cells[k::n]``), so a
    host's shard index alone determines its work.
    """
    if shards < 1:
        raise OrchestrateError(f"shard count must be >= 1, got {shards}")
    return [list(cells[index::shards]) for index in range(shards)]


def shard_manifest(spec: RunSpec, shard_cells: Sequence[Cell],
                   shard_index: int, shard_count: int) -> Dict[str, Any]:
    """One shard as a serialisable manifest document."""
    return {
        "schema": MANIFEST_SCHEMA,
        "spec_name": spec.name,
        "spec_fingerprint": spec.fingerprint(),
        "shard_index": shard_index,
        "shard_count": shard_count,
        "cells": [cell.to_dict() for cell in shard_cells],
    }


def write_manifests(spec: RunSpec, cells: Sequence[Cell], shards: int,
                    directory: Union[str, Path]) -> List[Path]:
    """Write one manifest file per shard; returns the paths.

    Files land atomically (temp + ``os.replace``, the store discipline)
    as ``<spec>-<fingerprint>-shard-<k>-of-<n>.json``.
    """
    directory = Path(directory)
    try:
        directory.mkdir(parents=True, exist_ok=True)
    except OSError as error:
        raise OrchestrateError(
            f"cannot create manifest directory {directory}: {error}",
            spec=spec.name) from error
    fingerprint = spec.fingerprint()
    paths = []
    for index, shard_cells in enumerate(plan_shards(cells, shards)):
        manifest = shard_manifest(spec, shard_cells, index, shards)
        path = directory / (f"{spec.name}-{fingerprint}"
                            f"-shard-{index}-of-{shards}.json")
        payload = json.dumps(manifest, sort_keys=True, indent=2)
        _atomic_write_text(path, payload, spec.name)
        paths.append(path)
    return paths


def _atomic_write_text(path: Path, payload: str, spec_name: str) -> None:
    temp = path.with_name(path.name + ".tmp")
    try:
        with open(temp, "wb") as handle:
            handle.write(payload.encode("utf-8"))
        os.replace(temp, path)
    except OSError as error:
        raise OrchestrateError(
            f"cannot write manifest {path}: {error}",
            spec=spec_name) from error


def load_manifest(path: Union[str, Path],
                  ) -> Tuple[str, str, List[Cell]]:
    """Load a shard manifest: ``(spec_name, spec_fingerprint, cells)``."""
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except OSError as error:
        raise OrchestrateError(
            f"cannot read manifest {path}: {error}") from error
    except ValueError as error:
        raise OrchestrateError(
            f"{path}: manifest is not valid JSON: {error}") from error
    if not isinstance(data, Mapping) or data.get("schema") != MANIFEST_SCHEMA:
        raise OrchestrateError(
            f"{path}: not a shard manifest (expected schema "
            f"{MANIFEST_SCHEMA!r})")
    cells_data = data.get("cells")
    if not isinstance(cells_data, list):
        raise OrchestrateError(f"{path}: manifest has no 'cells' list")
    return (str(data.get("spec_name", "")),
            str(data.get("spec_fingerprint", "")),
            [cell_from_dict(entry) for entry in cells_data])


# ----------------------------------------------------------------------
# resume + persistence
# ----------------------------------------------------------------------


def completed_cell_ids(store: HistoryStore, run_id: str) -> Set[str]:
    """Cell ids with an ``ok`` record under ``run_id``: skip on rerun.

    Failed cells are deliberately *not* completed — a resumed run retries
    them (the artifact cache makes retrying the cheap part anyway).  So
    are quarantined cells: a record line mangled by a crash is skipped
    by the store's tolerant reads (and moved aside by ``hdvb-observe
    fsck --repair``), never matches here, and its cell re-executes.
    """
    return {
        record.axis_key
        for record in store.query(ORCHESTRATE_BENCH, run_id=run_id)
        if record.context.get("status") == "ok"
    }


def cell_record(result: CellResult, info: RunInfo,
                spec_fingerprint: str) -> BenchRecord:
    """One cell result as its observe-store record.

    The record is **bit-reproducible**: ``created`` is pinned to 0.0,
    the metrics are the deterministic measurement set stored in the
    artifact cache, and nothing host- or wall-clock-dependent (timing,
    cache-hit flags, pids) goes in — those live on the run-summary
    records instead.  Two runs of the same spec under the same run id
    therefore append byte-identical ``orchestrate`` lines.
    """
    cell = result.cell
    axes = {
        "codec": cell["codec"],
        "sequence": cell["sequence"],
        "resolution": cell["resolution"],
        "backend": cell["backend"],
        "workers": cell["workers"],
        "qp": cell["qp"],
        "repeat": cell["repeat"],
    }
    context: Dict[str, Any] = {
        "spec": cell["spec_name"],
        "spec_fingerprint": spec_fingerprint,
        "status": result.status,
        "frames": cell["frames"],
        "scale": cell["scale"],
        "seed": cell["seed"],
    }
    if result.fingerprint:
        context["artifact"] = result.fingerprint
    if result.error:
        context["error"] = result.error
    return BenchRecord(
        run_id=info.run_id,
        bench=ORCHESTRATE_BENCH,
        axes=axes,
        metrics=dict(result.metrics),
        created=0.0,
        git_sha=info.git_sha,
        context=context,
    )


# ----------------------------------------------------------------------
# the local run loop
# ----------------------------------------------------------------------


@dataclass
class RunState:
    """Everything one :func:`run_cells` invocation did."""

    results: List[CellResult] = field(default_factory=list)
    skipped: List[str] = field(default_factory=list)   #: resumed cell ids
    wall_seconds: float = 0.0
    pool_stats: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def failures(self) -> List[CellResult]:
        return [result for result in self.results if not result.ok]

    @property
    def cache_hits(self) -> int:
        return sum(1 for result in self.results if result.cache_hit)


def run_cells(
    spec: RunSpec,
    store: HistoryStore,
    info: RunInfo,
    cache: Optional[ArtifactCache] = None,
    scheduler_workers: int = 1,
    executor_factory: Any = None,
    on_cell_complete: Optional[Callable[[CellResult], None]] = None,
    progress: Optional[Callable[[str], None]] = None,
    cells: Optional[Sequence[Cell]] = None,
) -> RunState:
    """Run a spec's cells, resumably, persisting through the store.

    ``cells`` overrides the expansion (a loaded shard manifest); by
    default the full deterministic expansion of ``spec`` runs.  Cells
    with an ``ok`` record under ``info.run_id`` are skipped.  With
    ``scheduler_workers > 1`` cells run in waves across a process pool
    (per-wave deadline = the largest cell timeout in the wave, hardened
    by ``run_pooled``'s retry/fallback); note that a cell whose own
    ``workers`` axis exceeds 1 then nests a ``parallel_encode`` pool
    inside a scheduler worker — legal, but size the spec accordingly.

    ``on_cell_complete`` fires after each result is persisted; an
    exception it raises aborts the run *after* persistence, which is
    exactly the mid-run-kill shape the resume tests inject.
    """
    if scheduler_workers < 1:
        raise OrchestrateError(
            f"scheduler workers must be >= 1, got {scheduler_workers}",
            spec=spec.name)
    if cache is None:
        cache = ArtifactCache()
    all_cells = list(cells) if cells is not None else expand_cells(spec)
    done = completed_cell_ids(store, info.run_id)
    pending = [cell for cell in all_cells if cell.cell_id not in done]
    skipped = [cell.cell_id for cell in all_cells if cell.cell_id in done]
    fingerprint = spec.fingerprint()
    telemetry_on = telemetry_state.enabled

    state = RunState(skipped=skipped)
    wall_start = time.perf_counter()
    wave_size = 1 if scheduler_workers == 1 else scheduler_workers * WAVE_FACTOR
    with correlation_scope(run_id=info.run_id):
        _run_waves(spec, store, info, cache, scheduler_workers,
                   executor_factory, on_cell_complete, progress, pending,
                   fingerprint, telemetry_on, state, wave_size)
    state.wall_seconds = time.perf_counter() - wall_start
    return state


def _run_waves(
    spec: RunSpec,
    store: HistoryStore,
    info: RunInfo,
    cache: ArtifactCache,
    scheduler_workers: int,
    executor_factory: Any,
    on_cell_complete: Optional[Callable[[CellResult], None]],
    progress: Optional[Callable[[str], None]],
    pending: Sequence[Cell],
    fingerprint: str,
    telemetry_on: bool,
    state: "RunState",
    wave_size: int,
) -> None:
    for offset in range(0, len(pending), wave_size):
        wave = pending[offset:offset + wave_size]
        if progress:
            for cell in wave:
                progress(cell.cell_id)
        if scheduler_workers == 1:
            results = [execute_cell(cell, cache) for cell in wave]
        else:
            jobs = [(cell.to_dict(), str(cache.root), telemetry_on)
                    for cell in wave]
            pool_kwargs: Dict[str, Any] = {}
            if executor_factory is not None:
                pool_kwargs["executor_factory"] = executor_factory
            results, pool_stats = run_pooled(
                _execute_cell_job, jobs, scheduler_workers,
                job_timeout=max(cell.timeout for cell in wave),
                serial_worker=_execute_cell_job_inline,
                rng=random.Random(fingerprint),
                **pool_kwargs)
            state.pool_stats.append(pool_stats)
            for result in results:
                # Workers that actually ran in the pool shipped their
                # registry delta; fold it into the parent, then count
                # the cache activity the pool hid from our handle.
                if result.telemetry is not None and telemetry_on:
                    telemetry_registry().merge(result.telemetry)
                if result.cache_hit:
                    cache.hits += 1
                elif result.ok:
                    cache.misses += 1
        for result in results:
            crash_point("scheduler.cell.pre_record", result.cell_id)
            store.append(cell_record(result, info, fingerprint))
            state.results.append(result)
            if telemetry_on:
                registry = telemetry_registry()
                registry.counter("orchestrate.cells").inc()
                if not result.ok:
                    registry.counter("orchestrate.cell_failures").inc()
                registry.histogram("orchestrate.cell_seconds",
                                   buckets=CELL_BUCKETS).observe(result.seconds)
            if on_cell_complete is not None:
                on_cell_complete(result)


__all__ = [
    "CellResult",
    "MANIFEST_SCHEMA",
    "ORCHESTRATE_BENCH",
    "RunState",
    "cell_record",
    "completed_cell_ids",
    "execute_cell",
    "load_manifest",
    "plan_shards",
    "run_cells",
    "shard_manifest",
    "write_manifests",
]
