"""``hdvb-cache``: inspect and heal the content-addressed artifact cache.

    hdvb-cache fsck [--repair] [--lock-age SECONDS]   # verify + heal
    hdvb-cache stats                                  # entry/lock census

Exit codes follow the ``hdvb-lint`` convention: 0 — clean, 1 — at least
one fsck finding, 2 — usage or I/O error.  With ``--repair`` the exit
code reflects the *post-repair* state: 0 iff the re-check is clean.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.reporters import render_human, render_json
from repro.errors import ReproError
from repro.observe.fsck import FSCK_SCHEMA
from repro.orchestrate.artifacts import (
    DEFAULT_CACHE_DIR, DEFAULT_STALE_LOCK_SECONDS, ArtifactCache,
)
from repro.orchestrate.fsck import QUARANTINE_DIRNAME, fsck_cache


def _add_cache_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cache", default=DEFAULT_CACHE_DIR, metavar="DIR",
                        help=f"artifact cache directory "
                             f"(default: {DEFAULT_CACHE_DIR})")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hdvb-cache",
        description="Verify and heal the content-addressed artifact cache: "
                    "re-hash artifacts, quarantine mismatches, break stale "
                    "locks, delete orphan temps.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fsck = sub.add_parser("fsck", help="re-verify every entry against its "
                                       "content address")
    fsck.add_argument("--repair", action="store_true",
                      help="quarantine mismatches, delete debris, break "
                           "stale locks; exit 0 iff the re-check is clean")
    fsck.add_argument("--lock-age", type=float, default=None,
                      metavar="SECONDS",
                      help="treat locks older than SECONDS as stale "
                           "(0 breaks all; default: the cache's "
                           f"threshold, {DEFAULT_STALE_LOCK_SECONDS:.0f}s)")
    fsck.add_argument("--stale-lock-seconds", type=float,
                      default=DEFAULT_STALE_LOCK_SECONDS, metavar="SECONDS",
                      help="the cache's stale-lock threshold "
                           "(default: %(default)s)")
    fsck.add_argument("--format", choices=("human", "json"), default="human",
                      help="report format (default: human)")
    _add_cache_argument(fsck)

    stats = sub.add_parser("stats", help="count committed entries, locks, "
                                         "temps and quarantined entries")
    _add_cache_argument(stats)
    return parser


def _cmd_fsck(options: argparse.Namespace) -> int:
    cache = ArtifactCache(options.cache,
                          stale_lock_seconds=options.stale_lock_seconds)
    findings = fsck_cache(cache, repair=options.repair,
                          lock_age=options.lock_age)
    if options.repair and findings:
        remaining = fsck_cache(cache, repair=False,
                               lock_age=options.lock_age)
    else:
        remaining = findings
    if options.format == "json":
        print(render_json(findings, schema=FSCK_SCHEMA))
    else:
        print(render_human(findings))
        if options.repair and findings:
            state = "clean" if not remaining else f"{len(remaining)} left"
            print(f"hdvb-cache: repaired {len(findings)} finding(s); "
                  f"re-check {state} "
                  f"({cache.stale_locks_broken} stale lock(s) broken)",
                  file=sys.stderr)
    return 0 if not remaining else 1


def _cmd_stats(options: argparse.Namespace) -> int:
    cache = ArtifactCache(options.cache)
    entries = locks = temps = quarantined = 0
    if cache.root.is_dir():
        for shard in cache.root.iterdir():
            if not shard.is_dir():
                continue
            if shard.name == QUARANTINE_DIRNAME:
                quarantined = sum(1 for item in shard.iterdir()
                                  if item.is_dir())
                continue
            for item in shard.iterdir():
                if item.is_dir() and (item / "meta.json").is_file():
                    entries += 1
                elif item.suffix == ".lock":
                    locks += 1
                elif item.suffix == ".tmp":
                    temps += 1
    print(f"hdvb-cache: {cache.root}: {entries} committed entr(ies), "
          f"{locks} lock(s), {temps} temp(s), {quarantined} quarantined")
    return 0


_COMMANDS = {
    "fsck": _cmd_fsck,
    "stats": _cmd_stats,
}


def main(argv: Optional[List[str]] = None) -> int:
    options = build_parser().parse_args(argv)
    try:
        return _COMMANDS[options.command](options)
    except ReproError as error:
        print(f"hdvb-cache: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
