"""Declarative run specs: the benchmark matrix as data.

A *run spec* is a YAML or JSON document describing one measurement
campaign as axes (codec x sequence x resolution x backend x workers x
qp) plus campaign-level knobs (frames, scale, repeat count, seed,
per-cell timeout).  The spec expands **deterministically** into a flat
list of :class:`Cell` objects — the same document always yields the same
cells in the same order, which is what makes shard manifests, resume
state and the content-addressed artifact cache line up across runs and
hosts.

Schema (``repro.orchestrate.spec/1``)::

    name: mini                      # required, names the campaign
    axes:                           # required
      codec: [mpeg2, h264]          # required axis
      sequence: [blue_sky]          # required axis
      resolution: [576p25]          # required axis
      backend: [simd]               # optional, default [simd]
      workers: [1, 2]               # optional, default [1]
      qp: [5]                       # optional, default [5]
    frames: 3                       # optional, default 9
    scale: 1/16                     # optional, default 1/8
    repeats: 1                      # optional, default 1
    seed: 0                         # optional, default 0
    cell_timeout: 600               # optional, default 600 seconds

``qp`` is the campaign quantiser axis: the MPEG-family quantiser scale,
mapped per codec exactly as ``hdvb-bench --qscale`` does (H.264 QP via
Equation 1, MJPEG quality via the same affine map).

Every malformed input — unknown keys, wrong types, empty axes, unknown
codec/sequence/tier/backend names — raises a contextful
:class:`~repro.errors.OrchestrateError` naming the spec and the exact
field, never a raw ``KeyError``/``TypeError``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from fractions import Fraction
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.bench.performance import BACKENDS
from repro.codecs import CODEC_NAMES, EXTENSION_CODEC_NAMES
from repro.common.resolution import PAPER_TIERS
from repro.errors import OrchestrateError
from repro.sequences import SEQUENCE_NAMES

#: Schema identifier of one spec document.
SPEC_SCHEMA = "repro.orchestrate.spec/1"

#: Axis names in canonical expansion order (outermost loop first).
AXIS_NAMES = ("codec", "sequence", "resolution", "backend", "workers", "qp")

#: Axes a spec must declare explicitly.
REQUIRED_AXES = ("codec", "sequence", "resolution")

#: Defaults for the optional axes.
DEFAULT_AXES: Dict[str, Tuple[Any, ...]] = {
    "backend": ("simd",),
    "workers": (1,),
    "qp": (5,),
}

#: Campaign-level knobs and their defaults.
DEFAULT_FRAMES = 9
DEFAULT_SCALE = "1/8"
DEFAULT_REPEATS = 1
DEFAULT_SEED = 0
DEFAULT_CELL_TIMEOUT = 600.0

_KNOWN_KEYS = frozenset({"schema", "name", "axes", "frames", "scale",
                         "repeats", "seed", "cell_timeout"})

_KNOWN_CODECS = frozenset(CODEC_NAMES + EXTENSION_CODEC_NAMES)
_KNOWN_SEQUENCES = frozenset(SEQUENCE_NAMES)
_KNOWN_TIERS = frozenset(tier.name for tier in PAPER_TIERS)
_KNOWN_BACKENDS = frozenset(BACKENDS)


@dataclass(frozen=True)
class Cell:
    """One fully resolved matrix cell: a single measurement to run."""

    spec_name: str
    codec: str
    sequence: str
    resolution: str
    backend: str
    workers: int
    qp: int
    repeat: int
    frames: int
    scale: str
    seed: int
    timeout: float

    def axes(self) -> Dict[str, Any]:
        """The axis identity persisted on the cell's bench record."""
        return {
            "codec": self.codec,
            "sequence": self.sequence,
            "resolution": self.resolution,
            "backend": self.backend,
            "workers": self.workers,
            "qp": self.qp,
            "repeat": self.repeat,
        }

    @property
    def cell_id(self) -> str:
        """Canonical axis string, stable across runs (resume identity)."""
        axes = self.axes()
        return "|".join(f"{key}={axes[key]}" for key in sorted(axes))

    def to_dict(self) -> Dict[str, Any]:
        """Manifest serialisation (round-trips through :func:`cell_from_dict`)."""
        return {
            "spec_name": self.spec_name,
            "codec": self.codec,
            "sequence": self.sequence,
            "resolution": self.resolution,
            "backend": self.backend,
            "workers": self.workers,
            "qp": self.qp,
            "repeat": self.repeat,
            "frames": self.frames,
            "scale": self.scale,
            "seed": self.seed,
            "timeout": self.timeout,
        }


def cell_from_dict(data: Mapping[str, Any]) -> Cell:
    """Rebuild a cell from its manifest dict."""
    if not isinstance(data, Mapping):
        raise OrchestrateError(
            f"manifest cell must be a mapping, got {type(data).__name__}")
    try:
        return Cell(
            spec_name=str(data["spec_name"]),
            codec=str(data["codec"]),
            sequence=str(data["sequence"]),
            resolution=str(data["resolution"]),
            backend=str(data["backend"]),
            workers=int(data["workers"]),
            qp=int(data["qp"]),
            repeat=int(data["repeat"]),
            frames=int(data["frames"]),
            scale=str(data["scale"]),
            seed=int(data["seed"]),
            timeout=float(data["timeout"]),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise OrchestrateError(
            f"malformed manifest cell: {error!r}") from error


@dataclass(frozen=True)
class RunSpec:
    """A validated campaign specification."""

    name: str
    codecs: Tuple[str, ...]
    sequences: Tuple[str, ...]
    resolutions: Tuple[str, ...]
    backends: Tuple[str, ...] = DEFAULT_AXES["backend"]
    workers: Tuple[int, ...] = DEFAULT_AXES["workers"]
    qps: Tuple[int, ...] = DEFAULT_AXES["qp"]
    frames: int = DEFAULT_FRAMES
    scale: str = DEFAULT_SCALE
    repeats: int = DEFAULT_REPEATS
    seed: int = DEFAULT_SEED
    cell_timeout: float = DEFAULT_CELL_TIMEOUT

    def __post_init__(self) -> None:
        _require(bool(self.name) and isinstance(self.name, str),
                 self.name, "name", "a non-empty string")
        for codec in self.codecs:
            _require(codec in _KNOWN_CODECS, self.name, "axes.codec",
                     f"one of {sorted(_KNOWN_CODECS)}", codec)
        for sequence in self.sequences:
            _require(sequence in _KNOWN_SEQUENCES, self.name, "axes.sequence",
                     f"one of {sorted(_KNOWN_SEQUENCES)}", sequence)
        for tier in self.resolutions:
            _require(tier in _KNOWN_TIERS, self.name, "axes.resolution",
                     f"one of {sorted(_KNOWN_TIERS)}", tier)
        for backend in self.backends:
            _require(backend in _KNOWN_BACKENDS, self.name, "axes.backend",
                     f"one of {sorted(_KNOWN_BACKENDS)}", backend)
        for count in self.workers:
            _require(isinstance(count, int) and count >= 1, self.name,
                     "axes.workers", "an integer >= 1", count)
        for qp in self.qps:
            _require(isinstance(qp, int) and 1 <= qp <= 31, self.name,
                     "axes.qp", "an integer in 1..31", qp)
        _require(isinstance(self.frames, int) and self.frames >= 1,
                 self.name, "frames", "an integer >= 1", self.frames)
        _require(isinstance(self.repeats, int) and self.repeats >= 1,
                 self.name, "repeats", "an integer >= 1", self.repeats)
        _require(isinstance(self.seed, int), self.name, "seed",
                 "an integer", self.seed)
        _require(self.cell_timeout > 0, self.name, "cell_timeout",
                 "a positive number of seconds", self.cell_timeout)
        try:
            Fraction(self.scale)
        except (ValueError, ZeroDivisionError) as error:
            raise OrchestrateError(
                f"spec field scale must be a fraction like '1/8', "
                f"got {self.scale!r}", spec=self.name) from error

    def to_dict(self) -> Dict[str, Any]:
        """Canonical dict form (what :func:`spec_fingerprint` hashes)."""
        return {
            "schema": SPEC_SCHEMA,
            "name": self.name,
            "axes": {
                "codec": list(self.codecs),
                "sequence": list(self.sequences),
                "resolution": list(self.resolutions),
                "backend": list(self.backends),
                "workers": list(self.workers),
                "qp": list(self.qps),
            },
            "frames": self.frames,
            "scale": self.scale,
            "repeats": self.repeats,
            "seed": self.seed,
            "cell_timeout": self.cell_timeout,
        }

    def fingerprint(self) -> str:
        """Content hash of the canonical spec (resume/cache identity)."""
        canonical = json.dumps(self.to_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    def cell_count(self) -> int:
        return (len(self.codecs) * len(self.sequences) * len(self.resolutions)
                * len(self.backends) * len(self.workers) * len(self.qps)
                * self.repeats)


def _require(condition: bool, spec: str, field_name: str, expected: str,
             got: Any = None) -> None:
    if condition:
        return
    suffix = "" if got is None else f", got {got!r}"
    raise OrchestrateError(
        f"spec field {field_name} must be {expected}{suffix}", spec=spec)


def _axis_values(spec_name: str, axes: Mapping[str, Any], axis: str,
                 ) -> Tuple[Any, ...]:
    if axis not in axes:
        if axis in DEFAULT_AXES:
            return DEFAULT_AXES[axis]
        raise OrchestrateError(
            f"spec axes must declare {axis!r}", spec=spec_name)
    values = axes[axis]
    if isinstance(values, (str, bytes)) or not isinstance(values, Sequence):
        raise OrchestrateError(
            f"spec axis {axis!r} must be a list of values, got {values!r}",
            spec=spec_name)
    if not values:
        raise OrchestrateError(
            f"spec axis {axis!r} must not be empty", spec=spec_name)
    deduped: List[Any] = []
    for value in values:
        if isinstance(value, bool):
            raise OrchestrateError(
                f"spec axis {axis!r} holds a boolean {value!r}; axis values "
                f"are names or integers", spec=spec_name)
        if value in deduped:
            raise OrchestrateError(
                f"spec axis {axis!r} repeats value {value!r}", spec=spec_name)
        deduped.append(value)
    return tuple(deduped)


def parse_spec(data: Mapping[str, Any],
               source: str = "<spec>") -> RunSpec:
    """Validate a parsed document into a :class:`RunSpec`."""
    if not isinstance(data, Mapping):
        raise OrchestrateError(
            f"{source}: spec must be a mapping, got {type(data).__name__}")
    schema = data.get("schema", SPEC_SCHEMA)
    if schema != SPEC_SCHEMA:
        raise OrchestrateError(
            f"{source}: not a run spec: schema {schema!r} "
            f"(expected {SPEC_SCHEMA!r})")
    unknown = sorted(set(data) - _KNOWN_KEYS)
    if unknown:
        raise OrchestrateError(
            f"{source}: unknown spec key(s): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(_KNOWN_KEYS))})")
    name = data.get("name")
    if not isinstance(name, str) or not name:
        raise OrchestrateError(
            f"{source}: spec needs a non-empty string 'name', got {name!r}")
    axes = data.get("axes")
    if not isinstance(axes, Mapping):
        raise OrchestrateError(
            f"spec needs an 'axes' mapping, got {axes!r}", spec=name)
    unknown_axes = sorted(set(axes) - set(AXIS_NAMES))
    if unknown_axes:
        raise OrchestrateError(
            f"unknown axis name(s): {', '.join(unknown_axes)} "
            f"(known: {', '.join(AXIS_NAMES)})", spec=name)
    try:
        frames = int(data.get("frames", DEFAULT_FRAMES))
        repeats = int(data.get("repeats", DEFAULT_REPEATS))
        seed = int(data.get("seed", DEFAULT_SEED))
        cell_timeout = float(data.get("cell_timeout", DEFAULT_CELL_TIMEOUT))
    except (TypeError, ValueError) as error:
        raise OrchestrateError(
            f"spec scalar field has the wrong type: {error}",
            spec=name) from error
    return RunSpec(
        name=name,
        codecs=tuple(str(v) for v in _axis_values(name, axes, "codec")),
        sequences=tuple(str(v) for v in _axis_values(name, axes, "sequence")),
        resolutions=tuple(str(v) for v in _axis_values(name, axes, "resolution")),
        backends=tuple(str(v) for v in _axis_values(name, axes, "backend")),
        workers=tuple(_axis_values(name, axes, "workers")),
        qps=tuple(_axis_values(name, axes, "qp")),
        frames=frames,
        scale=str(data.get("scale", DEFAULT_SCALE)),
        repeats=repeats,
        seed=seed,
        cell_timeout=cell_timeout,
    )


def load_spec(path: Union[str, Path]) -> RunSpec:
    """Load and validate a spec file (YAML by extension, JSON otherwise).

    YAML support needs PyYAML; when it is absent a ``.yaml``/``.yml``
    spec raises a clear :class:`~repro.errors.OrchestrateError` instead
    of an ``ImportError`` (JSON specs always work).
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        raise OrchestrateError(f"cannot read spec {path}: {error}") from error
    if path.suffix.lower() in (".yaml", ".yml"):
        data = _parse_yaml(text, str(path))
    else:
        try:
            data = json.loads(text)
        except ValueError as error:
            raise OrchestrateError(
                f"{path}: spec is not valid JSON: {error}") from error
    return parse_spec(data, source=str(path))


def _parse_yaml(text: str, source: str) -> Any:
    try:
        import yaml
    except ImportError:
        raise OrchestrateError(
            f"{source}: YAML specs need PyYAML, which is not installed; "
            f"rewrite the spec as JSON or install pyyaml") from None
    try:
        return yaml.safe_load(text)
    except yaml.YAMLError as error:
        raise OrchestrateError(
            f"{source}: spec is not valid YAML: {error}") from error


def expand_cells(spec: RunSpec) -> List[Cell]:
    """Expand a spec into its deterministic cell list.

    Loop order is the canonical axis order (:data:`AXIS_NAMES`) with the
    repeat index innermost; per-cell seeds derive from the spec seed and
    the repeat index, so repeat k of a cell is the same measurement on
    every host and every rerun.
    """
    cells: List[Cell] = []
    for codec in spec.codecs:
        for sequence in spec.sequences:
            for resolution in spec.resolutions:
                for backend in spec.backends:
                    for workers in spec.workers:
                        for qp in spec.qps:
                            for repeat in range(spec.repeats):
                                cells.append(Cell(
                                    spec_name=spec.name,
                                    codec=codec,
                                    sequence=sequence,
                                    resolution=resolution,
                                    backend=backend,
                                    workers=workers,
                                    qp=qp,
                                    repeat=repeat,
                                    frames=spec.frames,
                                    scale=spec.scale,
                                    seed=spec.seed + repeat,
                                    timeout=spec.cell_timeout,
                                ))
    return cells


def encoder_fields_for_cell(cell: Cell, tier: Any = None) -> Dict[str, Any]:
    """Constructor arguments for ``get_encoder`` under this cell.

    Reuses :class:`~repro.bench.config.BenchConfig`'s quantiser mapping
    (Equation 1 for H.264, the affine quality map for MJPEG) so a cell at
    ``qp: 5`` measures exactly what ``hdvb-bench --qscale 5`` measures.
    """
    from repro.bench.config import BenchConfig
    from repro.common.resolution import tier_by_name

    config = BenchConfig(
        scale=Fraction(cell.scale),
        frames=cell.frames,
        qscale=cell.qp,
        sequences=(cell.sequence,),
        tier_names=(cell.resolution,),
    )
    if tier is None:
        tier = tier_by_name(cell.resolution, Fraction(cell.scale))
    return config.encoder_fields(cell.codec, tier, backend=cell.backend)


__all__ = [
    "AXIS_NAMES",
    "Cell",
    "RunSpec",
    "SPEC_SCHEMA",
    "cell_from_dict",
    "encoder_fields_for_cell",
    "expand_cells",
    "load_spec",
    "parse_spec",
]
