"""Config-driven benchmark orchestration with content-addressed caching.

The subsystem turns the HD-VideoBench measurement matrix into data:

* :mod:`repro.orchestrate.spec` — declarative YAML/JSON run specs
  expanded deterministically into matrix cells;
* :mod:`repro.orchestrate.scheduler` — shard planning, pooled resumable
  execution, per-cell observe-store records;
* :mod:`repro.orchestrate.artifacts` — single-flight content-addressed
  cache of encoded artifacts (repeated cells cost ~0);
* :mod:`repro.orchestrate.report` — run summary with speedup/efficiency
  scaling and the OBS207-gated run metrics;
* :mod:`repro.orchestrate.fsck` — cache verification + healing
  (re-hash against content addresses, quarantine mismatches, break
  stale locks, delete orphan temps), the ``hdvb-cache fsck`` engine,
  crash-proven by the :mod:`repro.chaos` harness.

Driven by ``hdvb-bench orchestrate``; documented in
``docs/ORCHESTRATION.md``.
"""

from repro.orchestrate.artifacts import (
    ArtifactCache, ArtifactEntry, cell_fingerprint, sequence_digest,
)
from repro.orchestrate.fsck import fsck_cache
from repro.orchestrate.report import (
    OrchestrateSummary, render_orchestrate, summarize, summary_records,
)
from repro.orchestrate.scheduler import (
    CellResult, RunState, completed_cell_ids, execute_cell, load_manifest,
    plan_shards, run_cells, write_manifests,
)
from repro.orchestrate.spec import (
    Cell, RunSpec, expand_cells, load_spec, parse_spec,
)

__all__ = [
    "ArtifactCache",
    "ArtifactEntry",
    "Cell",
    "CellResult",
    "OrchestrateSummary",
    "RunSpec",
    "RunState",
    "cell_fingerprint",
    "completed_cell_ids",
    "execute_cell",
    "expand_cells",
    "fsck_cache",
    "load_manifest",
    "load_spec",
    "parse_spec",
    "plan_shards",
    "render_orchestrate",
    "run_cells",
    "sequence_digest",
    "summarize",
    "summary_records",
    "write_manifests",
]
