"""Content-addressed cache of encoded artifacts (``.hdvb-artifact-cache/``).

The orchestrator's core economy: a matrix cell's encode is identified by
*what* it encodes, not *when* — the canonical fingerprint hashes the
codec, the SHA-256 of the generated input frames, the resolved encoder
configuration (width, height, quantiser knob, search range), the chunk
count (GOP-parallel chunking changes the bitstream) and the encoder
version.  Two cells with the same fingerprint produce byte-identical
streams, so reruns, repeat axes, hull sweeps and regression gates pay
for each distinct encode exactly once.

On-disk layout, modeled on the observe store's append/replace
discipline (everything atomic, readers never see a half-written entry)::

    <root>/<fp[:2]>/<fp>/artifact.hdvb   # the container-packed stream
    <root>/<fp[:2]>/<fp>/meta.json       # fingerprint fields + metrics
    <root>/<fp[:2]>/<fp>.lock            # leader's single-flight claim

Both files are written to temp names and ``os.replace``d into place;
``meta.json`` lands **last** and is the commit point — an entry exists
iff its meta file does.  Single flight across *processes* uses an
``O_CREAT | O_EXCL`` lock file: the first producer for a key becomes the
leader and encodes; concurrent producers (forked test writers, parallel
scheduler workers, a second orchestrator on the same cache) observe the
lock and poll for the committed entry instead of encoding again.  A
leader that dies leaves a lock behind; locks older than
``stale_lock_seconds`` are broken so the key stays retryable — a failed
encode is never cached.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple

from repro.chaos.fsops import crash_point, fileops
from repro.codecs.base import EncodedVideo
from repro.codecs.container import pack, unpack
from repro.common.yuv import YuvSequence
from repro.errors import CrashInjected, OrchestrateError
from repro.telemetry.metrics import registry as telemetry_registry
from repro.telemetry.trace import state as telemetry_state

#: Default cache directory, relative to the invocation directory.
DEFAULT_CACHE_DIR = ".hdvb-artifact-cache"

#: Schema of one entry's meta document.
ARTIFACT_SCHEMA = "repro.orchestrate.artifact/1"

#: Bump when an encoder change invalidates cached bitstreams.
ENCODER_VERSION = "1.0.0"

#: How long a follower waits for a leader to commit before giving up.
DEFAULT_WAIT_TIMEOUT = 600.0

#: Poll interval while waiting on a leader (seconds).
DEFAULT_POLL_SECONDS = 0.05

#: A lock this old belongs to a dead leader and may be broken.
DEFAULT_STALE_LOCK_SECONDS = 900.0


def sequence_digest(video: YuvSequence) -> str:
    """SHA-256 over the raw planes of every frame, in display order."""
    digest = hashlib.sha256()
    for frame in video.frames:
        digest.update(frame.y.tobytes())
        digest.update(frame.u.tobytes())
        digest.update(frame.v.tobytes())
    return digest.hexdigest()


def cell_fingerprint(codec: str, sequence_hash: str,
                     encoder_fields: Dict[str, Any], chunks: int,
                     encoder_version: str = ENCODER_VERSION) -> str:
    """The canonical content address of one encoded artifact.

    ``backend`` is deliberately **excluded**: the scalar and SIMD kernel
    tiers are bit-exact (enforced by the HDVB120 parity lint and the
    cross-backend tests), so cells that differ only in backend share one
    artifact.  ``chunks`` is included because GOP-parallel chunking
    inserts extra I frames — a 2-worker encode is a different bitstream
    than a serial one.
    """
    fields = {key: value for key, value in sorted(encoder_fields.items())
              if key != "backend"}
    payload = json.dumps({
        "codec": codec,
        "sequence": sequence_hash,
        "fields": fields,
        "chunks": chunks,
        "encoder_version": encoder_version,
    }, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class ArtifactEntry:
    """One committed cache entry: the stream plus its stored metrics."""

    fingerprint: str
    path: Path                     #: directory holding artifact + meta
    metrics: Dict[str, float]      #: deterministic metrics stored at encode

    def load_stream(self) -> EncodedVideo:
        """Unpack the cached bitstream (lazy — metrics hits skip this)."""
        try:
            data = (self.path / "artifact.hdvb").read_bytes()
        except OSError as error:
            raise OrchestrateError(
                f"cannot read cached artifact {self.fingerprint}: "
                f"{error}") from error
        return unpack(data)


#: Producer callback: returns the encoded stream and its deterministic
#: metrics (what a cache hit will report without re-encoding).
Producer = Callable[[], Tuple[EncodedVideo, Dict[str, float]]]


class ArtifactCache:
    """Single-flight, content-addressed store of encoded artifacts."""

    def __init__(self, root: str = DEFAULT_CACHE_DIR,
                 wait_timeout: float = DEFAULT_WAIT_TIMEOUT,
                 poll_seconds: float = DEFAULT_POLL_SECONDS,
                 stale_lock_seconds: float = DEFAULT_STALE_LOCK_SECONDS,
                 ) -> None:
        self.root = Path(root)
        self.wait_timeout = wait_timeout
        self.poll_seconds = poll_seconds
        self.stale_lock_seconds = stale_lock_seconds
        self.hits = 0              #: entries served without encoding
        self.misses = 0            #: leader encodes performed
        self.flight_waits = 0      #: waits on another process's leader
        self.stale_locks_broken = 0  #: dead leaders' locks removed

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------

    def _entry_dir(self, fingerprint: str) -> Path:
        return self.root / fingerprint[:2] / fingerprint

    def _lock_path(self, fingerprint: str) -> Path:
        return self.root / fingerprint[:2] / (fingerprint + ".lock")

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    def get(self, fingerprint: str) -> Optional[ArtifactEntry]:
        """The committed entry for ``fingerprint``, or ``None``."""
        entry_dir = self._entry_dir(fingerprint)
        meta_path = entry_dir / "meta.json"
        if not meta_path.is_file():
            return None
        try:
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as error:
            raise OrchestrateError(
                f"corrupt cache meta for {fingerprint}: {error}") from error
        if meta.get("schema") != ARTIFACT_SCHEMA:
            raise OrchestrateError(
                f"cache entry {fingerprint} has schema "
                f"{meta.get('schema')!r} (expected {ARTIFACT_SCHEMA!r})")
        metrics = meta.get("metrics", {})
        if not isinstance(metrics, dict):
            raise OrchestrateError(
                f"cache entry {fingerprint} has malformed metrics")
        return ArtifactEntry(fingerprint=fingerprint, path=entry_dir,
                             metrics={str(k): float(v)
                                      for k, v in metrics.items()})

    # ------------------------------------------------------------------
    # single-flight production
    # ------------------------------------------------------------------

    def ensure(self, fingerprint: str, produce: Producer,
               context: Optional[Dict[str, Any]] = None,
               ) -> Tuple[ArtifactEntry, bool]:
        """The entry for ``fingerprint``, producing it at most once.

        Returns ``(entry, hit)`` where ``hit`` is True when no encode ran
        in this call (a committed entry existed, or a concurrent leader
        committed one while we waited).  Exactly one process runs
        ``produce`` per fingerprint; a failed producer releases the lock
        so the key stays retryable.
        """
        entry = self.get(fingerprint)
        if entry is not None:
            self.hits += 1
            self._count("orchestrate.cache.hits")
            return entry, True
        while True:
            if self._acquire_lock(fingerprint):
                try:
                    # Double-check under the lock: a leader may have
                    # committed between our get() and the acquire.
                    entry = self.get(fingerprint)
                    if entry is not None:
                        self.hits += 1
                        self._count("orchestrate.cache.hits")
                        return entry, True
                    entry = self._produce_as_leader(fingerprint, produce,
                                                    context)
                    return entry, False
                finally:
                    self._release_lock(fingerprint)
            entry = self._wait_for_leader(fingerprint)
            if entry is not None:
                self.hits += 1
                self._count("orchestrate.cache.hits")
                return entry, True
            # The leader vanished without committing (crashed or failed);
            # loop and contend for leadership ourselves.

    def _produce_as_leader(self, fingerprint: str, produce: Producer,
                           context: Optional[Dict[str, Any]],
                           ) -> ArtifactEntry:
        self.misses += 1
        self._count("orchestrate.cache.misses")
        stream, metrics = produce()
        return self._commit(fingerprint, stream, metrics, context)

    def _commit(self, fingerprint: str, stream: EncodedVideo,
                metrics: Dict[str, float],
                context: Optional[Dict[str, Any]]) -> ArtifactEntry:
        entry_dir = self._entry_dir(fingerprint)
        entry_dir.mkdir(parents=True, exist_ok=True)
        payload = pack(stream)
        meta = {
            "schema": ARTIFACT_SCHEMA,
            "fingerprint": fingerprint,
            "encoder_version": ENCODER_VERSION,
            "codec": stream.codec,
            "width": stream.width,
            "height": stream.height,
            "bytes": len(payload),
            "sha256": hashlib.sha256(payload).hexdigest(),
            "metrics": dict(metrics),
            "context": dict(context or {}),
        }
        meta_bytes = json.dumps(meta, sort_keys=True, indent=2).encode("utf-8")
        # artifact first, meta last: meta.json is the commit point.
        crash_point("artifacts.commit.pre_artifact", str(entry_dir))
        self._atomic_write(entry_dir / "artifact.hdvb", payload)
        crash_point("artifacts.commit.pre_meta", str(entry_dir))
        self._atomic_write(entry_dir / "meta.json", meta_bytes)
        crash_point("artifacts.commit.post_meta", str(entry_dir))
        return ArtifactEntry(fingerprint=fingerprint, path=entry_dir,
                             metrics=dict(metrics))

    def _atomic_write(self, path: Path, data: bytes) -> None:
        ops = fileops()
        temp = str(path) + ".tmp"       # safe: writer holds the entry lock
        try:
            descriptor = ops.open(
                temp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
            try:
                written = ops.write(descriptor, data, path=temp)
                if written != len(data):
                    raise OrchestrateError(
                        f"short write to {temp}: {written}/{len(data)} bytes")
                ops.fsync(descriptor)
            finally:
                ops.close(descriptor)
            crash_point("artifacts.write.pre_replace", temp)
            ops.replace(temp, str(path))
        except CrashInjected:
            raise   # simulated death: leave the debris a real crash leaves
        except (OSError, OrchestrateError) as error:
            if os.path.exists(temp):
                os.unlink(temp)
            if isinstance(error, OrchestrateError):
                raise
            raise OrchestrateError(
                f"cannot write cache file {path}: {error}") from error

    # ------------------------------------------------------------------
    # the cross-process lock
    # ------------------------------------------------------------------

    def _acquire_lock(self, fingerprint: str) -> bool:
        ops = fileops()
        lock = self._lock_path(fingerprint)
        lock.parent.mkdir(parents=True, exist_ok=True)
        try:
            descriptor = ops.open(
                str(lock), os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        except FileExistsError:
            self._break_stale_lock(lock)
            return False
        except OSError as error:
            raise OrchestrateError(
                f"cannot claim cache lock for {fingerprint}: "
                f"{error}") from error
        try:
            ops.write(descriptor, f"{os.getpid()}\n".encode("ascii"),
                      path=str(lock))
        finally:
            ops.close(descriptor)
        return True

    def _release_lock(self, fingerprint: str) -> None:
        try:
            fileops().unlink(str(self._lock_path(fingerprint)))
        except FileNotFoundError:
            pass
        except OSError as error:
            raise OrchestrateError(
                f"cannot release cache lock for {fingerprint}: "
                f"{error}") from error

    def _break_stale_lock(self, lock: Path,
                          age_limit: Optional[float] = None) -> bool:
        """Remove ``lock`` if older than the threshold; True if removed.

        ``age_limit`` overrides ``stale_lock_seconds`` — fsck passes
        ``0.0`` when the owning process is known dead.
        """
        if age_limit is None:
            age_limit = self.stale_lock_seconds
        try:
            # Lock age *must* use the wall clock: st_mtime is epoch time,
            # and monotonic() is incomparable to it.  Operational lock
            # hygiene only -- no benchmark result depends on this read.
            age = time.time() - lock.stat().st_mtime  # hdvb: disable=HDVB200
        except OSError:
            return False    # already released
        if age > age_limit or age_limit <= 0.0:
            try:
                os.unlink(str(lock))
            except OSError:
                return False    # another waiter broke it first
            self.stale_locks_broken += 1
            self._count("cache.stale_locks_broken")
            return True
        return False

    def _wait_for_leader(self, fingerprint: str) -> Optional[ArtifactEntry]:
        """Poll until the leader commits, releases, or we time out."""
        self.flight_waits += 1
        self._count("orchestrate.cache.flight_waits")
        deadline = time.monotonic() + self.wait_timeout
        lock = self._lock_path(fingerprint)
        while time.monotonic() < deadline:
            entry = self.get(fingerprint)
            if entry is not None:
                return entry
            if not lock.exists():
                # Leader finished without committing: a failed encode.
                return self.get(fingerprint)
            time.sleep(self.poll_seconds)
        raise OrchestrateError(
            f"timed out after {self.wait_timeout:.0f}s waiting for the "
            f"single-flight leader of artifact {fingerprint}")

    def _count(self, name: str) -> None:
        if telemetry_state.enabled:
            telemetry_registry().counter(name).inc()

    def stats(self) -> Dict[str, int]:
        """Hit/miss/wait/stale-lock counters of this cache handle."""
        return {"hits": self.hits, "misses": self.misses,
                "flight_waits": self.flight_waits,
                "stale_locks_broken": self.stale_locks_broken}


__all__ = [
    "ARTIFACT_SCHEMA",
    "ArtifactCache",
    "ArtifactEntry",
    "DEFAULT_CACHE_DIR",
    "ENCODER_VERSION",
    "cell_fingerprint",
    "sequence_digest",
]
