"""Run-level reporting for the orchestrator.

A finished run folds into one :class:`OrchestrateSummary`: matrix
coverage (completed / failed / resumed-skipped cells), artifact-cache
economy (hit rate — the number the second run of any spec is gated on),
throughput (cells per second), a *scaling section* computing speedup and
parallel efficiency per worker count from cells that actually encoded,
and a sweet-spot recommendation (the smallest worker count reaching 90%
of the best observed speedup — past it, extra workers buy less than the
chunking rate overhead costs).

The summary persists through the observe store as two record families:

* ``orchestrate_run`` — one record per run with the OBS207-gated
  metrics (``cell_failure_rate``, ``cache_hit_rate``,
  ``cells_per_second``) plus coverage counts and wall time;
* ``orchestrate_scaling`` — one record per worker count with
  ``speedup`` and ``efficiency``.

Unlike the per-cell ``orchestrate`` records these carry wall-clock
measurements and are *not* bit-reproducible — that is why they are
separate benches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.bench.report import render_table
from repro.observe.record import BenchRecord, RunInfo
from repro.orchestrate.artifacts import ArtifactCache
from repro.orchestrate.scheduler import CellResult, RunState
from repro.orchestrate.spec import RunSpec

#: Run-summary bench name (the OBS207 gate target).
RUN_BENCH = "orchestrate_run"

#: Per-worker-count scaling bench name.
SCALING_BENCH = "orchestrate_scaling"

#: At most this many failure examples are kept on the summary.
MAX_FAILURE_EXAMPLES = 5

#: A worker count this close to the best speedup is "enough".
SWEET_SPOT_FRACTION = 0.9


@dataclass(frozen=True)
class ScalingRow:
    """Mean scaling behaviour at one worker count."""

    workers: int
    cells: int                 #: encoded (non-cache-hit) cells measured
    mean_seconds: float
    speedup: float             #: vs the 1-worker mean of the same run
    efficiency: float          #: speedup / workers


@dataclass
class OrchestrateSummary:
    """Everything the run report and the summary records need."""

    spec_name: str
    spec_fingerprint: str
    cells_total: int           #: cells in this invocation (incl. skipped)
    cells_run: int
    cells_failed: int
    cells_skipped: int         #: resumed: already ok under this run id
    cache_hits: int
    cache_misses: int
    flight_waits: int
    wall_seconds: float
    scaling: List[ScalingRow] = field(default_factory=list)
    sweet_spot: Optional[int] = None
    failure_examples: List[str] = field(default_factory=list)

    @property
    def cell_failure_rate(self) -> float:
        return self.cells_failed / self.cells_run if self.cells_run else 0.0

    @property
    def cache_hit_rate(self) -> float:
        looked_up = self.cache_hits + self.cache_misses
        return self.cache_hits / looked_up if looked_up else 0.0

    @property
    def cells_per_second(self) -> float:
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.cells_run / self.wall_seconds


def _scaling_rows(results: List[CellResult]) -> Tuple[List[ScalingRow],
                                                      Optional[int]]:
    """Speedup/efficiency per worker count, from cells that encoded.

    Cache hits are excluded — a hit's wall time measures the cache, not
    the encoder.  Cells are grouped by their identity minus the workers
    axis; only groups that include a 1-worker baseline contribute, so
    the speedups compare like with like.
    """
    encoded = [result for result in results
               if result.ok and not result.cache_hit]
    groups: Dict[Tuple[Any, ...], Dict[int, List[float]]] = {}
    for result in encoded:
        cell = result.cell
        key = (cell["codec"], cell["sequence"], cell["resolution"],
               cell["backend"], cell["qp"], cell["repeat"])
        groups.setdefault(key, {}).setdefault(
            int(cell["workers"]), []).append(result.seconds)
    per_worker: Dict[int, List[float]] = {}
    for by_workers in groups.values():
        baseline_times = by_workers.get(1)
        if not baseline_times:
            continue
        baseline = sum(baseline_times) / len(baseline_times)
        if baseline <= 0.0:
            continue
        for workers, times in by_workers.items():
            mean_seconds = sum(times) / len(times)
            if mean_seconds > 0.0:
                per_worker.setdefault(workers, []).append(
                    baseline / mean_seconds)
    if not per_worker:
        return [], None
    counts: Dict[int, Tuple[int, float]] = {}
    for result in encoded:
        workers = int(result.cell["workers"])
        cells, seconds = counts.get(workers, (0, 0.0))
        counts[workers] = (cells + 1, seconds + result.seconds)
    rows = []
    for workers in sorted(per_worker):
        speedups = per_worker[workers]
        speedup = sum(speedups) / len(speedups)
        cells, seconds = counts.get(workers, (len(speedups), 0.0))
        rows.append(ScalingRow(
            workers=workers,
            cells=cells,
            mean_seconds=seconds / cells if cells else 0.0,
            speedup=speedup,
            efficiency=speedup / workers,
        ))
    best = max(row.speedup for row in rows)
    sweet_spot = None
    for row in rows:        # rows are sorted by worker count
        if row.speedup >= SWEET_SPOT_FRACTION * best:
            sweet_spot = row.workers
            break
    return rows, sweet_spot


def summarize(spec: RunSpec, state: RunState,
              cache: Optional[ArtifactCache] = None) -> OrchestrateSummary:
    """Fold one :func:`~repro.orchestrate.scheduler.run_cells` outcome."""
    failures = state.failures
    scaling, sweet_spot = _scaling_rows(state.results)
    hits = cache.hits if cache is not None else state.cache_hits
    misses = (cache.misses if cache is not None
              else sum(1 for result in state.results
                       if result.ok and not result.cache_hit))
    return OrchestrateSummary(
        spec_name=spec.name,
        spec_fingerprint=spec.fingerprint(),
        cells_total=len(state.results) + len(state.skipped),
        cells_run=len(state.results),
        cells_failed=len(failures),
        cells_skipped=len(state.skipped),
        cache_hits=hits,
        cache_misses=misses,
        flight_waits=cache.flight_waits if cache is not None else 0,
        wall_seconds=state.wall_seconds,
        scaling=scaling,
        sweet_spot=sweet_spot,
        failure_examples=[failure.error
                          for failure in failures[:MAX_FAILURE_EXAMPLES]],
    )


def render_orchestrate(summary: OrchestrateSummary) -> str:
    """The human run report: coverage, cache economy, scaling, failures."""
    lines = [
        f"Orchestrate run: spec {summary.spec_name} "
        f"[{summary.spec_fingerprint}]",
        f"  cells: {summary.cells_run} run "
        f"({summary.cells_failed} failed), "
        f"{summary.cells_skipped} skipped (already complete)",
        f"  cache: {summary.cache_hits} hits / "
        f"{summary.cache_misses} misses "
        f"(hit rate {summary.cache_hit_rate:.1%})",
        f"  wall: {summary.wall_seconds:.2f} s "
        f"({summary.cells_per_second:.2f} cells/s)",
    ]
    if summary.scaling:
        rows = [
            [row.workers, row.cells, f"{row.mean_seconds:.3f} s",
             f"{row.speedup:.2f}x", f"{row.efficiency:.1%}"]
            for row in summary.scaling
        ]
        lines.append("")
        lines.append(render_table(
            ["Workers", "Cells", "Mean encode", "Speedup", "Efficiency"],
            rows, title="Scaling (encoded cells only)"))
        if summary.sweet_spot is not None:
            lines.append(
                f"Sweet spot: {summary.sweet_spot} worker(s) — smallest "
                f"count within {SWEET_SPOT_FRACTION:.0%} of the best "
                f"speedup")
    if summary.failure_examples:
        lines.append("")
        lines.append(f"Failures ({summary.cells_failed} cells; "
                     f"first {len(summary.failure_examples)}):")
        for example in summary.failure_examples:
            lines.append(f"  - {example}")
    return "\n".join(lines)


def summary_records(summary: OrchestrateSummary,
                    info: RunInfo) -> List[BenchRecord]:
    """The run-level records: one ``orchestrate_run`` plus one
    ``orchestrate_scaling`` per worker count."""
    context: Dict[str, Any] = {
        "spec": summary.spec_name,
        "spec_fingerprint": summary.spec_fingerprint,
    }
    for index, example in enumerate(summary.failure_examples):
        context[f"failure_example_{index}"] = example
    metrics = {
        "cells_total": float(summary.cells_total),
        "cells_run": float(summary.cells_run),
        "cells_failed": float(summary.cells_failed),
        "cells_skipped": float(summary.cells_skipped),
        "cache_hits": float(summary.cache_hits),
        "cache_misses": float(summary.cache_misses),
        "wall_seconds": summary.wall_seconds,
    }
    # The OBS207-gated rates are only recorded when they were actually
    # measured: an all-skipped resumed run encoded nothing, and writing
    # 0.0 would read as a total throughput/cache regression on the next
    # gate pass.
    if summary.cells_run:
        metrics["cell_failure_rate"] = summary.cell_failure_rate
        metrics["cells_per_second"] = summary.cells_per_second
    if summary.cache_hits + summary.cache_misses:
        metrics["cache_hit_rate"] = summary.cache_hit_rate
    records = [BenchRecord(
        run_id=info.run_id,
        bench=RUN_BENCH,
        axes={"spec": summary.spec_name},
        metrics=metrics,
        created=info.created,
        git_sha=info.git_sha,
        context=context,
    )]
    for row in summary.scaling:
        records.append(BenchRecord(
            run_id=info.run_id,
            bench=SCALING_BENCH,
            axes={"spec": summary.spec_name, "workers": row.workers},
            metrics={
                "speedup": row.speedup,
                "efficiency": row.efficiency,
                "mean_seconds": row.mean_seconds,
                "cells": float(row.cells),
            },
            created=info.created,
            git_sha=info.git_sha,
            context=dict(context),
        ))
    return records


__all__ = [
    "MAX_FAILURE_EXAMPLES",
    "OrchestrateSummary",
    "RUN_BENCH",
    "SCALING_BENCH",
    "SWEET_SPOT_FRACTION",
    "ScalingRow",
    "render_orchestrate",
    "summarize",
    "summary_records",
]
