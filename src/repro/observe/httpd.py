"""A stdlib HTTP endpoint serving the OpenMetrics exposition.

``hdvb-observe export --listen HOST:PORT`` turns the one-shot exporter
into a scrape target: every ``GET /metrics`` (or ``/``) re-reads the
history store and renders a fresh ``repro.observe`` exposition, so a
Prometheus pointed at a live serve/orchestrate run sees the newest
record of every axis on each scrape — no generation step, no staleness
window beyond the store itself.

Built on :class:`http.server.ThreadingHTTPServer` only (the repo's
no-new-dependencies rule); one scrape is one store read, which the
store's tolerant scan makes safe against concurrent appenders.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from repro.errors import ObserveError
from repro.observe.export import export_store
from repro.observe.store import HistoryStore

__all__ = ["CONTENT_TYPE", "parse_listen", "serve_metrics", "MetricsServer"]

#: The OpenMetrics content type Prometheus negotiates.
CONTENT_TYPE = "application/openmetrics-text; version=1.0.0; charset=utf-8"


def parse_listen(listen: str) -> Tuple[str, int]:
    """``HOST:PORT`` → pair; port 0 asks the OS for a free port."""
    host, separator, port_text = listen.rpartition(":")
    if not separator or not host:
        raise ObserveError(
            f"--listen needs HOST:PORT, got {listen!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise ObserveError(
            f"--listen port must be an integer, got {port_text!r}") from None
    if not 0 <= port <= 65535:
        raise ObserveError(f"--listen port out of range: {port}")
    return host, port


class _Handler(BaseHTTPRequestHandler):
    """GET → a freshly rendered exposition; anything else → 404."""

    server: "MetricsServer"

    def do_GET(self) -> None:  # noqa: N802 - stdlib handler naming
        if self.path.split("?", 1)[0] not in ("/", "/metrics"):
            self.send_error(404, "only / and /metrics are served")
            return
        try:
            body = self.server.render().encode("utf-8")
        except Exception as error:  # noqa: BLE001 - must answer the scrape
            self.send_error(500, f"exposition failed: {error}")
            return
        self.send_response(200)
        self.send_header("Content-Type", CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: object) -> None:
        pass  # scrapes are not stderr's business


class MetricsServer(ThreadingHTTPServer):
    """The scrape target; owns the store handle and bench filter."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], store: HistoryStore,
                 bench: Optional[str] = None) -> None:
        super().__init__(address, _Handler)
        self.store = store
        self.bench = bench

    def render(self) -> str:
        """On-scrape refresh: re-read the store, render the exposition."""
        return export_store(self.store, self.bench)

    @property
    def url(self) -> str:
        host, port = self.server_address[0], self.server_address[1]
        return f"http://{host}:{port}/metrics"

    def serve_background(self) -> threading.Thread:
        """Run ``serve_forever`` on a daemon thread (tests, embedding)."""
        thread = threading.Thread(target=self.serve_forever,
                                  name="hdvb-observe-httpd", daemon=True)
        thread.start()
        return thread


def serve_metrics(store: HistoryStore, listen: str,
                  bench: Optional[str] = None) -> MetricsServer:
    """Bind a :class:`MetricsServer` on ``listen`` (not yet serving)."""
    try:
        return MetricsServer(parse_listen(listen), store, bench)
    except OSError as error:
        raise ObserveError(
            f"cannot bind --listen {listen}: {error}") from None
