"""OpenMetrics / Prometheus text exposition of the benchmark history.

Renders the newest record of every (bench, axis) group as labelled
gauge samples (``hdvb_performance_fps{codec="mpeg2",...} 123.4``), one
``hdvb_record_info`` series carrying run identity, and — when records
attach telemetry snapshots — the merged counters, gauges and histograms
of the :class:`~repro.telemetry.metrics.MetricsRegistry`, reconstructed
through the public ``from_dict`` round-trip (never by reaching into
instrument internals).

The output follows the OpenMetrics text format: one ``# TYPE`` line per
family, samples grouped by family, counter samples suffixed ``_total``,
histogram samples as cumulative ``_bucket{le=...}`` plus ``_count`` and
``_sum``, label values escaped, and a final ``# EOF`` terminator — so a
Prometheus scrape or ``promtool check metrics`` accepts it as is.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.observe.record import BenchRecord
from repro.observe.store import HistoryStore
from repro.telemetry.metrics import MetricsRegistry, MetricsSnapshot

#: Prefix of every exported family.
METRIC_PREFIX = "hdvb"

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_BAD_NAME_CHAR = re.compile(r"[^a-zA-Z0-9_:]")
_BAD_LABEL_CHAR = re.compile(r"[^a-zA-Z0-9_]")


def metric_name(*parts: str) -> str:
    """Join parts into a legal metric family name."""
    joined = "_".join(_BAD_NAME_CHAR.sub("_", part) for part in parts if part)
    if not joined or not _NAME_OK.match(joined):
        joined = "_" + joined
    return joined


def label_name(raw: str) -> str:
    cleaned = _BAD_LABEL_CHAR.sub("_", raw)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def escape_label_value(raw: Any) -> str:
    text = str(raw)
    return (text.replace("\\", r"\\")
                .replace("\"", r"\"")
                .replace("\n", r"\n"))


def format_value(value: float) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def render_labels(labels: Mapping[str, Any]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{label_name(key)}="{escape_label_value(value)}"'
        for key, value in sorted(labels.items())
    )
    return "{" + body + "}"


class _Family:
    """One metric family: TYPE/HELP header plus its samples in order."""

    def __init__(self, name: str, kind: str, help_text: str) -> None:
        self.name = name
        self.kind = kind
        self.help_text = help_text
        self.samples: List[Tuple[str, Dict[str, Any], float]] = []

    def add(self, labels: Mapping[str, Any], value: float,
            suffix: str = "") -> None:
        self.samples.append((suffix, dict(labels), value))

    def render(self) -> List[str]:
        lines = [f"# TYPE {self.name} {self.kind}"]
        if self.help_text:
            lines.append(f"# HELP {self.name} {self.help_text}")
        for suffix, labels, value in self.samples:
            lines.append(
                f"{self.name}{suffix}{render_labels(labels)} "
                f"{format_value(value)}"
            )
        return lines


def _record_families(records: Sequence[BenchRecord]) -> List[_Family]:
    families: Dict[str, _Family] = {}
    info = _Family(
        metric_name(METRIC_PREFIX, "record", "info"), "gauge",
        "identity of the newest record per (bench, axis): run id and git SHA",
    )
    for record in records:
        base_labels = {"bench": record.bench, **record.axes}
        info.add({**base_labels, "run_id": record.run_id,
                  "git_sha": record.git_sha}, 1.0)
        for metric, value in sorted(record.metrics.items()):
            name = metric_name(METRIC_PREFIX, record.bench, metric)
            family = families.get(name)
            if family is None:
                family = _Family(
                    name, "gauge",
                    f"{record.bench} benchmark metric {metric} "
                    f"(newest record per axis)",
                )
                families[name] = family
            family.add(base_labels, value)
    ordered = [info] if info.samples else []
    ordered.extend(families[name] for name in sorted(families))
    return ordered


def _merged_telemetry(records: Iterable[BenchRecord]) -> Optional[MetricsRegistry]:
    merged: Optional[MetricsRegistry] = None
    for record in records:
        if not record.telemetry:
            continue
        snapshot = MetricsSnapshot.from_dict(record.telemetry)
        if merged is None:
            merged = MetricsRegistry()
        merged.merge(snapshot)
    return merged


def _telemetry_families(registry: MetricsRegistry) -> List[_Family]:
    families: List[_Family] = []
    snapshot = registry.snapshot().to_dict()
    for name, data in sorted(snapshot["metrics"].items()):
        kind = data["kind"]
        base = metric_name(METRIC_PREFIX, "telemetry", name)
        if kind == "counter":
            family = _Family(base, "counter", f"telemetry counter {name}")
            family.add({}, data["value"], suffix="_total")
        elif kind == "gauge":
            family = _Family(base, "gauge", f"telemetry gauge {name}")
            family.add({}, data["value"])
            family.add({"aggregation": "max"}, data["max"])
        else:
            family = _Family(base, "histogram", f"telemetry histogram {name}")
            cumulative = 0
            for bound, count in zip(data["buckets"], data["counts"]):
                cumulative += count
                family.add({"le": format_value(float(bound))}, cumulative,
                           suffix="_bucket")
            family.add({"le": "+Inf"}, data["count"], suffix="_bucket")
            family.add({}, data["count"], suffix="_count")
            family.add({}, data["sum"], suffix="_sum")
        families.append(family)
    return families


def render_openmetrics(records: Sequence[BenchRecord],
                       registry: Optional[MetricsRegistry] = None) -> str:
    """The full exposition for ``records`` (plus optional live registry)."""
    lines: List[str] = []
    for family in _record_families(records):
        lines.extend(family.render())
    merged = _merged_telemetry(records)
    if registry is not None:
        if merged is None:
            merged = MetricsRegistry()
        merged.merge(registry.snapshot())
    if merged is not None:
        for family in _telemetry_families(merged):
            lines.extend(family.render())
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def export_store(store: HistoryStore, bench: Optional[str] = None) -> str:
    """Exposition of the newest record per (bench, axis) in ``store``."""
    latest = store.latest_per_axis(bench)
    ordered = [latest[key] for key in sorted(latest)]
    return render_openmetrics(ordered)
