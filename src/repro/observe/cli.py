"""``hdvb-observe``: query and gate the benchmark history store.

    hdvb-observe record results.json [...]   # ingest --json bench documents
    hdvb-observe compare [--runs A,B]        # per-axis metric deltas
    hdvb-observe trend --bench performance --metric fps
    hdvb-observe gate [--format human|json]  # regression detector (CI gate)
    hdvb-observe slo [--spec slo.json]       # SLO burn-rate evaluation
    hdvb-observe timeline CORRELATION-ID --events events.jsonl
    hdvb-observe tail [--follow]             # follow history + event log
    hdvb-observe export [--output FILE] [--listen HOST:PORT]
    hdvb-observe fsck [--repair]             # corruption check + quarantine

Exit codes follow the ``hdvb-lint`` convention: 0 — clean, 1 — at least
one finding (``gate``, ``slo`` and ``fsck``), 2 — usage or I/O error.
With ``fsck --repair`` the exit code reflects the *post-repair* state:
0 iff the re-check comes back clean.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from typing import List, Optional

from repro.analysis.reporters import render_human, render_json
from repro.bench.report import render_table
from repro.errors import ObserveError, ReproError
from repro.observe.record import BenchRecord, records_from_document
from repro.observe.regress import (
    GateConfig,
    compare_runs,
    detect_regressions,
    metric_trend,
)
from repro.observe.store import DEFAULT_STORE_DIR, HistoryStore


def _add_store_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--store", default=DEFAULT_STORE_DIR, metavar="DIR",
                        help=f"history store directory "
                             f"(default: {DEFAULT_STORE_DIR})")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hdvb-observe",
        description="Persistent benchmark results: record, compare, trend, "
                    "regression-gate and export the bench history.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    rec = sub.add_parser("record", help="append records from --json bench "
                                        "documents to the store")
    rec.add_argument("files", nargs="+", metavar="FILE",
                     help="repro.observe.records/1 documents ('-' = stdin)")
    rec.add_argument("--run-id", default="",
                     help="override the run id of every ingested record")
    _add_store_argument(rec)

    cmp_parser = sub.add_parser("compare", help="metric deltas between two runs")
    cmp_parser.add_argument("--runs", default="", metavar="A,B",
                            help="run ids to compare "
                                 "(default: the two newest runs)")
    cmp_parser.add_argument("--bench", default=None,
                            help="restrict to one bench")
    _add_store_argument(cmp_parser)

    trend = sub.add_parser("trend", help="per-axis history of one metric")
    trend.add_argument("--bench", required=True,
                       help="bench to trend (performance, ratedistortion, ...)")
    trend.add_argument("--metric", default="fps",
                       help="metric to trend (default: fps)")
    _add_store_argument(trend)

    gate = sub.add_parser("gate", help="flag regressions of the newest record "
                                       "per axis against its rolling baseline")
    gate.add_argument("--bench", default=None, help="restrict to one bench")
    gate.add_argument("--format", choices=("human", "json"), default="human",
                      help="report format (default: human)")
    gate.add_argument("--window", type=int, default=GateConfig().window,
                      help="baseline records per axis (default: %(default)s)")
    gate.add_argument("--mad-sigmas", type=float,
                      default=GateConfig().mad_sigmas,
                      help="noise band width in robust sigmas "
                           "(default: %(default)s)")
    gate.add_argument("--fps-drop", type=float, default=None,
                      help="throughput-drop tolerance as a fraction "
                           "(default: 0.10)")
    gate.add_argument("--psnr-drop", type=float, default=None,
                      help="PSNR-drop tolerance in dB (default: 0.1)")
    gate.add_argument("--bitrate-growth", type=float, default=None,
                      help="bitrate-growth tolerance as a fraction "
                           "(default: 0.02)")
    _add_store_argument(gate)

    slo = sub.add_parser("slo", help="evaluate service-level objectives "
                                     "with error-budget burn rates")
    slo.add_argument("--spec", default="", metavar="FILE",
                     help="repro.observe.slo/1 spec (default: built-in "
                          "objectives)")
    slo.add_argument("--bench", default=None, help="restrict to one bench")
    slo.add_argument("--format", choices=("human", "json"), default="human",
                     help="report format (default: human)")
    _add_store_argument(slo)

    timeline = sub.add_parser(
        "timeline", help="reconstruct one correlation id's ordered event "
                         "timeline from the event log, flight dumps and "
                         "trace spans")
    timeline.add_argument("correlation_id", metavar="CORRELATION-ID",
                          help="session/cell/run id to reconstruct")
    timeline.add_argument("--events", default="", metavar="FILE",
                          help="canonical event-log JSONL "
                               "(from hdvb-bench serve --events)")
    timeline.add_argument("--flightrec", default="", metavar="DIR",
                          help="flight-dump directory "
                               "(default: STORE/flightrec)")
    timeline.add_argument("--trace", default="", metavar="FILE",
                          help="repro.telemetry.trace/1 JSON export")
    timeline.add_argument("--format", choices=("human", "json"),
                          default="human",
                          help="report format (default: human)")
    _add_store_argument(timeline)

    tail = sub.add_parser("tail", help="render (and optionally follow) the "
                                       "tails of the history store and an "
                                       "event log")
    tail.add_argument("--events", default="", metavar="FILE",
                      help="event-log JSONL to follow alongside the history")
    tail.add_argument("--lines", type=int, default=10,
                      help="initial lines per file (default: %(default)s)")
    tail.add_argument("--follow", action="store_true",
                      help="poll for appended lines until --max-seconds")
    tail.add_argument("--interval", type=float, default=0.2,
                      help="poll interval in seconds (default: %(default)s)")
    tail.add_argument("--max-seconds", type=float, default=None,
                      help="stop following after this long (default: "
                           "until interrupted)")
    _add_store_argument(tail)

    exp = sub.add_parser("export", help="OpenMetrics text exposition of the "
                                        "newest records plus merged telemetry")
    exp.add_argument("--bench", default=None, help="restrict to one bench")
    exp.add_argument("--output", default="", metavar="FILE",
                     help="write to FILE instead of stdout")
    exp.add_argument("--listen", default="", metavar="HOST:PORT",
                     help="serve the exposition over HTTP with on-scrape "
                          "refresh instead of writing it once")
    _add_store_argument(exp)

    compact = sub.add_parser("compact", help="bound the history: keep the "
                                             "newest N records per axis")
    compact.add_argument("--keep-last", type=int, default=50,
                         help="records kept per (bench, axis) "
                              "(default: %(default)s)")
    _add_store_argument(compact)

    fsck = sub.add_parser("fsck", help="check the history for corruption "
                                       "(torn appends, mangled lines, "
                                       "orphan temps)")
    fsck.add_argument("--repair", action="store_true",
                      help="quarantine bad byte ranges and delete orphan "
                           "temps; exit 0 iff the re-check is clean")
    fsck.add_argument("--format", choices=("human", "json"), default="human",
                      help="report format (default: human)")
    _add_store_argument(fsck)
    return parser


def _require_history(store: HistoryStore) -> None:
    if not store.exists():
        raise ObserveError(
            f"no history at {store.path} (run a bench with --record, or "
            f"ingest documents with 'hdvb-observe record')"
        )


def _cmd_record(options: argparse.Namespace) -> int:
    store = HistoryStore(options.store)
    total = 0
    for name in options.files:
        if name == "-":
            payload = sys.stdin.read()
        else:
            try:
                with open(name, "r", encoding="utf-8") as handle:
                    payload = handle.read()
            except OSError as error:
                raise ObserveError(f"cannot read {name}: {error}") from error
        try:
            document = json.loads(payload)
        except ValueError as error:
            raise ObserveError(f"{name}: not JSON: {error}") from error
        records = records_from_document(document)
        if options.run_id:
            records = [replace(record, run_id=options.run_id)
                       for record in records]
        total += store.append_many(records)
    print(f"hdvb-observe: appended {total} record(s) to {store.path}",
          file=sys.stderr)
    return 0


def _pick_runs(store: HistoryStore, raw: str) -> List[str]:
    if raw:
        runs = [token.strip() for token in raw.split(",") if token.strip()]
        if len(runs) != 2:
            raise ObserveError(f"--runs needs exactly two run ids, got {raw!r}")
        return runs
    known = store.run_ids()
    if len(known) < 2:
        raise ObserveError(
            f"need two recorded runs to compare, found {len(known)}")
    return known[-2:]


def _cmd_compare(options: argparse.Namespace) -> int:
    store = HistoryStore(options.store)
    _require_history(store)
    run_a, run_b = _pick_runs(store, options.runs)
    rows = compare_runs(store, run_a, run_b, bench=options.bench)
    if not rows:
        print(f"no shared (bench, axis, metric) between {run_a} and {run_b}")
        return 0
    rendered = []
    for bench, axis_key, metric, value_a, value_b in rows:
        delta = value_b - value_a
        percent = f"{delta / value_a * 100.0:+.1f}%" if value_a else "n/a"
        rendered.append((bench, axis_key, metric,
                         f"{value_a:.3f}", f"{value_b:.3f}",
                         f"{delta:+.3f}", percent))
    print(render_table(
        ["bench", "axes", "metric", run_a, run_b, "delta", "delta %"],
        rendered,
        title=f"Benchmark comparison: {run_a} -> {run_b}",
    ))
    return 0


def _cmd_trend(options: argparse.Namespace) -> int:
    store = HistoryStore(options.store)
    _require_history(store)
    series = metric_trend(store, options.bench, options.metric)
    if not series:
        raise ObserveError(
            f"no {options.metric!r} history for bench {options.bench!r} "
            f"in {store.path}")
    rows = []
    for axis_key, points in series.items():
        values = [value for _, value in points]
        rows.append((
            axis_key,
            len(points),
            f"{min(values):.3f}",
            f"{max(values):.3f}",
            f"{values[-1]:.3f}",
            " ".join(f"{value:.1f}" for _, value in points[-8:]),
        ))
    print(render_table(
        ["axes", "n", "min", "max", "latest", "series (newest last)"],
        rows,
        title=f"Trend: {options.bench} {options.metric}",
    ))
    return 0


def _cmd_gate(options: argparse.Namespace) -> int:
    store = HistoryStore(options.store)
    _require_history(store)
    config = GateConfig(
        window=options.window, mad_sigmas=options.mad_sigmas,
    ).with_thresholds(
        fps_drop=options.fps_drop,
        psnr_drop_db=options.psnr_drop,
        bitrate_growth=options.bitrate_growth,
    )
    findings = detect_regressions(store, bench=options.bench, config=config)
    if findings:
        # A failed gate is a post-mortem moment: snapshot whatever the
        # flight recorder holds (no-op while the event log is off).
        from repro.telemetry import flightrec

        flightrec.recorder.dump(
            "gate.fail",
            extra={"findings": len(findings),
                   "rules": sorted({f.rule_id for f in findings})})
    groups = store.history_per_axis(options.bench)
    stats = {"files_scanned": len(groups)}
    if options.format == "json":
        print(render_json(findings, **stats))
    else:
        print(render_human(findings, **stats))
        if store.skipped_lines:
            print(f"warning: {store.skipped_lines} malformed history "
                  f"line(s) skipped", file=sys.stderr)
    return 0 if not findings else 1


def _cmd_slo(options: argparse.Namespace) -> int:
    from repro.observe.slo import (
        DEFAULT_SLOS, evaluate_slos, load_slo_spec, render_slo_table,
        slo_document,
    )

    store = HistoryStore(options.store)
    _require_history(store)
    objectives = (load_slo_spec(options.spec) if options.spec
                  else DEFAULT_SLOS)
    statuses, findings = evaluate_slos(store, objectives,
                                       bench=options.bench)
    if options.format == "json":
        print(json.dumps(slo_document(statuses, findings), indent=2,
                         sort_keys=True))
    else:
        sys.stdout.write(render_slo_table(statuses))
        if findings:
            print()
            print(render_human(findings))
    return 0 if not findings else 1


def _cmd_timeline(options: argparse.Namespace) -> int:
    import os

    from repro.observe.timeline import (
        build_timeline, load_events_jsonl, load_flight_dumps,
        render_timeline,
    )

    events = (load_events_jsonl(options.events) if options.events else [])
    flight_dir = options.flightrec or os.path.join(options.store,
                                                   "flightrec")
    dumps = load_flight_dumps(flight_dir)
    trace = None
    if options.trace:
        try:
            with open(options.trace, "r", encoding="utf-8") as handle:
                trace = json.load(handle)
        except (OSError, ValueError) as error:
            raise ObserveError(
                f"cannot read trace {options.trace}: {error}") from error
    timeline = build_timeline(options.correlation_id, events=events,
                              dumps=dumps, trace=trace)
    if options.format == "json":
        print(json.dumps(timeline, indent=2, sort_keys=True))
    else:
        sys.stdout.write(render_timeline(timeline))
    return 0


def _cmd_tail(options: argparse.Namespace) -> int:
    import os

    from repro.observe.tail import tail_files

    history = os.path.join(options.store, "history.jsonl")
    tail_files(
        history_path=history if os.path.exists(history) else None,
        events_path=options.events or None,
        lines=options.lines,
        follow=options.follow,
        interval=options.interval,
        max_seconds=options.max_seconds,
    )
    return 0


def _cmd_export(options: argparse.Namespace) -> int:
    from repro.observe.export import export_store

    store = HistoryStore(options.store)
    _require_history(store)
    if options.listen:
        from repro.observe.httpd import serve_metrics

        server = serve_metrics(store, options.listen, bench=options.bench)
        print(f"hdvb-observe: serving OpenMetrics on {server.url} "
              f"(Ctrl-C to stop)", file=sys.stderr)
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.server_close()
        return 0
    text = export_store(store, bench=options.bench)
    if options.output:
        try:
            # An exposition file is a report, not durable state: a torn
            # write is harmless (the next scrape rewrites it whole).
            with open(options.output, "w",  # hdvb: disable=HDVB190
                      encoding="utf-8") as handle:
                handle.write(text)
        except OSError as error:
            raise ObserveError(
                f"cannot write {options.output}: {error}") from error
        print(f"hdvb-observe: wrote exposition to {options.output}",
              file=sys.stderr)
    else:
        sys.stdout.write(text)
    return 0


def _cmd_compact(options: argparse.Namespace) -> int:
    store = HistoryStore(options.store)
    _require_history(store)
    dropped = store.compact(keep_last=options.keep_last)
    print(f"hdvb-observe: dropped {dropped} record(s), kept newest "
          f"{options.keep_last} per axis", file=sys.stderr)
    return 0


def _cmd_fsck(options: argparse.Namespace) -> int:
    from repro.observe.fsck import FSCK_SCHEMA, fsck_store

    store = HistoryStore(options.store)
    findings = fsck_store(store, repair=options.repair)
    if options.repair and findings:
        # The exit code must certify the post-repair state, not the mess
        # we started from: re-check and report anything still wrong.
        remaining = fsck_store(store, repair=False)
    else:
        remaining = findings
    if options.format == "json":
        print(render_json(findings, schema=FSCK_SCHEMA))
    else:
        print(render_human(findings))
        if options.repair and findings:
            state = "clean" if not remaining else f"{len(remaining)} left"
            print(f"hdvb-observe: repaired {len(findings)} finding(s); "
                  f"re-check {state}", file=sys.stderr)
    return 0 if not remaining else 1


_COMMANDS = {
    "record": _cmd_record,
    "compare": _cmd_compare,
    "trend": _cmd_trend,
    "gate": _cmd_gate,
    "slo": _cmd_slo,
    "timeline": _cmd_timeline,
    "tail": _cmd_tail,
    "export": _cmd_export,
    "compact": _cmd_compact,
    "fsck": _cmd_fsck,
}


def main(argv: Optional[List[str]] = None) -> int:
    options = build_parser().parse_args(argv)
    try:
        return _COMMANDS[options.command](options)
    except ReproError as error:
        print(f"hdvb-observe: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
