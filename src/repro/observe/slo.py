"""Declarative SLOs with error budgets and multi-window burn rates.

Where :mod:`repro.observe.regress` asks *did this run move against its
own history*, this module asks the service-level question: *is the
system meeting its stated objectives over time*?  An objective is a
bound on one observe-store metric over a trailing window of records —
the reproduction's stand-ins for SRE service-level objectives, e.g. the
paper's real-time line (decode fps >= 25 at 720p) or the origin's
deadline discipline (miss rate <= 2%).

Specs are schema-versioned documents (``repro.observe.slo/1``)::

    {"schema": "repro.observe.slo/1",
     "objectives": [
       {"name": "serve-deadline-miss", "bench": "serve",
        "metric": "deadline_miss_rate", "objective": 0.02,
        "direction": "max", "window": 8, "fast_window": 2,
        "budget": 0.25, "burn_threshold": 2.0}]}

Evaluation follows the multi-window burn-rate pattern: each window's
**burn rate** is the fraction of violating records divided by the error
``budget`` (the tolerated violating fraction).  Burn 1.0 consumes the
budget exactly; a *fast* window burning at ``burn_threshold`` while the
*slow* window also burns ≥ 1.0 pages (OBS301) — that combination means
the breach is both severe and sustained, the standard defence against
paging on a single bad record.  Exhausting the slow-window budget
outright is OBS302; the newest record simply violating the bound is
OBS300 (informational severity ordering: 300 < 301 < 302 numerically,
reported together).

Findings reuse :class:`repro.analysis.findings.Finding`, so the lint
reporters and the 0/1/2 exit-code convention apply unchanged, and the
whole pass is pure arithmetic over stored records — same history, same
findings, bit for bit.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.findings import Finding, sort_findings
from repro.errors import ObserveError
from repro.observe.record import BenchRecord
from repro.observe.store import HistoryStore

#: Schema of one SLO spec document.
SLO_SCHEMA = "repro.observe.slo/1"

#: Trailing records in the slow window by default.
DEFAULT_WINDOW = 8

#: Trailing records in the fast window by default.
DEFAULT_FAST_WINDOW = 2

#: Fraction of a window's records allowed to violate the objective.
DEFAULT_BUDGET = 0.25

#: Fast-window burn rate that, combined with slow burn >= 1, alerts.
DEFAULT_BURN_THRESHOLD = 2.0


@dataclass(frozen=True)
class SloObjective:
    """One service-level objective over an observe-store metric.

    ``direction`` is the side the bound sits on: ``"max"`` means the
    metric must stay at or below ``objective`` (a miss-rate ceiling),
    ``"min"`` means at or above (an fps floor).  ``axes`` filters the
    records the objective applies to (subset match on the record's
    axes); empty applies to every axis group of ``bench``.
    """

    name: str
    bench: str
    metric: str
    objective: float
    direction: str = "max"            # "max" | "min"
    window: int = DEFAULT_WINDOW
    fast_window: int = DEFAULT_FAST_WINDOW
    budget: float = DEFAULT_BUDGET
    burn_threshold: float = DEFAULT_BURN_THRESHOLD
    axes: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ObserveError("SLO objective needs a non-empty name")
        if not self.bench or not self.metric:
            raise ObserveError(
                f"SLO {self.name!r} needs both a bench and a metric")
        if self.direction not in ("max", "min"):
            raise ObserveError(
                f"SLO {self.name!r} direction must be 'max' or 'min', "
                f"got {self.direction!r}")
        if self.window < 1 or self.fast_window < 1:
            raise ObserveError(
                f"SLO {self.name!r} windows must be >= 1, got "
                f"window={self.window} fast_window={self.fast_window}")
        if self.fast_window > self.window:
            raise ObserveError(
                f"SLO {self.name!r} fast_window ({self.fast_window}) "
                f"cannot exceed window ({self.window})")
        if not 0.0 < self.budget <= 1.0:
            raise ObserveError(
                f"SLO {self.name!r} budget must be in (0, 1], "
                f"got {self.budget}")
        if self.burn_threshold < 1.0:
            raise ObserveError(
                f"SLO {self.name!r} burn_threshold must be >= 1, "
                f"got {self.burn_threshold}")

    def violates(self, value: float) -> bool:
        if self.direction == "max":
            return value > self.objective
        return value < self.objective

    @property
    def bound_text(self) -> str:
        sign = "<=" if self.direction == "max" else ">="
        return f"{self.metric} {sign} {self.objective:g}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "bench": self.bench,
            "metric": self.metric,
            "objective": self.objective,
            "direction": self.direction,
            "window": self.window,
            "fast_window": self.fast_window,
            "budget": self.budget,
            "burn_threshold": self.burn_threshold,
            "axes": dict(self.axes),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SloObjective":
        if not isinstance(data, Mapping):
            raise ObserveError(
                f"SLO objective must be an object, got {type(data).__name__}")
        unknown = set(data) - {
            "name", "bench", "metric", "objective", "direction", "window",
            "fast_window", "budget", "burn_threshold", "axes"}
        if unknown:
            raise ObserveError(
                f"SLO objective has unknown keys: {sorted(unknown)}")
        try:
            return cls(
                name=str(data["name"]),
                bench=str(data["bench"]),
                metric=str(data["metric"]),
                objective=float(data["objective"]),
                direction=str(data.get("direction", "max")),
                window=int(data.get("window", DEFAULT_WINDOW)),
                fast_window=int(data.get("fast_window",
                                         DEFAULT_FAST_WINDOW)),
                budget=float(data.get("budget", DEFAULT_BUDGET)),
                burn_threshold=float(data.get("burn_threshold",
                                              DEFAULT_BURN_THRESHOLD)),
                axes=dict(data.get("axes", {})),
            )
        except KeyError as error:
            raise ObserveError(
                f"SLO objective missing required key {error.args[0]!r}"
            ) from None
        except (TypeError, ValueError) as error:
            raise ObserveError(f"malformed SLO objective: {error}") from None


#: The default objectives: the origin's deadline discipline, the paper's
#: 25 fps real-time line at the 720p tier, and graceful degradation.
DEFAULT_SLOS: Tuple[SloObjective, ...] = (
    SloObjective(name="serve-deadline-miss", bench="serve",
                 metric="deadline_miss_rate", objective=0.02,
                 direction="max"),
    SloObjective(name="serve-graceful", bench="serve",
                 metric="graceful_rate", objective=0.98, direction="min"),
    SloObjective(name="decode-realtime-720p", bench="performance",
                 metric="fps", objective=25.0, direction="min",
                 axes={"operation": "decode", "resolution": "720p25"}),
)


def load_slo_spec(path: str) -> Tuple[SloObjective, ...]:
    """Parse and validate a ``repro.observe.slo/1`` spec file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as error:
        raise ObserveError(f"cannot read SLO spec {path}: {error}") from None
    except json.JSONDecodeError as error:
        raise ObserveError(
            f"SLO spec {path} is not valid JSON: {error}") from None
    if not isinstance(document, dict):
        raise ObserveError(f"SLO spec {path} must be a JSON object")
    schema = document.get("schema")
    if schema != SLO_SCHEMA:
        raise ObserveError(
            f"SLO spec {path} has schema {schema!r}, expected {SLO_SCHEMA!r}")
    objectives = document.get("objectives")
    if not isinstance(objectives, list) or not objectives:
        raise ObserveError(
            f"SLO spec {path} needs a non-empty 'objectives' list")
    parsed = tuple(SloObjective.from_dict(entry) for entry in objectives)
    names = [objective.name for objective in parsed]
    if len(set(names)) != len(names):
        raise ObserveError(f"SLO spec {path} has duplicate objective names")
    return parsed


@dataclass(frozen=True)
class SloStatus:
    """The evaluated state of one objective on one axis group."""

    objective: SloObjective
    axis_key: str
    records: int                  #: records considered (<= window)
    violations: int               #: violating records in the slow window
    fast_violations: int          #: violating records in the fast window
    slow_burn: float              #: violating fraction / budget, slow
    fast_burn: float              #: violating fraction / budget, fast
    latest_value: Optional[float]
    latest_run: str

    @property
    def budget_remaining(self) -> float:
        """Fraction of the slow-window error budget still unspent."""
        return max(0.0, 1.0 - self.slow_burn)

    @property
    def breached(self) -> bool:
        return self.slow_burn > 1.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "objective": self.objective.name,
            "bound": self.objective.bound_text,
            "axis": self.axis_key,
            "records": self.records,
            "violations": self.violations,
            "fast_violations": self.fast_violations,
            "slow_burn": round(self.slow_burn, 6),
            "fast_burn": round(self.fast_burn, 6),
            "budget_remaining": round(self.budget_remaining, 6),
            "latest_value": self.latest_value,
            "latest_run": self.latest_run,
        }


def _axes_match(objective: SloObjective, record: BenchRecord) -> bool:
    return all(str(record.axes.get(key)) == str(value)
               for key, value in objective.axes.items())


def _burn(records: Sequence[BenchRecord], objective: SloObjective,
          ) -> Tuple[int, float]:
    values = [record.metrics[objective.metric] for record in records]
    violations = sum(1 for value in values if objective.violates(value))
    if not values:
        return 0, 0.0
    return violations, (violations / len(values)) / objective.budget


def evaluate_slo(history: Sequence[BenchRecord], objective: SloObjective,
                 axis_key: str) -> Optional[SloStatus]:
    """Evaluate one objective over one axis group's trailing records."""
    considered = [record for record in history
                  if objective.metric in record.metrics]
    if not considered:
        return None
    slow = considered[-objective.window:]
    fast = considered[-objective.fast_window:]
    violations, slow_burn = _burn(slow, objective)
    fast_violations, fast_burn = _burn(fast, objective)
    newest = considered[-1]
    return SloStatus(
        objective=objective,
        axis_key=axis_key,
        records=len(slow),
        violations=violations,
        fast_violations=fast_violations,
        slow_burn=slow_burn,
        fast_burn=fast_burn,
        latest_value=newest.metrics.get(objective.metric),
        latest_run=newest.run_id,
    )


def evaluate_slos(store: HistoryStore,
                  objectives: Sequence[SloObjective] = DEFAULT_SLOS,
                  bench: Optional[str] = None,
                  ) -> Tuple[List[SloStatus], List[Finding]]:
    """Evaluate every objective over the store; statuses plus findings.

    Objectives whose bench has no matching records evaluate to nothing
    (an empty store is a clean store — there is no budget to burn).
    """
    location = str(store.path)
    grouped = store.history_per_axis()
    statuses: List[SloStatus] = []
    findings: List[Finding] = []
    for objective in objectives:
        if bench is not None and objective.bench != bench:
            continue
        for (group_bench, axis_key), history in sorted(grouped.items()):
            if group_bench != objective.bench:
                continue
            matching = [record for record in history
                        if _axes_match(objective, record)]
            status = evaluate_slo(matching, objective, axis_key)
            if status is None:
                continue
            statuses.append(status)
            findings.extend(_status_findings(status, location))
    return statuses, sort_findings(findings)


def _status_findings(status: SloStatus, location: str) -> List[Finding]:
    objective = status.objective
    module = f"{objective.bench}:{status.axis_key}"
    findings: List[Finding] = []
    latest = status.latest_value
    if latest is not None and objective.violates(latest):
        findings.append(Finding(
            rule_id="OBS300",
            path=location,
            module=module,
            line=0,
            message=(
                f"SLO {objective.name}: latest record violates "
                f"{objective.bound_text} (value {latest:.4g}, "
                f"run {status.latest_run})"),
            hint="a single violation spends budget; watch the burn rate",
        ))
    if (status.fast_burn >= objective.burn_threshold
            and status.slow_burn >= 1.0):
        findings.append(Finding(
            rule_id="OBS301",
            path=location,
            module=module,
            line=0,
            message=(
                f"SLO {objective.name}: burn-rate alert — fast window "
                f"burning at {status.fast_burn:.2f}x "
                f"(threshold {objective.burn_threshold:g}x) while the "
                f"slow window burns at {status.slow_burn:.2f}x "
                f"({status.violations}/{status.records} records violate "
                f"{objective.bound_text})"),
            hint=(
                "a severe AND sustained breach: fix the regression or "
                "re-negotiate the objective"),
        ))
    if status.breached:
        findings.append(Finding(
            rule_id="OBS302",
            path=location,
            module=module,
            line=0,
            message=(
                f"SLO {objective.name}: error budget exhausted — "
                f"{status.violations}/{status.records} trailing records "
                f"violate {objective.bound_text} "
                f"(budget {objective.budget:.0%} of the window, "
                f"burn {status.slow_burn:.2f}x)"),
            hint=(
                "freeze risky changes until the trailing window is back "
                "inside budget"),
        ))
    return findings


def render_slo_table(statuses: Sequence[SloStatus]) -> str:
    """Fixed-width human summary, one row per (objective, axis)."""
    if not statuses:
        return "no SLO-relevant records in the store\n"
    headers = ("objective", "axis", "bound", "n", "viol", "fast",
               "slow-burn", "budget-left", "latest")
    rows = []
    for status in statuses:
        rows.append((
            status.objective.name,
            status.axis_key or "-",
            status.objective.bound_text,
            str(status.records),
            str(status.violations),
            str(status.fast_violations),
            f"{status.slow_burn:.2f}x",
            f"{status.budget_remaining:.0%}",
            "-" if status.latest_value is None
            else f"{status.latest_value:.4g}",
        ))
    widths = [max(len(headers[i]), *(len(row[i]) for row in rows))
              for i in range(len(headers))]
    lines = ["  ".join(header.ljust(widths[i])
                       for i, header in enumerate(headers))]
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines) + "\n"


def slo_document(statuses: Sequence[SloStatus],
                 findings: Sequence[Finding]) -> Dict[str, Any]:
    """The JSON evaluation report (statuses plus findings)."""
    return {
        "schema": SLO_SCHEMA,
        "statuses": [status.to_dict() for status in statuses],
        "findings": [finding.to_dict() for finding in findings],
    }


__all__ = [
    "DEFAULT_BUDGET",
    "DEFAULT_BURN_THRESHOLD",
    "DEFAULT_FAST_WINDOW",
    "DEFAULT_SLOS",
    "DEFAULT_WINDOW",
    "SLO_SCHEMA",
    "SloObjective",
    "SloStatus",
    "evaluate_slo",
    "evaluate_slos",
    "load_slo_spec",
    "render_slo_table",
    "slo_document",
]
