"""``hdvb-observe tail`` — follow the history store and event log.

A deliberately small ``tail -f`` for the observability plane: render
the last N lines of the benchmark history (``history.jsonl``) and/or a
structured event log, then optionally poll for appended lines until a
deadline.  Both files are append-only JSONL, so *following* is just
remembering the byte offset and parsing whatever appears after it;
partially-written trailing lines (a writer mid-append) are left in the
buffer until their newline arrives, mirroring the tolerant scan of
:class:`repro.observe.store.HistoryStore`.
"""

from __future__ import annotations

import json
import os
import time
from typing import Callable, Iterator, List, Optional, Tuple

__all__ = ["render_history_line", "render_event_line", "tail_files"]


def render_history_line(line: str) -> Optional[str]:
    """One history record as a compact human line (None if unparsable)."""
    try:
        data = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(data, dict):
        return None
    axes = data.get("axes") or {}
    metrics = data.get("metrics") or {}
    axis_text = " ".join(f"{key}={axes[key]}" for key in sorted(axes))
    metric_text = " ".join(
        f"{key}={metrics[key]:.4g}" if isinstance(metrics[key], float)
        else f"{key}={metrics[key]}"
        for key in sorted(metrics))
    return (f"[{data.get('bench', '?')}] run={data.get('run_id', '?')} "
            f"{axis_text}  {metric_text}").rstrip()


def render_event_line(line: str) -> Optional[str]:
    """One event-log record as a compact human line (None if unparsable)."""
    try:
        data = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(data, dict) or "name" not in data:
        return None
    correlation = data.get("correlation") or {}
    fields = data.get("fields") or {}
    scope = ",".join(f"{key}={correlation[key]}"
                     for key in sorted(correlation)) or "-"
    detail = " ".join(f"{key}={fields[key]}" for key in sorted(fields))
    return f"#{data.get('seq', '?')} [{scope}] {data['name']} {detail}".rstrip()


class _FollowedFile:
    """One appended-to JSONL file plus the render for its lines."""

    def __init__(self, path: str,
                 render: Callable[[str], Optional[str]]) -> None:
        self.path = path
        self.render = render
        self._offset = 0
        self._buffer = ""

    def poll(self) -> Iterator[str]:
        """Rendered lines appended since the last poll."""
        try:
            size = os.path.getsize(self.path)
        except OSError:
            return
        if size <= self._offset:
            return
        with open(self.path, "r", encoding="utf-8", errors="replace"
                  ) as handle:
            handle.seek(self._offset)
            chunk = handle.read()
            self._offset = handle.tell()
        self._buffer += chunk
        while "\n" in self._buffer:
            line, self._buffer = self._buffer.split("\n", 1)
            line = line.strip()
            if not line:
                continue
            rendered = self.render(line)
            if rendered is not None:
                yield rendered


def tail_files(
    history_path: Optional[str] = None,
    events_path: Optional[str] = None,
    *,
    lines: int = 10,
    follow: bool = False,
    interval: float = 0.2,
    max_seconds: Optional[float] = None,
    emit_line: Callable[[str], None] = print,
) -> int:
    """Render the tails, then (optionally) follow both files.

    Returns the number of lines emitted.  ``max_seconds`` bounds a
    follow (required in tests and sensible everywhere — an unbounded
    follow is Ctrl-C's job to end, and KeyboardInterrupt is allowed to
    propagate).
    """
    followed: List[Tuple[str, _FollowedFile]] = []
    if history_path is not None:
        followed.append(("history", _FollowedFile(history_path,
                                                  render_history_line)))
    if events_path is not None:
        followed.append(("events", _FollowedFile(events_path,
                                                 render_event_line)))
    emitted = 0
    # Initial tail: render everything, keep only the last N per file.
    for label, file in followed:
        rendered = list(file.poll())
        for line in rendered[-lines:]:
            emit_line(f"{label}  {line}")
            emitted += 1
    if not follow:
        return emitted
    deadline = (time.monotonic() + max_seconds
                if max_seconds is not None else None)
    while deadline is None or time.monotonic() < deadline:
        time.sleep(interval)
        for label, file in followed:
            for line in file.poll():
                emit_line(f"{label}  {line}")
                emitted += 1
    return emitted
