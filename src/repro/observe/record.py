"""The frozen, schema-versioned benchmark record (``repro.observe.record/1``).

Every number a bench harness produces — a Figure 1 throughput bar, a
Table V rate-distortion cell, a robustness or streaming sweep point —
becomes one :class:`BenchRecord`: the *axes* that identify the
measurement (codec, sequence, resolution, backend, loss rate, ...), the
*metrics* measured along those axes (fps, PSNR, bitrate, graceful rate),
and the run identity (run id, git SHA, creation time, campaign context).
A record can optionally attach the run's telemetry
:class:`~repro.telemetry.metrics.MetricsRegistry` snapshot and the
``parallel_encode`` ``return_stats`` dict, so one document answers both
"what did we measure" and "how did the run behave".

Records are what :mod:`repro.observe.store` persists, what
:mod:`repro.observe.regress` gates, and what
:mod:`repro.observe.export` exposes as OpenMetrics.
"""

from __future__ import annotations

import math
import os
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.errors import ObserveError

#: Schema of one record.
RECORD_SCHEMA = "repro.observe.record/1"

#: Schema of a document bundling several records (the ``--json`` output
#: of ``hdvb-bench`` and the input of ``hdvb-observe record``).
DOCUMENT_SCHEMA = "repro.observe.records/1"

#: The bench harnesses that feed the store.
KNOWN_BENCHES = (
    "performance", "ratedistortion", "robustness", "streaming", "serve",
    "orchestrate", "orchestrate_run", "orchestrate_scaling",
    "speedups", "bdrate", "characterize",
    "table1", "table2", "table3", "table4",
)

_SCALAR_TYPES = (str, int, float, bool)


def new_run_id() -> str:
    """A fresh, collision-safe run identifier (UTC timestamp + entropy)."""
    stamp = time.strftime("%Y%m%dT%H%M%SZ", time.gmtime())
    return f"{stamp}-{uuid.uuid4().hex[:8]}"


def current_git_sha(start: Optional[Path] = None) -> str:
    """The checked-out commit SHA, or ``""`` outside a git work tree.

    Resolved by reading ``.git/HEAD`` (and, for symbolic refs, the loose
    ref file or ``packed-refs``) so no subprocess is spawned on the
    benchmark path.
    """
    directory = (start or Path.cwd()).resolve()
    for candidate in (directory, *directory.parents):
        git_dir = candidate / ".git"
        head = git_dir / "HEAD"
        if not head.is_file():
            continue
        try:
            content = head.read_text(encoding="utf-8").strip()
            if not content.startswith("ref:"):
                return content
            ref = content.split(":", 1)[1].strip()
            loose = git_dir / ref
            if loose.is_file():
                return loose.read_text(encoding="utf-8").strip()
            packed = git_dir / "packed-refs"
            if packed.is_file():
                for line in packed.read_text(encoding="utf-8").splitlines():
                    line = line.strip()
                    if line.endswith(" " + ref):
                        return line.split(" ", 1)[0]
        except OSError as error:
            raise ObserveError(f"cannot read git metadata under {git_dir}: "
                               f"{error}") from error
        return ""
    return ""


def _check_scalar_mapping(kind: str, mapping: Mapping[str, Any],
                          numeric: bool) -> Dict[str, Any]:
    checked: Dict[str, Any] = {}
    for key, value in mapping.items():
        if not isinstance(key, str) or not key:
            raise ObserveError(f"record {kind} keys must be non-empty "
                               f"strings, got {key!r}")
        if numeric:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ObserveError(
                    f"record metric {key!r} must be numeric, got {value!r}")
            if not math.isfinite(value):
                raise ObserveError(
                    f"record metric {key!r} must be finite, got {value!r}")
        elif not isinstance(value, _SCALAR_TYPES):
            raise ObserveError(
                f"record {kind[:-1]} {key!r} must be a scalar, got {value!r}")
        checked[key] = value
    return checked


@dataclass(frozen=True)
class BenchRecord:
    """One measurement of one benchmark along one axis combination."""

    run_id: str
    bench: str
    axes: Dict[str, Any] = field(default_factory=dict)
    metrics: Dict[str, float] = field(default_factory=dict)
    created: float = 0.0          #: unix seconds; 0.0 = unknown
    git_sha: str = ""
    context: Dict[str, Any] = field(default_factory=dict)
    parallel: Optional[Dict[str, Any]] = None
    telemetry: Optional[Dict[str, Any]] = None

    def __post_init__(self) -> None:
        if not self.run_id or not isinstance(self.run_id, str):
            raise ObserveError(f"record needs a non-empty run_id, "
                               f"got {self.run_id!r}")
        if not self.bench or not isinstance(self.bench, str):
            raise ObserveError(f"record needs a non-empty bench name, "
                               f"got {self.bench!r}")
        object.__setattr__(
            self, "axes", _check_scalar_mapping("axes", self.axes, False))
        object.__setattr__(
            self, "metrics", _check_scalar_mapping("metrics", self.metrics, True))
        object.__setattr__(
            self, "context", _check_scalar_mapping("context", self.context, False))

    @property
    def axis_key(self) -> str:
        """Canonical identity of the axis combination, stable across runs."""
        return "|".join(f"{key}={self.axes[key]}" for key in sorted(self.axes))

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "schema": RECORD_SCHEMA,
            "run_id": self.run_id,
            "bench": self.bench,
            "created": self.created,
            "git_sha": self.git_sha,
            "axes": dict(self.axes),
            "metrics": dict(self.metrics),
            "context": dict(self.context),
        }
        if self.parallel is not None:
            data["parallel"] = self.parallel
        if self.telemetry is not None:
            data["telemetry"] = self.telemetry
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BenchRecord":
        if not isinstance(data, Mapping):
            raise ObserveError(f"record must be a mapping, got {type(data).__name__}")
        schema = data.get("schema")
        if schema != RECORD_SCHEMA:
            raise ObserveError(f"not a bench record: schema {schema!r} "
                               f"(expected {RECORD_SCHEMA!r})")
        try:
            return cls(
                run_id=data["run_id"],
                bench=data["bench"],
                axes=dict(data.get("axes", {})),
                metrics=dict(data.get("metrics", {})),
                created=float(data.get("created", 0.0)),
                git_sha=str(data.get("git_sha", "")),
                context=dict(data.get("context", {})),
                parallel=data.get("parallel"),
                telemetry=data.get("telemetry"),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ObserveError(f"malformed bench record: {error!r}") from error


# ----------------------------------------------------------------------
# document bundling (the ``--json`` wire format)
# ----------------------------------------------------------------------


def records_document(records: Sequence[BenchRecord],
                     run_id: Optional[str] = None) -> Dict[str, Any]:
    """Bundle records into one ``repro.observe.records/1`` document."""
    return {
        "schema": DOCUMENT_SCHEMA,
        "run_id": run_id or (records[0].run_id if records else ""),
        "records": [record.to_dict() for record in records],
    }


def records_from_document(data: Mapping[str, Any]) -> List[BenchRecord]:
    """Parse a document (or a bare record) back into records."""
    if not isinstance(data, Mapping):
        raise ObserveError(f"records document must be a mapping, "
                           f"got {type(data).__name__}")
    schema = data.get("schema")
    if schema == RECORD_SCHEMA:
        return [BenchRecord.from_dict(data)]
    if schema != DOCUMENT_SCHEMA:
        raise ObserveError(f"not a records document: schema {schema!r} "
                           f"(expected {DOCUMENT_SCHEMA!r})")
    entries = data.get("records")
    if not isinstance(entries, list):
        raise ObserveError("records document has no 'records' list")
    return [BenchRecord.from_dict(entry) for entry in entries]


# ----------------------------------------------------------------------
# converters: harness results -> records
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RunInfo:
    """Shared identity stamped onto every record of one recording run."""

    run_id: str = ""
    created: float = 0.0
    git_sha: str = ""
    context: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def capture(cls, context: Optional[Dict[str, Any]] = None,
                run_id: str = "") -> "RunInfo":
        """Stamp a new run: fresh id, wall-clock time, current git SHA."""
        return cls(
            run_id=run_id or new_run_id(),
            created=time.time(),
            git_sha=current_git_sha(),
            context=dict(context or {}),
        )


def context_from_config(config: Any) -> Dict[str, Any]:
    """The campaign knobs worth keeping next to each measurement."""
    return {
        "scale": str(config.scale),
        "frames": config.frames,
        "runs": config.runs,
        "qscale": config.qscale,
        "pid": os.getpid(),
    }


def _build(info: RunInfo, bench: str, axes: Dict[str, Any],
           metrics: Dict[str, float],
           parallel: Optional[Dict[str, Any]] = None,
           telemetry: Optional[Dict[str, Any]] = None) -> BenchRecord:
    return BenchRecord(
        run_id=info.run_id,
        bench=bench,
        axes=axes,
        metrics=metrics,
        created=info.created,
        git_sha=info.git_sha,
        context=dict(info.context),
        parallel=parallel,
        telemetry=telemetry,
    )


def records_from_performance(rows: Sequence[Any], info: RunInfo,
                             telemetry: Optional[Dict[str, Any]] = None,
                             parallel: Optional[Dict[str, Any]] = None,
                             ) -> List[BenchRecord]:
    """One record per :class:`~repro.bench.performance.FpsRow`."""
    return [
        _build(
            info, "performance",
            axes={
                "operation": row.operation,
                "backend": row.backend,
                "codec": row.codec,
                "sequence": row.sequence,
                "resolution": row.resolution,
            },
            metrics={"fps": row.fps, "real_time": 1.0 if row.real_time else 0.0},
            telemetry=telemetry,
            parallel=parallel,
        )
        for row in rows
    ]


def records_from_rate_distortion(rows: Sequence[Any],
                                 info: RunInfo) -> List[BenchRecord]:
    """One record per :class:`~repro.bench.ratedistortion.RdRow`."""
    return [
        _build(
            info, "ratedistortion",
            axes={
                "codec": row.codec,
                "sequence": row.sequence,
                "resolution": row.resolution,
            },
            metrics={
                "psnr_db": row.psnr.combined,
                "psnr_y_db": row.psnr.y,
                "bitrate_kbps": row.bitrate_kbps,
                "total_bytes": float(row.total_bytes),
            },
        )
        for row in rows
    ]


def records_from_robustness(reports: Sequence[Any],
                            info: RunInfo) -> List[BenchRecord]:
    """One record per :class:`~repro.robustness.bench.RobustnessReport`."""
    return [
        _build(info, "robustness", **report.to_record_fields())
        for report in reports
    ]


def records_from_streaming(reports: Sequence[Any],
                           info: RunInfo) -> List[BenchRecord]:
    """One record per :class:`~repro.transport.bench.StreamingReport`."""
    return [
        _build(info, "streaming", **report.to_record_fields())
        for report in reports
    ]


def records_from_serve(reports: Sequence[Any],
                       info: RunInfo) -> List[BenchRecord]:
    """One record per :class:`~repro.origin.bench.ServeReport` (the
    telemetry attachment carries the deadline-lateness and queue-depth
    histograms into the OpenMetrics exporter)."""
    return [
        _build(info, "serve", **report.to_record_fields())
        for report in reports
    ]


def records_from_speedups(operation: str, speedups: Mapping[str, float],
                          info: RunInfo) -> List[BenchRecord]:
    """One record per codec from a SIMD speed-up aggregate."""
    return [
        _build(info, "speedups",
               axes={"operation": operation, "codec": codec},
               metrics={"simd_speedup": value})
        for codec, value in sorted(speedups.items())
    ]


def records_from_table(bench: str, headers: Sequence[str],
                       rows: Sequence[Sequence[Any]],
                       info: RunInfo) -> List[BenchRecord]:
    """Descriptive (metric-free) records for the static tables I-IV."""
    def slug(header: str) -> str:
        return "".join(
            ch if ch.isalnum() else "_" for ch in header.strip().lower()
        ).strip("_") or "column"

    keys = [slug(header) for header in headers]
    return [
        _build(info, bench,
               axes={key: str(cell) for key, cell in zip(keys, row)},
               metrics={})
        for row in rows
    ]
