"""Regression detection over the benchmark history.

For every (bench, axis) group the newest record is compared against a
**rolling median baseline** of the previous ``window`` records.  A
metric regresses when it moves against its good direction by more than
the larger of

* the policy threshold (the paper-level tolerances: throughput drop
  > 10 %, PSNR drop > 0.1 dB, bitrate growth > 2 %), and
* the noise band ``mad_sigmas * 1.4826 * MAD`` of the baseline —
  the robust analogue of k-sigma, so an axis whose history is naturally
  jittery is not flagged for ordinary jitter while a quiet axis still
  trips on small, real shifts.

Findings are reported through the shared
:class:`repro.analysis.findings.Finding` record, so the lint reporters
(human and ``repro.analysis.findings/1`` JSON) and the 0/1/2 exit-code
convention apply unchanged.  The whole pass is pure arithmetic over the
stored records: the same history yields the same findings, bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.findings import Finding, sort_findings
from repro.errors import ObserveError
from repro.observe.record import BenchRecord
from repro.observe.store import HistoryStore

#: Consistent-estimator factor: MAD * 1.4826 estimates one sigma for
#: normally distributed noise.
MAD_SIGMA_FACTOR = 1.4826

#: Baseline records considered per axis (the newest record excluded).
DEFAULT_WINDOW = 5


def median(values: Sequence[float]) -> float:
    if not values:
        raise ObserveError("median of an empty sequence")
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return 0.5 * (ordered[middle - 1] + ordered[middle])


def mad(values: Sequence[float]) -> float:
    """Median absolute deviation from the median."""
    centre = median(values)
    return median([abs(value - centre) for value in values])


@dataclass(frozen=True)
class MetricPolicy:
    """How one metric is gated.

    ``direction`` is the *good* direction: ``"higher"`` metrics regress
    by dropping, ``"lower"`` metrics by growing.  ``relative`` thresholds
    are fractions of the baseline median; absolute thresholds are in the
    metric's own unit.
    """

    metric: str
    rule_id: str
    direction: str            # "higher" | "lower"
    threshold: float
    relative: bool
    unit: str = ""

    def limit(self, baseline_median: float) -> float:
        if self.relative:
            return self.threshold * abs(baseline_median)
        return self.threshold


#: The default gate: the three tolerances the issue names, plus the
#: resilience-rate and concealment-quality analogues so the robustness
#: and streaming benches gate through the same machinery.
DEFAULT_POLICIES: Tuple[MetricPolicy, ...] = (
    MetricPolicy("fps", "OBS201", "higher", 0.10, relative=True, unit="fps"),
    MetricPolicy("psnr_db", "OBS202", "higher", 0.1, relative=False, unit="dB"),
    MetricPolicy("bitrate_kbps", "OBS203", "lower", 0.02, relative=True,
                 unit="kbit/s"),
    MetricPolicy("graceful_rate", "OBS204", "higher", 0.02, relative=False),
    MetricPolicy("conceal_rate", "OBS204", "higher", 0.02, relative=False),
    MetricPolicy("complete_rate", "OBS204", "higher", 0.02, relative=False),
    MetricPolicy("fec_recovery_rate", "OBS204", "higher", 0.02, relative=False),
    MetricPolicy("mean_psnr_delta_db", "OBS205", "higher", 0.1, relative=False,
                 unit="dB"),
    # OBS206: the streaming-origin serve gate.  Rates are absolute
    # fractions; throughput and tail latency are relative to the rolling
    # median.  ``unhandled_escapes`` has zero tolerance — one task
    # escaping raw is a regression by definition.
    MetricPolicy("deadline_miss_rate", "OBS206", "lower", 0.02,
                 relative=False),
    MetricPolicy("p99_miss_seconds", "OBS206", "lower", 0.25, relative=True,
                 unit="s"),
    MetricPolicy("shed_rate", "OBS206", "lower", 0.02, relative=False),
    MetricPolicy("sessions_per_second", "OBS206", "higher", 0.10,
                 relative=True),
    MetricPolicy("unhandled_escapes", "OBS206", "lower", 0.0,
                 relative=False),
    # OBS207: the orchestrator run gate.  ``cell_failure_rate`` has zero
    # tolerance — a matrix with newly failing cells is a regression even
    # when the rest speeds up.  ``cache_hit_rate`` guards the artifact
    # cache's economy (a rerun of an unchanged spec should hit ~always);
    # ``cells_per_second`` guards orchestration throughput relative to
    # the rolling median.
    MetricPolicy("cell_failure_rate", "OBS207", "lower", 0.0,
                 relative=False),
    MetricPolicy("cache_hit_rate", "OBS207", "higher", 0.05,
                 relative=False),
    MetricPolicy("cells_per_second", "OBS207", "higher", 0.10,
                 relative=True),
)


@dataclass(frozen=True)
class GateConfig:
    """Tunable knobs of one detector run."""

    window: int = DEFAULT_WINDOW
    mad_sigmas: float = 3.0
    policies: Tuple[MetricPolicy, ...] = DEFAULT_POLICIES

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ObserveError(f"window must be >= 1, got {self.window}")
        if self.mad_sigmas < 0:
            raise ObserveError(
                f"mad_sigmas must be >= 0, got {self.mad_sigmas}")

    def with_thresholds(self, fps_drop: Optional[float] = None,
                        psnr_drop_db: Optional[float] = None,
                        bitrate_growth: Optional[float] = None,
                        ) -> "GateConfig":
        """A copy with the three headline tolerances overridden."""
        overrides = {"fps": fps_drop, "psnr_db": psnr_drop_db,
                     "bitrate_kbps": bitrate_growth}
        policies = tuple(
            replace(policy, threshold=overrides[policy.metric])
            if overrides.get(policy.metric) is not None else policy
            for policy in self.policies
        )
        return replace(self, policies=policies)


def _check_metric(policy: MetricPolicy, newest: BenchRecord,
                  baseline: Sequence[BenchRecord], config: GateConfig,
                  location: str) -> Optional[Finding]:
    if policy.metric not in newest.metrics:
        return None
    history = [record.metrics[policy.metric] for record in baseline
               if policy.metric in record.metrics]
    if not history:
        return None
    centre = median(history)
    noise = config.mad_sigmas * MAD_SIGMA_FACTOR * mad(history)
    value = newest.metrics[policy.metric]
    if policy.direction == "higher":
        move = centre - value
        verb = "dropped"
    else:
        move = value - centre
        verb = "grew"
    tolerance = max(policy.limit(centre), noise)
    if move <= tolerance:
        return None
    unit = f" {policy.unit}" if policy.unit else ""
    if policy.relative and centre:
        amount = f"{abs(move) / abs(centre) * 100.0:.1f}%"
    else:
        amount = f"{abs(move):.3f}{unit}"
    return Finding(
        rule_id=policy.rule_id,
        path=location,
        module=f"{newest.bench}:{newest.axis_key}",
        line=0,
        message=(
            f"{newest.bench} [{newest.axis_key}] {policy.metric} {verb} "
            f"{amount}: {value:.3f}{unit} vs rolling median {centre:.3f}{unit} "
            f"over {len(history)} run(s) "
            f"(tolerance {tolerance:.3f}{unit}, run {newest.run_id})"
        ),
        hint=(
            "confirm with a re-run; if the shift is intended, let the new "
            "level enter the rolling baseline (or compact the old history)"
        ),
    )


def detect_regressions(store: HistoryStore, bench: Optional[str] = None,
                       config: Optional[GateConfig] = None) -> List[Finding]:
    """Compare every axis's newest record against its rolling baseline."""
    config = config or GateConfig()
    location = str(store.path)
    findings: List[Finding] = []
    for (_, _axis), history in sorted(store.history_per_axis(bench).items()):
        if len(history) < 2:
            continue
        newest = history[-1]
        baseline = history[-1 - config.window:-1]
        for policy in config.policies:
            finding = _check_metric(policy, newest, baseline, config, location)
            if finding is not None:
                findings.append(finding)
    return sort_findings(findings)


# ----------------------------------------------------------------------
# comparison / trend helpers (the ``compare`` and ``trend`` subcommands)
# ----------------------------------------------------------------------


def compare_runs(store: HistoryStore, run_a: str, run_b: str,
                 bench: Optional[str] = None,
                 ) -> List[Tuple[str, str, str, float, float]]:
    """Per-axis metric deltas between two runs.

    Returns ``(bench, axis_key, metric, value_a, value_b)`` rows for
    every metric present in both runs on the same axis.
    """
    def index(run_id: str) -> Dict[Tuple[str, str], BenchRecord]:
        return {
            (record.bench, record.axis_key): record
            for record in store.query(bench=bench, run_id=run_id)
        }

    first, second = index(run_a), index(run_b)
    rows: List[Tuple[str, str, str, float, float]] = []
    for key in sorted(set(first) & set(second)):
        record_a, record_b = first[key], second[key]
        for metric in sorted(set(record_a.metrics) & set(record_b.metrics)):
            rows.append((key[0], key[1], metric,
                         record_a.metrics[metric], record_b.metrics[metric]))
    return rows


def metric_trend(store: HistoryStore, bench: str, metric: str,
                 ) -> Dict[str, List[Tuple[str, float]]]:
    """Per-axis ``(run_id, value)`` series for one metric, oldest first."""
    series: Dict[str, List[Tuple[str, float]]] = {}
    for (_, axis_key), history in sorted(store.history_per_axis(bench).items()):
        points = [
            (record.run_id, record.metrics[metric])
            for record in history if metric in record.metrics
        ]
        if points:
            series[axis_key] = points
    return series
