"""The append-only benchmark history store (``.hdvb-bench-history/``).

One JSONL file, one :class:`~repro.observe.record.BenchRecord` per line,
newest last.  Three properties matter:

* **atomic appends** — each record is serialised to a single line and
  written with one ``os.write`` on an ``O_APPEND`` descriptor, so
  concurrent recorders (parallel CI shards, a bench running while the
  gate reads) interleave whole lines, never torn ones;
* **tolerant reads** — a malformed line (a crashed writer, a hand edit)
  is counted and skipped, not fatal: one bad record must not take the
  whole trajectory with it;
* **bounded growth** — :meth:`HistoryStore.compact` keeps the newest N
  records per (bench, axis) and atomically replaces the file
  (temp file + ``os.replace``), preserving relative order.

The store is the single sanctioned result sink: ``hdvb-lint`` rule
HDVB160 (:mod:`repro.analysis.persistence`) flags benchmark code that
writes result dicts anywhere else.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ObserveError
from repro.observe.record import BenchRecord

#: Default store directory, relative to the invocation directory.
DEFAULT_STORE_DIR = ".hdvb-bench-history"

#: The history file inside the store directory.
HISTORY_FILENAME = "history.jsonl"

#: Default per-axis retention for :meth:`HistoryStore.compact`.
DEFAULT_KEEP_LAST = 50


def _serialise(record: BenchRecord) -> bytes:
    line = json.dumps(record.to_dict(), sort_keys=True,
                      separators=(",", ":"), allow_nan=False)
    if "\n" in line:
        raise ObserveError("record serialised with an embedded newline")
    return (line + "\n").encode("utf-8")


class HistoryStore:
    """Append-only, axis-indexed JSONL store of bench records."""

    def __init__(self, root: str = DEFAULT_STORE_DIR) -> None:
        self.root = Path(root)
        self.path = self.root / HISTORY_FILENAME
        #: malformed lines skipped by the most recent load
        self.skipped_lines = 0

    def exists(self) -> bool:
        return self.path.is_file()

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------

    def append(self, record: BenchRecord) -> None:
        """Append one record atomically (single O_APPEND write)."""
        payload = _serialise(record)
        self.root.mkdir(parents=True, exist_ok=True)
        descriptor = os.open(
            str(self.path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            written = os.write(descriptor, payload)
            if written != len(payload):
                raise ObserveError(
                    f"short write to {self.path}: {written}/{len(payload)} bytes"
                )
        finally:
            os.close(descriptor)

    def append_many(self, records: Iterable[BenchRecord]) -> int:
        """Append records one line at a time; returns the count."""
        count = 0
        for record in records:
            self.append(record)
            count += 1
        return count

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    def load(self) -> List[BenchRecord]:
        """Every parseable record, oldest first.

        Malformed lines are skipped and counted in ``skipped_lines``.
        """
        self.skipped_lines = 0
        if not self.path.is_file():
            return []
        records: List[BenchRecord] = []
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError as error:
            raise ObserveError(f"cannot read history {self.path}: "
                               f"{error}") from error
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                records.append(BenchRecord.from_dict(json.loads(line)))
            except (ValueError, ObserveError):
                self.skipped_lines += 1
        return records

    def query(self, bench: Optional[str] = None,
              run_id: Optional[str] = None,
              **axes: Any) -> List[BenchRecord]:
        """Records filtered by bench, run id and exact axis values."""
        matched = []
        for record in self.load():
            if bench is not None and record.bench != bench:
                continue
            if run_id is not None and record.run_id != run_id:
                continue
            if any(record.axes.get(key) != value
                   for key, value in axes.items()):
                continue
            matched.append(record)
        return matched

    def run_ids(self) -> List[str]:
        """Distinct run ids in first-appearance (append) order."""
        seen: Dict[str, None] = {}
        for record in self.load():
            seen.setdefault(record.run_id, None)
        return list(seen)

    def benches(self) -> List[str]:
        """Distinct bench names, sorted."""
        return sorted({record.bench for record in self.load()})

    def history_per_axis(
        self, bench: Optional[str] = None
    ) -> Dict[Tuple[str, str], List[BenchRecord]]:
        """Records grouped by (bench, axis key), oldest first per group."""
        grouped: Dict[Tuple[str, str], List[BenchRecord]] = {}
        for record in self.load():
            if bench is not None and record.bench != bench:
                continue
            grouped.setdefault((record.bench, record.axis_key), []).append(record)
        return grouped

    def latest_per_axis(
        self, bench: Optional[str] = None
    ) -> Dict[Tuple[str, str], BenchRecord]:
        """The newest record of every (bench, axis key) group."""
        return {
            key: history[-1]
            for key, history in self.history_per_axis(bench).items()
        }

    # ------------------------------------------------------------------
    # compaction
    # ------------------------------------------------------------------

    def compact(self, keep_last: int = DEFAULT_KEEP_LAST) -> int:
        """Keep the newest ``keep_last`` records per (bench, axis).

        The file is rewritten through a temp file + ``os.replace`` so a
        reader never observes a half-written history.  Returns the
        number of records dropped.
        """
        if keep_last < 1:
            raise ObserveError(f"keep_last must be >= 1, got {keep_last}")
        records = self.load()
        if not records:
            return 0
        budgets: Dict[Tuple[str, str], int] = {}
        for record in records:
            key = (record.bench, record.axis_key)
            budgets[key] = budgets.get(key, 0) + 1
        kept: List[BenchRecord] = []
        for record in records:
            key = (record.bench, record.axis_key)
            if budgets[key] <= keep_last:
                kept.append(record)
            else:
                budgets[key] -= 1
        dropped = len(records) - len(kept)
        if dropped == 0 and self.skipped_lines == 0:
            return 0
        handle = tempfile.NamedTemporaryFile(
            mode="wb", dir=str(self.root), prefix="history-", suffix=".tmp",
            delete=False,
        )
        try:
            with handle:
                for record in kept:
                    handle.write(_serialise(record))
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(handle.name, str(self.path))
        except OSError as error:
            os.unlink(handle.name)
            raise ObserveError(f"compaction of {self.path} failed: "
                               f"{error}") from error
        return dropped
