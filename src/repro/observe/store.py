"""The append-only benchmark history store (``.hdvb-bench-history/``).

One JSONL file, one :class:`~repro.observe.record.BenchRecord` per line,
newest last.  Three properties matter:

* **atomic appends** — each record is serialised to a single line and
  written with one ``os.write`` on an ``O_APPEND`` descriptor, so
  concurrent recorders (parallel CI shards, a bench running while the
  gate reads) interleave whole lines, never torn ones;
* **tolerant reads** — a malformed line (a crashed writer, a hand edit)
  is counted and skipped, not fatal: one bad record must not take the
  whole trajectory with it.  :meth:`HistoryStore.scan` records the byte
  ``(offset, length, reason)`` of every bad line so
  :mod:`repro.observe.fsck` can quarantine precisely instead of
  rewriting the whole file;
* **bounded growth** — :meth:`HistoryStore.compact` keeps the newest N
  records per (bench, axis) and atomically replaces the file
  (temp file + ``os.replace``), preserving relative order.

All critical writes go through the :func:`repro.chaos.fileops` seam and
announce named crash points, so the chaos harness
(:mod:`repro.chaos.harness`) can kill this code at every seam and prove
fsck + resume recover bit-identically.

The store is the single sanctioned result sink: ``hdvb-lint`` rule
HDVB160 (:mod:`repro.analysis.persistence`) flags benchmark code that
writes result dicts anywhere else.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.chaos.fsops import crash_point, fileops
from repro.errors import CrashInjected, ObserveError
from repro.observe.record import BenchRecord

#: Default store directory, relative to the invocation directory.
DEFAULT_STORE_DIR = ".hdvb-bench-history"

#: The history file inside the store directory.
HISTORY_FILENAME = "history.jsonl"

#: Quarantined-corruption sidecar written by ``hdvb-observe fsck --repair``.
QUARANTINE_FILENAME = "quarantine.jsonl"

#: Temp name used by compaction; a survivor is debris from a crash
#: between writing it and the ``os.replace`` swap, and fsck deletes it.
COMPACT_TMP_FILENAME = HISTORY_FILENAME + ".compact.tmp"

#: Default per-axis retention for :meth:`HistoryStore.compact`.
DEFAULT_KEEP_LAST = 50


def _serialise(record: BenchRecord) -> bytes:
    line = json.dumps(record.to_dict(), sort_keys=True,
                      separators=(",", ":"), allow_nan=False)
    if "\n" in line:
        raise ObserveError("record serialised with an embedded newline")
    return (line + "\n").encode("utf-8")


@dataclass(frozen=True)
class MalformedLine:
    """One unparseable region of the history file, located exactly.

    ``offset``/``length`` are byte coordinates into the file, ``data``
    the raw bytes (without the trailing newline, if any), ``reason`` why
    parsing failed: ``"invalid-json"``, ``"invalid-record"`` (parsed but
    failed schema validation) or ``"truncated-tail"`` (the final line
    has no terminating newline — the signature of a torn append).
    """

    offset: int
    length: int
    reason: str
    data: bytes


class HistoryStore:
    """Append-only, axis-indexed JSONL store of bench records."""

    def __init__(self, root: str = DEFAULT_STORE_DIR) -> None:
        self.root = Path(root)
        self.path = self.root / HISTORY_FILENAME
        #: malformed lines skipped by the most recent load/scan
        self.skipped_lines = 0
        #: exact (offset, length, reason, data) of each, newest scan
        self.malformed: List[MalformedLine] = []

    def exists(self) -> bool:
        return self.path.is_file()

    @property
    def quarantine_path(self) -> Path:
        return self.root / QUARANTINE_FILENAME

    @property
    def compact_tmp_path(self) -> Path:
        return self.root / COMPACT_TMP_FILENAME

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------

    def append(self, record: BenchRecord) -> None:
        """Append one record atomically (single O_APPEND write)."""
        payload = _serialise(record)
        self.root.mkdir(parents=True, exist_ok=True)
        ops = fileops()
        crash_point("store.append.pre_write", str(self.path))
        try:
            descriptor = ops.open(
                str(self.path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
        except OSError as error:
            raise ObserveError(f"cannot open history {self.path} for append: "
                               f"{error}") from error
        try:
            try:
                written = ops.write(descriptor, payload, path=str(self.path),
                                    tear_point="store.append.mid_write")
            except CrashInjected:
                raise
            except OSError as error:
                raise ObserveError(f"append to {self.path} failed: "
                                   f"{error}") from error
            if written != len(payload):
                raise ObserveError(
                    f"short write to {self.path}: {written}/{len(payload)} bytes"
                )
        finally:
            ops.close(descriptor)
        crash_point("store.append.post_write", str(self.path))

    def append_many(self, records: Iterable[BenchRecord]) -> int:
        """Append records one line at a time; returns the count."""
        count = 0
        for record in records:
            self.append(record)
            count += 1
        return count

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    def scan(self) -> List[Tuple[Optional[BenchRecord], Optional[MalformedLine]]]:
        """Walk the raw file byte-exactly: every line is either a parsed
        record or a located :class:`MalformedLine`, in file order.

        Updates ``skipped_lines`` and ``malformed``.  This is the one
        read path — :meth:`load` is built on it — so the offsets fsck
        quarantines are exactly the offsets tolerant reads skipped.
        """
        self.skipped_lines = 0
        self.malformed = []
        if not self.path.is_file():
            return []
        try:
            raw = fileops().read_bytes(str(self.path))
        except OSError as error:
            raise ObserveError(f"cannot read history {self.path}: "
                               f"{error}") from error
        entries: List[Tuple[Optional[BenchRecord], Optional[MalformedLine]]] = []
        offset = 0
        while offset < len(raw):
            newline = raw.find(b"\n", offset)
            if newline < 0:
                data, length, terminated = raw[offset:], len(raw) - offset, False
            else:
                data, length, terminated = (raw[offset:newline],
                                            newline + 1 - offset, True)
            stripped = data.strip()
            if stripped:
                bad_reason: Optional[str] = None
                try:
                    parsed = json.loads(stripped.decode("utf-8"))
                except (ValueError, UnicodeDecodeError):
                    # An unterminated unparseable tail is the signature
                    # of a torn append, distinct from a hand-mangled line.
                    bad_reason = ("truncated-tail" if not terminated
                                  else "invalid-json")
                else:
                    try:
                        entries.append((BenchRecord.from_dict(parsed), None))
                    except (ValueError, ObserveError):
                        bad_reason = "invalid-record"
                if bad_reason is not None:
                    bad = MalformedLine(offset=offset, length=length,
                                        reason=bad_reason, data=data)
                    self.malformed.append(bad)
                    self.skipped_lines += 1
                    entries.append((None, bad))
            offset += length
        return entries

    def load(self) -> List[BenchRecord]:
        """Every parseable record, oldest first.

        Malformed lines are skipped and counted in ``skipped_lines``,
        with their exact byte extents recorded in ``malformed``.
        """
        return [record for record, _ in self.scan() if record is not None]

    def query(self, bench: Optional[str] = None,
              run_id: Optional[str] = None,
              **axes: Any) -> List[BenchRecord]:
        """Records filtered by bench, run id and exact axis values."""
        matched = []
        for record in self.load():
            if bench is not None and record.bench != bench:
                continue
            if run_id is not None and record.run_id != run_id:
                continue
            if any(record.axes.get(key) != value
                   for key, value in axes.items()):
                continue
            matched.append(record)
        return matched

    def run_ids(self) -> List[str]:
        """Distinct run ids in first-appearance (append) order."""
        seen: Dict[str, None] = {}
        for record in self.load():
            seen.setdefault(record.run_id, None)
        return list(seen)

    def benches(self) -> List[str]:
        """Distinct bench names, sorted."""
        return sorted({record.bench for record in self.load()})

    def history_per_axis(
        self, bench: Optional[str] = None
    ) -> Dict[Tuple[str, str], List[BenchRecord]]:
        """Records grouped by (bench, axis key), oldest first per group."""
        grouped: Dict[Tuple[str, str], List[BenchRecord]] = {}
        for record in self.load():
            if bench is not None and record.bench != bench:
                continue
            grouped.setdefault((record.bench, record.axis_key), []).append(record)
        return grouped

    def latest_per_axis(
        self, bench: Optional[str] = None
    ) -> Dict[Tuple[str, str], BenchRecord]:
        """The newest record of every (bench, axis key) group."""
        return {
            key: history[-1]
            for key, history in self.history_per_axis(bench).items()
        }

    # ------------------------------------------------------------------
    # compaction
    # ------------------------------------------------------------------

    def compact(self, keep_last: int = DEFAULT_KEEP_LAST) -> int:
        """Keep the newest ``keep_last`` records per (bench, axis).

        The file is rewritten through a temp file + ``os.replace`` so a
        reader never observes a half-written history; a crash before the
        swap leaves the original intact plus temp debris fsck deletes.
        Returns the number of records dropped.
        """
        if keep_last < 1:
            raise ObserveError(f"keep_last must be >= 1, got {keep_last}")
        records = self.load()
        if not records:
            return 0
        budgets: Dict[Tuple[str, str], int] = {}
        for record in records:
            key = (record.bench, record.axis_key)
            budgets[key] = budgets.get(key, 0) + 1
        kept: List[BenchRecord] = []
        for record in records:
            key = (record.bench, record.axis_key)
            if budgets[key] <= keep_last:
                kept.append(record)
            else:
                budgets[key] -= 1
        dropped = len(records) - len(kept)
        if dropped == 0 and self.skipped_lines == 0:
            return 0
        ops = fileops()
        temp = str(self.compact_tmp_path)
        try:
            descriptor = ops.open(
                temp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
            try:
                for record in kept:
                    payload = _serialise(record)
                    written = ops.write(descriptor, payload, path=temp)
                    if written != len(payload):
                        raise ObserveError(
                            f"short write to {temp}: "
                            f"{written}/{len(payload)} bytes")
                ops.fsync(descriptor)
            finally:
                ops.close(descriptor)
            crash_point("store.compact.pre_replace", temp)
            ops.replace(temp, str(self.path))
        except CrashInjected:
            raise  # simulated death: leave the debris a real crash leaves
        except (OSError, ObserveError) as error:
            if os.path.exists(temp):
                os.unlink(temp)
            if isinstance(error, ObserveError):
                raise
            raise ObserveError(f"compaction of {self.path} failed: "
                               f"{error}") from error
        crash_point("store.compact.post_replace", str(self.path))
        return dropped
