"""Causal timeline reconstruction for one correlation id.

``hdvb-observe timeline <correlation-id>`` answers the question a
post-mortem always starts with: *what happened to this session/cell, in
order*?  It merges up to three sources into one ordered view:

* the structured **event log** (a canonical JSONL file written by
  ``hdvb-bench serve --events``, or any ``repro.telemetry.event/1``
  stream);
* **flight-record dumps** (``repro.telemetry.flightdump/1`` files from
  ``.hdvb-bench-history/flightrec/``), whose ring events fill holes the
  bounded main log may have dropped and whose trigger/error context
  annotate the death itself;
* optional **trace spans** (a ``repro.telemetry.trace/1`` JSON export),
  matched by a correlation attribute.

Events are matched when any of their correlation-id values equals the
requested id, de-duplicated by ``seq`` across sources, and ordered by
``seq`` (the emission order, which under the virtual-time origin loop
is deterministic per seed).  The rendered output contains no wall-clock
times, pids or file paths, so two identical seeded runs reconstruct
**identical** timelines — that property is asserted in CI.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ObserveError

#: Schema of the JSON timeline document this module renders.
TIMELINE_SCHEMA = "repro.observe.timeline/1"

EVENT_SCHEMA = "repro.telemetry.event/1"
FLIGHTDUMP_SCHEMA = "repro.telemetry.flightdump/1"


def load_events_jsonl(path: str) -> List[Dict[str, Any]]:
    """Parse a canonical event-log JSONL file (tolerant of blank lines)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as error:
        raise ObserveError(
            f"cannot read event log {path}: {error}") from None
    events: List[Dict[str, Any]] = []
    for number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            document = json.loads(line)
        except json.JSONDecodeError as error:
            raise ObserveError(
                f"{path}:{number}: malformed event line: {error}") from None
        if not isinstance(document, dict):
            raise ObserveError(
                f"{path}:{number}: event line must be a JSON object")
        if document.get("schema") != EVENT_SCHEMA:
            raise ObserveError(
                f"{path}:{number}: schema {document.get('schema')!r}, "
                f"expected {EVENT_SCHEMA!r}")
        events.append(document)
    return events


def load_flight_dumps(directory: str) -> List[Dict[str, Any]]:
    """Every well-formed flight dump under ``directory``, sorted by name."""
    if not os.path.isdir(directory):
        return []
    dumps: List[Dict[str, Any]] = []
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".json"):
            continue
        path = os.path.join(directory, name)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            raise ObserveError(
                f"malformed flight dump {path}: {error}") from None
        if (isinstance(document, dict)
                and document.get("schema") == FLIGHTDUMP_SCHEMA):
            document["_file"] = name
            dumps.append(document)
    return dumps


def _matches(correlation: Dict[str, Any], wanted: str) -> bool:
    return any(str(value) == wanted for value in correlation.values())


def build_timeline(
    correlation_id: str,
    events: Sequence[Dict[str, Any]] = (),
    dumps: Sequence[Dict[str, Any]] = (),
    trace: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Merge the sources into one ``repro.observe.timeline/1`` document.

    Events from the main log and from matching dumps are unioned and
    de-duplicated by ``seq``; dump triggers become entries of their own
    so the death itself appears on the timeline.
    """
    merged: Dict[int, Dict[str, Any]] = {}
    for event in events:
        correlation = event.get("correlation") or {}
        if _matches(correlation, correlation_id):
            merged[int(event["seq"])] = event
    triggers: List[Dict[str, Any]] = []
    open_spans: List[Dict[str, Any]] = []
    for dump in dumps:
        dump_id = dump.get("correlation_id")
        dump_scope = dump.get("correlation") or {}
        if (str(dump_id) != correlation_id
                and not _matches(dump_scope, correlation_id)):
            continue
        for event in dump.get("events", ()):
            correlation = event.get("correlation") or {}
            if _matches(correlation, correlation_id):
                merged.setdefault(int(event["seq"]), event)
        triggers.append({
            "trigger": dump.get("trigger"),
            "error": dump.get("error"),
            "extra": dump.get("extra") or {},
        })
        for span in dump.get("open_spans", ()):
            open_spans.append({"name": span.get("name"),
                               "attrs": span.get("attrs") or {}})
    spans: List[Dict[str, Any]] = []
    if trace is not None:
        for span in trace.get("spans", ()):
            attrs = span.get("attrs") or {}
            if _matches(attrs, correlation_id):
                spans.append({
                    "name": span.get("name"),
                    "duration": span.get("duration"),
                    "attrs": {key: attrs[key] for key in sorted(attrs)},
                })
    ordered = [merged[seq] for seq in sorted(merged)]
    return {
        "schema": TIMELINE_SCHEMA,
        "correlation_id": correlation_id,
        "events": ordered,
        "triggers": triggers,
        "open_spans": open_spans,
        "spans": spans,
    }


def _fields_text(fields: Dict[str, Any]) -> str:
    return " ".join(f"{key}={fields[key]}" for key in sorted(fields))


def render_timeline(timeline: Dict[str, Any]) -> str:
    """The human view: one line per event, then triggers and spans."""
    lines = [f"timeline for {timeline['correlation_id']}"]
    events: Sequence[Dict[str, Any]] = timeline.get("events", ())
    if not events:
        lines.append("  (no events)")
    for event in events:
        fields = event.get("fields") or {}
        t = fields.get("t")
        stamp = f"t={t:>8.4f}" if isinstance(t, (int, float)) else " " * 10
        extra = _fields_text({key: value for key, value in fields.items()
                              if key != "t"})
        lines.append(
            f"  #{event['seq']:>5} {stamp} {event['name']}"
            + (f"  {extra}" if extra else ""))
    for trigger in timeline.get("triggers", ()):
        error = trigger.get("error") or {}
        detail = (f" [{error.get('error')}: {error.get('message')}]"
                  if error else "")
        lines.append(f"  ! flight dump: {trigger['trigger']}{detail}")
    open_spans = timeline.get("open_spans", ())
    if open_spans:
        lines.append("  open spans at death:")
        for span in open_spans:
            lines.append(f"    - {span['name']}")
    spans = timeline.get("spans", ())
    if spans:
        lines.append("  trace spans:")
        for span in spans:
            duration = span.get("duration")
            took = (f" ({duration * 1e3:.2f} ms)"
                    if isinstance(duration, (int, float)) else "")
            lines.append(f"    - {span['name']}{took}")
    return "\n".join(lines) + "\n"


__all__ = [
    "TIMELINE_SCHEMA",
    "build_timeline",
    "load_events_jsonl",
    "load_flight_dumps",
    "render_timeline",
]
