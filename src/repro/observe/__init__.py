"""``repro.observe`` — the benchmark observatory.

Every bench run can land in a durable, schema-versioned history so the
question "did this change make decode slower or PSNR worse?" has a
mechanical answer:

* :mod:`repro.observe.record` — the frozen ``repro.observe.record/1``
  :class:`BenchRecord` (run id, git SHA, measurement axes, metrics,
  attached telemetry snapshot and parallel stats) plus converters from
  every harness's native result rows;
* :mod:`repro.observe.store` — the append-only JSONL
  :class:`HistoryStore` under ``.hdvb-bench-history/`` with atomic
  appends, tolerant reads, axis-indexed queries and compaction;
* :mod:`repro.observe.regress` — the regression detector: newest record
  per axis vs a rolling median baseline with MAD-based robust noise
  bands, reported through the shared ``repro.analysis`` Finding and
  reporter machinery;
* :mod:`repro.observe.export` — OpenMetrics/Prometheus text exposition
  of the latest records and merged telemetry;
* :mod:`repro.observe.fsck` — corruption check + quarantine repair
  (torn appends, mangled lines, orphan compaction temps) reporting
  ``repro.chaos.fsck/1`` findings, crash-proven by the
  :mod:`repro.chaos` harness;
* :mod:`repro.observe.cli` — the ``hdvb-observe`` front end
  (``record`` / ``compare`` / ``trend`` / ``gate`` / ``export`` /
  ``compact`` / ``fsck``).

Feeding the store: every measuring ``hdvb-bench`` subcommand takes
``--record`` (append this run) / ``--run-id`` / ``--store``, and
``--json`` emits the same records as a ``repro.observe.records/1``
document for ``hdvb-observe record`` to ingest.  See
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from repro.observe.record import (
    DOCUMENT_SCHEMA,
    RECORD_SCHEMA,
    BenchRecord,
    RunInfo,
    current_git_sha,
    new_run_id,
    records_document,
    records_from_document,
)
from repro.observe.regress import (
    DEFAULT_POLICIES,
    GateConfig,
    MetricPolicy,
    compare_runs,
    detect_regressions,
    mad,
    median,
    metric_trend,
)
from repro.observe.store import DEFAULT_STORE_DIR, HistoryStore, MalformedLine
from repro.observe.export import export_store, render_openmetrics
from repro.observe.fsck import FSCK_SCHEMA, QUARANTINE_SCHEMA, fsck_store

__all__ = [
    "BenchRecord",
    "FSCK_SCHEMA",
    "DEFAULT_POLICIES",
    "DEFAULT_STORE_DIR",
    "DOCUMENT_SCHEMA",
    "GateConfig",
    "HistoryStore",
    "MalformedLine",
    "MetricPolicy",
    "QUARANTINE_SCHEMA",
    "RECORD_SCHEMA",
    "RunInfo",
    "compare_runs",
    "current_git_sha",
    "detect_regressions",
    "export_store",
    "fsck_store",
    "mad",
    "median",
    "metric_trend",
    "new_run_id",
    "records_document",
    "records_from_document",
    "render_openmetrics",
]
