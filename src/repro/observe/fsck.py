"""fsck for the history store: locate, report and quarantine corruption.

``hdvb-observe fsck`` walks the store with the byte-exact
:meth:`~repro.observe.store.HistoryStore.scan` and reports every problem
as a :class:`~repro.analysis.findings.Finding` under the
``repro.chaos.fsck/1`` schema (the lint reporters are reused verbatim,
so fsck output renders and serialises exactly like ``hdvb-lint``
output):

========  ============================================================
FSCK301   malformed line (invalid JSON / failed record validation)
FSCK302   truncated tail -- the torn-append signature
FSCK303   orphan compaction temp (a crash between temp write + swap)
========  ============================================================

Repair (``--repair``) is conservative and loss-free:

* good lines are preserved **byte-identically** — the repaired history
  is the original file minus the bad byte ranges, rewritten atomically
  (temp + ``os.replace``);
* every removed range is quarantined, not deleted: appended to
  ``quarantine.jsonl`` as a ``repro.chaos.quarantine/1`` envelope
  carrying the original offset, reason and base64 payload, so a human
  (or a smarter future repair) can still recover it;
* orphan temps are deleted (their content is by construction a strict
  subset of what a re-run regenerates);
* a healthy store is **never modified** — no rewrite, no temp churn,
  zero findings, exit 0.

A quarantined ``orchestrate`` record stops matching
:func:`repro.orchestrate.scheduler.completed_cell_ids`, so the cell it
recorded becomes retryable on resume — quarantine never strands a run.
"""

from __future__ import annotations

import base64
import json
import os
from typing import List

from repro.analysis.findings import Finding
from repro.chaos.fsops import fileops
from repro.errors import ObserveError
from repro.observe.store import HistoryStore, MalformedLine

#: Schema id of an fsck findings document (observe and cache alike).
FSCK_SCHEMA = "repro.chaos.fsck/1"

#: Schema id of one quarantined-corruption envelope.
QUARANTINE_SCHEMA = "repro.chaos.quarantine/1"

_REASON_RULES = {
    "invalid-json": ("FSCK301", "malformed history line"),
    "invalid-record": ("FSCK301", "history line fails record validation"),
    "truncated-tail": ("FSCK302", "truncated history tail (torn append)"),
}


def _line_finding(store: HistoryStore, bad: MalformedLine,
                  line_number: int) -> Finding:
    rule_id, label = _REASON_RULES.get(
        bad.reason, ("FSCK301", "malformed history line"))
    return Finding(
        rule_id=rule_id,
        path=str(store.path),
        line=line_number,
        message=(f"{label}: {bad.length} byte(s) at offset {bad.offset} "
                 f"({bad.reason})"),
        module=str(store.path),
        hint="run `hdvb-observe fsck --repair` to quarantine the bad bytes",
    )


def quarantine_envelope(bad: MalformedLine) -> str:
    """The JSONL envelope a quarantined range is stored as."""
    return json.dumps({
        "schema": QUARANTINE_SCHEMA,
        "offset": bad.offset,
        "length": bad.length,
        "reason": bad.reason,
        "data": base64.b64encode(bad.data).decode("ascii"),
    }, sort_keys=True, separators=(",", ":"))


def fsck_store(store: HistoryStore, repair: bool = False) -> List[Finding]:
    """Check (and with ``repair=True`` heal) one history store.

    Returns the findings describing the pre-repair state; after a
    successful repair a second ``fsck_store`` returns ``[]``.
    """
    findings: List[Finding] = []
    entries = store.scan()

    line_number = 0
    for record, bad in entries:
        line_number += 1
        if bad is not None:
            findings.append(_line_finding(store, bad, line_number))

    temp = store.compact_tmp_path
    if temp.is_file():
        findings.append(Finding(
            rule_id="FSCK303",
            path=str(temp),
            line=0,
            message="orphan compaction temp (crash between write and swap)",
            module=str(temp),
            hint="run `hdvb-observe fsck --repair` to delete it",
        ))

    if repair and findings:
        _repair(store)
    return findings


def _repair(store: HistoryStore) -> None:
    ops = fileops()
    if store.malformed:
        # Quarantine first (append-only, so a crash mid-repair at worst
        # quarantines a range twice -- never loses it), then rewrite the
        # history from the good byte ranges, atomically.
        envelopes = "".join(quarantine_envelope(bad) + "\n"
                            for bad in store.malformed).encode("utf-8")
        try:
            descriptor = ops.open(
                str(store.quarantine_path),
                os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
            try:
                written = ops.write(descriptor, envelopes,
                                    path=str(store.quarantine_path))
                if written != len(envelopes):
                    raise ObserveError(
                        f"short write to {store.quarantine_path}: "
                        f"{written}/{len(envelopes)} bytes")
            finally:
                ops.close(descriptor)
            raw = ops.read_bytes(str(store.path))
            keep: List[bytes] = []
            cursor = 0
            for bad in store.malformed:
                keep.append(raw[cursor:bad.offset])
                cursor = bad.offset + bad.length
            keep.append(raw[cursor:])
            repaired = b"".join(keep)
            temp = str(store.path) + ".repair.tmp"
            descriptor = ops.open(
                temp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
            try:
                written = ops.write(descriptor, repaired, path=temp)
                if written != len(repaired):
                    raise ObserveError(f"short write to {temp}: "
                                       f"{written}/{len(repaired)} bytes")
                ops.fsync(descriptor)
            finally:
                ops.close(descriptor)
            ops.replace(temp, str(store.path))
        except OSError as error:
            raise ObserveError(f"fsck repair of {store.path} failed: "
                               f"{error}") from error
    temp_path = store.compact_tmp_path
    if temp_path.is_file():
        try:
            ops.unlink(str(temp_path))
        except OSError as error:
            raise ObserveError(f"cannot delete orphan temp {temp_path}: "
                               f"{error}") from error


__all__ = [
    "FSCK_SCHEMA",
    "QUARANTINE_SCHEMA",
    "fsck_store",
    "quarantine_envelope",
]
