"""Kernel backends: scalar (pure Python) and SIMD (NumPy).

See :mod:`repro.kernels.api` for the rationale.  Codecs select a backend by
name::

    from repro.kernels import get_kernels
    kernels = get_kernels("simd")
    cost = kernels.sad(block_a, block_b)
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import ConfigError
from repro.kernels.api import KERNEL_NAMES, implements_kernel_api
from repro.kernels.scalar import ScalarKernels
from repro.kernels.simd import SimdKernels
from repro.telemetry.instrument import InstrumentedKernels
from repro.telemetry.trace import state as _telemetry_state

#: Backend names in the order the paper presents them (Figure 1).
BACKEND_NAMES: Tuple[str, ...] = ("scalar", "simd")

_BACKENDS = {
    "scalar": ScalarKernels(),
    "simd": SimdKernels(),
}


def get_kernels(backend: str = "simd"):
    """Return the kernel backend named ``backend`` ("scalar" or "simd").

    While telemetry is enabled (:func:`repro.telemetry.enable`) the
    backend is wrapped with per-kernel, per-backend call counters
    (``kernels.<backend>.<kernel>.calls``); with telemetry disabled the
    shared raw backend is returned, so the dispatch path is untouched.
    """
    try:
        kernels = _BACKENDS[backend]
    except KeyError:
        known = ", ".join(sorted(_BACKENDS))
        raise ConfigError(f"unknown kernel backend {backend!r} (known: {known})") from None
    if _telemetry_state.enabled:
        return InstrumentedKernels(kernels, backend)
    return kernels


__all__ = [
    "BACKEND_NAMES",
    "KERNEL_NAMES",
    "ScalarKernels",
    "SimdKernels",
    "get_kernels",
    "implements_kernel_api",
]
