"""SIMD kernel backend: NumPy-vectorised integer kernels.

The data-parallel analogue of the paper's SIMD codec builds.  Every kernel
implements exactly the same integer algorithm as the scalar backend
(:mod:`repro.kernels.scalar`) — same rounding, same shifts, same clipping —
so the two backends are bit-exact against each other (enforced by property
tests in ``tests/test_kernels_equivalence.py``).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.kernels import tables

_A8 = tables.DCT8_INT
_H4 = tables.HADAMARD4
_CF = tables.H264_CF
_CI = tables.H264_CI
_POS = tables.H264_POSITION_CLASS


def _i64(block) -> np.ndarray:
    return np.asarray(block, dtype=np.int64)


def _sign_mag(values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    return np.sign(values), np.abs(values)


def _clip255(values: np.ndarray) -> np.ndarray:
    # np.minimum/np.maximum avoid the slow np.clip dispatch path, which
    # matters for the many small-block calls the codecs make.
    return np.minimum(np.maximum(values, 0), 255)


def _clip_range(values: np.ndarray, low, high) -> np.ndarray:
    return np.minimum(np.maximum(values, low), high)


class SimdKernels:
    """NumPy implementation of the kernel API."""

    name = "simd"

    # ------------------------------------------------------------------
    # cost kernels
    # ------------------------------------------------------------------

    def sad(self, a, b) -> int:
        return int(np.sum(np.abs(_i64(a) - _i64(b))))

    def ssd(self, a, b) -> int:
        diff = _i64(a) - _i64(b)
        return int(np.sum(diff * diff))

    def satd4(self, a, b) -> int:
        diff = _i64(a) - _i64(b)
        transformed = _H4 @ diff @ _H4
        return int(np.sum(np.abs(transformed))) >> 1

    # ------------------------------------------------------------------
    # block arithmetic
    # ------------------------------------------------------------------

    def sub(self, a, b) -> np.ndarray:
        return _i64(a) - _i64(b)

    def add_clip(self, prediction, residual) -> np.ndarray:
        return _clip255(_i64(prediction) + _i64(residual))

    def average(self, a, b) -> np.ndarray:
        return (_i64(a) + _i64(b) + 1) >> 1

    # ------------------------------------------------------------------
    # 8x8 DCT family
    # ------------------------------------------------------------------

    def fdct8(self, block) -> np.ndarray:
        x = _i64(block)
        return (_A8 @ x @ _A8.T + tables.DCT8_ROUND) >> tables.DCT8_FINAL_SHIFT

    def idct8(self, coeffs) -> np.ndarray:
        y = _i64(coeffs)
        return (_A8.T @ y @ _A8 + tables.DCT8_ROUND) >> tables.DCT8_FINAL_SHIFT

    # ------------------------------------------------------------------
    # H.264 4x4 integer transform family
    # ------------------------------------------------------------------

    def fwd_transform4(self, block) -> np.ndarray:
        x = _i64(block)
        return _CF @ x @ _CF.T

    def inv_transform4(self, coeffs) -> np.ndarray:
        w = _i64(coeffs)
        return (_CI @ w @ _CI.T + 128) >> 8

    def hadamard4_forward(self, block) -> np.ndarray:
        x = _i64(block)
        return (_H4 @ x @ _H4) >> 1

    def hadamard4_inverse(self, coeffs) -> np.ndarray:
        y = _i64(coeffs)
        return _H4 @ y @ _H4

    def hadamard2(self, block) -> np.ndarray:
        b = _i64(block)
        h2 = np.array([[1, 1], [1, -1]], dtype=np.int64)
        return h2 @ b @ h2

    # ------------------------------------------------------------------
    # MPEG-2 style quantisation
    # ------------------------------------------------------------------

    def quant_mpeg(self, coeffs, matrix, qscale: int, intra: bool) -> np.ndarray:
        c = _i64(coeffs)
        w = _i64(matrix)
        divisor = w * qscale
        scale = tables.MPEG_QUANT_SCALE
        sign, mag = _sign_mag(c)
        if intra:
            out = sign * ((scale * mag + divisor // 2) // divisor)
            out[0, 0] = _round_away_scalar(int(c[0, 0]), tables.MPEG_INTRA_DC_SCALER)
        else:
            out = sign * (scale * mag // divisor)
        return _clip_range(out, -2047, 2047)

    def dequant_mpeg(self, levels, matrix, qscale: int, intra: bool) -> np.ndarray:
        lv = _i64(levels)
        w = _i64(matrix)
        sign, mag = _sign_mag(lv)
        scale = tables.MPEG_QUANT_SCALE
        if intra:
            out = sign * (mag * w * qscale // scale)
            out[0, 0] = lv[0, 0] * tables.MPEG_INTRA_DC_SCALER
        else:
            out = np.where(lv == 0, 0, sign * ((2 * mag + 1) * w * qscale // (2 * scale)))
        return out

    def quant_matrix(self, coeffs, matrix) -> np.ndarray:
        c = _i64(coeffs)
        w = _i64(matrix)
        sign, mag = _sign_mag(c)
        return sign * ((mag + w // 2) // w)

    def dequant_matrix(self, levels, matrix) -> np.ndarray:
        return _i64(levels) * _i64(matrix)

    # ------------------------------------------------------------------
    # H.263-style quantisation (MPEG-4 ASP class)
    # ------------------------------------------------------------------

    def quant_h263(self, coeffs, qp: int, intra: bool) -> np.ndarray:
        c = _i64(coeffs)
        step2 = 4 * qp  # step in half-units: 2 * qp
        sign, mag = _sign_mag(c)
        if intra:
            out = sign * ((2 * mag + step2 // 2) // step2)
            out[0, 0] = _round_away_scalar(int(c[0, 0]), 8)
        else:
            out = sign * (2 * mag // step2)
        return _clip_range(out, -2047, 2047)

    def dequant_h263(self, levels, qp: int, intra: bool) -> np.ndarray:
        lv = _i64(levels)
        step2 = 4 * qp
        sign, mag = _sign_mag(lv)
        if intra:
            out = sign * (mag * step2 // 2)
            out[0, 0] = lv[0, 0] * 8
        else:
            out = np.where(lv == 0, 0, sign * ((2 * mag + 1) * step2 // 4))
        return out

    # ------------------------------------------------------------------
    # H.264 quantisation
    # ------------------------------------------------------------------

    @staticmethod
    def _h264_f(qp: int, intra: bool) -> Tuple[int, int]:
        qbits = 15 + qp // 6
        f = (1 << qbits) // 3 if intra else (1 << qbits) // 6
        return qbits, f

    def quant_h264_4x4(self, coeffs, qp: int, intra: bool) -> np.ndarray:
        c = _i64(coeffs)
        qbits, f = self._h264_f(qp, intra)
        mf = tables.H264_MF[qp % 6][_POS]
        sign, mag = _sign_mag(c)
        return sign * ((mag * mf + f) >> qbits)

    def dequant_h264_4x4(self, levels, qp: int) -> np.ndarray:
        lv = _i64(levels)
        v = tables.H264_V[qp % 6][_POS]
        return (lv * v) << (qp // 6)

    def quant_h264_dc4(self, dc, qp: int, intra: bool) -> np.ndarray:
        c = _i64(dc)
        qbits, f = self._h264_f(qp, intra)
        mf0 = int(tables.H264_MF[qp % 6][0])
        sign, mag = _sign_mag(c)
        return sign * ((mag * mf0 + 2 * f) >> (qbits + 1))

    def dequant_h264_dc4(self, levels, qp: int) -> np.ndarray:
        f = self.hadamard4_inverse(levels)
        v0 = int(tables.H264_V[qp % 6][0])
        shift = qp // 6
        if shift >= 2:
            return (f * v0) << (shift - 2)
        rounding = 1 << (1 - shift)
        return (f * v0 + rounding) >> (2 - shift)

    def quant_h264_dc2(self, dc, qp: int, intra: bool) -> np.ndarray:
        c = _i64(dc)
        qbits, f = self._h264_f(qp, intra)
        mf0 = int(tables.H264_MF[qp % 6][0])
        sign, mag = _sign_mag(c)
        return sign * ((mag * mf0 + 2 * f) >> (qbits + 1))

    def dequant_h264_dc2(self, levels, qp: int) -> np.ndarray:
        f = self.hadamard2(levels)
        v0 = int(tables.H264_V[qp % 6][0])
        return ((f * v0) << (qp // 6)) >> 1

    # ------------------------------------------------------------------
    # motion compensation / interpolation
    # ------------------------------------------------------------------

    def get_block(self, plane, x: int, y: int, width: int, height: int) -> np.ndarray:
        return np.asarray(plane[y : y + height, x : x + width], dtype=np.int64).copy()

    def mc_halfpel(self, plane, x: int, y: int, width: int, height: int,
                   mvx: int, mvy: int) -> np.ndarray:
        ix = x + (mvx >> 1)
        iy = y + (mvy >> 1)
        fx = mvx & 1
        fy = mvy & 1
        region = _i64(plane[iy : iy + height + 1, ix : ix + width + 1])
        p00 = region[:height, :width]
        if fx == 0 and fy == 0:
            return p00.copy()
        if fx == 1 and fy == 0:
            return (p00 + region[:height, 1 : width + 1] + 1) >> 1
        if fx == 0 and fy == 1:
            return (p00 + region[1 : height + 1, :width] + 1) >> 1
        return (
            p00
            + region[:height, 1 : width + 1]
            + region[1 : height + 1, :width]
            + region[1 : height + 1, 1 : width + 1]
            + 2
        ) >> 2

    def mc_qpel_bilinear(self, plane, x: int, y: int, width: int, height: int,
                         mvx: int, mvy: int) -> np.ndarray:
        ix = x + (mvx >> 2)
        iy = y + (mvy >> 2)
        fx = mvx & 3
        fy = mvy & 3
        region = _i64(plane[iy : iy + height + 1, ix : ix + width + 1])
        return (
            (4 - fx) * (4 - fy) * region[:height, :width]
            + fx * (4 - fy) * region[:height, 1 : width + 1]
            + (4 - fx) * fy * region[1 : height + 1, :width]
            + fx * fy * region[1 : height + 1, 1 : width + 1]
            + 8
        ) >> 4

    # -- H.264 six-tap quarter-pel -------------------------------------

    @staticmethod
    def _six_tap_h(region: np.ndarray) -> np.ndarray:
        """Horizontal six-tap over a region; output width = width - 5."""
        return (
            region[:, 0:-5]
            - 5 * region[:, 1:-4]
            + 20 * region[:, 2:-3]
            + 20 * region[:, 3:-2]
            - 5 * region[:, 4:-1]
            + region[:, 5:]
        )

    @staticmethod
    def _six_tap_v(region: np.ndarray) -> np.ndarray:
        """Vertical six-tap over a region; output height = height - 5."""
        return (
            region[0:-5, :]
            - 5 * region[1:-4, :]
            + 20 * region[2:-3, :]
            + 20 * region[3:-2, :]
            - 5 * region[4:-1, :]
            + region[5:, :]
        )

    def _h264_halfpel_h(self, region: np.ndarray, rows: int, cols: int,
                        row_off: int, col_off: int) -> np.ndarray:
        window = region[
            2 + row_off : 2 + row_off + rows,
            col_off : col_off + cols + 5,
        ]
        return _clip255((self._six_tap_h(window) + 16) >> 5)

    def _h264_halfpel_v(self, region: np.ndarray, rows: int, cols: int,
                        row_off: int, col_off: int) -> np.ndarray:
        window = region[
            row_off : row_off + rows + 5,
            2 + col_off : 2 + col_off + cols,
        ]
        return _clip255((self._six_tap_v(window) + 16) >> 5)

    def _h264_center(self, region: np.ndarray, rows: int, cols: int) -> np.ndarray:
        inter = self._six_tap_h(region[:, : cols + 5])[: rows + 5, :]
        return _clip255((self._six_tap_v(inter) + 512) >> 10)

    def mc_qpel_h264(self, plane, x: int, y: int, width: int, height: int,
                     mvx: int, mvy: int) -> np.ndarray:
        ix = x + (mvx >> 2)
        iy = y + (mvy >> 2)
        fx = mvx & 3
        fy = mvy & 3
        region = _i64(plane[iy - 2 : iy + height + 3, ix - 2 : ix + width + 3])

        def integer(row_off: int = 0, col_off: int = 0) -> np.ndarray:
            return region[
                2 + row_off : 2 + row_off + height,
                2 + col_off : 2 + col_off + width,
            ]

        def avg(a: np.ndarray, b: np.ndarray) -> np.ndarray:
            return (a + b + 1) >> 1

        if fx == 0 and fy == 0:
            return integer().copy()
        if fy == 0:
            b = self._h264_halfpel_h(region, height, width, 0, 0)
            if fx == 2:
                return b
            return avg(integer(0, 0) if fx == 1 else integer(0, 1), b)
        if fx == 0:
            h = self._h264_halfpel_v(region, height, width, 0, 0)
            if fy == 2:
                return h
            return avg(integer(0, 0) if fy == 1 else integer(1, 0), h)
        if fx == 2 and fy == 2:
            return self._h264_center(region, height, width)
        if fx == 2:
            j = self._h264_center(region, height, width)
            b = self._h264_halfpel_h(region, height, width, 0 if fy == 1 else 1, 0)
            return avg(b, j)
        if fy == 2:
            j = self._h264_center(region, height, width)
            h = self._h264_halfpel_v(region, height, width, 0, 0 if fx == 1 else 1)
            return avg(h, j)
        b = self._h264_halfpel_h(region, height, width, 0 if fy == 1 else 1, 0)
        h = self._h264_halfpel_v(region, height, width, 0, 0 if fx == 1 else 1)
        return avg(b, h)

    def mc_chroma_bilinear8(self, plane, x: int, y: int, width: int, height: int,
                            mvx: int, mvy: int) -> np.ndarray:
        ix = x + (mvx >> 3)
        iy = y + (mvy >> 3)
        fx = mvx & 7
        fy = mvy & 7
        region = _i64(plane[iy : iy + height + 1, ix : ix + width + 1])
        return (
            (8 - fx) * (8 - fy) * region[:height, :width]
            + fx * (8 - fy) * region[:height, 1 : width + 1]
            + (8 - fx) * fy * region[1 : height + 1, :width]
            + fx * fy * region[1 : height + 1, 1 : width + 1]
            + 32
        ) >> 6

    # ------------------------------------------------------------------
    # H.264 in-loop deblocking
    # ------------------------------------------------------------------

    def deblock_normal(self, p2, p1, p0, q0, q1, q2,
                       alpha: int, beta: int, c0, chroma: bool):
        vp2, vp1, vp0 = _i64(p2), _i64(p1), _i64(p0)
        vq0, vq1, vq2 = _i64(q0), _i64(q1), _i64(q2)
        vc0 = _i64(c0)
        filt = (
            (vc0 >= 0)
            & (np.abs(vp0 - vq0) < alpha)
            & (np.abs(vp1 - vp0) < beta)
            & (np.abs(vq1 - vq0) < beta)
        )
        ap = np.abs(vp2 - vp0)
        aq = np.abs(vq2 - vq0)
        safe_c0 = np.maximum(vc0, 0)
        if chroma:
            c = safe_c0 + 1
        else:
            c = safe_c0 + (ap < beta).astype(np.int64) + (aq < beta).astype(np.int64)
        delta = _clip_range(((vq0 - vp0) * 4 + (vp1 - vq1) + 4) >> 3, -c, c)
        out_p0 = np.where(filt, _clip255(vp0 + delta), vp0)
        out_q0 = np.where(filt, _clip255(vq0 - delta), vq0)
        out_p1 = vp1.copy()
        out_q1 = vq1.copy()
        if not chroma:
            adj_p = _clip_range((vp2 + ((vp0 + vq0 + 1) >> 1) - 2 * vp1) >> 1, -safe_c0, safe_c0)
            adj_q = _clip_range((vq2 + ((vp0 + vq0 + 1) >> 1) - 2 * vq1) >> 1, -safe_c0, safe_c0)
            out_p1 = np.where(filt & (ap < beta), vp1 + adj_p, vp1)
            out_q1 = np.where(filt & (aq < beta), vq1 + adj_q, vq1)
        return out_p1, out_p0, out_q0, out_q1

    def deblock_strong(self, p3, p2, p1, p0, q0, q1, q2, q3,
                       alpha: int, beta: int, mask, chroma: bool):
        vp3, vp2, vp1, vp0 = _i64(p3), _i64(p2), _i64(p1), _i64(p0)
        vq0, vq1, vq2, vq3 = _i64(q0), _i64(q1), _i64(q2), _i64(q3)
        filt = (
            (_i64(mask) != 0)
            & (np.abs(vp0 - vq0) < alpha)
            & (np.abs(vp1 - vp0) < beta)
            & (np.abs(vq1 - vq0) < beta)
        )
        weak_p0 = (2 * vp1 + vp0 + vq1 + 2) >> 2
        weak_q0 = (2 * vq1 + vq0 + vp1 + 2) >> 2
        if chroma:
            return (
                vp2.copy(),
                vp1.copy(),
                np.where(filt, weak_p0, vp0),
                np.where(filt, weak_q0, vq0),
                vq1.copy(),
                vq2.copy(),
            )
        strong = np.abs(vp0 - vq0) < (alpha >> 2) + 2
        ap = np.abs(vp2 - vp0)
        aq = np.abs(vq2 - vq0)
        strong_p = filt & strong & (ap < beta)
        strong_q = filt & strong & (aq < beta)
        out_p0 = np.where(
            strong_p,
            (vp2 + 2 * vp1 + 2 * vp0 + 2 * vq0 + vq1 + 4) >> 3,
            np.where(filt, weak_p0, vp0),
        )
        out_p1 = np.where(strong_p, (vp2 + vp1 + vp0 + vq0 + 2) >> 2, vp1)
        out_p2 = np.where(
            strong_p, (2 * vp3 + 3 * vp2 + vp1 + vp0 + vq0 + 4) >> 3, vp2
        )
        out_q0 = np.where(
            strong_q,
            (vq2 + 2 * vq1 + 2 * vq0 + 2 * vp0 + vp1 + 4) >> 3,
            np.where(filt, weak_q0, vq0),
        )
        out_q1 = np.where(strong_q, (vq2 + vq1 + vq0 + vp0 + 2) >> 2, vq1)
        out_q2 = np.where(
            strong_q, (2 * vq3 + 3 * vq2 + vq1 + vq0 + vp0 + 4) >> 3, vq2
        )
        return out_p2, out_p1, out_p0, out_q0, out_q1, out_q2


def _round_away_scalar(numerator: int, denominator: int) -> int:
    if numerator >= 0:
        return (numerator + denominator // 2) // denominator
    return -((-numerator + denominator // 2) // denominator)
