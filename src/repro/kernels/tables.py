"""Constant tables shared by both kernel backends.

Everything here is integer so that the scalar and SIMD backends can be
bit-exact against each other.
"""

from __future__ import annotations

import math

import numpy as np

# ---------------------------------------------------------------------------
# 8x8 DCT (MPEG-2 / MPEG-4 class codecs)
#
# Fixed-point orthonormal DCT-II: DCT8_INT = round(C * 2**DCT8_SHIFT) where
# C[i][j] = c(i)/2 * cos((2j+1) i pi / 16), c(0) = 1/sqrt(2), else 1.
# Forward transform: (A X A^T + 2**(2S-1)) >> 2S, which is the orthonormal
# DCT rounded to integers.  Both backends use the identical integer matrix,
# so results match exactly.
# ---------------------------------------------------------------------------

DCT8_SHIFT = 13


def _dct8_matrix() -> np.ndarray:
    rows = []
    for i in range(8):
        scale = math.sqrt(1.0 / 8.0) if i == 0 else math.sqrt(2.0 / 8.0)
        row = [
            int(round(scale * math.cos((2 * j + 1) * i * math.pi / 16.0) * (1 << DCT8_SHIFT)))
            for j in range(8)
        ]
        rows.append(row)
    return np.array(rows, dtype=np.int64)


DCT8_INT = _dct8_matrix()
DCT8_ROUND = 1 << (2 * DCT8_SHIFT - 1)
DCT8_FINAL_SHIFT = 2 * DCT8_SHIFT

# ---------------------------------------------------------------------------
# H.264 4x4 integer transform
# ---------------------------------------------------------------------------

#: Forward core transform matrix Cf (H.264 spec 8.5.12 equivalent).
H264_CF = np.array(
    [
        [1, 1, 1, 1],
        [2, 1, -1, -2],
        [1, -1, -1, 1],
        [1, -2, 2, -1],
    ],
    dtype=np.int64,
)

#: Inverse core transform matrix, scaled by 2 so the half-weight taps of
#: the standard's butterflies become integers: X = (CI @ W @ CI^T + 128) >> 8.
#: (The standard floors its half-taps mid-transform; this single-rounding
#: matmul form is used identically by both backends — see DESIGN.md.)
H264_CI = np.array(
    [
        [2, 2, 2, 1],
        [2, 1, -2, -2],
        [2, -1, -2, 2],
        [2, -2, 2, -1],
    ],
    dtype=np.int64,
)

#: 4x4 Hadamard matrix used for the Intra16x16 luma DC transform and SATD.
HADAMARD4 = np.array(
    [
        [1, 1, 1, 1],
        [1, 1, -1, -1],
        [1, -1, -1, 1],
        [1, -1, 1, -1],
    ],
    dtype=np.int64,
)

#: Quantisation multipliers MF[qp % 6][k], k = position class (a, b, c).
H264_MF = np.array(
    [
        [13107, 5243, 8066],
        [11916, 4660, 7490],
        [10082, 4194, 6554],
        [9362, 3647, 5825],
        [8192, 3355, 5243],
        [7282, 2893, 4559],
    ],
    dtype=np.int64,
)

#: Dequantisation multipliers V[qp % 6][k].
H264_V = np.array(
    [
        [10, 16, 13],
        [11, 18, 14],
        [13, 20, 16],
        [14, 23, 18],
        [16, 25, 20],
        [18, 29, 23],
    ],
    dtype=np.int64,
)

#: Position-class index for each coefficient of a 4x4 block:
#: class 0 at (0,0),(0,2),(2,0),(2,2); class 1 at (1,1),(1,3),(3,1),(3,3);
#: class 2 elsewhere.
H264_POSITION_CLASS = np.array(
    [
        [0, 2, 0, 2],
        [2, 1, 2, 1],
        [0, 2, 0, 2],
        [2, 1, 2, 1],
    ],
    dtype=np.int64,
)


def h264_mf_matrix(qp: int) -> np.ndarray:
    """Per-position forward multipliers for ``qp``."""
    return H264_MF[qp % 6][H264_POSITION_CLASS]


def h264_v_matrix(qp: int) -> np.ndarray:
    """Per-position dequant multipliers for ``qp``."""
    return H264_V[qp % 6][H264_POSITION_CLASS]


# ---------------------------------------------------------------------------
# MPEG quantisation matrices
# ---------------------------------------------------------------------------

#: Default MPEG-2 intra quantiser matrix (ISO 13818-2 default).
MPEG_INTRA_MATRIX = np.array(
    [
        [8, 16, 19, 22, 26, 27, 29, 34],
        [16, 16, 22, 24, 27, 29, 34, 37],
        [19, 22, 26, 27, 29, 34, 34, 38],
        [22, 22, 26, 27, 29, 34, 37, 40],
        [22, 26, 27, 29, 32, 35, 40, 48],
        [26, 27, 29, 32, 35, 40, 48, 58],
        [26, 27, 29, 34, 38, 46, 56, 69],
        [27, 29, 35, 38, 46, 56, 69, 83],
    ],
    dtype=np.int64,
)

#: Default MPEG inter (non-intra) matrix: flat 16.
MPEG_INTER_MATRIX = np.full((8, 8), 16, dtype=np.int64)

#: Intra DC scaler (equivalent to intra_dc_precision = 8 bit).
MPEG_INTRA_DC_SCALER = 8

#: Numerator of the MPEG quantiser: level = SCALE * coeff / (W * qscale).
#: ISO 13818-2 uses 16 on its double-scaled DCT; our DCT is orthonormal, so
#: this constant also calibrates the effective step such that qscale 5
#: encodes land in the same quality band as H.264 QP 26 (Equation 1), as
#: Table V of the paper requires.
MPEG_QUANT_SCALE = 13

# ---------------------------------------------------------------------------
# H.264 deblocking thresholds.
#
# Self-consistent formulaic analogues of the spec's alpha/beta/tc0 tables
# (see DESIGN.md section 2, bitstream note): monotone in QP, zero below
# QP 16 so low-QP reconstructions are left untouched, magnitudes matching
# the spec tables at mid QP.
# ---------------------------------------------------------------------------

QP_MAX = 51


def _alpha_table() -> np.ndarray:
    values = []
    for qp in range(QP_MAX + 1):
        if qp < 16:
            values.append(0)
        else:
            values.append(min(255, int(round(0.8 * (2.0 ** (qp / 6.0) - 1.0)))))
    return np.array(values, dtype=np.int64)


def _beta_table() -> np.ndarray:
    values = []
    for qp in range(QP_MAX + 1):
        if qp < 16:
            values.append(0)
        else:
            values.append(min(18, int(round(0.5 * qp - 7.0))))
    return np.array(values, dtype=np.int64)


def _tc0_table() -> np.ndarray:
    table = np.zeros((QP_MAX + 1, 4), dtype=np.int64)
    for qp in range(16, QP_MAX + 1):
        for bs in (1, 2, 3):
            table[qp][bs] = max(0, int(round(2.0 ** ((qp - 24) / 6.0) * bs)))
    return table


DEBLOCK_ALPHA = _alpha_table()
DEBLOCK_BETA = _beta_table()
DEBLOCK_TC0 = _tc0_table()
