"""The kernel backend interface.

The paper benchmarks each codec twice: a *scalar* build (plain C) and a
*SIMD* build where the hot kernels — SAD/SATD, DCT/IDCT, quantisation,
sub-pel interpolation, deblocking — are rewritten with data-parallel
instructions (Section VI).  This library reproduces that axis with two
interchangeable kernel backends:

* ``scalar`` (:class:`repro.kernels.scalar.ScalarKernels`) — pure-Python
  integer loops, the analogue of the plain C build;
* ``simd`` (:class:`repro.kernels.simd.SimdKernels`) — NumPy-vectorised
  versions of the same integer algorithms, the analogue of the SIMD build.

Both backends are **bit-exact** against each other: every kernel is defined
in integer arithmetic only, so the choice of backend changes throughput but
never output (verified by property tests).  The codecs obtain a backend via
:func:`repro.kernels.get_kernels` and route every per-block hot operation
through it; the macroblock control flow above the kernels stays plain
Python in both builds, mirroring how SIMD optimisation of real codecs only
touches leaf kernels (which is why the paper's speed-ups are ~2x, not 10x).

This module documents the interface; see the scalar backend for reference
semantics of each kernel.
"""

from __future__ import annotations

KERNEL_NAMES = (
    # cost
    "sad",
    "ssd",
    "satd4",
    # block arithmetic
    "sub",
    "add_clip",
    "average",
    # 8x8 DCT family (MPEG-2 / MPEG-4)
    "fdct8",
    "idct8",
    # H.264 4x4 integer transform family
    "fwd_transform4",
    "inv_transform4",
    "hadamard4_forward",
    "hadamard4_inverse",
    "hadamard2",
    # quantisers
    "quant_mpeg",
    "dequant_mpeg",
    "quant_matrix",
    "dequant_matrix",
    "quant_h263",
    "dequant_h263",
    "quant_h264_4x4",
    "dequant_h264_4x4",
    "quant_h264_dc4",
    "dequant_h264_dc4",
    "quant_h264_dc2",
    "dequant_h264_dc2",
    # motion compensation / interpolation
    "get_block",
    "mc_halfpel",
    "mc_qpel_bilinear",
    "mc_qpel_h264",
    "mc_chroma_bilinear8",
    # H.264 in-loop deblocking
    "deblock_normal",
    "deblock_strong",
)


def implements_kernel_api(backend: object) -> bool:
    """True when ``backend`` provides every kernel entry point."""
    return all(callable(getattr(backend, name, None)) for name in KERNEL_NAMES)
