"""Scalar kernel backend: pure-Python integer loops.

This backend is the analogue of the paper's "scalar" (plain C, no SIMD)
codec builds.  Every kernel converts its operands to plain Python lists and
performs element-wise integer arithmetic in interpreted loops; the SIMD
backend (:mod:`repro.kernels.simd`) implements the *identical* integer
algorithms with NumPy vector operations, so the two backends are bit-exact
against each other and differ only in throughput.

Conventions
-----------
* Pixel blocks and planes arrive as 2-D NumPy integer arrays; results are
  returned as ``int64`` arrays (or plain ``int`` for costs).
* Motion-compensation kernels take a *padded* reference plane and absolute
  block coordinates; callers guarantee the pad margin covers the motion
  range plus the interpolation support (see :mod:`repro.mc.pad`).
* All divisions/rounding are spelled out with explicit integer operations
  so both backends round identically (``>>`` is an arithmetic floor shift
  in both Python and NumPy).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.kernels import tables

Block = List[List[int]]


def _to_list(block) -> Block:
    if isinstance(block, np.ndarray):
        return block.tolist()
    return [list(row) for row in block]


def _to_array(rows: Sequence[Sequence[int]]) -> np.ndarray:
    return np.array(rows, dtype=np.int64)


def _to_list1(vector) -> List[int]:
    if isinstance(vector, np.ndarray):
        return vector.tolist()
    return list(vector)


def _to_array1(values: Sequence[int]) -> np.ndarray:
    return np.array(values, dtype=np.int64)


def _clip255(value: int) -> int:
    if value < 0:
        return 0
    if value > 255:
        return 255
    return value


def _clip3(low: int, high: int, value: int) -> int:
    if value < low:
        return low
    if value > high:
        return high
    return value


def _div_round_away(numerator: int, denominator: int) -> int:
    """Round-half-away-from-zero integer division (denominator > 0)."""
    if numerator >= 0:
        return (numerator + denominator // 2) // denominator
    return -((-numerator + denominator // 2) // denominator)


def _div_to_zero(numerator: int, denominator: int) -> int:
    """Truncating integer division (denominator > 0)."""
    if numerator >= 0:
        return numerator // denominator
    return -((-numerator) // denominator)


_DCT8 = tables.DCT8_INT.tolist()
_HAD4 = tables.HADAMARD4.tolist()
_CF = tables.H264_CF.tolist()
_CI = tables.H264_CI.tolist()
_POS_CLASS = tables.H264_POSITION_CLASS.tolist()
_MF = tables.H264_MF.tolist()
_V = tables.H264_V.tolist()


class ScalarKernels:
    """Pure-Python implementation of the kernel API."""

    name = "scalar"

    # ------------------------------------------------------------------
    # cost kernels
    # ------------------------------------------------------------------

    def sad(self, a, b) -> int:
        """Sum of absolute differences between two equal-shape blocks."""
        la, lb = _to_list(a), _to_list(b)
        total = 0
        for row_a, row_b in zip(la, lb):
            for pa, pb in zip(row_a, row_b):
                diff = pa - pb
                total += diff if diff >= 0 else -diff
        return total

    def ssd(self, a, b) -> int:
        """Sum of squared differences."""
        la, lb = _to_list(a), _to_list(b)
        total = 0
        for row_a, row_b in zip(la, lb):
            for pa, pb in zip(row_a, row_b):
                diff = pa - pb
                total += diff * diff
        return total

    def satd4(self, a, b) -> int:
        """4x4 SATD: sum of absolute Hadamard-transformed differences / 2."""
        la, lb = _to_list(a), _to_list(b)
        diff = [
            [la[i][j] - lb[i][j] for j in range(4)]
            for i in range(4)
        ]
        tmp = self._mat4(_HAD4, diff)
        out = self._mat4(tmp, _HAD4)  # H is symmetric: H @ D @ H^T == H @ D @ H
        total = 0
        for row in out:
            for value in row:
                total += value if value >= 0 else -value
        return total >> 1

    # ------------------------------------------------------------------
    # block arithmetic
    # ------------------------------------------------------------------

    def sub(self, a, b) -> np.ndarray:
        """Element-wise ``a - b``."""
        la, lb = _to_list(a), _to_list(b)
        return _to_array(
            [[pa - pb for pa, pb in zip(row_a, row_b)] for row_a, row_b in zip(la, lb)]
        )

    def add_clip(self, prediction, residual) -> np.ndarray:
        """Element-wise ``clip(prediction + residual, 0, 255)``."""
        lp, lr = _to_list(prediction), _to_list(residual)
        return _to_array(
            [
                [_clip255(pp + pr) for pp, pr in zip(row_p, row_r)]
                for row_p, row_r in zip(lp, lr)
            ]
        )

    def average(self, a, b) -> np.ndarray:
        """Rounded average ``(a + b + 1) >> 1`` (bi-prediction, half-pel)."""
        la, lb = _to_list(a), _to_list(b)
        return _to_array(
            [
                [(pa + pb + 1) >> 1 for pa, pb in zip(row_a, row_b)]
                for row_a, row_b in zip(la, lb)
            ]
        )

    # ------------------------------------------------------------------
    # 8x8 DCT family
    # ------------------------------------------------------------------

    @staticmethod
    def _mat8(a: Block, b: Block) -> Block:
        return [
            [sum(a[i][k] * b[k][j] for k in range(8)) for j in range(8)]
            for i in range(8)
        ]

    @staticmethod
    def _mat4(a: Block, b: Block) -> Block:
        return [
            [sum(a[i][k] * b[k][j] for k in range(4)) for j in range(4)]
            for i in range(4)
        ]

    def fdct8(self, block) -> np.ndarray:
        """Fixed-point orthonormal 8x8 forward DCT."""
        x = _to_list(block)
        a = _DCT8
        tmp = self._mat8(a, x)
        # tmp @ A^T with final rounding shift
        out = [
            [
                (sum(tmp[i][k] * a[j][k] for k in range(8)) + tables.DCT8_ROUND)
                >> tables.DCT8_FINAL_SHIFT
                for j in range(8)
            ]
            for i in range(8)
        ]
        return _to_array(out)

    def idct8(self, coeffs) -> np.ndarray:
        """Fixed-point orthonormal 8x8 inverse DCT."""
        y = _to_list(coeffs)
        a = _DCT8
        # A^T @ Y
        tmp = [
            [sum(a[k][i] * y[k][j] for k in range(8)) for j in range(8)]
            for i in range(8)
        ]
        out = [
            [
                (sum(tmp[i][k] * a[k][j] for k in range(8)) + tables.DCT8_ROUND)
                >> tables.DCT8_FINAL_SHIFT
                for j in range(8)
            ]
            for i in range(8)
        ]
        return _to_array(out)

    # ------------------------------------------------------------------
    # H.264 4x4 integer transform family
    # ------------------------------------------------------------------

    def fwd_transform4(self, block) -> np.ndarray:
        """H.264 forward core transform: Cf @ X @ Cf^T (exact integers)."""
        x = _to_list(block)
        tmp = self._mat4(_CF, x)
        out = [
            [sum(tmp[i][k] * _CF[j][k] for k in range(4)) for j in range(4)]
            for i in range(4)
        ]
        return _to_array(out)

    def inv_transform4(self, coeffs) -> np.ndarray:
        """H.264 inverse core transform: ``(CI @ W @ CI^T + 128) >> 8``."""
        w = _to_list(coeffs)
        tmp = self._mat4(_CI, w)
        out = [
            [
                (sum(tmp[i][k] * _CI[j][k] for k in range(4)) + 128) >> 8
                for j in range(4)
            ]
            for i in range(4)
        ]
        return _to_array(out)

    def hadamard4_forward(self, block) -> np.ndarray:
        """Forward 4x4 Hadamard for luma DC: ``(H @ X @ H) >> 1``."""
        x = _to_list(block)
        tmp = self._mat4(_HAD4, x)
        out = [
            [self._had_row(tmp, i, j) >> 1 for j in range(4)]
            for i in range(4)
        ]
        return _to_array(out)

    @staticmethod
    def _had_row(tmp: Block, i: int, j: int) -> int:
        return sum(tmp[i][k] * _HAD4[k][j] for k in range(4))

    def hadamard4_inverse(self, coeffs) -> np.ndarray:
        """Inverse 4x4 Hadamard for luma DC: ``H @ Y @ H`` (no scaling)."""
        y = _to_list(coeffs)
        tmp = self._mat4(_HAD4, y)
        out = self._mat4(tmp, _HAD4)
        return _to_array(out)

    def hadamard2(self, block) -> np.ndarray:
        """2x2 Hadamard (self-inverse up to scale), used for chroma DC."""
        b = _to_list(block)
        a, c = b[0]
        d, e = b[1]
        return _to_array(
            [
                [a + c + d + e, a - c + d - e],
                [a + c - d - e, a - c - d + e],
            ]
        )

    # ------------------------------------------------------------------
    # MPEG-2 style quantisation (weighted matrices)
    # ------------------------------------------------------------------

    def quant_mpeg(self, coeffs, matrix, qscale: int, intra: bool) -> np.ndarray:
        c = _to_list(coeffs)
        w = _to_list(matrix)
        out = [[0] * 8 for _ in range(8)]
        for i in range(8):
            for j in range(8):
                value = c[i][j]
                if intra and i == 0 and j == 0:
                    level = _div_round_away(value, tables.MPEG_INTRA_DC_SCALER)
                elif intra:
                    level = _div_round_away(tables.MPEG_QUANT_SCALE * value, w[i][j] * qscale)
                else:
                    level = _div_to_zero(tables.MPEG_QUANT_SCALE * value, w[i][j] * qscale)
                out[i][j] = _clip3(-2047, 2047, level)
        return _to_array(out)

    def dequant_mpeg(self, levels, matrix, qscale: int, intra: bool) -> np.ndarray:
        lv = _to_list(levels)
        w = _to_list(matrix)
        out = [[0] * 8 for _ in range(8)]
        for i in range(8):
            for j in range(8):
                level = lv[i][j]
                if intra and i == 0 and j == 0:
                    out[i][j] = level * tables.MPEG_INTRA_DC_SCALER
                elif level == 0:
                    out[i][j] = 0
                elif intra:
                    out[i][j] = _div_to_zero(level * w[i][j] * qscale, tables.MPEG_QUANT_SCALE)
                else:
                    mag = (2 * abs(level) + 1) * w[i][j] * qscale // (2 * tables.MPEG_QUANT_SCALE)
                    out[i][j] = mag if level > 0 else -mag
        return _to_array(out)

    def quant_matrix(self, coeffs, matrix) -> np.ndarray:
        """Plain matrix quantiser: round-to-nearest ``c / W`` (JPEG style)."""
        c = _to_list(coeffs)
        w = _to_list(matrix)
        out = [
            [_div_round_away(c[i][j], w[i][j]) for j in range(8)]
            for i in range(8)
        ]
        return _to_array(out)

    def dequant_matrix(self, levels, matrix) -> np.ndarray:
        """Inverse of :meth:`quant_matrix`: ``level * W``."""
        lv = _to_list(levels)
        w = _to_list(matrix)
        out = [
            [lv[i][j] * w[i][j] for j in range(8)]
            for i in range(8)
        ]
        return _to_array(out)

    # ------------------------------------------------------------------
    # H.263-style quantisation (MPEG-4 ASP class)
    # ------------------------------------------------------------------

    def quant_h263(self, coeffs, qp: int, intra: bool) -> np.ndarray:
        """H.263-style uniform quantiser (MPEG-4 ASP class).

        Intra AC coefficients are rounded to the nearest multiple of the
        step (2*qp, as in H.263); inter coefficients use a one-step dead
        zone.  Reconstruction is at the bin centre.  The intra DC scaler
        is 8.
        """
        c = _to_list(coeffs)
        step2 = 4 * qp  # step in half-units: 2 * qp
        out = [[0] * 8 for _ in range(8)]
        for i in range(8):
            for j in range(8):
                value = c[i][j]
                if intra and i == 0 and j == 0:
                    level = _div_round_away(value, 8)
                else:
                    mag = abs(value)
                    if intra:
                        level = (2 * mag + step2 // 2) // step2
                    else:
                        level = 2 * mag // step2
                    if value < 0:
                        level = -level
                out[i][j] = _clip3(-2047, 2047, level)
        return _to_array(out)

    def dequant_h263(self, levels, qp: int, intra: bool) -> np.ndarray:
        lv = _to_list(levels)
        step2 = 4 * qp
        out = [[0] * 8 for _ in range(8)]
        for i in range(8):
            for j in range(8):
                level = lv[i][j]
                if intra and i == 0 and j == 0:
                    out[i][j] = level * 8
                elif level == 0:
                    out[i][j] = 0
                elif intra:
                    mag = abs(level) * step2 // 2
                    out[i][j] = mag if level > 0 else -mag
                else:
                    mag = (2 * abs(level) + 1) * step2 // 4
                    out[i][j] = mag if level > 0 else -mag
        return _to_array(out)

    # ------------------------------------------------------------------
    # H.264 quantisation
    # ------------------------------------------------------------------

    @staticmethod
    def _h264_f(qp: int, intra: bool) -> Tuple[int, int]:
        qbits = 15 + qp // 6
        f = (1 << qbits) // 3 if intra else (1 << qbits) // 6
        return qbits, f

    def quant_h264_4x4(self, coeffs, qp: int, intra: bool) -> np.ndarray:
        c = _to_list(coeffs)
        qbits, f = self._h264_f(qp, intra)
        mf_row = _MF[qp % 6]
        out = [[0] * 4 for _ in range(4)]
        for i in range(4):
            for j in range(4):
                value = c[i][j]
                mf = mf_row[_POS_CLASS[i][j]]
                level = (abs(value) * mf + f) >> qbits
                out[i][j] = level if value >= 0 else -level
        return _to_array(out)

    def dequant_h264_4x4(self, levels, qp: int) -> np.ndarray:
        lv = _to_list(levels)
        v_row = _V[qp % 6]
        shift = qp // 6
        out = [[0] * 4 for _ in range(4)]
        for i in range(4):
            for j in range(4):
                out[i][j] = (lv[i][j] * v_row[_POS_CLASS[i][j]]) << shift
        return _to_array(out)

    def quant_h264_dc4(self, dc, qp: int, intra: bool) -> np.ndarray:
        """Quantise the (already Hadamard-transformed) 4x4 luma DC block."""
        c = _to_list(dc)
        qbits, f = self._h264_f(qp, intra)
        mf0 = _MF[qp % 6][0]
        out = [[0] * 4 for _ in range(4)]
        for i in range(4):
            for j in range(4):
                value = c[i][j]
                level = (abs(value) * mf0 + 2 * f) >> (qbits + 1)
                out[i][j] = level if value >= 0 else -level
        return _to_array(out)

    def dequant_h264_dc4(self, levels, qp: int) -> np.ndarray:
        """Inverse Hadamard + dequantise the 4x4 luma DC block."""
        f = _to_list(self.hadamard4_inverse(levels))
        v0 = _V[qp % 6][0]
        shift = qp // 6
        out = [[0] * 4 for _ in range(4)]
        for i in range(4):
            for j in range(4):
                if shift >= 2:
                    out[i][j] = (f[i][j] * v0) << (shift - 2)
                else:
                    rounding = 1 << (1 - shift)
                    out[i][j] = (f[i][j] * v0 + rounding) >> (2 - shift)
        return _to_array(out)

    def quant_h264_dc2(self, dc, qp: int, intra: bool) -> np.ndarray:
        """Quantise the (Hadamard-transformed) 2x2 chroma DC block."""
        c = _to_list(dc)
        qbits, f = self._h264_f(qp, intra)
        mf0 = _MF[qp % 6][0]
        out = [[0] * 2 for _ in range(2)]
        for i in range(2):
            for j in range(2):
                value = c[i][j]
                level = (abs(value) * mf0 + 2 * f) >> (qbits + 1)
                out[i][j] = level if value >= 0 else -level
        return _to_array(out)

    def dequant_h264_dc2(self, levels, qp: int) -> np.ndarray:
        """Inverse Hadamard + dequantise the 2x2 chroma DC block."""
        f = _to_list(self.hadamard2(levels))
        v0 = _V[qp % 6][0]
        shift = qp // 6
        out = [[0] * 2 for _ in range(2)]
        for i in range(2):
            for j in range(2):
                out[i][j] = ((f[i][j] * v0) << shift) >> 1
        return _to_array(out)

    # ------------------------------------------------------------------
    # motion compensation / interpolation
    # ------------------------------------------------------------------

    def get_block(self, plane, x: int, y: int, width: int, height: int) -> np.ndarray:
        """Copy an integer-pel block out of a (padded) plane."""
        return np.asarray(plane[y : y + height, x : x + width], dtype=np.int64).copy()

    def mc_halfpel(self, plane, x: int, y: int, width: int, height: int,
                   mvx: int, mvy: int) -> np.ndarray:
        """MPEG-2 class half-pel bilinear interpolation.

        ``mvx``/``mvy`` are in half-pel units relative to (x, y).
        """
        ix = x + (mvx >> 1)
        iy = y + (mvy >> 1)
        fx = mvx & 1
        fy = mvy & 1
        region = plane[iy : iy + height + 1, ix : ix + width + 1].tolist()
        out = [[0] * width for _ in range(height)]
        for r in range(height):
            row0 = region[r]
            row1 = region[r + 1]
            orow = out[r]
            if fx == 0 and fy == 0:
                for c in range(width):
                    orow[c] = row0[c]
            elif fx == 1 and fy == 0:
                for c in range(width):
                    orow[c] = (row0[c] + row0[c + 1] + 1) >> 1
            elif fx == 0 and fy == 1:
                for c in range(width):
                    orow[c] = (row0[c] + row1[c] + 1) >> 1
            else:
                for c in range(width):
                    orow[c] = (row0[c] + row0[c + 1] + row1[c] + row1[c + 1] + 2) >> 2
        return _to_array(out)

    def mc_qpel_bilinear(self, plane, x: int, y: int, width: int, height: int,
                         mvx: int, mvy: int) -> np.ndarray:
        """MPEG-4 ASP class quarter-pel bilinear interpolation.

        ``mvx``/``mvy`` are in quarter-pel units.
        """
        ix = x + (mvx >> 2)
        iy = y + (mvy >> 2)
        fx = mvx & 3
        fy = mvy & 3
        region = plane[iy : iy + height + 1, ix : ix + width + 1].tolist()
        w00 = (4 - fx) * (4 - fy)
        w10 = fx * (4 - fy)
        w01 = (4 - fx) * fy
        w11 = fx * fy
        out = [[0] * width for _ in range(height)]
        for r in range(height):
            row0 = region[r]
            row1 = region[r + 1]
            orow = out[r]
            for c in range(width):
                orow[c] = (
                    w00 * row0[c]
                    + w10 * row0[c + 1]
                    + w01 * row1[c]
                    + w11 * row1[c + 1]
                    + 8
                ) >> 4
        return _to_array(out)

    # -- H.264 six-tap quarter-pel -------------------------------------

    @staticmethod
    def _six_tap(a: int, b: int, c: int, d: int, e: int, f: int) -> int:
        return a - 5 * b + 20 * c + 20 * d - 5 * e + f

    def _h264_halfpel_h(self, region: Block, rows: int, cols: int,
                        row_off: int, col_off: int) -> Block:
        """Clipped horizontal half-pel samples b(r + row_off, c + col_off).

        ``region`` is indexed with a (+2, +2) origin shift so that offsets
        down to -2 are addressable.
        """
        out = []
        for r in range(rows):
            rr = region[r + 2 + row_off]
            row = []
            for c in range(cols):
                base = c + 2 + col_off
                raw = self._six_tap(
                    rr[base - 2], rr[base - 1], rr[base], rr[base + 1],
                    rr[base + 2], rr[base + 3],
                )
                row.append(_clip255((raw + 16) >> 5))
            out.append(row)
        return out

    def _h264_halfpel_v(self, region: Block, rows: int, cols: int,
                        row_off: int, col_off: int) -> Block:
        """Clipped vertical half-pel samples h(r + row_off, c + col_off)."""
        out = []
        for r in range(rows):
            base_r = r + 2 + row_off
            row = []
            for c in range(cols):
                cc = c + 2 + col_off
                raw = self._six_tap(
                    region[base_r - 2][cc], region[base_r - 1][cc],
                    region[base_r][cc], region[base_r + 1][cc],
                    region[base_r + 2][cc], region[base_r + 3][cc],
                )
                row.append(_clip255((raw + 16) >> 5))
            out.append(row)
        return out

    def _h264_center(self, region: Block, rows: int, cols: int) -> Block:
        """Clipped centre half-pel samples j(r, c)."""
        # Unclipped horizontal intermediates for rows -2 .. rows+2.
        inter = []
        for r in range(rows + 5):
            rr = region[r]
            row = []
            for c in range(cols):
                base = c + 2
                row.append(
                    self._six_tap(
                        rr[base - 2], rr[base - 1], rr[base], rr[base + 1],
                        rr[base + 2], rr[base + 3],
                    )
                )
            inter.append(row)
        out = []
        for r in range(rows):
            row = []
            for c in range(cols):
                raw = self._six_tap(
                    inter[r][c], inter[r + 1][c], inter[r + 2][c],
                    inter[r + 3][c], inter[r + 4][c], inter[r + 5][c],
                )
                row.append(_clip255((raw + 512) >> 10))
            out.append(row)
        return out

    @staticmethod
    def _avg_block(a: Block, b: Block) -> Block:
        return [
            [(pa + pb + 1) >> 1 for pa, pb in zip(ra, rb)]
            for ra, rb in zip(a, b)
        ]

    def mc_qpel_h264(self, plane, x: int, y: int, width: int, height: int,
                     mvx: int, mvy: int) -> np.ndarray:
        """H.264 six-tap luma quarter-pel interpolation.

        ``mvx``/``mvy`` are in quarter-pel units.  Implements the full
        16-position sub-pel grid of the standard (positions G, a..s).
        """
        ix = x + (mvx >> 2)
        iy = y + (mvy >> 2)
        fx = mvx & 3
        fy = mvy & 3
        # Region with margin 2 before and 3 after in both dimensions,
        # indexed with a (+2, +2) origin shift.
        region = plane[iy - 2 : iy + height + 3, ix - 2 : ix + width + 3].tolist()

        def integer(row_off: int = 0, col_off: int = 0) -> Block:
            return [
                [region[r + 2 + row_off][c + 2 + col_off] for c in range(width)]
                for r in range(height)
            ]

        if fx == 0 and fy == 0:
            return _to_array(integer())

        if fy == 0:
            b = self._h264_halfpel_h(region, height, width, 0, 0)
            if fx == 2:
                return _to_array(b)
            g = integer(0, 0) if fx == 1 else integer(0, 1)
            return _to_array(self._avg_block(g, b))

        if fx == 0:
            h = self._h264_halfpel_v(region, height, width, 0, 0)
            if fy == 2:
                return _to_array(h)
            g = integer(0, 0) if fy == 1 else integer(1, 0)
            return _to_array(self._avg_block(g, h))

        if fx == 2 and fy == 2:
            return _to_array(self._h264_center(region, height, width))

        if fx == 2:
            # f (fy == 1) and q (fy == 3): average of j and b / s.
            j = self._h264_center(region, height, width)
            row_off = 0 if fy == 1 else 1
            b = self._h264_halfpel_h(region, height, width, row_off, 0)
            return _to_array(self._avg_block(b, j))

        if fy == 2:
            # i (fx == 1) and k (fx == 3): average of j and h / m.
            j = self._h264_center(region, height, width)
            col_off = 0 if fx == 1 else 1
            h = self._h264_halfpel_v(region, height, width, 0, col_off)
            return _to_array(self._avg_block(h, j))

        # Diagonal quarter positions e, g, p, r: average of the nearest
        # horizontal and vertical half-pel samples.
        row_off = 0 if fy == 1 else 1
        col_off = 0 if fx == 1 else 1
        b = self._h264_halfpel_h(region, height, width, row_off, 0)
        h = self._h264_halfpel_v(region, height, width, 0, col_off)
        return _to_array(self._avg_block(b, h))

    def mc_chroma_bilinear8(self, plane, x: int, y: int, width: int, height: int,
                            mvx: int, mvy: int) -> np.ndarray:
        """H.264 chroma eighth-pel bilinear interpolation."""
        ix = x + (mvx >> 3)
        iy = y + (mvy >> 3)
        fx = mvx & 7
        fy = mvy & 7
        region = plane[iy : iy + height + 1, ix : ix + width + 1].tolist()
        w00 = (8 - fx) * (8 - fy)
        w10 = fx * (8 - fy)
        w01 = (8 - fx) * fy
        w11 = fx * fy
        out = [[0] * width for _ in range(height)]
        for r in range(height):
            row0 = region[r]
            row1 = region[r + 1]
            orow = out[r]
            for c in range(width):
                orow[c] = (
                    w00 * row0[c]
                    + w10 * row0[c + 1]
                    + w01 * row1[c]
                    + w11 * row1[c + 1]
                    + 32
                ) >> 6
        return _to_array(out)

    # ------------------------------------------------------------------
    # H.264 in-loop deblocking
    # ------------------------------------------------------------------

    def deblock_normal(self, p2, p1, p0, q0, q1, q2,
                       alpha: int, beta: int, c0, chroma: bool):
        """Normal-strength (bS < 4) edge filter over a line of positions.

        All sample arguments are 1-D arrays of equal length (one entry per
        position along the edge); ``c0`` is an array of per-position clip
        values, with a negative entry marking boundary strength 0 (that
        position is left unfiltered).  Returns filtered ``(p1, p0, q0, q1)``.
        """
        lp2, lp1, lp0 = _to_list1(p2), _to_list1(p1), _to_list1(p0)
        lq0, lq1, lq2 = _to_list1(q0), _to_list1(q1), _to_list1(q2)
        lc0 = _to_list1(c0)
        n = len(lp0)
        op1, op0, oq0, oq1 = list(lp1), list(lp0), list(lq0), list(lq1)
        for i in range(n):
            if lc0[i] < 0:
                continue
            vp0, vq0 = lp0[i], lq0[i]
            if abs(vp0 - vq0) >= alpha:
                continue
            if abs(lp1[i] - vp0) >= beta or abs(lq1[i] - vq0) >= beta:
                continue
            ap = abs(lp2[i] - vp0)
            aq = abs(lq2[i] - vq0)
            if chroma:
                c = lc0[i] + 1
            else:
                c = lc0[i] + (1 if ap < beta else 0) + (1 if aq < beta else 0)
            delta = _clip3(-c, c, ((lq0[i] - vp0) * 4 + (lp1[i] - lq1[i]) + 4) >> 3)
            op0[i] = _clip255(vp0 + delta)
            oq0[i] = _clip255(vq0 - delta)
            if not chroma:
                if ap < beta:
                    adj = _clip3(
                        -lc0[i], lc0[i],
                        (lp2[i] + ((vp0 + vq0 + 1) >> 1) - 2 * lp1[i]) >> 1,
                    )
                    op1[i] = lp1[i] + adj
                if aq < beta:
                    adj = _clip3(
                        -lc0[i], lc0[i],
                        (lq2[i] + ((vp0 + vq0 + 1) >> 1) - 2 * lq1[i]) >> 1,
                    )
                    oq1[i] = lq1[i] + adj
        return (_to_array1(op1), _to_array1(op0), _to_array1(oq0), _to_array1(oq1))

    def deblock_strong(self, p3, p2, p1, p0, q0, q1, q2, q3,
                       alpha: int, beta: int, mask, chroma: bool):
        """Strong (bS == 4, intra) edge filter over a line of positions.

        ``mask`` is a per-position 0/1 array; positions with 0 are left
        unfiltered.  Returns filtered ``(p2, p1, p0, q0, q1, q2)``.
        """
        lp3, lp2, lp1, lp0 = (_to_list1(p3), _to_list1(p2),
                              _to_list1(p1), _to_list1(p0))
        lq0, lq1, lq2, lq3 = (_to_list1(q0), _to_list1(q1),
                              _to_list1(q2), _to_list1(q3))
        lmask = _to_list1(mask)
        n = len(lp0)
        op2, op1, op0 = list(lp2), list(lp1), list(lp0)
        oq0, oq1, oq2 = list(lq0), list(lq1), list(lq2)
        for i in range(n):
            if not lmask[i]:
                continue
            vp0, vq0 = lp0[i], lq0[i]
            if abs(vp0 - vq0) >= alpha:
                continue
            if abs(lp1[i] - vp0) >= beta or abs(lq1[i] - vq0) >= beta:
                continue
            if chroma:
                op0[i] = (2 * lp1[i] + vp0 + lq1[i] + 2) >> 2
                oq0[i] = (2 * lq1[i] + vq0 + lp1[i] + 2) >> 2
                continue
            strong = abs(vp0 - vq0) < (alpha >> 2) + 2
            ap = abs(lp2[i] - vp0)
            aq = abs(lq2[i] - vq0)
            if strong and ap < beta:
                op0[i] = (lp2[i] + 2 * lp1[i] + 2 * vp0 + 2 * vq0 + lq1[i] + 4) >> 3
                op1[i] = (lp2[i] + lp1[i] + vp0 + vq0 + 2) >> 2
                op2[i] = (2 * lp3[i] + 3 * lp2[i] + lp1[i] + vp0 + vq0 + 4) >> 3
            else:
                op0[i] = (2 * lp1[i] + vp0 + lq1[i] + 2) >> 2
            if strong and aq < beta:
                oq0[i] = (lq2[i] + 2 * lq1[i] + 2 * vq0 + 2 * vp0 + lp1[i] + 4) >> 3
                oq1[i] = (lq2[i] + lq1[i] + vq0 + vp0 + 2) >> 2
                oq2[i] = (2 * lq3[i] + 3 * lq2[i] + lq1[i] + vq0 + vp0 + 4) >> 3
            else:
                oq0[i] = (2 * lq1[i] + vq0 + lp1[i] + 2) >> 2
        return (_to_array1(op2), _to_array1(op1), _to_array1(op0),
                _to_array1(oq0), _to_array1(oq1), _to_array1(oq2))
