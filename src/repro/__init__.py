"""HD-VideoBench reproduction.

A pure-Python (+NumPy) reimplementation of the benchmark described in
"HD-VideoBench: A Benchmark for Evaluating High Definition Digital Video
Applications" (Alvarez et al., IISWC 2007): MPEG-2, MPEG-4 ASP and
H.264-class video codecs with scalar and SIMD kernel backends, the four
HD-VideoBench input sequences as procedural generators, and the harness
that regenerates the paper's Table V and Figure 1.

Quickstart::

    from repro import generate_sequence, get_encoder, get_decoder

    video = generate_sequence("blue_sky", "576p25", frames=9, scale=(1, 8))
    encoder = get_encoder("h264", width=video.width, height=video.height)
    stream = encoder.encode_sequence(video)
    decoded = get_decoder("h264").decode(stream)
"""

__version__ = "1.0.0"

from repro.codecs import (
    CODEC_NAMES,
    EXTENSION_CODEC_NAMES,
    get_decoder,
    get_encoder,
)
from repro.common import (
    FrameType,
    GopStructure,
    Resolution,
    YuvFrame,
    YuvSequence,
    frame_psnr,
    sequence_psnr,
)
from repro.kernels import BACKEND_NAMES, get_kernels
from repro.sequences import SEQUENCE_NAMES, generate_sequence
from repro.transform import h264_qp_from_mpeg
from repro import telemetry

__all__ = [
    "telemetry",
    "BACKEND_NAMES",
    "CODEC_NAMES",
    "EXTENSION_CODEC_NAMES",
    "FrameType",
    "GopStructure",
    "Resolution",
    "SEQUENCE_NAMES",
    "YuvFrame",
    "YuvSequence",
    "__version__",
    "frame_psnr",
    "generate_sequence",
    "get_decoder",
    "get_encoder",
    "get_kernels",
    "h264_qp_from_mpeg",
    "sequence_psnr",
]
