"""HDVB202: builtin exceptions must not escape public entry points raw.

HDVB110 enforces the error taxonomy one raise at a time: a ``raise
ValueError`` inside a decode-scope file is flagged where it stands.  It
cannot see a public decode entry calling a helper *outside* the decode
scope that raises ``KeyError`` — the helper's module is legal territory
for builtin raises, yet the exception still reaches the entry's callers
without codec/picture context, breaking the isinstance-based recovery
contract (``robustness/guard.py`` can only conceal what it can classify).

This rule makes the contract interprocedural.  Every function that
raises a builtin from :data:`FORBIDDEN_RAISES` (and doesn't catch it in
the surrounding ``try``) seeds a ``raise:Name`` fact; facts propagate
callee-to-caller, but are **blocked at call sites wrapped in a handler
that catches the exception or one of its ancestors** (ancestry computed
from the real builtin MRO).  A fact that survives to a public entry in
the decode/bench/origin surface is a finding.  Direct raises inside the
HDVB110 scope are left to HDVB110 — this rule reports only what arrives
from elsewhere, plus direct raises in the bench/origin entries HDVB110
never scoped.
"""

from __future__ import annotations

import builtins
from typing import Dict, Iterator, Optional, Tuple

from repro.analysis.findings import Finding
from repro.analysis.flow import Fact, Seed, Via, propagate, witness
from repro.analysis.graph import CallGraph, CallSite, FunctionNode, finding_at
from repro.analysis.rules import Project, ProjectRule, in_scope, register
from repro.analysis.taxonomy import (
    DECODE_FILES,
    DECODE_SCOPE,
    FORBIDDEN_RAISES,
    TAXONOMY,
)

#: Public functions under these surfaces are normalisation boundaries.
ENTRY_SCOPE: Tuple[str, ...] = DECODE_SCOPE + ("origin/", "bench/")

_FACT_PREFIX = "raise:"


def _builtin_exception(name: str) -> Optional[type]:
    candidate = getattr(builtins, name.rsplit(".", 1)[-1], None)
    if isinstance(candidate, type) and issubclass(candidate, BaseException):
        return candidate
    return None


def _handles(handled: Tuple[str, ...], raised: str) -> bool:
    """True when one of ``handled`` catches ``raised`` (by builtin MRO;
    a taxonomy catch handles nothing builtin, an unknown name is assumed
    to — resolution stays honest by under-claiming escapes)."""
    raised_type = _builtin_exception(raised)
    for name in handled:
        short = name.rsplit(".", 1)[-1]
        if short in TAXONOMY:
            continue
        handler_type = _builtin_exception(short)
        if handler_type is None:
            return True       # unknown handler class: assume it catches
        if raised_type is not None and issubclass(raised_type, handler_type):
            return True
    return False


def _seed_facts(graph: CallGraph) -> Dict[str, Dict[Fact, Seed]]:
    seeds: Dict[str, Dict[Fact, Seed]] = {}
    for qualname, node in graph.functions.items():
        for raise_site in node.raises:
            name = raise_site.name.rsplit(".", 1)[-1]
            if name not in FORBIDDEN_RAISES:
                continue
            if _handles(raise_site.handled, name):
                continue
            fact = _FACT_PREFIX + name
            if fact not in seeds.setdefault(qualname, {}):
                seeds[qualname][fact] = Seed(description=f"raise {name}",
                                             line=raise_site.line)
    return seeds


def _blocks(caller: FunctionNode, site: CallSite, fact: Fact) -> bool:
    return _handles(site.handled, fact[len(_FACT_PREFIX):])


@register
class ExceptionEscapeRule(ProjectRule):
    """HDVB202: no raw builtin exception escapes a public entry point."""

    rule_id = "HDVB202"
    name = "exception-escape"
    rationale = (
        "the hardened-decode contract says every failure crossing a "
        "public decode/bench/origin boundary is a ReproError with "
        "context; HDVB110 checks raises line-by-line inside the decode "
        "scope, but a builtin raised by an out-of-scope helper rides the "
        "call chain straight through the entry — propagating raise facts "
        "over the graph, minus the handlers that provably catch them, "
        "finds exactly those escapes"
    )
    hint = (
        "wrap the call in try/except and re-raise a repro.errors "
        "taxonomy class, or normalise at the helper"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        graph: CallGraph = project.graph()
        facts = propagate(graph, _seed_facts(graph), blocks=_blocks)
        for qualname in sorted(graph.functions):
            node = graph.functions[qualname]
            if not node.is_public:
                continue
            if not in_scope(node.module, ENTRY_SCOPE, DECODE_FILES):
                continue
            held = facts.get(qualname)
            if not held:
                continue
            for fact in sorted(held):
                origin = held[fact]
                name = fact[len(_FACT_PREFIX):]
                if isinstance(origin, Seed):
                    if in_scope(node.module, DECODE_SCOPE, DECODE_FILES):
                        continue      # HDVB110 already flags the raise line
                    yield finding_at(
                        self, project, node.module, origin.line,
                        f"public entry `{node.name}` raises builtin "
                        f"{name} instead of a ReproError subclass",
                    )
                    continue
                inherited_from = graph.functions[origin.callee]
                if inherited_from.is_public and in_scope(
                        inherited_from.module, ENTRY_SCOPE, DECODE_FILES):
                    # The callee is a flagged entry itself (or its raw
                    # raise is HDVB110's); don't cascade up every caller.
                    continue
                chain = witness(graph, facts, qualname, fact)
                yield finding_at(
                    self, project, node.module, origin.line,
                    f"builtin {name} can escape public entry "
                    f"`{node.name}` via `{inherited_from.name}` "
                    f"({inherited_from.module}) "
                    f"[{' -> '.join(chain)}]",
                )
