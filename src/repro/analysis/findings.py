"""The finding record shared by every analysis rule and reporter.

A :class:`Finding` locates one invariant violation: which rule fired,
where (display path for humans and editors, canonical module path for
baselines), and what to do about it (``hint``).  Findings are plain
frozen dataclasses so rules stay trivially testable and reporters can be
reused outside the lint engine (``scripts/check_trace.py`` renders its
trace-schema diagnostics through the same record).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location.

    ``path`` is the path as given on the command line (clickable in
    editors); ``module`` is the canonical package-relative posix path
    (``codecs/base.py``) that stays stable however the tree was invoked,
    which is what suppression baselines match against.
    """

    rule_id: str
    path: str
    line: int
    message: str
    module: str = ""
    column: int = 0
    hint: str = ""

    @property
    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.module or self.path, self.line, self.column, self.rule_id)

    @property
    def baseline_key(self) -> Tuple[str, str, str]:
        """Identity used for baseline matching (line numbers drift)."""
        return (self.rule_id, self.module or self.path, self.message)

    def render(self) -> str:
        """The canonical one-line human rendering."""
        location = f"{self.path}:{self.line}:{self.column}"
        text = f"{location}: {self.rule_id} {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "module": self.module,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "hint": self.hint,
        }


def sort_findings(findings: Sequence[Finding]) -> List[Finding]:
    return sorted(findings, key=lambda finding: finding.sort_key)
