"""Parallel-safety rule: work submitted to process pools must pickle.

``repro.parallel.parallel_encode`` ships chunk jobs to
``ProcessPoolExecutor`` workers.  Everything crossing that boundary is
pickled, and pickle can only move *importable* callables: a lambda or a
function defined inside another function raises ``PicklingError`` at
submit time — but only on the code path that actually reaches the pool,
which the serial fast path (``workers == 1``) and the serial fallback
never do.  That makes the bug invisible to most test runs; HDVB130 makes
it visible at lint time instead.

The rule fires in any module that imports ``ProcessPoolExecutor`` and
checks every ``*.submit(...)`` call:

* the submitted callable must be a module-level function (or an imported
  name) — lambdas, locally-defined functions and bound-attribute
  callables are flagged;
* no argument to ``submit`` may itself be a lambda or a generator
  expression (both unpicklable).

This is a static approximation: argument *values* whose types are
unpicklable can still slip through, but every regression this repo has
actually had came from the callable side.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.findings import Finding
from repro.analysis.rules import ModuleUnit, Rule, register


def _imports_process_pool(unit: ModuleUnit) -> bool:
    if unit.tree is None:
        return False
    for node in ast.walk(unit.tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            if node.module.startswith("concurrent.futures") and any(
                name.name == "ProcessPoolExecutor" for name in node.names
            ):
                return True
        elif isinstance(node, ast.Import):
            if any(name.name.startswith("concurrent.futures")
                   for name in node.names):
                return True
    return False


def _module_level_callables(unit: ModuleUnit) -> Set[str]:
    names: Set[str] = set()
    if unit.tree is None:
        return names
    for node in unit.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
    names.update(unit.imported_names())
    names.update(unit.module_aliases())
    return names


def _local_defs_and_lambdas(unit: ModuleUnit) -> Set[str]:
    """Names bound to nested functions or lambdas anywhere in the module."""
    names: Set[str] = set()
    if unit.tree is None:
        return names
    module_level = {id(node) for node in unit.tree.body}
    for node in ast.walk(unit.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if id(node) not in module_level:
                names.add(node.name)
        elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Lambda):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


@register
class PickleSafetyRule(Rule):
    """HDVB130: process-pool submissions must be picklable."""

    rule_id = "HDVB130"
    name = "parallel-pickle"
    rationale = (
        "ProcessPoolExecutor pickles the callable and every argument; a "
        "lambda or closure fails only on the pool path, which the serial "
        "fast path and fallback hide from most test runs"
    )
    hint = "submit a module-level function; pass data, not code, as arguments"

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        if unit.tree is None or not _imports_process_pool(unit):
            return
        module_callables = _module_level_callables(unit)
        locals_and_lambdas = _local_defs_and_lambdas(unit)
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.Call):
                continue
            if not (isinstance(node.func, ast.Attribute)
                    and node.func.attr == "submit"):
                continue
            if node.args:
                target = node.args[0]
                if isinstance(target, ast.Lambda):
                    yield self.finding(
                        unit, target,
                        "lambda submitted to a process pool is not picklable",
                    )
                elif isinstance(target, ast.Name):
                    if target.id in locals_and_lambdas:
                        yield self.finding(
                            unit, target,
                            f"'{target.id}' submitted to a process pool is "
                            f"defined inside a function (closures are not "
                            f"picklable)",
                        )
                    elif target.id not in module_callables:
                        yield self.finding(
                            unit, target,
                            f"cannot verify '{target.id}' is a module-level "
                            f"callable; process pools require importable "
                            f"functions",
                            hint="bind the worker entry point at module level",
                        )
                elif isinstance(target, ast.Attribute):
                    yield self.finding(
                        unit, target,
                        "bound-attribute callable submitted to a process "
                        "pool; instance methods drag their whole object "
                        "through pickle",
                    )
            for arg in list(node.args[1:]) + [kw.value for kw in node.keywords]:
                if isinstance(arg, (ast.Lambda, ast.GeneratorExp)):
                    kind = ("lambda" if isinstance(arg, ast.Lambda)
                            else "generator expression")
                    yield self.finding(
                        unit, arg,
                        f"{kind} passed as a process-pool argument is not "
                        f"picklable",
                    )
