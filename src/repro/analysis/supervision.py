"""Task-supervision rule: the origin never spawns an unowned task.

A bare ``asyncio.create_task`` (or ``ensure_future`` / a direct
``loop.create_task``) produces a task nobody is obliged to await: its
exception surfaces — if ever — as an "exception was never retrieved"
log line at garbage-collection time, and teardown cannot prove it was
reaped.  The origin's acceptance gate requires **zero unhandled task
exceptions**, which is only checkable if every task has an owner.
HDVB170 therefore restricts task creation inside ``repro.origin`` to
:meth:`repro.origin.supervise.Supervisor.spawn`, the one place whose
done-callback routes every outcome into the supervisor's ``failed`` /
``unhandled`` ledgers::

    task = supervisor.spawn(self._reader(queue), "c0001.reader")   # ok
    task = asyncio.create_task(self._reader(queue))                # HDVB170

``origin/supervise.py`` itself is the sanctioned call site.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.analysis.findings import Finding
from repro.analysis.rules import ModuleUnit, Rule, dotted_name, in_scope, register

#: Modules whose tasks must be supervisor-owned.
SUPERVISION_SCOPE: Tuple[str, ...] = ("origin/",)

#: The one module allowed to call the raw task factories.
SANCTIONED_MODULES: Tuple[str, ...] = ("origin/supervise.py",)

#: Fully qualified task factories (resolved through import aliases).
TASK_FACTORIES = frozenset({
    "asyncio.create_task",
    "asyncio.ensure_future",
    "asyncio.tasks.create_task",
    "asyncio.tasks.ensure_future",
})

#: Method names that create tasks on an event loop object.
TASK_METHODS = frozenset({"create_task", "ensure_future"})


@register
class SupervisedTaskRule(Rule):
    """HDVB170: origin tasks are created only through Supervisor.spawn."""

    rule_id = "HDVB170"
    name = "supervised-tasks"
    rationale = (
        "a task created outside Supervisor.spawn has no owner: its "
        "exception can go unobserved and teardown cannot prove it was "
        "reaped, breaking the origin's zero-unhandled-escapes gate"
    )
    hint = "spawn through the session's Supervisor: `supervisor.spawn(coro, name)`"

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        if unit.tree is None:
            return
        if not in_scope(unit.module, SUPERVISION_SCOPE):
            return
        if unit.module in SANCTIONED_MODULES:
            return
        imported = unit.imported_names()
        aliases = unit.module_aliases()
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            resolved = imported.get(dotted, dotted)
            if "." in dotted:
                base, rest = dotted.split(".", 1)
                origin = aliases.get(base)
                if origin is not None:
                    resolved = f"{origin}.{rest}"
            if resolved in TASK_FACTORIES:
                yield self.finding(
                    unit, node,
                    f"bare task factory `{dotted}(...)` in the origin: the "
                    "task has no supervising owner",
                )
            elif ("." in dotted
                  and dotted.rsplit(".", 1)[1] in TASK_METHODS
                  and resolved not in TASK_FACTORIES):
                yield self.finding(
                    unit, node,
                    f"`{dotted}(...)` creates a task directly on the loop; "
                    "origin tasks must go through Supervisor.spawn",
                )
