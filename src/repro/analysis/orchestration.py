"""Orchestrator-cell rule: results via the store, errors via the taxonomy.

The orchestrator's two contracts are load-bearing for everything built on
top of it:

* **Resume and gating depend on the store being the only sink.**  A cell
  is "completed" iff its record is in the history store; an orchestrator
  module that writes results through ``json.dump`` or its own text file
  creates state the resume scan and the OBS207 gate never see, so a
  rerun re-executes (or worse, skips) the wrong cells.  Artifact and
  manifest files are exempt by construction: they are binary,
  temp-then-``os.replace`` writes, which this rule (like HDVB160) does
  not flag.
* **A thousand-cell matrix is only diagnosable through one error
  shape.**  Every failure crossing an orchestrator boundary must be an
  :class:`~repro.errors.OrchestrateError` carrying the spec name and
  cell identity; a raw ``ValueError`` from spec parsing or cache I/O
  surfaces as an anonymous traceback with no way to tell *which cell of
  which spec* broke.

HDVB180 enforces both statically over ``orchestrate/``, extending the
HDVB160 (result-sink) and HDVB110 (raise-taxonomy) machinery.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.analysis.findings import Finding
from repro.analysis.persistence import _is_write_mode
from repro.analysis.rules import ModuleUnit, Rule, dotted_name, in_scope, register
from repro.analysis.taxonomy import FORBIDDEN_RAISES

#: The orchestrator modules this rule governs.
ORCHESTRATE_SCOPE: Tuple[str, ...] = ("orchestrate/",)


@register
class OrchestratorCellRule(Rule):
    """HDVB180: orchestrator cells persist via the store and raise
    OrchestrateError."""

    rule_id = "HDVB180"
    name = "orchestrator-cell"
    rationale = (
        "the orchestrator's resume scan and OBS207 gate read only the "
        "observe store, so an ad-hoc result sink desynchronises rerun "
        "state; and a cell failure that is not an OrchestrateError loses "
        "the spec/cell identity that makes a matrix failure attributable"
    )
    hint = (
        "persist through repro.observe.store.HistoryStore and raise "
        "repro.errors.OrchestrateError (spec=..., cell=...) instead of a "
        "builtin exception"
    )

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        if unit.tree is None or not in_scope(unit.module, ORCHESTRATE_SCOPE,
                                             ()):
            return
        aliases = unit.module_aliases()
        imported = unit.imported_names()
        for node in ast.walk(unit.tree):
            if isinstance(node, ast.Raise) and node.exc is not None:
                target = node.exc
                if isinstance(target, ast.Call):
                    target = target.func
                if (isinstance(target, ast.Name)
                        and target.id in FORBIDDEN_RAISES):
                    yield self.finding(
                        unit, node,
                        f"orchestrator code raises builtin {target.id} "
                        f"instead of OrchestrateError",
                    )
                continue
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            base = dotted.split(".", 1)[0]
            if (
                (aliases.get(base) == "json" and dotted.endswith(".dump"))
                or imported.get(dotted, "") == "json.dump"
            ):
                yield self.finding(
                    unit, node,
                    "json.dump in an orchestrator module is an ad-hoc "
                    "result sink the resume scan and OBS207 gate never "
                    "see",
                )
            elif (dotted == "open" and "open" not in imported
                  and _is_write_mode(node)):
                yield self.finding(
                    unit, node,
                    "open(..., mode with 'w'/'a'/'x') in an orchestrator "
                    "module writes results outside the observe store",
                )
