"""The whole-program import/call graph behind the HDVB2xx rule tier.

The HDVB1xx rules are *local*: they flag an unseeded RNG draw, a builtin
``raise`` or a bare ``create_task`` at the line where it appears.  They
cannot see a deterministic codec path calling a helper one module away
that reads the wall clock, or a coroutine whose third-hop callee blocks
the event loop.  This module closes that gap: it builds one deterministic
call graph over the already-parsed :class:`~repro.analysis.rules.ModuleUnit`
tree, which the :mod:`repro.analysis.flow` fixed-point engine then
propagates per-function facts across.

Resolution strategy (honest by construction):

* names resolve through each module's import-alias maps, including
  relative imports and ``import repro.telemetry as telemetry`` forms;
* methods resolve by class when the receiver's class is statically
  known — ``self.m()`` / ``cls.m()`` inside a class (following statically
  resolvable project base classes), ``ClassName.m()``, ``ClassName().m()``
  and ``obj.m()`` where ``obj = ClassName(...)`` in the same function;
* everything else lands in an explicit **unresolved bucket** that the
  graph export reports — the tier never pretends an edge it cannot prove.

Per-function side tables (``raises``, ``writes``, call-site ``handled``
exception context, bare-function-reference arguments) are extracted in
the same pass so the graph pickles without AST nodes and the HDVB200-203
rules run from the cached graph alone.
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.rules import ModuleUnit, Project, Rule

GRAPH_SCHEMA = "repro.analysis.graph/1"

#: Pseudo-function name for a module's top-level (import-time) code.
MODULE_BODY = "<module>"

#: Names bound by the builtins module (``open``, ``print``, ...).
_BUILTIN_NAMES = frozenset(dir(builtins))

#: Method names that mutate their receiver in place.
_MUTATORS = frozenset({
    "append", "extend", "insert", "add", "update", "pop", "popitem",
    "remove", "discard", "clear", "setdefault", "appendleft", "extendleft",
})


def module_key(canonical: str) -> str:
    """Dotted import key for a canonical module path.

    ``origin/session.py`` -> ``origin.session``; a package ``__init__``
    maps to the package itself (``telemetry/__init__.py`` ->
    ``telemetry``); the tree root ``__init__.py`` maps to ``""``.
    """
    path = canonical[:-3] if canonical.endswith(".py") else canonical
    if path.endswith("/__init__"):
        path = path[: -len("/__init__")]
    if path == "__init__":
        return ""
    return path.replace("/", ".")


def normalize_import(dotted: str) -> str:
    """Strip the ``repro``/``src.repro`` wrapper a real tree imports with,
    mirroring :func:`repro.analysis.engine.canonical_module` for paths."""
    for prefix in ("src.repro.", "repro."):
        if dotted.startswith(prefix):
            return dotted[len(prefix):]
    if dotted in ("repro", "src.repro"):
        return ""
    return dotted


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function."""

    line: int
    col: int
    text: str                       #: the call as written (``aio.create_task``)
    target: Optional[str] = None    #: qualname of a project function/method
    external: Optional[str] = None  #: resolved external dotted name
    handled: Tuple[str, ...] = ()   #: exception names caught around this call
    func_args: Tuple[str, ...] = ()  #: project functions passed/invoked as args

    @property
    def unresolved(self) -> bool:
        return self.target is None and self.external is None


@dataclass(frozen=True)
class RaiseSite:
    """One ``raise Name(...)`` statement inside a function."""

    name: str                       #: exception name as written
    line: int
    handled: Tuple[str, ...] = ()   #: exception names caught around it


@dataclass(frozen=True)
class GlobalWrite:
    """One write to a module-level name from inside a function."""

    module: str                     #: canonical module owning the global
    name: str
    line: int
    op: str                         #: assign/augassign/subscript/attr/method:x


@dataclass
class FunctionNode:
    """One function, method or module body in the graph."""

    qualname: str                   #: ``module.py::Class.method``
    module: str
    name: str                       #: ``Class.method`` / ``func`` / ``<module>``
    line: int
    is_async: bool = False
    synthetic: bool = False         #: implicit constructor, no source body
    calls: List[CallSite] = field(default_factory=list)
    raises: Tuple[RaiseSite, ...] = ()
    writes: Tuple[GlobalWrite, ...] = ()

    @property
    def is_public(self) -> bool:
        if self.name == MODULE_BODY:
            return False
        for segment in self.name.split("."):
            if segment.startswith("__") and segment.endswith("__"):
                continue
            if segment.startswith("_"):
                return False
        return True


class CallGraph:
    """The resolved whole-program graph plus its honesty accounting."""

    def __init__(self, functions: Dict[str, FunctionNode],
                 modules: List[str]) -> None:
        self.functions = functions
        self.modules = modules
        self._callers: Optional[Dict[str, List[Tuple[str, CallSite]]]] = None

    # -- derived views ------------------------------------------------------

    def callers(self) -> Dict[str, List[Tuple[str, CallSite]]]:
        """callee qualname -> [(caller qualname, site)], deterministic."""
        if self._callers is None:
            callers: Dict[str, List[Tuple[str, CallSite]]] = {}
            for qualname in sorted(self.functions):
                for site in self.functions[qualname].calls:
                    if site.target is not None:
                        callers.setdefault(site.target, []).append(
                            (qualname, site))
            self._callers = callers
        return self._callers

    def internal_edges(self) -> List[Tuple[str, str]]:
        edges = {
            (qualname, site.target)
            for qualname, node in self.functions.items()
            for site in node.calls
            if site.target is not None
        }
        return sorted(edges)

    def unresolved_sites(self) -> List[Tuple[str, CallSite]]:
        return [
            (qualname, site)
            for qualname in sorted(self.functions)
            for site in self.functions[qualname].calls
            if site.unresolved
        ]

    def counts(self) -> Dict[str, int]:
        internal = external = unresolved = 0
        for node in self.functions.values():
            for site in node.calls:
                if site.target is not None:
                    internal += 1
                elif site.external is not None:
                    external += 1
                else:
                    unresolved += 1
        return {
            "modules": len(self.modules),
            "functions": len(self.functions),
            "internal_calls": internal,
            "external_calls": external,
            "unresolved_calls": unresolved,
        }

    def reachable(self, roots: Iterable[str]) -> Set[str]:
        """Forward closure over internal edges from ``roots``."""
        seen: Set[str] = set()
        stack = [root for root in sorted(set(roots)) if root in self.functions]
        while stack:
            qualname = stack.pop()
            if qualname in seen:
                continue
            seen.add(qualname)
            for site in self.functions[qualname].calls:
                if site.target is not None and site.target not in seen:
                    stack.append(site.target)
        return seen

    # -- exports ------------------------------------------------------------

    def to_document(self) -> Dict[str, Any]:
        """The ``repro.analysis.graph/1`` JSON document."""
        counts = self.counts()
        return {
            "schema": GRAPH_SCHEMA,
            "modules": list(self.modules),
            "functions": [
                {
                    "qualname": node.qualname,
                    "module": node.module,
                    "name": node.name,
                    "line": node.line,
                    "async": node.is_async,
                    "synthetic": node.synthetic,
                    "calls": len(node.calls),
                }
                for _, node in sorted(self.functions.items())
            ],
            "edges": [list(edge) for edge in self.internal_edges()],
            "unresolved": {
                "count": counts["unresolved_calls"],
                "sites": [
                    {"function": qualname, "line": site.line,
                     "text": site.text}
                    for qualname, site in self.unresolved_sites()
                ],
            },
            "summary": counts,
        }

    def to_dot(self) -> str:
        """A Graphviz rendering of the internal edges, clustered by module."""
        def quote(text: str) -> str:
            return '"' + text.replace("\\", "\\\\").replace('"', '\\"') + '"'

        lines = ["digraph hdvb_callgraph {", "  rankdir=LR;",
                 "  node [shape=box, fontsize=10];"]
        by_module: Dict[str, List[FunctionNode]] = {}
        for node in self.functions.values():
            by_module.setdefault(node.module, []).append(node)
        for index, module in enumerate(sorted(by_module)):
            lines.append(f"  subgraph cluster_{index} {{")
            lines.append(f"    label={quote(module)};")
            for node in sorted(by_module[module], key=lambda n: n.qualname):
                shape = ", style=dashed" if node.synthetic else ""
                asyncness = " (async)" if node.is_async else ""
                lines.append(
                    f"    {quote(node.qualname)} "
                    f"[label={quote(node.name + asyncness)}{shape}];"
                )
            lines.append("  }")
        for caller, callee in self.internal_edges():
            lines.append(f"  {quote(caller)} -> {quote(callee)};")
        lines.append("}")
        return "\n".join(lines)


def finding_at(rule: Rule, project: Project, module: str, line: int,
               message: str, hint: str = "") -> Finding:
    """A finding anchored in ``module`` with the unit's display path."""
    unit = project.find(module)
    return Finding(
        rule_id=rule.rule_id,
        path=unit.display_path if unit is not None else module,
        module=module,
        line=line,
        message=message,
        hint=hint or rule.hint,
    )


# ---------------------------------------------------------------------------
# symbol tables


@dataclass
class _ClassInfo:
    name: str
    module: str                     #: canonical module defining the class
    line: int
    methods: Dict[str, str]         #: method name -> qualname
    async_methods: Set[str]
    bases: List[str]                #: base expressions as dotted text


@dataclass
class _ModuleSymbols:
    canonical: str
    key: str
    is_package: bool
    functions: Dict[str, str]       #: top-level def name -> qualname
    async_functions: Set[str]
    classes: Dict[str, _ClassInfo]
    import_modules: Dict[str, str]  #: alias -> dotted module
    import_names: Dict[str, Tuple[str, str]]   #: name -> (module, original)
    module_globals: Set[str]        #: names assigned at module level

    @property
    def package(self) -> str:
        if self.is_package:
            return self.key
        return self.key.rsplit(".", 1)[0] if "." in self.key else ""


def _collect_symbols(unit: ModuleUnit) -> _ModuleSymbols:
    assert unit.tree is not None
    key = module_key(unit.module)
    is_package = (unit.module.endswith("/__init__.py")
                  or unit.module == "__init__.py")
    symbols = _ModuleSymbols(
        canonical=unit.module, key=key, is_package=is_package,
        functions={}, async_functions=set(), classes={},
        import_modules={}, import_names={}, module_globals=set(),
    )
    for node in unit.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            symbols.functions[node.name] = f"{unit.module}::{node.name}"
            if isinstance(node, ast.AsyncFunctionDef):
                symbols.async_functions.add(node.name)
        elif isinstance(node, ast.ClassDef):
            info = _ClassInfo(
                name=node.name, module=unit.module, line=node.lineno,
                methods={}, async_methods=set(),
                bases=[text for text in
                       (_dotted_text(base) for base in node.bases)
                       if text is not None],
            )
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info.methods[item.name] = (
                        f"{unit.module}::{node.name}.{item.name}"
                    )
                    if isinstance(item, ast.AsyncFunctionDef):
                        info.async_methods.add(item.name)
            symbols.classes[node.name] = info
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                for name_node in _target_names(target):
                    symbols.module_globals.add(name_node)
    # Import maps cover function-level imports too (worker entry points
    # import telemetry lazily); attribute them module-wide.
    for node in ast.walk(unit.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    symbols.import_modules[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    symbols.import_modules[root] = root
        elif isinstance(node, ast.ImportFrom):
            source = _resolve_from_module(symbols, node)
            if source is None:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                symbols.import_names.setdefault(
                    alias.asname or alias.name, (source, alias.name))
    return symbols


def _resolve_from_module(symbols: _ModuleSymbols,
                         node: ast.ImportFrom) -> Optional[str]:
    if not node.level:
        return node.module
    parts = symbols.package.split(".") if symbols.package else []
    drop = node.level - 1
    if drop > len(parts):
        return None
    kept = parts[: len(parts) - drop] if drop else parts
    if node.module:
        kept = kept + node.module.split(".")
    return ".".join(kept)


def _target_names(target: ast.AST) -> List[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: List[str] = []
        for element in target.elts:
            names.extend(_target_names(element))
        return names
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    return []


def _dotted_text(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


# ---------------------------------------------------------------------------
# resolution


class _Resolver:
    """Resolves names inside one module against the whole project."""

    def __init__(self, symbols: _ModuleSymbols,
                 by_key: Dict[str, _ModuleSymbols]) -> None:
        self.symbols = symbols
        self.by_key = by_key

    def project_module(self, dotted: str) -> Optional[_ModuleSymbols]:
        return self.by_key.get(normalize_import(dotted))

    def resolve_class_ref(self, symbols: _ModuleSymbols,
                          text: str) -> Optional[_ClassInfo]:
        """A base-class expression (``Name`` or ``mod.Name``) to its info."""
        if "." not in text:
            if text in symbols.classes:
                return symbols.classes[text]
            imported = symbols.import_names.get(text)
            if imported is not None:
                source = self.project_module(imported[0])
                if source is not None:
                    return source.classes.get(imported[1])
            return None
        base, rest = text.rsplit(".", 1)
        dotted_module = symbols.import_modules.get(base)
        if dotted_module is not None:
            remainder = text[len(base) + 1:]
            source = self.project_module(dotted_module)
            if source is not None:
                return source.classes.get(remainder)
        return None

    def find_method(self, info: _ClassInfo, method: str,
                    seen: Optional[Set[str]] = None
                    ) -> Optional[Tuple[str, bool]]:
        """(qualname, is_async) for ``method`` on ``info`` or its bases."""
        seen = seen if seen is not None else set()
        marker = f"{info.module}::{info.name}"
        if marker in seen:
            return None
        seen.add(marker)
        if method in info.methods:
            return info.methods[method], method in info.async_methods
        owner = self.by_key.get(module_key(info.module))
        if owner is None:
            return None
        for base_text in info.bases:
            base_info = self.resolve_class_ref(owner, base_text)
            if base_info is not None:
                found = self.find_method(base_info, method, seen)
                if found is not None:
                    return found
        return None

    def constructor(self, info: _ClassInfo) -> str:
        """The ``__init__`` qualname a constructor call edges to (may be
        a synthetic node materialised by :func:`build_graph`)."""
        found = self.find_method(info, "__init__")
        if found is not None:
            return found[0]
        return f"{info.module}::{info.name}.__init__"

    def _member(self, source: _ModuleSymbols,
                parts: Sequence[str]) -> Optional[str]:
        """Resolve ``parts`` (member path) inside project module ``source``."""
        if not parts:
            return None
        head = parts[0]
        if len(parts) == 1:
            if head in source.functions:
                return source.functions[head]
            if head in source.classes:
                return self.constructor(source.classes[head])
            return None
        if head in source.classes and len(parts) == 2:
            found = self.find_method(source.classes[head], parts[1])
            return found[0] if found is not None else None
        # A re-exported submodule (``repro.telemetry.metrics.registry``).
        sub = self.by_key.get(
            normalize_import(".".join([source.key, head]) if source.key
                             else head))
        if sub is not None:
            return self._member(sub, parts[1:])
        return None

    def resolve_call(self, func: ast.AST, context: "_FunctionContext"
                     ) -> Tuple[Optional[str], Optional[str]]:
        """(target qualname, external dotted) — both ``None`` if unresolved."""
        symbols = self.symbols
        if isinstance(func, ast.Name):
            name = func.id
            local_target = context.lookup_local_function(name)
            if local_target is not None:
                return local_target, None
            if name in context.locals:
                return None, None
            if name in symbols.functions:
                return symbols.functions[name], None
            if name in symbols.classes:
                return self.constructor(symbols.classes[name]), None
            imported = symbols.import_names.get(name)
            if imported is not None:
                source_dotted, original = imported
                source = self.project_module(source_dotted)
                if source is not None:
                    member = self._member(source, [original])
                    if member is not None:
                        return member, None
                    return None, None
                return None, f"{source_dotted}.{original}"
            if name in _BUILTIN_NAMES:
                return None, name
            return None, None

        if isinstance(func, ast.Attribute):
            # ``pool.submit(...).result()`` — the one call-on-call shape
            # resolved, because a synchronous Future wait is a named
            # blocking primitive the async rule must see through helpers.
            if (func.attr == "result" and isinstance(func.value, ast.Call)
                    and isinstance(func.value.func, ast.Attribute)
                    and func.value.func.attr == "submit"):
                return None, "concurrent.futures.Future.result"
            dotted = _dotted_text(func)
            if dotted is None:
                return None, None
            parts = dotted.split(".")
            base, rest = parts[0], parts[1:]
            if base in ("self", "cls") and context.class_info is not None:
                if len(rest) == 1:
                    found = self.find_method(context.class_info, rest[0])
                    if found is not None:
                        return found[0], None
                return None, None
            inferred = context.var_types.get(base)
            if inferred is not None and len(rest) == 1:
                found = self.find_method(inferred, rest[0])
                if found is not None:
                    return found[0], None
                return None, None
            if base in context.locals:
                return None, None
            if base in symbols.classes and len(rest) == 1:
                found = self.find_method(symbols.classes[base], rest[0])
                if found is not None:
                    return found[0], None
                return None, None
            imported = symbols.import_names.get(base)
            if imported is not None:
                source_dotted, original = imported
                source = self.project_module(source_dotted)
                if source is not None and original in source.classes:
                    if len(rest) == 1:
                        found = self.find_method(
                            source.classes[original], rest[0])
                        if found is not None:
                            return found[0], None
                    return None, None
                submodule = self.project_module(
                    f"{source_dotted}.{original}")
                if submodule is not None:
                    member = self._member(submodule, rest)
                    if member is not None:
                        return member, None
                    return None, None
                if source is not None:
                    member = self._member(source, [original] + rest)
                    if member is not None:
                        return member, None
                    return None, None
                return None, f"{source_dotted}.{original}." + ".".join(rest)
            dotted_module = symbols.import_modules.get(base)
            if dotted_module is not None:
                full = [dotted_module] + rest if "." not in dotted_module \
                    else dotted_module.split(".") + rest
                # Longest module prefix wins; member path of 1 or 2 parts.
                for split in range(len(full) - 1, 0, -1):
                    if len(full) - split > 2:
                        continue
                    source = self.project_module(".".join(full[:split]))
                    if source is not None:
                        member = self._member(source, full[split:])
                        if member is not None:
                            return member, None
                        return None, None
                return None, ".".join(full)
            return None, None

        return None, None

    def resolve_function_reference(self, node: ast.AST,
                                   context: "_FunctionContext"
                                   ) -> Optional[str]:
        """A bare function reference (or a called coroutine) in argument
        position, resolved to a project qualname."""
        if isinstance(node, ast.Call):
            node = node.func
        if isinstance(node, (ast.Name, ast.Attribute)):
            target, _ = self.resolve_call(node, context)
            return target
        return None


# ---------------------------------------------------------------------------
# per-function extraction


@dataclass
class _FunctionContext:
    class_info: Optional[_ClassInfo]
    locals: Set[str]
    declared_global: Set[str]
    var_types: Dict[str, _ClassInfo]
    local_functions: Dict[str, str]

    def lookup_local_function(self, name: str) -> Optional[str]:
        return self.local_functions.get(name)


def _own_statements(body: Sequence[ast.stmt]) -> List[ast.stmt]:
    return list(body)


def _iter_own_nodes(nodes: Iterable[ast.AST]) -> List[ast.AST]:
    """Every node in ``nodes`` excluding nested def/class interiors
    (their decorators and default expressions evaluate here, so those
    are included)."""
    out: List[ast.AST] = []
    stack: List[ast.AST] = list(nodes)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            stack.extend(node.decorator_list)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                stack.extend(node.args.defaults)
                stack.extend(d for d in node.args.kw_defaults if d)
            continue
        out.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return out


def _local_names(stmts: Sequence[ast.stmt],
                 args: Optional[ast.arguments]) -> Set[str]:
    names: Set[str] = set()
    if args is not None:
        for arg in (args.posonlyargs + args.args + args.kwonlyargs):
            names.add(arg.arg)
        if args.vararg:
            names.add(args.vararg.arg)
        if args.kwarg:
            names.add(args.kwarg.arg)
    for node in _iter_own_nodes(stmts):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                names.update(_target_names(target))
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            names.update(_target_names(node.target))
        elif isinstance(node, ast.For):
            names.update(_target_names(node.target))
        elif isinstance(node, ast.withitem) and node.optional_vars:
            names.update(_target_names(node.optional_vars))
        elif isinstance(node, ast.ExceptHandler) and node.name:
            names.add(node.name)
        elif isinstance(node, ast.comprehension):
            names.update(_target_names(node.target))
        elif isinstance(node, ast.NamedExpr):
            names.update(_target_names(node.target))
    return names


def _handler_names(handler: ast.ExceptHandler) -> List[str]:
    if handler.type is None:
        return ["BaseException"]
    types = (handler.type.elts if isinstance(handler.type, ast.Tuple)
             else [handler.type])
    names: List[str] = []
    for item in types:
        text = _dotted_text(item)
        if text is None:
            continue
        names.append(text)
        if "." in text:
            names.append(text.rsplit(".", 1)[1])
    return names


class _FunctionScanner:
    """Extracts calls, raises and global writes from one function body."""

    def __init__(self, resolver: _Resolver, context: _FunctionContext) -> None:
        self.resolver = resolver
        self.context = context
        self.calls: List[CallSite] = []
        self.raises: List[RaiseSite] = []
        self.writes: List[GlobalWrite] = []
        self.nested: List[ast.AST] = []

    # -- write resolution ---------------------------------------------------

    def _global_for(self, name: str) -> Optional[Tuple[str, str]]:
        """(module, global name) when ``name`` denotes a module global."""
        symbols = self.resolver.symbols
        context = self.context
        if name in context.declared_global:
            return symbols.canonical, name
        if name in context.locals:
            return None
        if name in symbols.module_globals:
            return symbols.canonical, name
        imported = symbols.import_names.get(name)
        if imported is not None:
            source = self.resolver.project_module(imported[0])
            if source is not None and imported[1] in source.module_globals:
                return source.canonical, imported[1]
        return None

    def _record_write(self, name: str, line: int, op: str) -> None:
        owner = self._global_for(name)
        if owner is not None:
            self.writes.append(GlobalWrite(owner[0], owner[1], line, op))

    def _scan_target(self, target: ast.AST, line: int, op: str) -> None:
        if isinstance(target, ast.Name):
            if target.id in self.context.declared_global:
                self._record_write(target.id, line, op)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._scan_target(element, line, op)
        elif isinstance(target, ast.Starred):
            self._scan_target(target.value, line, op)
        elif isinstance(target, ast.Subscript):
            if isinstance(target.value, ast.Name):
                self._record_write(target.value.id, line, "subscript")
        elif isinstance(target, ast.Attribute):
            if isinstance(target.value, ast.Name):
                self._record_write(target.value.id, line, "attr")

    # -- the guarded walk ---------------------------------------------------

    def scan(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self._scan_node(stmt, frozenset())

    def _scan_node(self, node: ast.AST, handled: frozenset) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            self.nested.append(node)
            for decorator in node.decorator_list:
                self._scan_node(decorator, handled)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for default in node.args.defaults:
                    self._scan_node(default, handled)
                for default in node.args.kw_defaults:
                    if default is not None:
                        self._scan_node(default, handled)
            return
        if isinstance(node, ast.Try):
            names = frozenset(
                name
                for handler in node.handlers
                for name in _handler_names(handler)
            )
            for child in node.body:
                self._scan_node(child, handled | names)
            for handler in node.handlers:
                for child in handler.body:
                    self._scan_node(child, handled)
            for child in node.orelse:
                self._scan_node(child, handled | names)
            for child in node.finalbody:
                self._scan_node(child, handled)
            return
        if isinstance(node, ast.Raise):
            self._scan_raise(node, handled)
        elif isinstance(node, ast.Call):
            self._scan_call(node, handled)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                self._scan_target(target, node.lineno, "assign")
        elif isinstance(node, ast.AugAssign):
            self._scan_target(node.target, node.lineno, "augassign")
            if isinstance(node.target, ast.Name):
                # ``X += ...`` on a declared global rebinds it.
                pass
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            self._scan_target(node.target, node.lineno, "assign")
        for child in ast.iter_child_nodes(node):
            self._scan_node(child, handled)

    def _scan_raise(self, node: ast.Raise, handled: frozenset) -> None:
        target = node.exc
        if target is None:
            return
        if isinstance(target, ast.Call):
            target = target.func
        text = _dotted_text(target)
        if text is None:
            return
        self.raises.append(RaiseSite(
            name=text, line=node.lineno, handled=tuple(sorted(handled))))

    def _scan_call(self, node: ast.Call, handled: frozenset) -> None:
        text = _dotted_text(node.func)
        target, external = self.resolver.resolve_call(node.func, self.context)
        func_args: List[str] = []
        for argument in list(node.args) + [kw.value for kw in node.keywords]:
            reference = self.resolver.resolve_function_reference(
                argument, self.context)
            if reference is not None:
                func_args.append(reference)
        if isinstance(node.func, ast.Attribute):
            # Mutating-method calls on module globals are writes.
            value = node.func.value
            if node.func.attr in _MUTATORS and isinstance(value, ast.Name):
                self._record_write(value.id, node.lineno,
                                   f"method:{node.func.attr}")
        self.calls.append(CallSite(
            line=node.lineno,
            col=node.col_offset,
            text=text if text is not None else "<dynamic>",
            target=target,
            external=external,
            handled=tuple(sorted(handled)),
            func_args=tuple(func_args),
        ))


# ---------------------------------------------------------------------------
# graph construction


def _infer_var_types(stmts: Sequence[ast.stmt], resolver: _Resolver,
                     context: _FunctionContext) -> Dict[str, _ClassInfo]:
    """``obj = ClassName(...)`` single-assignment local type inference."""
    assigned: Dict[str, Optional[_ClassInfo]] = {}
    for node in _iter_own_nodes(stmts):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        info: Optional[_ClassInfo] = None
        if isinstance(node.value, ast.Call):
            text = _dotted_text(node.value.func)
            if text is not None:
                info = resolver.resolve_class_ref(resolver.symbols, text)
        if target.id in assigned:
            assigned[target.id] = None     # re-bound: no longer reliable
        else:
            assigned[target.id] = info
    return {name: info for name, info in assigned.items() if info is not None}


def _build_function(resolver: _Resolver, qualname: str, name: str,
                    node: Optional[ast.AST], class_info: Optional[_ClassInfo],
                    local_functions: Dict[str, str],
                    functions: Dict[str, FunctionNode],
                    body: Sequence[ast.stmt], line: int,
                    is_async: bool) -> None:
    args = node.args if isinstance(
        node, (ast.FunctionDef, ast.AsyncFunctionDef)) else None
    declared_global: Set[str] = set()
    for inner in _iter_own_nodes(body):
        if isinstance(inner, ast.Global):
            declared_global.update(inner.names)
    local_names = _local_names(body, args) - declared_global
    context = _FunctionContext(
        class_info=class_info,
        locals=local_names,
        declared_global=declared_global,
        var_types={},
        local_functions=dict(local_functions),
    )
    # Nested defs are visible to the whole enclosing body; register them
    # before scanning so mutually recursive locals resolve.
    for inner in _collect_nested(body):
        context.local_functions[inner.name] = f"{qualname}.{inner.name}"
    context.var_types = _infer_var_types(body, resolver, context)
    scanner = _FunctionScanner(resolver, context)
    scanner.scan(body)
    functions[qualname] = FunctionNode(
        qualname=qualname,
        module=resolver.symbols.canonical,
        name=name,
        line=line,
        is_async=is_async,
        calls=sorted(scanner.calls, key=lambda s: (s.line, s.col)),
        raises=tuple(scanner.raises),
        writes=tuple(scanner.writes),
    )
    for inner in scanner.nested:
        if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _build_function(
                resolver, f"{qualname}.{inner.name}",
                f"{name}.{inner.name}", inner, class_info,
                context.local_functions, functions, inner.body, inner.lineno,
                isinstance(inner, ast.AsyncFunctionDef),
            )


def _collect_nested(body: Sequence[ast.stmt]) -> List[ast.AST]:
    nested: List[ast.AST] = []
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            nested.append(node)
            continue
        if isinstance(node, ast.ClassDef):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return nested


def build_graph(project: Project) -> CallGraph:
    """Build the deterministic whole-program call graph for ``project``."""
    units = sorted(
        (unit for unit in project.units if unit.tree is not None),
        key=lambda unit: unit.module,
    )
    symbols = {unit.module: _collect_symbols(unit) for unit in units}
    by_key: Dict[str, _ModuleSymbols] = {}
    for unit in units:
        by_key[symbols[unit.module].key] = symbols[unit.module]
    functions: Dict[str, FunctionNode] = {}
    for unit in units:
        module_symbols = symbols[unit.module]
        resolver = _Resolver(module_symbols, by_key)
        assert unit.tree is not None
        module_body: List[ast.stmt] = []
        for node in unit.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                _build_function(
                    resolver, f"{unit.module}::{node.name}", node.name,
                    node, None, {}, functions, node.body, node.lineno,
                    isinstance(node, ast.AsyncFunctionDef),
                )
            elif isinstance(node, ast.ClassDef):
                info = module_symbols.classes[node.name]
                class_body: List[ast.stmt] = []
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        _build_function(
                            resolver,
                            f"{unit.module}::{node.name}.{item.name}",
                            f"{node.name}.{item.name}", item, info, {},
                            functions, item.body, item.lineno,
                            isinstance(item, ast.AsyncFunctionDef),
                        )
                    else:
                        class_body.append(item)
                module_body.extend(class_body)
            else:
                module_body.append(node)
        _build_function(
            resolver, f"{unit.module}::{MODULE_BODY}", MODULE_BODY,
            None, None, {}, functions, module_body, 1, False,
        )
    # Materialise synthetic constructors for edges pointing at classes
    # whose __init__ is nowhere in the project (including inherited).
    for node in list(functions.values()):
        for site in node.calls:
            if site.target is not None and site.target not in functions:
                module, _, name = site.target.partition("::")
                functions[site.target] = FunctionNode(
                    qualname=site.target, module=module, name=name,
                    line=1, synthetic=True,
                )
    return CallGraph(
        functions=functions,
        modules=[unit.module for unit in units],
    )
