"""The lint engine: file collection, rule dispatch, suppressions, baseline.

Pipeline::

    paths -> ModuleUnits -> per-module rules + project rules
          -> inline `# hdvb: disable=ID` suppressions
          -> baseline partition
          -> LintResult

Module canonicalisation: every scanned file gets a *module path* relative
to its scan root with leading ``src/`` and ``repro/`` segments stripped,
so ``hdvb-lint src/``, ``hdvb-lint src/repro`` and a test fixture tree
that mimics the package layout (``tmp/codecs/evil.py``) all address the
same rule scopes (``codecs/``, ``transport/``, ...).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis import (  # noqa: F401 -- rule registration
    atomicity,
    blocking,
    determinism,
    escapes,
    eventlog,
    orchestration,
    parity,
    persistence,
    picklesafety,
    seams,
    sharedstate,
    spans,
    supervision,
    taint,
    taxonomy,
)
from repro.analysis.baseline import Baseline, BaselineEntry, empty_baseline
from repro.analysis.cache import LintCache, graph_key, parse_with_cache
from repro.analysis.findings import Finding, sort_findings
from repro.analysis.rules import ModuleUnit, Project, ProjectRule, Rule, all_rules

#: Rule id reserved for files the engine cannot parse.
PARSE_RULE_ID = "HDVB100"

_PRAGMA = re.compile(r"#\s*hdvb:\s*disable=([A-Za-z0-9_,\s]+)")

#: Directory names never scanned.
_SKIP_DIRS = {"__pycache__", ".git", ".hg", "build", "dist"}


@dataclass
class LintResult:
    """Everything one engine run produced."""

    findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    stale_baseline: List[BaselineEntry] = field(default_factory=list)
    suppressed: int = 0
    files_scanned: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def stale_descriptions(self) -> List[str]:
        return [
            f"{entry.rule} {entry.module}: {entry.message}"
            for entry in self.stale_baseline
        ]


def canonical_module(relative: Path) -> str:
    """Strip leading ``src``/``repro`` wrapper segments from a posix path."""
    parts = list(relative.parts)
    for wrapper in ("src", "repro"):
        if parts and parts[0] == wrapper:
            parts.pop(0)
    return "/".join(parts) if parts else relative.name


def collect_files(paths: Sequence[str]) -> List[Tuple[Path, str, str]]:
    """Expand path arguments into (absolute, display, module) triples."""
    collected: List[Tuple[Path, str, str]] = []
    seen: Set[Path] = set()
    for raw in paths:
        root = Path(raw)
        if root.is_file():
            absolute = root.resolve()
            if absolute not in seen and absolute.suffix == ".py":
                seen.add(absolute)
                collected.append(
                    (absolute, str(root), canonical_module(Path(root.name)))
                )
            continue
        if not root.is_dir():
            raise FileNotFoundError(f"no such file or directory: {raw}")
        for candidate in sorted(root.rglob("*.py")):
            if any(part in _SKIP_DIRS or part.startswith(".")
                   for part in candidate.relative_to(root).parts[:-1]):
                continue
            absolute = candidate.resolve()
            if absolute in seen:
                continue
            seen.add(absolute)
            relative = candidate.relative_to(root)
            collected.append(
                (absolute, str(Path(raw) / relative), canonical_module(relative))
            )
    return collected


def suppressed_ids(line: str) -> Set[str]:
    """Rule ids disabled by an inline ``# hdvb: disable=...`` pragma."""
    match = _PRAGMA.search(line)
    if not match:
        return set()
    return {token.strip() for token in match.group(1).split(",") if token.strip()}


def _is_suppressed(finding: Finding, unit: ModuleUnit) -> bool:
    ids = suppressed_ids(unit.line_text(finding.line))
    return finding.rule_id in ids or "all" in ids


def _select_rules(select: Optional[Iterable[str]],
                  ignore: Optional[Iterable[str]]) -> List[Rule]:
    rules = all_rules()
    if select:
        wanted = set(select)
        rules = [rule for rule in rules if rule.rule_id in wanted]
    if ignore:
        unwanted = set(ignore)
        rules = [rule for rule in rules if rule.rule_id not in unwanted]
    return rules


def load_units(paths: Sequence[str], cache: Optional[LintCache] = None,
               ) -> Tuple[List[ModuleUnit], dict]:
    """Load every module under ``paths``, through the content cache when
    given.  Returns the units plus the module -> content-sha map that
    keys the graph cache."""
    units: List[ModuleUnit] = []
    module_shas: dict = {}
    for absolute, display, module in collect_files(paths):
        source = absolute.read_text(encoding="utf-8")
        tree, sha = parse_with_cache(cache, source)
        units.append(ModuleUnit(
            path=absolute,
            display_path=display,
            module=module,
            source=source,
            tree=tree,
            lines=source.splitlines(),
        ))
        module_shas[module] = sha
    return units, module_shas


def prepare_project(units: List[ModuleUnit], module_shas: dict,
                    cache: Optional[LintCache]) -> Tuple[Project, str]:
    """A :class:`Project` with the cached whole-program graph injected
    when the content key matches; returns the key for the save side."""
    project = Project(units=units)
    key = graph_key(module_shas)
    if cache is not None:
        cached = cache.load_graph(key)
        if cached is not None:
            project.set_graph(cached)
    return project, key


def save_cache(project: Project, key: str, module_shas: dict,
               cache: Optional[LintCache]) -> None:
    """Persist a freshly built graph and prune dead entries."""
    if cache is None:
        return
    graph = project.cached_graph()
    if graph is not None and not cache.graph_hit:
        cache.store_graph(key, graph)
    cache.prune(sorted(set(module_shas.values())), key)


def run(paths: Sequence[str], *,
        baseline: Optional[Baseline] = None,
        select: Optional[Iterable[str]] = None,
        ignore: Optional[Iterable[str]] = None,
        cache: Optional[LintCache] = None,
        changed_modules: Optional[Set[str]] = None) -> LintResult:
    """Lint ``paths`` and return the full result.

    ``changed_modules`` — when given — scopes *per-module* rules to those
    canonical modules (the ``--changed-only`` pre-commit mode); project
    rules still see the whole tree, so interprocedural findings stay
    sound, and parse failures are always reported.
    """
    baseline = baseline if baseline is not None else empty_baseline()
    rules = _select_rules(select, ignore)
    raw_findings: List[Finding] = []
    units, module_shas = load_units(paths, cache)
    units_by_module = {}
    for unit in units:
        units_by_module[unit.module] = unit
        if unit.tree is None:
            raw_findings.append(Finding(
                rule_id=PARSE_RULE_ID,
                path=unit.display_path,
                module=unit.module,
                line=1,
                message="file does not parse as Python; no rule can check it",
                hint="fix the syntax error",
            ))

    project, key = prepare_project(units, module_shas, cache)
    for rule in rules:
        if isinstance(rule, ProjectRule):
            raw_findings.extend(rule.check_project(project))
        else:
            for unit in units:
                if (changed_modules is not None
                        and unit.module not in changed_modules):
                    continue
                raw_findings.extend(rule.check(unit))
    save_cache(project, key, module_shas, cache)

    kept: List[Finding] = []
    suppressed = 0
    for finding in raw_findings:
        unit = units_by_module.get(finding.module)
        if unit is not None and _is_suppressed(finding, unit):
            suppressed += 1
            continue
        kept.append(finding)

    fresh, matched, stale = baseline.split(kept)
    return LintResult(
        findings=sort_findings(fresh),
        baselined=sort_findings(matched),
        stale_baseline=stale,
        suppressed=suppressed,
        files_scanned=len(units),
    )


class ChangedOnlyError(Exception):
    """``--changed-only`` could not determine the changed files."""


def git_changed_modules(ref: str) -> Set[str]:
    """Canonical modules of .py files changed vs ``ref`` plus untracked.

    Raises :class:`ChangedOnlyError` when git is unavailable or the ref
    does not resolve — ``--changed-only`` must fail loudly rather than
    silently lint nothing.
    """
    import subprocess
    commands = (
        ["git", "diff", "--name-only", ref, "--"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    )
    names: List[str] = []
    for command in commands:
        try:
            proc = subprocess.run(
                command, capture_output=True, text=True, check=True)
        except (OSError, subprocess.CalledProcessError) as error:
            detail = getattr(error, "stderr", "") or str(error)
            raise ChangedOnlyError(
                f"--changed-only: `{' '.join(command)}` failed: "
                f"{detail.strip()}") from error
        names.extend(proc.stdout.splitlines())
    return {
        canonical_module(Path(name.strip()))
        for name in names
        if name.strip().endswith(".py")
    }
