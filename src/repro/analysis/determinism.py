"""Determinism rules: no hidden global RNG state, no wall-clock reads.

Every robustness and transport result in this repository is gated on
bit-reproducibility from a seed (``FaultInjector(seed)``,
``LossyChannel(seed=...)``, the loss-sweep benchmarks).  One call to a
module-state RNG (``random.uniform``, ``np.random.rand``) or to the wall
clock inside a codec or simulation path silently breaks that guarantee:
the sweep still runs, the numbers just stop being comparable between
machines and reruns.  These rules pin the invariant down statically.

Scope: ``codecs/``, ``me/``, ``transform/``, ``robustness/``,
``transport/``, ``origin/`` (the virtual-time origin is gated on
bit-reproducible serve fingerprints).  The telemetry package is
deliberately out of scope —
timing spans *must* read the clock — as are the benchmark CLIs outside
these directories (``perf_counter`` for measurement is always allowed;
only calendar time is flagged).
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.analysis.findings import Finding
from repro.analysis.rules import ModuleUnit, Rule, dotted_name, in_scope, register

#: Directories whose results must be reproducible from a seed alone.
DETERMINISM_SCOPE: Tuple[str, ...] = (
    "codecs/", "me/", "transform/", "robustness/", "transport/", "origin/",
)

#: ``random`` module-state functions (instance methods on the shared
#: global ``Random``).  ``random.Random(seed)`` is the sanctioned form.
UNSEEDED_RANDOM_FUNCS = frozenset({
    "random", "uniform", "randint", "randrange", "choice", "choices",
    "shuffle", "sample", "betavariate", "expovariate", "gammavariate",
    "gauss", "lognormvariate", "normalvariate", "paretovariate",
    "triangular", "vonmisesvariate", "weibullvariate", "getrandbits",
    "randbytes", "seed",
})

#: ``numpy.random`` attributes that are fine: explicit-seed constructors.
SEEDED_NUMPY_OK = frozenset({
    "default_rng", "Generator", "SeedSequence", "PCG64", "Philox",
    "MT19937", "SFC64", "BitGenerator", "RandomState",
})

#: Wall-clock reads (calendar time); monotonic/perf counters are allowed.
WALLCLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.ctime", "time.localtime",
    "time.gmtime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})


@register
class UnseededRngRule(Rule):
    """HDVB101: module-state RNG calls in deterministic code."""

    rule_id = "HDVB101"
    name = "unseeded-rng"
    rationale = (
        "codec, motion, robustness and transport paths must be "
        "bit-reproducible from an explicit seed; module-state RNG calls "
        "draw from hidden global state that reruns cannot replay"
    )
    hint = "draw from an explicit random.Random(seed) / np.random.default_rng(seed)"

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        if unit.tree is None or not in_scope(unit.module, DETERMINISM_SCOPE):
            return
        aliases = unit.module_aliases()
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None or "." not in dotted:
                continue
            base, rest = dotted.split(".", 1)
            origin = aliases.get(base)
            if origin == "random" and rest in UNSEEDED_RANDOM_FUNCS:
                yield self.finding(
                    unit, node,
                    f"call to module-state RNG random.{rest} in "
                    f"deterministic path",
                )
            elif origin == "numpy" and rest.startswith("random."):
                attr = rest.split(".", 1)[1]
                if attr.split(".")[0] not in SEEDED_NUMPY_OK:
                    yield self.finding(
                        unit, node,
                        f"call to module-state RNG numpy.random.{attr} in "
                        f"deterministic path",
                    )
            elif origin == "numpy.random" and rest.split(".")[0] not in SEEDED_NUMPY_OK:
                yield self.finding(
                    unit, node,
                    f"call to module-state RNG numpy.random.{rest} in "
                    f"deterministic path",
                )


@register
class WallClockRule(Rule):
    """HDVB102: calendar-time reads in deterministic code."""

    rule_id = "HDVB102"
    name = "wall-clock"
    rationale = (
        "decode, simulation and sweep outcomes must not depend on when "
        "they run; calendar time leaking into a deterministic path makes "
        "results non-replayable (perf_counter/monotonic stay legal: "
        "measuring duration is not deciding behaviour)"
    )
    hint = "thread a timestamp in as an argument, or move timing to telemetry"

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        if unit.tree is None or not in_scope(unit.module, DETERMINISM_SCOPE):
            return
        aliases = unit.module_aliases()
        imported = unit.imported_names()
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            resolved = dotted
            base = dotted.split(".", 1)[0]
            if base in aliases:
                resolved = aliases[base] + dotted[len(base):]
            elif base in imported:
                resolved = imported[base] + dotted[len(base):]
            if resolved in WALLCLOCK_CALLS:
                yield self.finding(
                    unit, node,
                    f"wall-clock read {resolved}() in deterministic path",
                )
