"""Baseline files: grandfathered findings that don't fail the build.

A baseline entry matches a finding by ``(rule, module, message)`` — line
numbers are deliberately excluded so unrelated edits don't invalidate the
baseline.  Every entry carries a mandatory ``reason`` string: a baseline
is a debt register, not a mute button, and the committed file is expected
to stay empty or near-empty (fix violations instead of listing them).

Schema (``.hdvb-lint-baseline.json``)::

    {
      "schema": "repro.analysis.baseline/1",
      "entries": [
        {"rule": "HDVB111", "module": "robustness/bench.py",
         "message": "...", "reason": "why this is grandfathered"}
      ]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Set, Tuple

from repro.analysis.findings import Finding

BASELINE_SCHEMA = "repro.analysis.baseline/1"
DEFAULT_BASELINE_NAME = ".hdvb-lint-baseline.json"


class BaselineError(Exception):
    """The baseline file is missing, unreadable or malformed."""


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    module: str
    message: str
    reason: str

    @property
    def key(self) -> Tuple[str, str, str]:
        return (self.rule, self.module, self.message)


@dataclass
class Baseline:
    entries: List[BaselineEntry]

    @property
    def keys(self) -> Set[Tuple[str, str, str]]:
        return {entry.key for entry in self.entries}

    def split(self, findings: Sequence[Finding]) -> Tuple[
        List[Finding], List[Finding], List[BaselineEntry]
    ]:
        """Partition findings into (fresh, baselined); also stale entries."""
        keys = self.keys
        fresh = [f for f in findings if f.baseline_key not in keys]
        matched = [f for f in findings if f.baseline_key in keys]
        seen = {f.baseline_key for f in matched}
        stale = [entry for entry in self.entries if entry.key not in seen]
        return fresh, matched, stale


def empty_baseline() -> Baseline:
    return Baseline(entries=[])


def load_baseline(path: Path) -> Baseline:
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except OSError as error:
        raise BaselineError(f"cannot read baseline {path}: {error}") from error
    except json.JSONDecodeError as error:
        raise BaselineError(f"baseline {path} is not valid JSON: {error}") from error
    if not isinstance(document, dict) or document.get("schema") != BASELINE_SCHEMA:
        raise BaselineError(
            f"baseline {path} must declare schema {BASELINE_SCHEMA!r}"
        )
    raw_entries = document.get("entries")
    if not isinstance(raw_entries, list):
        raise BaselineError(f"baseline {path}: 'entries' must be a list")
    entries = []
    for index, raw in enumerate(raw_entries):
        if not isinstance(raw, dict):
            raise BaselineError(f"baseline {path}: entries[{index}] must be an object")
        missing = [key for key in ("rule", "module", "message", "reason")
                   if not isinstance(raw.get(key), str) or not raw.get(key)]
        if missing:
            raise BaselineError(
                f"baseline {path}: entries[{index}] missing/empty {missing} "
                f"(every grandfathered finding needs a justification)"
            )
        entries.append(BaselineEntry(
            rule=raw["rule"], module=raw["module"],
            message=raw["message"], reason=raw["reason"],
        ))
    return Baseline(entries=entries)


def prune_stale(path: Path, stale: Sequence[BaselineEntry]) -> int:
    """Rewrite ``path`` without the ``stale`` entries.

    Surviving entries keep their reasons, their key order and the exact
    serialisation :func:`write_baseline` produces, so pruning is a
    deterministic rewrite — running it twice is byte-identical — and
    never the hand-edit the stale-baseline report used to demand.
    Returns the number of entries removed.
    """
    baseline = load_baseline(path)
    stale_keys = {entry.key for entry in stale}
    kept = [entry for entry in baseline.entries
            if entry.key not in stale_keys]
    removed = len(baseline.entries) - len(kept)
    if not removed:
        return 0
    document: Dict[str, object] = {
        "schema": BASELINE_SCHEMA,
        "entries": [
            {
                "rule": entry.rule,
                "module": entry.module,
                "message": entry.message,
                "reason": entry.reason,
            }
            for entry in kept
        ],
    }
    path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    return removed


def write_baseline(path: Path, findings: Sequence[Finding],
                   reason: str = "TODO: justify or fix") -> None:
    """Write ``findings`` as a fresh baseline (each entry needs review)."""
    document: Dict[str, object] = {
        "schema": BASELINE_SCHEMA,
        "entries": [
            {
                "rule": finding.rule_id,
                "module": finding.module or finding.path,
                "message": finding.message,
                "reason": reason,
            }
            for finding in findings
        ],
    }
    path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
