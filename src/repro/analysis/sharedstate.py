"""HDVB203: module globals written from both sides of a process/task seam.

The repo has two concurrency seams where "it's just a module global"
silently stops being true:

* ``parallel.run_pooled`` ships the worker callable to *another process*
  — a global the worker mutates is a different object there, so a parent
  that also writes it is at best confused, at worst racing the fork-start
  path; telemetry survives this only via its explicit snapshot/merge
  protocol (``telemetry/`` is therefore allowlisted);
* supervised origin tasks (``Supervisor.spawn``) interleave on the event
  loop — a global written both from a spawned task and from the parent
  serve path has an ordering that depends on scheduling, which the
  bit-reproducible serve fingerprint cannot tolerate.

No local rule can see this: the two writes are in different functions,
often different modules, and each looks harmless alone.  This rule
collects every global write site from the graph, computes the forward
closure of the worker/task roots (the function references passed to
``run_pooled``/``spawn``), and flags each global written from **both**
the worker closure and the parent side.  Module import-time assignments
don't count as parent writes — initialisation runs independently in
every process before any task exists.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.graph import MODULE_BODY, CallGraph, GlobalWrite, finding_at
from repro.analysis.rules import Project, ProjectRule, in_scope, register

#: Call targets whose function-reference arguments become worker roots.
SPAWN_TARGETS: Tuple[str, ...] = (
    "parallel.py::run_pooled",
    "parallel.py::parallel_encode",
    "origin/supervise.py::Supervisor.spawn",
)

#: Modules whose cross-process globals are protocol, not accident.
ALLOWED_MODULES: Tuple[str, ...] = ("telemetry/",)


def worker_roots(graph: CallGraph) -> List[str]:
    """Functions handed to the pool/supervisor as work, deterministic."""
    roots: Set[str] = set()
    for node in graph.functions.values():
        for site in node.calls:
            if site.target in SPAWN_TARGETS:
                roots.update(ref for ref in site.func_args
                             if ref in graph.functions)
    return sorted(roots)


@register
class SharedMutableStateRule(ProjectRule):
    """HDVB203: no global written from both a worker/task path and the
    parent path."""

    rule_id = "HDVB203"
    name = "shared-mutable-state"
    rationale = (
        "a module global written inside a pooled worker lives in another "
        "process — the parent's copy silently diverges — and one written "
        "from a supervised origin task races the serve path on scheduler "
        "order; both only show up when a write on one side is paired "
        "with a write on the other, which takes the whole-program graph "
        "to see"
    )
    hint = (
        "return the state from the worker and merge in the parent (the "
        "telemetry snapshot/merge pattern), or scope it to the task"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        graph: CallGraph = project.graph()
        roots = worker_roots(graph)
        if not roots:
            return
        worker_side = graph.reachable(roots)
        writes: Dict[Tuple[str, str], Dict[str, List[GlobalWrite]]] = {}
        for qualname in sorted(graph.functions):
            node = graph.functions[qualname]
            if node.name == MODULE_BODY:
                continue
            for write in node.writes:
                if in_scope(write.module, ALLOWED_MODULES):
                    continue
                side = "worker" if qualname in worker_side else "parent"
                writes.setdefault((write.module, write.name), {}) \
                    .setdefault(side, []).append(write)
        for (module, name) in sorted(writes):
            sides = writes[(module, name)]
            if "worker" not in sides or "parent" not in sides:
                continue
            worker_write = min(sides["worker"], key=lambda w: w.line)
            parent_write = min(sides["parent"], key=lambda w: w.line)
            yield finding_at(
                self, project, module, worker_write.line,
                f"global `{name}` ({module}) is written from a pooled/"
                f"supervised path (line {worker_write.line}, "
                f"{worker_write.op}) and from the parent path "
                f"({parent_write.module}:{parent_write.line}, "
                f"{parent_write.op}); the two sides race or diverge",
            )
