"""HDVB201: coroutines in the origin must not transitively block the loop.

The asyncio origin multiplexes every client session on one event loop
driven by virtual time (``origin/clock.py``).  A single synchronous
``time.sleep``, a blocking ``open``/``os.replace``/``os.fsync``, a
``subprocess`` call or a ``pool.submit(...).result()`` wait inside any
coroutine stalls *every* session at once — and unlike an exception it
does so silently, as tail latency.  HDVB170 can't see this: the blocking
call usually lives in a perfectly ordinary sync helper two modules away.

This rule seeds a blocking fact at every function that directly contains
a blocking primitive, propagates callee-to-caller over the whole-program
graph, and flags each **async function in ``origin/``** that holds a
fact — at the call site the fact came through, with the witness chain
to the primitive.  The ``fileops()`` chaos seam (``chaos/fsops.py``) is
the sanctioned place for raw filesystem calls, so it never seeds; code
that blocks through the seam on purpose does so behind an interface the
event loop owner can route to a thread.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.analysis.findings import Finding
from repro.analysis.flow import Fact, Seed, Via, propagate, witness
from repro.analysis.graph import CallGraph, finding_at
from repro.analysis.rules import Project, ProjectRule, in_scope, register

#: Coroutines under these modules drive the shared virtual-time loop.
ASYNC_SCOPE: Tuple[str, ...] = ("origin/",)

#: Modules whose raw filesystem calls are the sanctioned seam itself.
SEAM_MODULES: Tuple[str, ...] = ("chaos/fsops.py",)

#: External callables that block the calling thread.
BLOCKING_CALLS = frozenset({
    "time.sleep",
    "open",
    "input",
    "os.replace", "os.rename", "os.fsync", "os.remove", "os.unlink",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
    "concurrent.futures.Future.result",
    "socket.create_connection",
    "urllib.request.urlopen",
})


def _seed_facts(graph: CallGraph) -> Dict[str, Dict[Fact, Seed]]:
    seeds: Dict[str, Dict[Fact, Seed]] = {}
    for qualname, node in graph.functions.items():
        if node.module in SEAM_MODULES:
            continue
        for site in node.calls:
            if site.external not in BLOCKING_CALLS:
                continue
            fact = site.external
            if fact not in seeds.setdefault(qualname, {}):
                seeds[qualname][fact] = Seed(description=fact, line=site.line)
    return seeds


@register
class AsyncBlockingRule(ProjectRule):
    """HDVB201: origin coroutines must not reach thread-blocking calls."""

    rule_id = "HDVB201"
    name = "async-blocking"
    rationale = (
        "one synchronous sleep, filesystem call or Future.result() wait "
        "anywhere under an origin coroutine stalls the shared event loop "
        "and every other session with it; the blocking primitive usually "
        "hides in a sync helper the local rules cannot connect to the "
        "coroutine — the call graph can"
    )
    hint = (
        "await the async equivalent (clock.sleep, loop.run_in_executor) "
        "or route filesystem work through the fileops() seam off-loop"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        graph: CallGraph = project.graph()
        facts = propagate(graph, _seed_facts(graph))
        for qualname in sorted(graph.functions):
            node = graph.functions[qualname]
            if not node.is_async or not in_scope(node.module, ASYNC_SCOPE):
                continue
            held = facts.get(qualname)
            if not held:
                continue
            for fact in sorted(held):
                origin = held[fact]
                if isinstance(origin, Via):
                    inherited_from = graph.functions[origin.callee]
                    if inherited_from.is_async and in_scope(
                            inherited_from.module, ASYNC_SCOPE):
                        # The awaited coroutine is flagged itself; don't
                        # cascade the same fact up every await chain.
                        continue
                    chain = witness(graph, facts, qualname, fact)
                    detail = (f"through `{inherited_from.name}` "
                              f"({inherited_from.module}) "
                              f"[{' -> '.join(chain)}]")
                else:
                    detail = "directly"
                yield finding_at(
                    self, project, node.module, origin.line,
                    f"coroutine `{node.name}` reaches blocking `{fact}` "
                    f"{detail}; this stalls the event loop for every "
                    f"session",
                )
