"""``hdvb-lint``: the codec-invariant static-analysis gate.

Usage::

    hdvb-lint [paths ...] [--format human|json] [--baseline FILE]
              [--no-baseline] [--write-baseline] [--prune-stale]
              [--select IDS] [--ignore IDS] [--list-rules]
              [--cache [DIR]] [--no-cache] [--changed-only [REF]]
    hdvb-lint graph [paths ...] [--format dot|json] [--cache [DIR]]

Exit codes: 0 — clean (every finding suppressed or baselined); 1 — at
least one non-baselined finding; 2 — usage or I/O error.

The ``graph`` subcommand exports the whole-program call graph the
HDVB2xx rules run on — ``--format json`` emits the
``repro.analysis.graph/1`` document (with the honest unresolved-edge
accounting), ``--format dot`` a Graphviz rendering clustered by module.

``--cache DIR`` keys parsed ASTs and the call graph by content sha256,
so warm re-lints skip parsing and graph construction entirely;
``--no-cache`` wins when both are given.  ``--changed-only [REF]``
(default ``HEAD``) scopes per-module rules to files changed vs the git
ref — the graph is still built whole-program, so the interprocedural
rules stay sound.  ``--prune-stale`` rewrites the baseline file without
its stale entries, preserving reasons and order.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    BaselineError,
    empty_baseline,
    load_baseline,
    prune_stale,
    write_baseline,
)
from repro.analysis.cache import DEFAULT_CACHE_DIR, LintCache
from repro.analysis.engine import (
    ChangedOnlyError,
    LintResult,
    git_changed_modules,
    load_units,
    prepare_project,
    run,
    save_cache,
)
from repro.analysis.reporters import render_human, render_json
from repro.analysis.rules import all_rules


def _parse_ids(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [token.strip() for token in raw.split(",") if token.strip()]


def _default_paths(paths: Optional[List[str]]) -> List[str]:
    return paths or (["src"] if Path("src").is_dir() else ["."])


def _cache_from(options: argparse.Namespace) -> Optional[LintCache]:
    if getattr(options, "no_cache", False) or options.cache is None:
        return None
    return LintCache(Path(options.cache))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hdvb-lint",
        description="AST lint pass enforcing the HD-VideoBench reproduction "
                    "invariants (determinism, error taxonomy, kernel parity, "
                    "pickle safety, bitstream seams, telemetry discipline, "
                    "whole-program taint/blocking/escape flow).",
    )
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories to lint (default: src/)")
    parser.add_argument("--format", choices=("human", "json"), default="human",
                        help="report format (default: human)")
    parser.add_argument("--baseline", metavar="FILE", default=None,
                        help=f"baseline file (default: ./{DEFAULT_BASELINE_NAME} "
                             f"when present)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write current findings to the baseline file and "
                             "exit 0 (each entry still needs a hand-written "
                             "reason)")
    parser.add_argument("--prune-stale", action="store_true",
                        help="rewrite the baseline file without entries that "
                             "no longer match any finding (reasons and order "
                             "preserved)")
    parser.add_argument("--select", metavar="IDS", default=None,
                        help="comma-separated rule ids to run (default: all)")
    parser.add_argument("--ignore", metavar="IDS", default=None,
                        help="comma-separated rule ids to skip")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--cache", metavar="DIR", nargs="?",
                        const=DEFAULT_CACHE_DIR, default=None,
                        help=f"content-hash AST/graph cache directory "
                             f"(default when bare: ./{DEFAULT_CACHE_DIR})")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the cache even when --cache is given")
    parser.add_argument("--changed-only", metavar="REF", nargs="?",
                        const="HEAD", default=None,
                        help="scope per-module rules to files changed vs the "
                             "git ref (default when bare: HEAD); the call "
                             "graph is still whole-program")
    return parser


def build_graph_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hdvb-lint graph",
        description="Export the whole-program call graph the HDVB2xx rules "
                    "run on, with its unresolved-edge accounting.",
    )
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories to graph (default: src/)")
    parser.add_argument("--format", choices=("dot", "json"), default="json",
                        help="export format (default: json)")
    parser.add_argument("--cache", metavar="DIR", nargs="?",
                        const=DEFAULT_CACHE_DIR, default=None,
                        help="content-hash cache directory to reuse")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the cache even when --cache is given")
    return parser


def _rule_catalogue() -> str:
    lines = []
    for rule in all_rules():
        lines.append(f"{rule.rule_id} {rule.name}")
        lines.append(f"    {rule.rationale}")
        if rule.hint:
            lines.append(f"    fix: {rule.hint}")
    return "\n".join(lines)


def graph_main(argv: Optional[List[str]] = None) -> int:
    """The ``hdvb-lint graph`` subcommand."""
    options = build_graph_parser().parse_args(argv)
    cache = _cache_from(options)
    try:
        units, module_shas = load_units(_default_paths(options.paths), cache)
    except FileNotFoundError as error:
        print(f"hdvb-lint: {error}", file=sys.stderr)
        return 2
    project, key = prepare_project(units, module_shas, cache)
    graph = project.graph()
    if options.format == "json":
        print(json.dumps(graph.to_document(), indent=2, sort_keys=True))
    else:
        print(graph.to_dot())
    save_cache(project, key, module_shas, cache)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "graph":
        return graph_main(argv[1:])

    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        print(_rule_catalogue())
        return 0

    paths = _default_paths(options.paths)

    baseline_path = Path(options.baseline) if options.baseline else Path(
        DEFAULT_BASELINE_NAME
    )
    baseline = empty_baseline()
    if not options.no_baseline and not options.write_baseline:
        if options.baseline or baseline_path.is_file():
            try:
                baseline = load_baseline(baseline_path)
            except BaselineError as error:
                print(f"hdvb-lint: {error}", file=sys.stderr)
                return 2

    changed_modules = None
    if options.changed_only is not None:
        try:
            changed_modules = git_changed_modules(options.changed_only)
        except ChangedOnlyError as error:
            print(f"hdvb-lint: {error}", file=sys.stderr)
            return 2

    try:
        result: LintResult = run(
            paths,
            baseline=baseline,
            select=_parse_ids(options.select),
            ignore=_parse_ids(options.ignore),
            cache=_cache_from(options),
            changed_modules=changed_modules,
        )
    except FileNotFoundError as error:
        print(f"hdvb-lint: {error}", file=sys.stderr)
        return 2

    if options.write_baseline:
        write_baseline(baseline_path, result.findings)
        print(f"hdvb-lint: wrote {len(result.findings)} entr"
              f"{'y' if len(result.findings) == 1 else 'ies'} to "
              f"{baseline_path} -- add a reason to each before committing")
        return 0

    if options.prune_stale and result.stale_baseline:
        try:
            removed = prune_stale(baseline_path, result.stale_baseline)
        except BaselineError as error:
            print(f"hdvb-lint: {error}", file=sys.stderr)
            return 2
        print(f"hdvb-lint: pruned {removed} stale baseline entr"
              f"{'y' if removed == 1 else 'ies'} from {baseline_path}")
        result.stale_baseline = []

    stats = {
        "files_scanned": result.files_scanned,
        "suppressed": result.suppressed,
        "baselined": len(result.baselined),
        "stale_baseline": result.stale_descriptions(),
    }
    if options.format == "json":
        print(render_json(result.findings, **stats))
    else:
        print(render_human(result.findings, **stats))
    return 0 if result.clean else 1


if __name__ == "__main__":
    raise SystemExit(main())
