"""``hdvb-lint``: the codec-invariant static-analysis gate.

Usage::

    hdvb-lint [paths ...] [--format human|json] [--baseline FILE]
              [--no-baseline] [--write-baseline] [--select IDS]
              [--ignore IDS] [--list-rules]

Exit codes: 0 — clean (every finding suppressed or baselined); 1 — at
least one non-baselined finding; 2 — usage or I/O error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    BaselineError,
    empty_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.engine import LintResult, run
from repro.analysis.reporters import render_human, render_json
from repro.analysis.rules import all_rules


def _parse_ids(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [token.strip() for token in raw.split(",") if token.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hdvb-lint",
        description="AST lint pass enforcing the HD-VideoBench reproduction "
                    "invariants (determinism, error taxonomy, kernel parity, "
                    "pickle safety, bitstream seams, telemetry discipline).",
    )
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories to lint (default: src/)")
    parser.add_argument("--format", choices=("human", "json"), default="human",
                        help="report format (default: human)")
    parser.add_argument("--baseline", metavar="FILE", default=None,
                        help=f"baseline file (default: ./{DEFAULT_BASELINE_NAME} "
                             f"when present)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write current findings to the baseline file and "
                             "exit 0 (each entry still needs a hand-written "
                             "reason)")
    parser.add_argument("--select", metavar="IDS", default=None,
                        help="comma-separated rule ids to run (default: all)")
    parser.add_argument("--ignore", metavar="IDS", default=None,
                        help="comma-separated rule ids to skip")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    return parser


def _rule_catalogue() -> str:
    lines = []
    for rule in all_rules():
        lines.append(f"{rule.rule_id} {rule.name}")
        lines.append(f"    {rule.rationale}")
        if rule.hint:
            lines.append(f"    fix: {rule.hint}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        print(_rule_catalogue())
        return 0

    paths = options.paths or (["src"] if Path("src").is_dir() else ["."])

    baseline_path = Path(options.baseline) if options.baseline else Path(
        DEFAULT_BASELINE_NAME
    )
    baseline = empty_baseline()
    if not options.no_baseline and not options.write_baseline:
        if options.baseline or baseline_path.is_file():
            try:
                baseline = load_baseline(baseline_path)
            except BaselineError as error:
                print(f"hdvb-lint: {error}", file=sys.stderr)
                return 2

    try:
        result: LintResult = run(
            paths,
            baseline=baseline,
            select=_parse_ids(options.select),
            ignore=_parse_ids(options.ignore),
        )
    except FileNotFoundError as error:
        print(f"hdvb-lint: {error}", file=sys.stderr)
        return 2

    if options.write_baseline:
        write_baseline(baseline_path, result.findings)
        print(f"hdvb-lint: wrote {len(result.findings)} entr"
              f"{'y' if len(result.findings) == 1 else 'ies'} to "
              f"{baseline_path} -- add a reason to each before committing")
        return 0

    stats = {
        "files_scanned": result.files_scanned,
        "suppressed": result.suppressed,
        "baselined": len(result.baselined),
        "stale_baseline": result.stale_descriptions(),
    }
    if options.format == "json":
        print(render_json(result.findings, **stats))
    else:
        print(render_human(result.findings, **stats))
    return 0 if result.clean else 1


if __name__ == "__main__":
    raise SystemExit(main())
