"""Kernel-parity rule: scalar and SIMD backends expose the same surface.

The paper's scalar-vs-SIMD axis (Section VI) only measures anything when
both backends implement the *same* kernels with the *same* signatures and
the dispatch layer knows about all of them.  A kernel added to one
backend, or a signature drifting between them, silently skews the
speed-up numbers (property tests catch value divergence, but not a
missing or unregistered kernel, because they iterate ``KERNEL_NAMES``).
HDVB120 closes the loop statically:

* every public method of ``ScalarKernels`` exists on ``SimdKernels`` and
  vice versa;
* matching methods have identical signatures — parameter names, order,
  kinds and default values (annotations are exempt: the scalar backend
  types in list-of-list blocks, the SIMD backend in ndarrays);
* the method set equals the ``KERNEL_NAMES`` dispatch table in
  ``kernels/api.py`` exactly, in both directions.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.findings import Finding
from repro.analysis.rules import ModuleUnit, Project, ProjectRule, register

SCALAR_MODULE = "kernels/scalar.py"
SIMD_MODULE = "kernels/simd.py"
API_MODULE = "kernels/api.py"


def _unparse(node: Optional[ast.AST]) -> str:
    return "" if node is None else ast.unparse(node)


def _signature(fn: ast.FunctionDef) -> Dict[str, object]:
    """Annotation-free signature shape for comparison and diagnostics."""
    args = fn.args
    positional = [a.arg for a in args.posonlyargs + args.args]
    defaults = [_unparse(d) for d in args.defaults]
    kwonly = [a.arg for a in args.kwonlyargs]
    kw_defaults = [_unparse(d) for d in args.kw_defaults]
    return {
        "positional": positional,
        "defaults": defaults,
        "kwonly": kwonly,
        "kw_defaults": kw_defaults,
        "vararg": args.vararg.arg if args.vararg else None,
        "kwarg": args.kwarg.arg if args.kwarg else None,
    }


def _describe(signature: Dict[str, object]) -> str:
    parts: List[str] = list(signature["positional"])  # type: ignore[arg-type]
    if signature["vararg"]:
        parts.append(f"*{signature['vararg']}")
    parts.extend(signature["kwonly"])  # type: ignore[arg-type]
    if signature["kwarg"]:
        parts.append(f"**{signature['kwarg']}")
    return "(" + ", ".join(str(p) for p in parts) + ")"


def _public_methods(unit: ModuleUnit,
                    class_suffix: str) -> Dict[str, ast.FunctionDef]:
    """Public methods of the first ``*Kernels``-style class in the module."""
    if unit.tree is None:
        return {}
    for node in unit.tree.body:
        if isinstance(node, ast.ClassDef) and node.name.endswith(class_suffix):
            return {
                item.name: item
                for item in node.body
                if isinstance(item, ast.FunctionDef)
                and not item.name.startswith("_")
            }
    return {}


def _kernel_names(unit: ModuleUnit) -> Tuple[Optional[ast.AST], List[str]]:
    """The ``KERNEL_NAMES`` assignment node and its entries."""
    if unit.tree is None:
        return None, []
    for node in unit.tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            value = node.value
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            targets = [node.target.id]
            value = node.value
        else:
            continue
        if "KERNEL_NAMES" in targets and value is not None:
            try:
                names = list(ast.literal_eval(value))
            except (ValueError, SyntaxError):
                return node, []
            return node, [str(name) for name in names]
    return None, []


@register
class KernelParityRule(ProjectRule):
    """HDVB120: scalar/SIMD kernel surfaces and dispatch table agree."""

    rule_id = "HDVB120"
    name = "kernel-parity"
    rationale = (
        "the scalar-vs-SIMD benchmark axis is only meaningful when both "
        "backends implement identical kernel surfaces and the dispatch "
        "table registers every kernel; gaps skew speed-up results silently"
    )
    hint = "mirror the kernel in the other backend and register it in KERNEL_NAMES"

    def check_project(self, project: Project) -> Iterator[Finding]:
        scalar_unit = project.find(SCALAR_MODULE)
        simd_unit = project.find(SIMD_MODULE)
        api_unit = project.find(API_MODULE)
        if scalar_unit is None or simd_unit is None:
            return  # tree does not contain the kernel package
        scalar = _public_methods(scalar_unit, "Kernels")
        simd = _public_methods(simd_unit, "Kernels")

        for missing in sorted(set(scalar) - set(simd)):
            yield self.finding(
                scalar_unit, scalar[missing],
                f"public kernel '{missing}' exists in the scalar backend "
                f"but not in the SIMD backend",
            )
        for missing in sorted(set(simd) - set(scalar)):
            yield self.finding(
                simd_unit, simd[missing],
                f"public kernel '{missing}' exists in the SIMD backend "
                f"but not in the scalar backend",
            )
        for name in sorted(set(scalar) & set(simd)):
            scalar_sig = _signature(scalar[name])
            simd_sig = _signature(simd[name])
            if scalar_sig != simd_sig:
                yield self.finding(
                    simd_unit, simd[name],
                    f"kernel '{name}' signature diverges between backends: "
                    f"scalar {_describe(scalar_sig)} vs "
                    f"simd {_describe(simd_sig)}",
                    hint="make parameter names, order and defaults identical",
                )

        if api_unit is None:
            return
        table_node, registered = _kernel_names(api_unit)
        if table_node is None:
            yield Finding(
                rule_id=self.rule_id,
                path=api_unit.display_path,
                module=api_unit.module,
                line=1,
                message="kernels/api.py has no KERNEL_NAMES dispatch table",
                hint=self.hint,
            )
            return
        implemented = set(scalar) & set(simd)
        for name in sorted(implemented - set(registered)):
            yield self.finding(
                api_unit, table_node,
                f"kernel '{name}' is implemented by both backends but "
                f"missing from the KERNEL_NAMES dispatch table",
            )
        for name in sorted(set(registered) - implemented):
            yield self.finding(
                api_unit, table_node,
                f"KERNEL_NAMES registers '{name}' but no such public "
                f"kernel exists in both backends",
                hint="drop the stale entry or implement the kernel",
            )
