"""Atomic-write rule: durable state lands via temp + ``os.replace``.

The observe store and the artifact cache are the repo's durability
backbone, and the chaos harness (:mod:`repro.chaos`) proves their crash
recovery *only along the write paths that follow the discipline*: write
the full payload to a temp name, fsync, then ``os.replace`` into place
(or append a single whole line on an ``O_APPEND`` descriptor through
the :func:`repro.chaos.fileops` seam).  A plain ``open(path, "w")`` in
these packages is a torn-write waiting for a crash — the file exists in
a half-written state a reader (or fsck) must then cope with, outside
every recovery guarantee the harness certifies.

HDVB190 flags, inside ``observe/`` and ``orchestrate/``:

* builtin ``open(...)`` with a creating/truncating mode (``w``/``a``/
  ``x``, text **or** binary — unlike HDVB160, binary writes are in
  scope because artifacts are binary);
* ``Path.write_text(...)`` / ``Path.write_bytes(...)`` calls;

**unless** the enclosing function also calls ``os.replace`` (the
temp-then-swap pattern: the open is the temp write) or routes through
the chaos ``fileops()`` seam.  Intentional non-durable writes (reports,
exports) carry an inline ``# hdvb: disable=HDVB190`` with a comment
saying why tearing is harmless.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.analysis.findings import Finding
from repro.analysis.rules import ModuleUnit, Rule, dotted_name, in_scope, register

#: Packages whose writes must be atomic (the durability backbone).
ATOMIC_SCOPE_PREFIXES: Tuple[str, ...] = ("observe/", "orchestrate/")

#: ``open`` modes that create or truncate — text or binary alike.
_WRITE_MODE_CHARS = frozenset({"w", "a", "x"})

#: Method names that write a whole file non-atomically.
_WRITE_METHODS = frozenset({"write_text", "write_bytes"})


def _open_write_mode(call: ast.Call) -> bool:
    """True when an ``open`` call's mode creates or truncates a file."""
    mode_node: ast.AST = ast.Constant(value="r")
    if len(call.args) >= 2:
        mode_node = call.args[1]
    for keyword in call.keywords:
        if keyword.arg == "mode":
            mode_node = keyword.value
    if not isinstance(mode_node, ast.Constant) or not isinstance(
        mode_node.value, str
    ):
        return False    # a computed mode cannot be proven either way
    return bool(_WRITE_MODE_CHARS & set(mode_node.value))


def _function_calls(function: ast.AST) -> List[ast.Call]:
    return [node for node in ast.walk(function)
            if isinstance(node, ast.Call)]


def _uses_replace_or_seam(calls: List[ast.Call], unit: ModuleUnit) -> bool:
    """True when the function swaps atomically or writes via fileops()."""
    aliases = unit.module_aliases()
    imported = unit.imported_names()
    for call in calls:
        dotted = dotted_name(call.func)
        if dotted is None:
            continue
        base = dotted.split(".", 1)[0]
        if dotted.endswith(".replace") and aliases.get(base) == "os":
            return True
        if imported.get(dotted, "").endswith("os.replace"):
            return True
        if dotted == "fileops" or dotted.endswith(".fileops"):
            return True
    return False


@register
class AtomicWriteRule(Rule):
    """HDVB190: durable-state packages write via temp + os.replace."""

    rule_id = "HDVB190"
    name = "atomic-write"
    rationale = (
        "the chaos harness certifies crash recovery only for writes that "
        "follow the temp+os.replace (or O_APPEND-line) discipline; a "
        "plain open-for-write in observe/ or orchestrate/ can be torn by "
        "a crash into a half-written file outside every recovery "
        "guarantee"
    )
    hint = (
        "write the payload to a '<name>.tmp' sibling through the "
        "repro.chaos fileops() seam, fsync, then os.replace it into "
        "place; or add '# hdvb: disable=HDVB190' with a comment saying "
        "why a torn write is harmless here"
    )

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        if unit.tree is None:
            return
        if not in_scope(unit.module, ATOMIC_SCOPE_PREFIXES):
            return
        imported = unit.imported_names()
        # Walk function by function: os.replace anywhere in the same
        # function marks the whole function as the temp-then-swap
        # pattern, module-level writes have no such excuse.
        functions = [node for node in ast.walk(unit.tree)
                     if isinstance(node, (ast.FunctionDef,
                                          ast.AsyncFunctionDef))]
        seen_calls = set()
        for function in functions:
            calls = _function_calls(function)
            atomic = _uses_replace_or_seam(calls, unit)
            for call in calls:
                seen_calls.add(id(call))
                if not atomic:
                    yield from self._check_call(unit, call, imported)
        for node in ast.walk(unit.tree):
            if isinstance(node, ast.Call) and id(node) not in seen_calls:
                yield from self._check_call(unit, node, imported)

    def _check_call(self, unit: ModuleUnit, call: ast.Call,
                    imported: dict) -> Iterator[Finding]:
        dotted = dotted_name(call.func)
        if dotted is None:
            return
        if dotted == "open" and "open" not in imported:
            if _open_write_mode(call):
                yield self.finding(
                    unit, call,
                    "open() for writing without temp+os.replace in the "
                    "same function is a torn write under crash",
                )
        else:
            method = dotted.rsplit(".", 1)[-1]
            if method in _WRITE_METHODS and "." in dotted:
                yield self.finding(
                    unit, call,
                    f"{method}() rewrites the file in place -- a crash "
                    f"mid-write leaves it half-written",
                )
