"""HDVB200: interprocedural nondeterminism taint over the call graph.

HDVB101/102 are one-hop rules: they flag a module-state RNG draw or a
wall-clock read *at the line where it appears*, and only inside the
determinism scope.  They are blind to the same source one call away —
``orchestrate/scheduler.py`` calling ``parallel.run_pooled`` whose retry
backoff draws ``random.uniform`` is invisible to both, because the draw
lives in ``parallel.py`` (out of scope) and the scheduler line contains
no RNG call at all.

HDVB200 closes that gap.  Every function in the tree that *directly*
contains a nondeterministic source seeds a fact (``random.uniform``,
``numpy.random.rand``, ``time.time``); the :mod:`repro.analysis.flow`
fixed point propagates facts callee-to-caller over the whole-program
graph; the rule then flags each **call site inside the deterministic
scope whose internal callee carries a fact**, printing the full witness
chain down to the source line.  Direct in-scope sources stay HDVB101/102
territory (same line, better message) — this rule deliberately reports
only the transitive reach those rules provably miss.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.analysis.determinism import (
    DETERMINISM_SCOPE,
    SEEDED_NUMPY_OK,
    UNSEEDED_RANDOM_FUNCS,
    WALLCLOCK_CALLS,
)
from repro.analysis.findings import Finding
from repro.analysis.flow import Fact, Seed, propagate, witness
from repro.analysis.graph import CallGraph, finding_at
from repro.analysis.rules import Project, ProjectRule, in_scope, register

#: The interprocedural scope: the HDVB101/102 directories plus the
#: orchestrator, whose cell digests are part of the reproducibility gate.
TAINT_SCOPE: Tuple[str, ...] = DETERMINISM_SCOPE + ("orchestrate/",)

#: Modules that never seed taint: telemetry *must* read the clock (the
#: same carve-out HDVB102 documents), and nothing it measures feeds back
#: into results — reproducible records pin their timestamps explicitly.
EXEMPT_SOURCE_MODULES: Tuple[str, ...] = ("telemetry/",)


def nondet_fact(external: str) -> str:
    """The fact string for an external call, or '' when deterministic."""
    if external in WALLCLOCK_CALLS:
        return external
    parts = external.split(".")
    if parts[0] == "random" and len(parts) == 2 \
            and parts[1] in UNSEEDED_RANDOM_FUNCS:
        return external
    if parts[0] in ("numpy", "np") and len(parts) >= 3 \
            and parts[1] == "random" and parts[2] not in SEEDED_NUMPY_OK:
        return "numpy." + ".".join(parts[1:])
    return ""


def _seed_facts(graph: CallGraph) -> Dict[str, Dict[Fact, Seed]]:
    seeds: Dict[str, Dict[Fact, Seed]] = {}
    for qualname, node in graph.functions.items():
        if in_scope(node.module, EXEMPT_SOURCE_MODULES):
            continue
        for site in node.calls:
            if site.external is None:
                continue
            fact = nondet_fact(site.external)
            if fact and fact not in seeds.setdefault(qualname, {}):
                seeds[qualname][fact] = Seed(description=fact, line=site.line)
    return seeds


@register
class NondetTaintRule(ProjectRule):
    """HDVB200: deterministic scopes must not transitively reach
    module-state RNG or wall-clock sources."""

    rule_id = "HDVB200"
    name = "nondet-taint"
    rationale = (
        "HDVB101/102 only see a nondeterministic source at the line it "
        "appears on; a codec or orchestrator path calling a helper that "
        "draws from global RNG state one module away breaks "
        "bit-reproducibility just as silently — this rule propagates the "
        "taint over the whole-program call graph and flags the call site "
        "where it enters a deterministic scope"
    )
    hint = (
        "thread an explicit random.Random(seed) / timestamp into the "
        "callee, or move the nondeterminism behind an injected seam"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        graph: CallGraph = project.graph()
        seeds = _seed_facts(graph)
        facts = propagate(graph, seeds)
        for qualname in sorted(graph.functions):
            node = graph.functions[qualname]
            if not in_scope(node.module, TAINT_SCOPE):
                continue
            # Direct sources in the orchestrator: HDVB101/102 don't scope
            # orchestrate/, so the seed itself is this rule's to report.
            if not in_scope(node.module, DETERMINISM_SCOPE):
                for fact, seed in sorted(seeds.get(qualname, {}).items()):
                    yield finding_at(
                        self, project, node.module, seed.line,
                        f"`{node.name}` calls nondeterministic `{fact}` "
                        f"in a deterministic scope",
                    )
            # Boundary edges: the call site where taint enters the scope.
            # In-scope-to-in-scope edges are not repeated — the taint is
            # already reported where it crossed in (or by HDVB101/102 at
            # the direct source line).
            for site in node.calls:
                if site.target is None:
                    continue
                callee = graph.functions[site.target]
                if in_scope(callee.module, TAINT_SCOPE):
                    continue
                callee_facts = facts.get(site.target)
                if not callee_facts:
                    continue
                fact = sorted(callee_facts)[0]
                chain = witness(graph, facts, site.target, fact)
                yield finding_at(
                    self, project, node.module, site.line,
                    f"`{node.name}` calls `{callee.name}` "
                    f"({callee.module}) which transitively reaches "
                    f"nondeterministic `{fact}` "
                    f"[{' -> '.join(chain)}]",
                )
