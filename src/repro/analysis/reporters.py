"""Human and JSON reporters for analysis findings.

Both reporters take a plain list of
:class:`~repro.analysis.findings.Finding` records plus optional run
statistics, so they are reusable outside the lint engine —
``scripts/check_trace.py`` renders its trace-schema diagnostics through
the same helpers and the test suite validates the JSON schema directly.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.findings import Finding, sort_findings

FINDINGS_SCHEMA = "repro.analysis.findings/1"


def summarize(findings: Sequence[Finding]) -> Dict[str, int]:
    """Per-rule finding counts, e.g. ``{"HDVB111": 3}``."""
    counts: Dict[str, int] = {}
    for finding in findings:
        counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
    return dict(sorted(counts.items()))


def render_human(findings: Sequence[Finding], *,
                 files_scanned: Optional[int] = None,
                 suppressed: int = 0,
                 baselined: int = 0,
                 stale_baseline: Sequence[str] = ()) -> str:
    """One line per finding plus a summary footer."""
    ordered = sort_findings(findings)
    lines: List[str] = [finding.render() for finding in ordered]
    for entry in stale_baseline:
        lines.append(f"warning: stale baseline entry no longer matches: {entry}")
    tail = []
    if files_scanned is not None:
        tail.append(f"{files_scanned} file(s) scanned")
    if ordered:
        by_rule = ", ".join(f"{rule} x{count}"
                            for rule, count in summarize(ordered).items())
        tail.append(f"{len(ordered)} finding(s): {by_rule}")
    else:
        tail.append("no findings")
    if suppressed:
        tail.append(f"{suppressed} suppressed inline")
    if baselined:
        tail.append(f"{baselined} baselined")
    lines.append("; ".join(tail))
    return "\n".join(lines)


def findings_document(findings: Sequence[Finding], *,
                      files_scanned: Optional[int] = None,
                      suppressed: int = 0,
                      baselined: int = 0,
                      stale_baseline: Sequence[str] = (),
                      schema: str = FINDINGS_SCHEMA) -> Dict[str, Any]:
    """The JSON report as a plain dict (stable schema for tooling).

    ``schema`` lets other finding producers (the fsck layer reports as
    ``repro.chaos.fsck/1``) reuse the document shape under their own
    schema id.
    """
    ordered = sort_findings(findings)
    return {
        "schema": schema,
        "findings": [finding.to_dict() for finding in ordered],
        "summary": {
            "total": len(ordered),
            "by_rule": summarize(ordered),
            "files_scanned": files_scanned,
            "suppressed": suppressed,
            "baselined": baselined,
            "stale_baseline_entries": list(stale_baseline),
        },
    }


def render_json(findings: Sequence[Finding], **stats: Any) -> str:
    return json.dumps(findings_document(findings, **stats), indent=2)
