"""Bitstream-safety rule: untrusted bytes are parsed only at guarded seams.

The repo's defence against corrupt payloads is *centralisation*: raw
bytes become structured data at a small set of seams that validate as
they parse and report failures through the ReproError taxonomy —

* ``common/bitstream.py`` — defines ``BitReader`` itself;
* ``codecs/base.py`` — ``VideoDecoder._open_reader``, the tracked-reader
  seam that gives every decode error its bit position;
* ``codecs/container.py`` — the container wire format;
* ``transport/packetize.py`` — the transport wire format;
* ``robustness/guard.py`` — the guard layer.

A decoder that constructs its own ``BitReader`` bypasses bit-position
tracking (errors lose their ``bit_position`` context); a stray
``struct.unpack`` outside the wire-format modules is an unguarded parse
of attacker-controlled bytes.  HDVB140 flags both.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.analysis.findings import Finding
from repro.analysis.rules import ModuleUnit, Rule, dotted_name, register

#: Modules allowed to construct readers / unpack wire bytes.
GUARDED_SEAMS: Tuple[str, ...] = (
    "common/bitstream.py",
    "codecs/base.py",
    "codecs/container.py",
    "transport/packetize.py",
    "robustness/guard.py",
)

#: ``struct`` entry points that parse raw bytes.
STRUCT_PARSERS = frozenset({"unpack", "unpack_from", "iter_unpack", "Struct"})


@register
class BitstreamSeamRule(Rule):
    """HDVB140: BitReader construction and struct parsing stay at seams."""

    rule_id = "HDVB140"
    name = "bitstream-seam"
    rationale = (
        "payload parsing is centralised at validated seams so every "
        "decode error carries bit-position context and every wire format "
        "has exactly one guarded parser; ad-hoc BitReader/struct.unpack "
        "use reopens the unguarded-parse hole the robustness layer closed"
    )
    hint = (
        "decoders: use self._open_reader(payload); wire formats: parse in "
        "codecs/container.py or transport/packetize.py"
    )

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        if unit.tree is None or unit.module in GUARDED_SEAMS:
            return
        aliases = unit.module_aliases()
        imported = unit.imported_names()
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            if dotted == "BitReader" and imported.get(
                "BitReader", ""
            ).endswith("bitstream.BitReader"):
                yield self.finding(
                    unit, node,
                    "BitReader constructed outside a guarded seam loses "
                    "bit-position error context",
                )
                continue
            base = dotted.split(".", 1)[0]
            if aliases.get(base) == "struct" and "." in dotted:
                attr = dotted.split(".", 1)[1].split(".")[0]
                if attr in STRUCT_PARSERS:
                    yield self.finding(
                        unit, node,
                        f"struct.{attr} outside a wire-format seam parses "
                        f"raw bytes without guard-layer validation",
                    )
            elif imported.get(base, "").startswith("struct."):
                attr = imported[base].split(".", 1)[1]
                if attr in STRUCT_PARSERS:
                    yield self.finding(
                        unit, node,
                        f"struct.{attr} outside a wire-format seam parses "
                        f"raw bytes without guard-layer validation",
                    )
