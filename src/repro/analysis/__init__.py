"""``repro.analysis``: the codec-invariant static-analysis engine.

An AST-based lint pass (``hdvb-lint``) that enforces the repo-specific
invariants the benchmark's trustworthiness rests on — seeded determinism
in simulation paths, the ReproError taxonomy in decode paths, scalar/SIMD
kernel parity, process-pool pickle safety, centralised bitstream parsing
and telemetry span discipline — plus a whole-program tier: a
deterministic call graph (:mod:`repro.analysis.graph`) with a fixed-point
dataflow engine (:mod:`repro.analysis.flow`) behind the interprocedural
HDVB200-203 rules.  See ``docs/ANALYSIS.md`` for the rule catalogue and
workflow.

Public surface::

    from repro.analysis import run, Finding, all_rules
    result = run(["src"])          # LintResult
    result.findings                # list[Finding], baseline applied

    from repro.analysis import build_graph, Project
    graph = Project(units).graph() # whole-program CallGraph
"""

from repro.analysis.baseline import (
    Baseline,
    BaselineEntry,
    BaselineError,
    empty_baseline,
    load_baseline,
    prune_stale,
    write_baseline,
)
from repro.analysis.cache import DEFAULT_CACHE_DIR, LintCache
from repro.analysis.engine import (
    LintResult,
    canonical_module,
    git_changed_modules,
    run,
    suppressed_ids,
)
from repro.analysis.findings import Finding, sort_findings
from repro.analysis.flow import Seed, Via, propagate, witness
from repro.analysis.graph import (
    GRAPH_SCHEMA,
    CallGraph,
    CallSite,
    FunctionNode,
    build_graph,
)
from repro.analysis.reporters import (
    FINDINGS_SCHEMA,
    findings_document,
    render_human,
    render_json,
    summarize,
)
from repro.analysis.rules import ModuleUnit, Project, ProjectRule, Rule, all_rules

__all__ = [
    "Baseline",
    "BaselineEntry",
    "BaselineError",
    "CallGraph",
    "CallSite",
    "DEFAULT_CACHE_DIR",
    "FINDINGS_SCHEMA",
    "Finding",
    "FunctionNode",
    "GRAPH_SCHEMA",
    "LintCache",
    "LintResult",
    "ModuleUnit",
    "Project",
    "ProjectRule",
    "Rule",
    "Seed",
    "Via",
    "all_rules",
    "build_graph",
    "canonical_module",
    "empty_baseline",
    "findings_document",
    "git_changed_modules",
    "load_baseline",
    "propagate",
    "prune_stale",
    "render_human",
    "render_json",
    "run",
    "sort_findings",
    "summarize",
    "suppressed_ids",
    "witness",
    "write_baseline",
]
