"""``repro.analysis``: the codec-invariant static-analysis engine.

An AST-based lint pass (``hdvb-lint``) that enforces the repo-specific
invariants the benchmark's trustworthiness rests on — seeded determinism
in simulation paths, the ReproError taxonomy in decode paths, scalar/SIMD
kernel parity, process-pool pickle safety, centralised bitstream parsing
and telemetry span discipline.  See ``docs/ANALYSIS.md`` for the rule
catalogue and workflow.

Public surface::

    from repro.analysis import run, Finding, all_rules
    result = run(["src"])          # LintResult
    result.findings                # list[Finding], baseline applied
"""

from repro.analysis.baseline import (
    Baseline,
    BaselineEntry,
    BaselineError,
    empty_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.engine import LintResult, canonical_module, run, suppressed_ids
from repro.analysis.findings import Finding, sort_findings
from repro.analysis.reporters import (
    FINDINGS_SCHEMA,
    findings_document,
    render_human,
    render_json,
    summarize,
)
from repro.analysis.rules import ModuleUnit, Project, ProjectRule, Rule, all_rules

__all__ = [
    "Baseline",
    "BaselineEntry",
    "BaselineError",
    "FINDINGS_SCHEMA",
    "Finding",
    "LintResult",
    "ModuleUnit",
    "Project",
    "ProjectRule",
    "Rule",
    "all_rules",
    "canonical_module",
    "empty_baseline",
    "findings_document",
    "load_baseline",
    "render_human",
    "render_json",
    "run",
    "sort_findings",
    "summarize",
    "suppressed_ids",
    "write_baseline",
]
