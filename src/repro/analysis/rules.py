"""Rule plugin framework for the ``hdvb-lint`` static-analysis engine.

A rule is a class with an ``HDVB1xx`` id that inspects parsed modules and
yields :class:`~repro.analysis.findings.Finding` records.  Two kinds
exist:

* :class:`Rule` — checked once per module (``check(unit)``);
* :class:`ProjectRule` — checked once per tree (``check_project(project)``),
  for cross-file invariants such as scalar/SIMD kernel parity.

Rules register themselves with :func:`register`; the engine instantiates
every registered rule.  Each rule carries its rationale so the
``--list-rules`` catalogue and ``docs/ANALYSIS.md`` stay in sync with
the implementation.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Type

from repro.analysis.findings import Finding


@dataclass
class ModuleUnit:
    """One parsed source module handed to per-module rules."""

    path: Path                #: absolute filesystem path
    display_path: str         #: path as the user typed it (for reporting)
    module: str               #: canonical package-relative posix path
    source: str
    tree: Optional[ast.Module]      #: None when the module failed to parse
    lines: List[str] = field(default_factory=list)

    @classmethod
    def load(cls, path: Path, display_path: str, module: str) -> "ModuleUnit":
        source = path.read_text(encoding="utf-8")
        try:
            tree: Optional[ast.Module] = ast.parse(source)
        except SyntaxError:
            tree = None
        return cls(
            path=path,
            display_path=display_path,
            module=module,
            source=source,
            tree=tree,
            lines=source.splitlines(),
        )

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    # -- import maps shared by several rules --------------------------------

    def module_aliases(self) -> Dict[str, str]:
        """Map of local alias -> imported module (``import numpy as np``)."""
        aliases: Dict[str, str] = {}
        if self.tree is None:
            return aliases
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for name in node.names:
                    aliases[name.asname or name.name.split(".")[0]] = name.name
            elif isinstance(node, ast.ImportFrom) and node.module:
                for name in node.names:
                    # ``from numpy import random`` binds a module too.
                    aliases.setdefault(
                        name.asname or name.name, f"{node.module}.{name.name}"
                    )
        return aliases

    def imported_names(self) -> Dict[str, str]:
        """Map of local name -> fully qualified origin for from-imports."""
        names: Dict[str, str] = {}
        if self.tree is None:
            return names
        for node in ast.walk(self.tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                for name in node.names:
                    names[name.asname or name.name] = f"{node.module}.{name.name}"
        return names


@dataclass
class Project:
    """The whole scanned tree, for cross-module rules."""

    units: List[ModuleUnit]
    _graph: Optional[object] = field(default=None, repr=False, compare=False)

    def find(self, module: str) -> Optional[ModuleUnit]:
        for unit in self.units:
            if unit.module == module:
                return unit
        return None

    def graph(self) -> "object":
        """The whole-program call graph, built once and shared by every
        graph-backed rule (and injectable from the content-hash cache)."""
        if self._graph is None:
            from repro.analysis.graph import build_graph
            self._graph = build_graph(self)
        return self._graph

    def set_graph(self, graph: object) -> None:
        self._graph = graph

    def cached_graph(self) -> Optional[object]:
        """The graph if one was built or injected this run, else None."""
        return self._graph


class Rule:
    """Base class: one invariant, checked per module."""

    rule_id: str = ""
    name: str = ""
    rationale: str = ""
    hint: str = ""

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, unit: ModuleUnit, node: ast.AST, message: str,
                hint: str = "") -> Finding:
        return Finding(
            rule_id=self.rule_id,
            path=unit.display_path,
            module=unit.module,
            line=getattr(node, "lineno", 0),
            column=getattr(node, "col_offset", 0),
            message=message,
            hint=hint or self.hint,
        )


class ProjectRule(Rule):
    """Base class: one invariant, checked once over the whole tree."""

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: Project) -> Iterator[Finding]:
        raise NotImplementedError


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the engine's registry."""
    if not rule_class.rule_id:
        raise ValueError(f"rule {rule_class.__name__} has no rule_id")
    if rule_class.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_class.rule_id}")
    _REGISTRY[rule_class.rule_id] = rule_class
    return rule_class


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, ordered by id."""
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render an attribute chain (``np.random.rand``) or name as a string."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def in_scope(module: str, prefixes: Tuple[str, ...],
             files: Tuple[str, ...] = ()) -> bool:
    """True when ``module`` falls under any scoped directory or file."""
    return module in files or any(module.startswith(p) for p in prefixes)
