"""Error-taxonomy rules: decode paths speak ReproError, handlers don't swallow.

The hardened decode engine guarantees that *every* failure escaping a
decode is a :class:`~repro.errors.ReproError` subclass carrying codec /
picture / bit-position context (see ``robustness/guard.py``).  That
guarantee has two static halves:

* code that parses untrusted payloads must *raise* taxonomy errors in the
  first place — a ``ValueError`` from ``BitReader`` technically gets
  wrapped later, but loses its class and teaches callers to catch the
  wrong thing (HDVB110);
* no handler may silently swallow a broad exception class — a blind
  ``except Exception: pass`` hides corruption the robustness metrics are
  supposed to count (HDVB111).
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.analysis.findings import Finding
from repro.analysis.rules import ModuleUnit, Rule, in_scope, register

#: Modules that parse untrusted payloads or receive from the network.
DECODE_SCOPE: Tuple[str, ...] = ("codecs/", "robustness/", "transport/")
DECODE_FILES: Tuple[str, ...] = (
    "common/bitstream.py", "common/expgolomb.py",
)

#: The sanctioned taxonomy (``repro.errors``).
TAXONOMY = frozenset({
    "ReproError", "BitstreamError", "TruncationError", "CodecError",
    "ConfigError", "SequenceError",
})

#: Builtin exception classes that must not escape a decode path raw.
FORBIDDEN_RAISES = frozenset({
    "Exception", "BaseException", "ValueError", "TypeError", "KeyError",
    "IndexError", "LookupError", "ArithmeticError", "ZeroDivisionError",
    "OverflowError", "RuntimeError", "OSError", "IOError", "EOFError",
    "AttributeError", "AssertionError", "StopIteration", "SystemError",
    "BufferError", "MemoryError", "UnicodeDecodeError",
})

#: Handler types considered "blind" when they catch-and-discard.
BROAD_EXCEPTS = frozenset({"Exception", "BaseException"})


@register
class RaiseTaxonomyRule(Rule):
    """HDVB110: decode/receive paths raise only ReproError subclasses."""

    rule_id = "HDVB110"
    name = "raise-taxonomy"
    rationale = (
        "the hardened decode contract is that every failure reaching a "
        "caller is a ReproError with decode context; raising builtin "
        "exceptions from parse paths forces guard-layer guessing and "
        "breaks isinstance-based recovery decisions (re-fetch vs conceal)"
    )
    hint = (
        "raise a repro.errors taxonomy class (BitstreamError, "
        "TruncationError, CodecError, ConfigError, SequenceError)"
    )

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        if unit.tree is None or not in_scope(unit.module, DECODE_SCOPE,
                                             DECODE_FILES):
            return
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            target = node.exc
            if isinstance(target, ast.Call):
                target = target.func
            if isinstance(target, ast.Name) and target.id in FORBIDDEN_RAISES:
                yield self.finding(
                    unit, node,
                    f"decode path raises builtin {target.id} instead of a "
                    f"ReproError subclass",
                )


def _handler_is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    types = (handler.type.elts if isinstance(handler.type, ast.Tuple)
             else [handler.type])
    return any(
        isinstance(item, ast.Name) and item.id in BROAD_EXCEPTS
        for item in types
    )


def _body_reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(node, ast.Raise) for node in ast.walk(handler))


def _body_uses_binding(handler: ast.ExceptHandler) -> bool:
    if handler.name is None:
        return False
    return any(
        isinstance(node, ast.Name) and node.id == handler.name
        and isinstance(node.ctx, ast.Load)
        for child in handler.body
        for node in ast.walk(child)
    )


@register
class BlindExceptRule(Rule):
    """HDVB111: no bare/blind except that swallows without context."""

    rule_id = "HDVB111"
    name = "blind-except"
    rationale = (
        "a handler that catches Exception and neither re-raises nor "
        "records the error erases exactly the evidence the robustness "
        "metrics and concealment events exist to preserve"
    )
    hint = (
        "catch the narrowest taxonomy class, re-raise, or bind the error "
        "(`except Exception as error:`) and record it"
    )

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        if unit.tree is None:
            return
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    unit, node,
                    "bare `except:` catches SystemExit/KeyboardInterrupt "
                    "and swallows every error class",
                )
                continue
            if not _handler_is_broad(node):
                continue
            if _body_reraises(node) or _body_uses_binding(node):
                continue
            yield self.finding(
                unit, node,
                "blind `except Exception` swallows the error without "
                "re-raising or recording it",
            )
