"""Content-hash cache for parsed ASTs and the whole-program call graph.

``hdvb-lint --cache .hdvb-lint-cache/`` keys every artifact by content,
never by path or mtime:

* one ``ast/<sha256>.pkl`` per distinct file content — a re-lint with
  unchanged files skips ``ast.parse`` entirely;
* one ``graph/<sha256>.pkl`` for the whole-program call graph, keyed by
  the sha256 over the sorted ``module:file-sha`` pairs of every parsed
  module — any edit to any file changes the key, so a cached graph can
  never be stale by construction.

The graph pickles without AST nodes (every rule-relevant datum is
precomputed onto :class:`~repro.analysis.graph.FunctionNode`), so a warm
run serves HDVB200-203 from the cache alone.  Writes go through a temp
file + ``os.replace`` so a crashed lint never leaves a torn pickle; a
cache entry that fails to unpickle is treated as a miss and rewritten.
Entries for contents no longer referenced are pruned on save, keeping
the directory proportional to the tree.
"""

from __future__ import annotations

import ast
import hashlib
import os
import pickle
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.analysis.graph import CallGraph

DEFAULT_CACHE_DIR = ".hdvb-lint-cache"

#: Bumped whenever the pickled shapes change; part of every key.
CACHE_VERSION = "1"


def file_sha(content: bytes) -> str:
    return hashlib.sha256(
        CACHE_VERSION.encode("ascii") + b"\x00" + content).hexdigest()


def graph_key(module_shas: Dict[str, str]) -> str:
    digest = hashlib.sha256()
    digest.update(CACHE_VERSION.encode("ascii"))
    for module in sorted(module_shas):
        digest.update(b"\x00")
        digest.update(module.encode("utf-8"))
        digest.update(b":")
        digest.update(module_shas[module].encode("ascii"))
    return digest.hexdigest()


def _atomic_write(path: Path, payload: bytes) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    temp = path.with_name(path.name + ".tmp")
    temp.write_bytes(payload)
    os.replace(str(temp), str(path))


class LintCache:
    """The on-disk cache; every method tolerates a missing/corrupt dir."""

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self.ast_hits = 0
        self.ast_misses = 0
        self.graph_hit = False

    # -- parsed trees -------------------------------------------------------

    def _ast_path(self, sha: str) -> Path:
        return self.root / "ast" / f"{sha}.pkl"

    def load_tree(self, sha: str) -> Optional[ast.Module]:
        try:
            payload = self._ast_path(sha).read_bytes()
            tree = pickle.loads(payload)
        except (OSError, pickle.PickleError, ValueError, EOFError,
                AttributeError):
            self.ast_misses += 1
            return None
        if not isinstance(tree, ast.Module):
            self.ast_misses += 1
            return None
        self.ast_hits += 1
        return tree

    def store_tree(self, sha: str, tree: ast.Module) -> None:
        try:
            _atomic_write(self._ast_path(sha),
                          pickle.dumps(tree, protocol=pickle.HIGHEST_PROTOCOL))
        except OSError:
            pass        # a read-only cache degrades to a slow lint

    # -- the whole-program graph --------------------------------------------

    def _graph_path(self, key: str) -> Path:
        return self.root / "graph" / f"{key}.pkl"

    def load_graph(self, key: str) -> Optional[CallGraph]:
        try:
            payload = self._graph_path(key).read_bytes()
            graph = pickle.loads(payload)
        except (OSError, pickle.PickleError, ValueError, EOFError,
                AttributeError):
            return None
        if not isinstance(graph, CallGraph):
            return None
        self.graph_hit = True
        return graph

    def store_graph(self, key: str, graph: CallGraph) -> None:
        try:
            _atomic_write(
                self._graph_path(key),
                pickle.dumps(graph, protocol=pickle.HIGHEST_PROTOCOL))
        except OSError:
            pass

    # -- hygiene ------------------------------------------------------------

    def prune(self, live_shas: List[str], live_graph_key: str) -> None:
        """Drop entries no current file content references."""
        keep_ast = {f"{sha}.pkl" for sha in live_shas}
        self._prune_dir(self.root / "ast", keep_ast)
        self._prune_dir(self.root / "graph", {f"{live_graph_key}.pkl"})

    @staticmethod
    def _prune_dir(directory: Path, keep: set) -> None:
        try:
            entries = sorted(directory.iterdir())
        except OSError:
            return
        for entry in entries:
            if entry.name.endswith(".pkl") and entry.name not in keep:
                try:
                    entry.unlink()
                except OSError:
                    pass


def parse_with_cache(cache: Optional[LintCache], source: str,
                     ) -> Tuple[Optional[ast.Module], str]:
    """(tree, content sha) — through ``cache`` when given."""
    content = source.encode("utf-8")
    sha = file_sha(content)
    if cache is not None:
        tree = cache.load_tree(sha)
        if tree is not None:
            return tree, sha
    try:
        parsed: Optional[ast.Module] = ast.parse(source)
    except SyntaxError:
        return None, sha
    if cache is not None:
        cache.store_tree(sha, parsed)
    return parsed, sha
