"""Telemetry-discipline rule: spans are opened only via context manager.

``repro.telemetry.trace.span`` returns a context manager; the span is
recorded by ``__exit__``.  A span that is called and discarded, or
assigned to a variable that never reaches a ``with`` statement, *never
records anything* — and worse, if someone calls ``__enter__`` by hand
and an exception skips the exit, the thread's span stack corrupts and
every subsequent span nests under the leaked parent.  The telemetry
overhead gate (<2 %) also assumes the no-op fast path of the ``with``
protocol.  HDVB150 enforces the only safe shape::

    with span("name", attr=...):           # direct
        ...
    handle = span("name")                  # or via a handle that is
    with handle:                           # entered in the same scope
        handle.set(extra=...)
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from repro.analysis.findings import Finding
from repro.analysis.rules import ModuleUnit, Rule, dotted_name, register

SPAN_FACTORY = "repro.telemetry.trace.span"


def _span_call_names(unit: ModuleUnit) -> Set[str]:
    """Local names bound to the span factory by from-imports."""
    return {
        name for name, origin in unit.imported_names().items()
        if origin == SPAN_FACTORY
    }


def _scopes(tree: ast.Module) -> List[List[ast.stmt]]:
    """Module body plus every function body, each a flat statement list."""
    bodies = [tree.body]
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            bodies.append(node.body)
    return bodies


def _walk_scope(stmts: List[ast.stmt]) -> Iterator[ast.AST]:
    """Walk statements without descending into nested function scopes."""
    stack: List[ast.AST] = list(stmts)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue  # its body is a separate scope
        stack.extend(ast.iter_child_nodes(node))


@register
class SpanContextRule(Rule):
    """HDVB150: telemetry spans open only through `with`."""

    rule_id = "HDVB150"
    name = "span-context"
    rationale = (
        "a span records itself in __exit__; opening one outside a with "
        "block either records nothing (discarded handle) or corrupts the "
        "thread's span stack (manual __enter__ without a guaranteed exit)"
    )
    hint = "wrap the call: `with span(...):` (a named handle must be entered too)"

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        if unit.tree is None or unit.module.startswith("telemetry/"):
            return
        span_names = _span_call_names(unit)
        # Direct module use (`trace.span(...)`) resolves through aliases.
        aliases = unit.module_aliases()

        def is_span_call(node: ast.AST) -> bool:
            if not isinstance(node, ast.Call):
                return False
            dotted = dotted_name(node.func)
            if dotted is None:
                return False
            if dotted in span_names:
                return True
            base = dotted.split(".", 1)[0]
            origin = aliases.get(base)
            if origin is None or "." not in dotted:
                return False
            resolved = origin + "." + dotted.split(".", 1)[1]
            return resolved == SPAN_FACTORY

        for body in _scopes(unit.tree):
            entered_names: Set[str] = set()
            span_assignments = {}  # name -> assignment node
            suspicious: List[ast.AST] = []
            for node in _walk_scope(body):
                if isinstance(node, ast.With):
                    for item in node.items:
                        if is_span_call(item.context_expr):
                            pass  # the sanctioned direct form
                        elif isinstance(item.context_expr, ast.Name):
                            entered_names.add(item.context_expr.id)
                elif isinstance(node, ast.Assign) and is_span_call(node.value):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            span_assignments[target.id] = node
                elif isinstance(node, ast.Expr) and is_span_call(node.value):
                    suspicious.append(node)
                elif isinstance(node, ast.Return) and node.value is not None \
                        and is_span_call(node.value):
                    suspicious.append(node)
            for node in suspicious:
                yield self.finding(
                    unit, node,
                    "span opened outside a `with` statement never records "
                    "(or leaks past an exception)",
                )
            for name, assignment in span_assignments.items():
                if name not in entered_names:
                    yield self.finding(
                        unit, assignment,
                        f"span handle '{name}' is never entered with a "
                        f"`with` statement in this scope",
                    )
